//! # graphcache — GC: a graph caching system for subgraph/supergraph queries
//!
//! A from-scratch Rust reproduction of *"GC: A Graph Caching System for
//! Subgraph/Supergraph Queries"* (Wang, Liu, Ma, Ntarmos, Triantafillou —
//! PVLDB 11(12), 2018) and the GraphCache/iGQ kernel it demonstrates.
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on one crate:
//!
//! * [`graph`] ([`gc_graph`]) — labelled undirected graphs, bitsets, I/O,
//!   WL fingerprints;
//! * [`iso`] ([`gc_iso`]) — VF2 and Ullmann subgraph-isomorphism engines;
//! * [`index`] ([`gc_index`]) — path-feature indices (FTV dataset index and
//!   the dynamic query index);
//! * [`method`] ([`gc_method`]) — the pluggable Method M abstraction
//!   (SI and FTV base methods);
//! * [`core`] ([`gc_core`]) — the GraphCache kernel: the staged query
//!   pipeline (filter → probe → prune → verify → admit), replacement
//!   policies (LRU/POP/PIN/PINC/HD), window manager, the sequential
//!   [`GraphCache`](prelude::GraphCache) runtime and the concurrent sharded
//!   [`SharedGraphCache`](prelude::SharedGraphCache) front-end;
//! * [`workload`] ([`gc_workload`]) — dataset generators and workload
//!   synthesizers;
//! * [`demo`] ([`gc_demo`]) — the text Demonstrator (Query Journey /
//!   Workload Run dashboards).
//!
//! ## Quick start
//!
//! ```
//! use graphcache::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. A dataset (here: synthetic molecule-like graphs standing in for AIDS).
//! let dataset = Arc::new(Dataset::new(molecule_dataset(100, 42)));
//!
//! // 2. A base method M (filter-then-verify over a path index) and a cache.
//! let method = Box::new(FtvMethod::build(&dataset, 3));
//! let mut gc = GraphCache::with_policy(
//!     dataset.clone(),
//!     method,
//!     PolicyKind::Hd,
//!     CacheConfig::default(),
//! ).unwrap();
//!
//! // 3. Queries.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let q = extract_query(dataset.graph(0), 6, &mut rng).unwrap();
//! let first = gc.query(&q, QueryKind::Subgraph);
//! let again = gc.query(&q, QueryKind::Subgraph); // exact-match hit
//! assert_eq!(first.answer, again.answer);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gc_core as core;
pub use gc_demo as demo;
pub use gc_graph as graph;
pub use gc_index as index;
pub use gc_iso as iso;
pub use gc_method as method;
pub use gc_workload as workload;

/// One-stop imports for applications.
pub mod prelude {
    pub use gc_core::{
        CacheConfig, CacheEntry, EntryId, GlobalStats, GraphCache, HitCredit, HitKind, Policy,
        PolicyKind, QueryReport, ReplacementPolicy, SharedGraphCache, StatsMonitor,
    };
    pub use gc_demo::{run_multi_client, run_query_journey, run_workload_comparison};
    pub use gc_graph::{BitSet, Graph, GraphBuilder, Label};
    pub use gc_index::{FeatureConfig, IndexTuning};
    pub use gc_iso::{is_subgraph, Matcher};
    pub use gc_method::{execute_base, Dataset, Engine, FtvMethod, Method, QueryKind, SiMethod};
    pub use gc_workload::{
        extract_query, molecule_dataset, nested_chain, Workload, WorkloadKind, WorkloadSpec,
    };
    pub use rand::SeedableRng;
}
