//! Many client threads sharing one cache.
//!
//! The sequential `GraphCache` is `&mut self` per query — one in-flight
//! query at a time. `SharedGraphCache` serves the same staged pipeline
//! through `&self`: shard the cache state, probe under read locks, admit
//! under short write sections, and let every client thread query
//! concurrently with exactly the answers the sequential cache would give.
//!
//! Run with: `cargo run --release --example concurrent_clients`

use graphcache::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    const CLIENTS: usize = 8;
    const QUERIES: usize = 400;

    // A dataset and a skewed workload (repetition is what caches love).
    let dataset = Arc::new(Dataset::new(molecule_dataset(80, 2024)));
    let spec = WorkloadSpec {
        n_queries: QUERIES,
        pool_size: 60,
        kind: WorkloadKind::Zipf { skew: 1.2 },
        seed: 11,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);

    // Reference run: the sequential cache (answers are exact regardless of
    // cache state, so this doubles as the ground truth).
    let mut seq = GraphCache::with_policy(
        dataset.clone(),
        Box::new(FtvMethod::build(&dataset, 2)),
        PolicyKind::Hd,
        CacheConfig::default(),
    )
    .unwrap();
    let t0 = Instant::now();
    let expected: Vec<BitSet> =
        workload.queries.iter().map(|wq| seq.query(&wq.graph, wq.kind).answer).collect();
    let seq_time = t0.elapsed();

    // Concurrent run: CLIENTS threads stripe the same workload over one
    // SharedGraphCache.
    let gc = SharedGraphCache::with_policy(
        dataset.clone(),
        Box::new(FtvMethod::build(&dataset, 2)),
        PolicyKind::Hd,
        CacheConfig::default(),
    )
    .unwrap();
    let t0 = Instant::now();
    let mismatches: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let gc = &gc;
                let workload = &workload;
                let expected = &expected;
                scope.spawn(move || {
                    let mut bad = 0usize;
                    for (i, wq) in workload.queries.iter().enumerate() {
                        if i % CLIENTS != t {
                            continue;
                        }
                        if gc.query(&wq.graph, wq.kind).answer != expected[i] {
                            bad += 1;
                        }
                    }
                    bad
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let shared_time = t0.elapsed();

    let stats = gc.stats();
    println!("{QUERIES} queries, {CLIENTS} concurrent clients, {} shards", gc.shard_count());
    println!("sequential GraphCache : {:>8.1} ms", seq_time.as_secs_f64() * 1e3);
    println!("SharedGraphCache      : {:>8.1} ms", shared_time.as_secs_f64() * 1e3);
    println!(
        "hit ratio {:.1}% | exact hits {} | admitted {} | evicted {}",
        100.0 * stats.hit_ratio(),
        stats.exact_hits,
        stats.admitted,
        stats.evicted
    );
    match mismatches {
        0 => println!("all concurrent answers identical to the sequential replay ✓"),
        n => println!("!! {n} answers diverged — this would be a bug"),
    }
    assert_eq!(mismatches, 0);
}
