//! Scenario I — The Query Journey (paper §3.2, Fig. 3).
//!
//! Reproduces the demo's end-user walkthrough: a cache pre-warmed with 50
//! executed queries, then one instrumented query whose trip through GC is
//! narrated panel by panel (`H`, `C_M`, `S`, `S'`, `C`, `R`, `A`) ending
//! with the sub-iso-test speedup. The paper's worked example has exactly
//! **one sub-case and three super-case hits**, reducing `|C_M| = 75` to
//! `|C| = 43` (speedup 1.74); this program stages the same anatomy — a
//! cached supergraph plus several cached subgraphs of the journey query —
//! and reports the same pipeline with the same shape of savings.
//!
//! ```sh
//! cargo run --release --example query_journey
//! ```

use gc_workload::molecules::{molecule_dataset_with, MoleculeParams};
use graphcache::demo::run_query_journey;
use graphcache::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;

fn main() {
    // The demo deployment: 100 dataset graphs, cache capacity 50, Method M
    // with a weak filter (small feature size) so C_M stays sizeable, like
    // the 75 of Fig. 3(b). A nearly label-homogeneous dataset (hydrocarbon
    // backbones: 85% C, 15% O) keeps the filter honest — most molecules
    // share the query's label paths, exactly the regime of the demo figure.
    let params =
        MoleculeParams { label_weights: vec![(0, 0.85), (1, 0.15)], ..MoleculeParams::default() };
    let dataset = Arc::new(Dataset::new(molecule_dataset_with(100, &params, 1812)));
    let method = Box::new(FtvMethod::build(&dataset, 1));
    let mut gc = GraphCache::with_policy(
        dataset.clone(),
        method,
        PolicyKind::Hd,
        CacheConfig { capacity: 50, window_size: 1, ..CacheConfig::default() },
    )
    .expect("valid config");

    // A ⊑-chain over graph 0: sizes 3 < 4 < 5 < 10 < 16 edges. The journey
    // query will be the 10-edge element; warming with the three smaller
    // ones gives three super-case hits, warming with the largest gives one
    // sub-case hit — the demo's exact anatomy.
    let mut rng = StdRng::seed_from_u64(99);
    let chain = nested_chain(dataset.graph(0), &[3, 4, 5, 10, 16], &mut rng);
    let journey_query = chain[3].clone();
    gc.query(&chain[0], QueryKind::Subgraph);
    gc.query(&chain[1], QueryKind::Subgraph);
    gc.query(&chain[2], QueryKind::Subgraph);
    gc.query(&chain[4], QueryKind::Subgraph);

    // Fill the rest of the cache with unrelated executed queries, like the
    // demo's "graph cache with 50 executed queries".
    let mut filler = 0u32;
    while gc.len() < 50 && filler < 200 {
        filler += 1;
        let src = dataset.graph(1 + (filler % 90));
        if let Some(q) = extract_query(src, 6, &mut rng) {
            gc.query(&q, QueryKind::Subgraph);
        }
    }
    println!("cache warmed: {} entries, policy {}\n", gc.len(), gc.policy_name());

    let journey = run_query_journey(&mut gc, &journey_query, QueryKind::Subgraph);
    println!("{}", journey.rendering);

    let r = &journey.report;
    println!(
        "summary: {} sub-case + {} super-case hits reduced |C_M|={} to |C|={} (speedup {:.2})",
        r.sub_hits.len(),
        r.super_hits.len(),
        r.cm_size,
        r.verified,
        r.test_speedup()
    );
    assert!(!r.exact_hit, "journey query was never executed before");
}
