//! Quickstart: build a dataset, wrap a base method with GraphCache, run a
//! workload, and read the speedup.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graphcache::prelude::*;
use std::sync::Arc;

fn main() {
    // A dataset of 100 molecule-like graphs (the demo deployment uses 100
    // AIDS molecules; see DESIGN.md §4 for the substitution).
    let dataset = Arc::new(Dataset::new(molecule_dataset(100, 2018)));
    println!(
        "dataset: {} graphs, avg {:.1} vertices",
        dataset.len(),
        dataset.graphs().iter().map(|g| g.vertex_count()).sum::<usize>() as f64
            / dataset.len() as f64
    );

    // Method M: filter-then-verify over a path index of feature size 3.
    let method = Box::new(FtvMethod::build(&dataset, 3));
    println!("method: {} ({} KiB index)", method.name(), method.index_memory_bytes() / 1024);

    // GraphCache over Method M with the HD policy (the paper's
    // when-in-doubt recommendation).
    let mut gc = GraphCache::with_policy(
        dataset.clone(),
        method,
        PolicyKind::Hd,
        CacheConfig { capacity: 50, window_size: 10, ..CacheConfig::default() },
    )
    .expect("valid config");

    // A skewed workload of 500 subgraph queries.
    let spec = WorkloadSpec {
        n_queries: 500,
        pool_size: 120,
        kind: WorkloadKind::Zipf { skew: 1.1 },
        seed: 7,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);

    // Run it, also measuring the no-cache baseline for the speedup.
    let baseline = FtvMethod::build(&dataset, 3);
    let mut base_tests = 0u64;
    for wq in &workload.queries {
        base_tests +=
            execute_base(&dataset, &baseline, Engine::Vf2, &wq.graph, wq.kind).sub_iso_tests as u64;
    }
    for wq in &workload.queries {
        gc.query(&wq.graph, wq.kind);
    }

    let stats = gc.stats();
    println!("\nafter {} queries:", stats.queries);
    println!("  hit ratio          : {:.1}%", 100.0 * stats.hit_ratio());
    println!("  exact hits         : {}", stats.exact_hits);
    println!("  sub-case hits      : {}", stats.sub_hits);
    println!("  super-case hits    : {}", stats.super_hits);
    println!(
        "  tests executed     : {} (+{} cache probes)",
        stats.tests_executed, stats.probe_tests
    );
    println!("  tests saved        : {}", stats.tests_saved);
    let base_avg = base_tests as f64 / workload.len() as f64;
    let speedup = base_avg / stats.avg_tests_per_query();
    println!(
        "  sub-iso test speedup: {:.2}x ({:.2} -> {:.2} tests/query)",
        speedup,
        base_avg,
        stats.avg_tests_per_query()
    );
    println!(
        "  cache memory        : {} KiB ({:.2}% of the FTV index)",
        gc.memory_bytes() / 1024,
        100.0 * gc.memory_bytes() as f64 / gc.method_index_bytes().max(1) as f64
    );
}
