//! Scenario II — The Workload Run (paper §3.2, Fig. 2(b,c)).
//!
//! Runs one workload through GraphCache under every bundled replacement
//! policy (LRU, POP, PIN, PINC, HD) over the same Method M, then renders the
//! comparison: hit rates, per-policy evictions (different policies evict
//! different graphs — the point of Fig. 2(c)) and speedups versus the base
//! method.
//!
//! Pass a workload family as an argument: `uniform`, `zipf`, or `drift`
//! (default `zipf`), mirroring "users could either choose one [workload] or
//! create a new workload".
//!
//! ```sh
//! cargo run --release --example workload_run -- drift
//! ```

use graphcache::demo::run_workload_comparison;
use graphcache::prelude::*;
use std::sync::Arc;

fn main() {
    let family = std::env::args().nth(1).unwrap_or_else(|| "zipf".to_owned());
    let kind = match family.as_str() {
        "uniform" => WorkloadKind::Uniform,
        "zipf" => WorkloadKind::Zipf { skew: 1.2 },
        "drift" => WorkloadKind::Drift { chain_len: 4, repeat_prob: 0.3 },
        other => {
            eprintln!("unknown workload family {other:?}; use uniform|zipf|drift");
            std::process::exit(2);
        }
    };

    let dataset = Arc::new(Dataset::new(molecule_dataset(100, 77)));
    let spec = WorkloadSpec {
        n_queries: 400,
        pool_size: 150,
        kind,
        min_edges: 4,
        max_edges: 14,
        seed: 13,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    println!("workload: {} queries ({family}), dataset {} graphs\n", workload.len(), dataset.len());

    // Capacity deliberately below the working set so the policies must
    // actually choose victims (the point of Fig. 2(c)).
    let config = CacheConfig { capacity: 25, window_size: 10, ..CacheConfig::default() };
    let cmp = run_workload_comparison(
        &dataset,
        &|| Box::new(FtvMethod::build(&dataset, 2)),
        &config,
        &workload,
    );
    println!("{}", cmp.render());
    println!("{}", cmp.render_timeline(PolicyKind::Hd, 8));
    println!("winner on this workload: {}", cmp.winner());
}
