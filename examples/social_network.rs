//! Social-network scenario: broad-to-narrow audience queries.
//!
//! Paper §1: "social networking queries may start off broad (e.g., all the
//! people in a geographic location) and become narrower (e.g., those having
//! specific demographics)". We model a dataset of labelled ego-network
//! snapshots (heavy-tailed, preferential attachment) and a mixed workload of
//! subgraph *and* supergraph queries produced by drifting sessions.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use gc_workload::random::ba_dataset;
use graphcache::prelude::*;
use std::sync::Arc;

fn main() {
    // 120 ego-network snapshots of 40 vertices each; 6 demographic labels.
    let dataset = Arc::new(Dataset::new(ba_dataset(120, 40, 2, 6, 909)));
    println!(
        "dataset: {} ego-networks, avg degree {:.1}, max degree {}",
        dataset.len(),
        dataset.graphs().iter().map(|g| g.avg_degree()).sum::<f64>() / dataset.len() as f64,
        dataset.graphs().iter().map(|g| g.max_degree()).max().unwrap()
    );

    let spec = WorkloadSpec {
        n_queries: 250,
        kind: WorkloadKind::Drift { chain_len: 4, repeat_prob: 0.25 },
        min_edges: 2,
        max_edges: 8,
        supergraph_fraction: 0.3, // audience-containment questions
        seed: 31,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    let n_super = workload.queries.iter().filter(|q| q.kind == QueryKind::Supergraph).count();
    println!(
        "workload: {} queries ({} subgraph, {} supergraph), drifting sessions\n",
        workload.len(),
        workload.len() - n_super,
        n_super
    );

    // Baseline (no cache) for the speedup.
    let baseline = SiMethod;
    let mut base_tests = 0u64;
    for wq in &workload.queries {
        base_tests +=
            execute_base(&dataset, &baseline, Engine::Vf2, &wq.graph, wq.kind).sub_iso_tests as u64;
    }

    let mut gc = GraphCache::with_policy(
        dataset.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd,
        CacheConfig { capacity: 60, window_size: 8, threads: 2, ..CacheConfig::default() },
    )
    .expect("valid config");
    for wq in &workload.queries {
        gc.query(&wq.graph, wq.kind);
    }

    let stats = gc.stats();
    let base_avg = base_tests as f64 / workload.len() as f64;
    println!("results over SI method (no index):");
    println!("  hit ratio            : {:.0}%", 100.0 * stats.hit_ratio());
    println!(
        "  hits by case         : {} exact, {} sub, {} super",
        stats.exact_hits, stats.sub_hits, stats.super_hits
    );
    println!(
        "  avg sub-iso tests/qry: {:.1} (base method: {:.1})",
        stats.avg_tests_per_query(),
        base_avg
    );
    println!("  sub-iso test speedup : {:.2}x", base_avg / stats.avg_tests_per_query());
}
