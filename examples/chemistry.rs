//! Chemistry scenario: substructure search over a compound library.
//!
//! The paper's motivating domain (§1): "biochemical queries could range from
//! simple molecules and aminoacids to complex proteins" — an analyst starts
//! from a small functional-group pattern and progressively refines it. Each
//! refinement is a supergraph of the previous query, so GraphCache keeps
//! converting earlier results into pruning power.
//!
//! ```sh
//! cargo run --release --example chemistry
//! ```

use graphcache::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;

fn main() {
    // A compound library of 200 molecule-like graphs.
    let dataset = Arc::new(Dataset::new(molecule_dataset(200, 555)));
    let method = Box::new(FtvMethod::build(&dataset, 3));
    let mut gc = GraphCache::with_policy(
        dataset.clone(),
        method,
        PolicyKind::Pinc, // cost-aware: molecules vary in verification cost
        CacheConfig { capacity: 64, window_size: 4, ..CacheConfig::default() },
    )
    .expect("valid config");

    let mut rng = StdRng::seed_from_u64(4242);
    println!("compound library: {} molecules\n", dataset.len());
    println!("analyst session: grow a pattern from 3 to 12 bonds, re-querying each step\n");

    let mut session = 0;
    for source_id in [3u32, 17, 42] {
        session += 1;
        let chain = nested_chain(dataset.graph(source_id), &[3, 5, 8, 12], &mut rng);
        println!("-- session {session}: refining a motif from molecule #{source_id} --");
        for (step, q) in chain.iter().enumerate() {
            let r = gc.query(q, QueryKind::Subgraph);
            println!(
                "  step {}: {:2} bonds -> {:3} matches | C_M {:3} -> C {:3} | hits: {} sub, {} super{}",
                step + 1,
                q.edge_count(),
                r.answer.count(),
                r.cm_size,
                r.verified,
                r.sub_hits.len(),
                r.super_hits.len(),
                if r.exact_hit { " (exact)" } else { "" },
            );
        }
        // The analyst re-runs the final refined pattern (a resubmission —
        // the FTV weakness GC fixes: "think of the example when a query is
        // resubmitted to the system, it shall be processed from scratch").
        let last = chain.last().expect("non-empty chain");
        let r = gc.query(last, QueryKind::Subgraph);
        println!(
            "  re-run : {:2} bonds -> {:3} matches | exact hit: {} (0 sub-iso tests)\n",
            last.edge_count(),
            r.answer.count(),
            r.exact_hit
        );
    }

    let stats = gc.stats();
    println!("session totals:");
    println!("  queries            : {}", stats.queries);
    println!("  hit ratio          : {:.0}%", 100.0 * stats.hit_ratio());
    println!("  sub-iso tests run  : {}", stats.tests_executed + stats.probe_tests);
    println!("  sub-iso tests saved: {}", stats.tests_saved);
}
