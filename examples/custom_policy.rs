//! Developer scenario: plugging a custom replacement policy into GraphCache.
//!
//! The paper's Fig. 2(d) shows the `Cache` extension class developers
//! override (`updateCacheItems`, `updateCacheStaInfo`,
//! `getReplacedContent`). The Rust equivalent is the
//! [`ReplacementPolicy`] trait; this example implements a FIFO policy from
//! scratch and races it against the bundled HD policy on the same workload.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use graphcache::prelude::*;
use std::sync::Arc;

/// First-in-first-out eviction: utility = admission order, hits ignored.
///
/// * `on_hit` is the paper's `updateCacheStaInfo` — FIFO deliberately does
///   nothing with it;
/// * `victims` is the paper's `getReplacedContent` — the oldest entries;
/// * eviction bookkeeping (the paper's `updateCacheItems`) is `on_evict`.
#[derive(Debug, Default)]
struct FifoPolicy {
    arrival: Vec<(EntryId, u64)>,
}

impl ReplacementPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "FIFO(custom)"
    }

    fn on_insert(&mut self, entry: EntryId, now: u64) {
        self.arrival.push((entry, now));
    }

    fn on_hit(&mut self, _entry: EntryId, _credit: &HitCredit, _now: u64) {
        // FIFO ignores usage.
    }

    fn on_evict(&mut self, entry: EntryId) {
        self.arrival.retain(|&(e, _)| e != entry);
    }

    fn victims(&mut self, x: usize) -> Vec<EntryId> {
        let mut v = self.arrival.clone();
        v.sort_by_key(|&(e, t)| (t, e));
        v.into_iter().take(x).map(|(e, _)| e).collect()
    }
}

fn run(
    dataset: &Arc<Dataset>,
    policy: Box<dyn ReplacementPolicy>,
    workload: &Workload,
) -> (String, GlobalStats) {
    let mut gc = GraphCache::new(
        dataset.clone(),
        Box::new(FtvMethod::build(dataset, 2)),
        policy,
        CacheConfig { capacity: 30, window_size: 5, ..CacheConfig::default() },
    )
    .expect("valid config");
    for wq in &workload.queries {
        gc.query(&wq.graph, wq.kind);
    }
    (gc.policy_name().to_owned(), gc.stats())
}

fn main() {
    let dataset = Arc::new(Dataset::new(molecule_dataset(80, 321)));
    let spec = WorkloadSpec {
        n_queries: 300,
        pool_size: 60,
        kind: WorkloadKind::Zipf { skew: 1.0 },
        seed: 3,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);

    println!("racing a custom FIFO policy against bundled HD on {} queries\n", workload.len());
    for policy in
        [Box::new(FifoPolicy::default()) as Box<dyn ReplacementPolicy>, PolicyKind::Hd.make()]
    {
        let (name, stats) = run(&dataset, policy, &workload);
        println!(
            "{name:<14} hit ratio {:>5.1}%  tests/query {:>7.2}  tests saved {:>7}",
            100.0 * stats.hit_ratio(),
            stats.avg_tests_per_query(),
            stats.tests_saved
        );
    }
    println!("\nto plug in your own policy, implement gc_core::ReplacementPolicy");
    println!("(on_insert / on_hit / on_evict / victims) and hand it to GraphCache::new.");
}
