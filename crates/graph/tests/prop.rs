//! Property tests for the graph substrate: bitset algebra laws, builder/IO
//! roundtrips, and WL-fingerprint invariance.

use gc_graph::{BitSet, Graph, GraphBuilder, Label};
use proptest::prelude::*;

fn arb_bitset(universe: usize) -> impl Strategy<Value = BitSet> {
    proptest::collection::vec(any::<bool>(), universe).prop_map(move |bits| {
        BitSet::from_indices(universe, bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i))
    })
}

fn arb_graph(max_n: usize, max_label: u32) -> impl Strategy<Value = Graph> {
    (0..=max_n).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0..=max_label, n);
        let edges = if n >= 2 {
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(2 * n)).boxed()
        } else {
            Just(Vec::new()).boxed()
        };
        (labels, edges).prop_map(|(ls, es)| {
            let mut b = GraphBuilder::new();
            for l in ls {
                b.add_vertex(Label(l));
            }
            for (u, v) in es {
                if u != v {
                    let _ = b.add_edge_dedup(u, v);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bitset_union_intersection_laws(
        a in arb_bitset(100),
        b in arb_bitset(100),
    ) {
        // |A ∪ B| + |A ∩ B| = |A| + |B|
        let mut u = a.clone();
        u.union_with(&b);
        let mut i = a.clone();
        i.intersect_with(&b);
        prop_assert_eq!(u.count() + i.count(), a.count() + b.count());
        // A \ B is disjoint from B and A = (A \ B) ∪ (A ∩ B)
        let mut d = a.clone();
        d.difference_with(&b);
        prop_assert!(d.is_disjoint(&b));
        let mut rebuilt = d.clone();
        rebuilt.union_with(&i);
        prop_assert_eq!(&rebuilt, &a);
        // subset relations
        prop_assert!(i.is_subset(&a));
        prop_assert!(a.is_subset(&u));
        prop_assert_eq!(a.intersection_count(&b), i.count());
    }

    #[test]
    fn bitset_iter_roundtrip(a in arb_bitset(200)) {
        let items = a.to_vec();
        let rebuilt = BitSet::from_indices(200, items.iter().copied());
        prop_assert_eq!(rebuilt, a);
    }

    #[test]
    fn io_roundtrip(graphs in proptest::collection::vec(arb_graph(8, 4), 0..6)) {
        let text = gc_graph::io::dataset_to_string(&graphs);
        let back = gc_graph::io::parse_dataset(&text).unwrap();
        prop_assert_eq!(graphs, back);
    }

    #[test]
    fn adjacency_is_symmetric_and_sorted(g in arb_graph(10, 3)) {
        for v in g.vertices() {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
            for &w in ns {
                prop_assert!(g.neighbors(w).contains(&v), "symmetry");
                prop_assert!(g.has_edge(v, w) && g.has_edge(w, v));
            }
        }
        // handshake lemma
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn summary_matches_graph(g in arb_graph(10, 3)) {
        let s = gc_graph::invariants::GraphSummary::of(&g);
        prop_assert_eq!(s.n, g.vertex_count());
        prop_assert_eq!(s.m, g.edge_count());
        prop_assert_eq!(&s.label_hist, &g.label_histogram());
        prop_assert!(s.degrees_desc.windows(2).all(|w| w[0] >= w[1]));
        // may_embed_into is reflexive.
        prop_assert!(s.may_embed_into(&s));
    }

    #[test]
    fn fingerprint_deterministic(g in arb_graph(8, 3)) {
        prop_assert_eq!(gc_graph::hash::fingerprint(&g), gc_graph::hash::fingerprint(&g.clone()));
    }

    #[test]
    fn dispatched_kernels_match_scalar_reference(
        // Sizes straddle every u64 block edge: empty, 1, 63/64/65,
        // 127/128/129, plus a multi-block tail.
        size_idx in 0usize..9,
        abits in proptest::collection::vec(any::<bool>(), 200),
        bbits in proptest::collection::vec(any::<bool>(), 200),
    ) {
        use gc_graph::simd::{self, scalar};
        let universe = [0usize, 1, 63, 64, 65, 127, 128, 129, 200][size_idx];
        let nblocks = universe.div_ceil(64);
        let pack = |bits: &[bool]| {
            let mut w = vec![0u64; nblocks];
            for i in 0..universe {
                if bits[i] {
                    w[i / 64] |= 1 << (i % 64);
                }
            }
            w
        };
        let (a, b) = (pack(&abits), pack(&bbits));
        for (dispatched, reference) in [
            (simd::and_words as fn(&mut [u64], &[u64]), scalar::and_words as fn(&mut [u64], &[u64])),
            (simd::or_words, scalar::or_words),
            (simd::andnot_words, scalar::andnot_words),
        ] {
            let (mut x, mut y) = (a.clone(), a.clone());
            dispatched(&mut x, &b);
            reference(&mut y, &b);
            prop_assert_eq!(x, y, "universe {}", universe);
        }
        prop_assert_eq!(simd::popcount_words(&a), scalar::popcount_words(&a));
        prop_assert_eq!(simd::and_popcount_words(&a, &b), scalar::and_popcount_words(&a, &b));
        prop_assert_eq!(simd::andnot_popcount_words(&a, &b), scalar::andnot_popcount_words(&a, &b));
        // The full set exercises the all-ones tail words too.
        let full = vec![!0u64; nblocks];
        prop_assert_eq!(simd::popcount_words(&full), scalar::popcount_words(&full));
        prop_assert_eq!(simd::and_popcount_words(&full, &b), scalar::and_popcount_words(&full, &b));
    }

    #[test]
    fn dispatched_posting_kernels_match_scalar_reference(
        cur_raw in proptest::collection::vec(0u32..400, 0..80),
        list_raw in proptest::collection::vec((0u32..400, 1u32..5), 0..80),
        need in 1u32..5,
    ) {
        use gc_graph::simd::{self, scalar};
        let mut cur: Vec<u32> = cur_raw;
        cur.sort_unstable();
        cur.dedup();
        let mut list: Vec<(u32, u32)> = list_raw;
        list.sort_unstable_by_key(|&(id, _)| id);
        list.dedup_by_key(|&mut (id, _)| id);
        // Pair-merge kernel (AVX2 blocks + scalar tail) ≡ linear reference.
        let (mut got, mut want) = (Vec::new(), Vec::new());
        simd::intersect_pairs(&cur, &list, need, &mut got);
        scalar::intersect_pairs(&cur, &list, need, &mut want);
        prop_assert_eq!(&got, &want);
        // Chunked posting intersection ≡ BitSet filtered-iterator form.
        let universe = 400usize;
        let mut via_kernel = BitSet::from_indices(universe, cur.iter().map(|&i| i as usize));
        let mut via_sorted = via_kernel.clone();
        via_kernel.intersect_with_postings(&list, need);
        via_sorted.intersect_with_sorted(
            list.iter().filter(|&&(_, c)| c >= need).map(|&(id, _)| id as usize),
        );
        prop_assert_eq!(&via_kernel, &via_sorted);
        prop_assert_eq!(via_kernel.to_vec(), want.iter().map(|&i| i as usize).collect::<Vec<_>>());
    }
}
