//! The immutable CSR graph type.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a vertex inside one [`Graph`] (dense, `0..n`).
pub type VertexId = u32;

/// Identifier of a graph inside a dataset (dense, `0..dataset.len()`).
pub type GraphId = u32;

/// A vertex label. Labels are small dense integers; datasets map their label
/// alphabet (e.g. atom symbols) onto `0..alphabet_size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// An immutable, undirected, simple, vertex-labelled graph.
///
/// Stored as a CSR adjacency structure with neighbour lists sorted
/// ascendingly, enabling `O(log d)` edge probes and cache-friendly scans. The
/// distinct edge list (with `u < v`) is kept alongside for iteration and
/// serialization.
///
/// `Graph` values are cheap to share (`Arc<Graph>` in the cache) and are never
/// mutated after [`crate::GraphBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    labels: Vec<Label>,
    offsets: Vec<u32>,
    neighbors: Vec<VertexId>,
    edges: Vec<(VertexId, VertexId)>,
}

impl Graph {
    pub(crate) fn from_parts(
        labels: Vec<Label>,
        offsets: Vec<u32>,
        neighbors: Vec<VertexId>,
        edges: Vec<(VertexId, VertexId)>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), labels.len() + 1);
        debug_assert_eq!(neighbors.len(), 2 * edges.len());
        Graph { labels, offsets, neighbors, edges }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Label of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    /// All labels, indexed by vertex id.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Sorted neighbour list of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// `true` iff the undirected edge `(u, v)` exists. `O(log d(u))`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let nu = self.neighbors(u);
        let nv = self.neighbors(v);
        // Probe the smaller adjacency list.
        if nu.len() <= nv.len() {
            nu.binary_search(&v).is_ok()
        } else {
            nv.binary_search(&u).is_ok()
        }
    }

    /// Iterator over vertex ids `0..n`.
    #[inline]
    pub fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.vertex_count() as VertexId
    }

    /// The distinct undirected edges, each as `(u, v)` with `u < v`, sorted.
    #[inline]
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter { inner: self.edges.iter() }
    }

    /// Raw edge slice (each `(u, v)` with `u < v`, sorted lexicographically).
    #[inline]
    pub fn edge_slice(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Histogram of labels: `hist[l]` = number of vertices with label `l`.
    /// Length is `max_label + 1` (or 0 for the empty graph).
    pub fn label_histogram(&self) -> Vec<u32> {
        let max = self.labels.iter().map(|l| l.0).max();
        let mut hist = vec![0u32; max.map_or(0, |m| m as usize + 1)];
        for l in &self.labels {
            hist[l.0 as usize] += 1;
        }
        hist
    }

    /// Largest label value present, if any.
    pub fn max_label(&self) -> Option<Label> {
        self.labels.iter().copied().max()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `2m / n` (0.0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.vertex_count() as f64
        }
    }

    /// `true` iff the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        self.connected_components() <= 1
    }

    /// Number of connected components.
    pub fn connected_components(&self) -> usize {
        let n = self.vertex_count();
        if n == 0 {
            return 0;
        }
        let mut seen = vec![false; n];
        let mut stack = Vec::new();
        let mut components = 0;
        for s in 0..n {
            if seen[s] {
                continue;
            }
            components += 1;
            seen[s] = true;
            stack.push(s as VertexId);
            while let Some(v) = stack.pop() {
                for &w in self.neighbors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
        }
        components
    }

    /// Approximate heap footprint in bytes, used by the cache's memory
    /// accounting (Window/Cache Manager).
    pub fn memory_bytes(&self) -> usize {
        self.labels.len() * std::mem::size_of::<Label>()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
            + self.edges.len() * std::mem::size_of::<(VertexId, VertexId)>()
    }

    /// Sorted multiset of neighbour labels of `v` (allocates; used by
    /// invariants and tests, not by hot paths).
    pub fn neighbor_labels(&self, v: VertexId) -> Vec<Label> {
        let mut ls: Vec<Label> = self.neighbors(v).iter().map(|&w| self.label(w)).collect();
        ls.sort_unstable();
        ls
    }
}

/// Iterator over the distinct undirected edges of a [`Graph`].
#[derive(Debug, Clone)]
pub struct EdgeIter<'a> {
    inner: std::slice::Iter<'a, (VertexId, VertexId)>,
}

impl Iterator for EdgeIter<'_> {
    type Item = (VertexId, VertexId);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for EdgeIter<'_> {}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn path3() -> crate::Graph {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(crate::Label(0));
        let c = b.add_vertex(crate::Label(1));
        let d = b.add_vertex(crate::Label(0));
        b.add_edge(a, c).unwrap();
        b.add_edge(c, d).unwrap();
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = path3();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(0), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.label(1), crate::Label(1));
    }

    #[test]
    fn histogram_and_stats() {
        let g = path3();
        assert_eq!(g.label_histogram(), vec![2, 1]);
        assert_eq!(g.max_label(), Some(crate::Label(1)));
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn connectivity() {
        let g = path3();
        assert!(g.is_connected());
        assert_eq!(g.connected_components(), 1);

        let mut b = GraphBuilder::new();
        b.add_vertex(crate::Label(0));
        b.add_vertex(crate::Label(0));
        let g2 = b.build();
        assert_eq!(g2.connected_components(), 2);
        assert!(!g2.is_connected());
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert!(g.is_empty());
        assert_eq!(g.connected_components(), 0);
        assert!(g.is_connected());
        assert_eq!(g.label_histogram(), Vec::<u32>::new());
        assert_eq!(g.max_label(), None);
    }

    #[test]
    fn edges_iterate_sorted() {
        let mut b = GraphBuilder::new();
        for _ in 0..4 {
            b.add_vertex(crate::Label(0));
        }
        b.add_edge(3, 1).unwrap();
        b.add_edge(2, 0).unwrap();
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 3)]);
    }

    #[test]
    fn neighbor_labels_sorted() {
        let g = path3();
        assert_eq!(g.neighbor_labels(1), vec![crate::Label(0), crate::Label(0)]);
        assert_eq!(g.neighbor_labels(0), vec![crate::Label(1)]);
    }
}
