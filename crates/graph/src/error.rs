//! Error type for graph construction and parsing.

use std::fmt;

/// Errors produced while building or parsing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referenced a vertex id that was never declared.
    UnknownVertex {
        /// The offending vertex id.
        vertex: u32,
        /// Number of vertices declared so far.
        n: u32,
    },
    /// A self-loop `(v, v)` was supplied; the model is simple graphs.
    SelfLoop {
        /// The vertex with the loop.
        vertex: u32,
    },
    /// The same undirected edge was supplied twice.
    DuplicateEdge {
        /// Smaller endpoint.
        u: u32,
        /// Larger endpoint.
        v: u32,
    },
    /// Text-format parse error with a 1-based line number.
    Parse {
        /// 1-based line where the error occurred.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex { vertex, n } => {
                write!(f, "edge references vertex {vertex} but only {n} vertices exist")
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} is not allowed (simple graphs only)")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate undirected edge ({u}, {v})")
            }
            GraphError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}
