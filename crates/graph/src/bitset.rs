//! Fixed-universe bitset used for answer sets and candidate sets.
//!
//! GraphCache stores each cached query's answer set as a bitset over dataset
//! graph ids, and the Candidate Set Pruner is pure bitset algebra
//! (`C = (C_M ∩ ⋂ A(h')) \ S`). A dedicated implementation keeps the hot
//! operations branch-light and avoids an external dependency.

use serde::{Deserialize, Serialize};

const BITS: usize = 64;

/// A fixed-capacity bitset over the universe `0..len`.
///
/// All binary operations require both operands to share the same universe
/// size and panic otherwise: mixing answer sets of different datasets is a
/// logic error we want to catch loudly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    len: usize,
    blocks: Vec<u64>,
}

impl BitSet {
    /// Empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet { len, blocks: vec![0; len.div_ceil(BITS)] }
    }

    /// Full set over the universe `0..len`.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet { len, blocks: vec![!0u64; len.div_ceil(BITS)] };
        s.trim_tail();
        s
    }

    /// Build from an iterator of member indices.
    ///
    /// # Panics
    /// Panics if any index is `>= len`.
    pub fn from_indices(len: usize, iter: impl IntoIterator<Item = usize>) -> Self {
        let mut s = BitSet::new(len);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Universe size.
    #[inline]
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        crate::simd::popcount_words(&self.blocks)
    }

    /// `true` iff no members.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Membership test.
    ///
    /// # Panics
    /// Panics if `i >= universe`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of universe {}", self.len);
        self.blocks[i / BITS] & (1u64 << (i % BITS)) != 0
    }

    /// Insert `i`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of universe {}", self.len);
        let block = &mut self.blocks[i / BITS];
        let mask = 1u64 << (i % BITS);
        let newly = *block & mask == 0;
        *block |= mask;
        newly
    }

    /// Remove `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of universe {}", self.len);
        let block = &mut self.blocks[i / BITS];
        let mask = 1u64 << (i % BITS);
        let was = *block & mask != 0;
        *block &= !mask;
        was
    }

    /// Remove all members.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// `self ∪= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        self.check(other);
        crate::simd::or_words(&mut self.blocks, &other.blocks);
    }

    /// `self ∩= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        self.check(other);
        crate::simd::and_words(&mut self.blocks, &other.blocks);
    }

    /// `self \= other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        self.check(other);
        crate::simd::andnot_words(&mut self.blocks, &other.blocks);
    }

    /// `true` iff `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.check(other);
        self.blocks.iter().zip(&other.blocks).all(|(a, b)| a & !b == 0)
    }

    /// `true` iff the sets share no member.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.check(other);
        self.blocks.iter().zip(&other.blocks).all(|(a, b)| a & b == 0)
    }

    /// `|self ∩ other|` without materialising the intersection.
    pub fn intersect_count(&self, other: &BitSet) -> usize {
        self.check(other);
        crate::simd::and_popcount_words(&self.blocks, &other.blocks)
    }

    /// `|self ∩ other|` — long-form alias of [`BitSet::intersect_count`].
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        self.intersect_count(other)
    }

    /// `|self \ other|` without materialising the difference.
    pub fn difference_count(&self, other: &BitSet) -> usize {
        self.check(other);
        crate::simd::andnot_popcount_words(&self.blocks, &other.blocks)
    }

    /// Iterator over the members of `self ∩ other`, ascending, computed one
    /// word at a time — no temporary set is allocated.
    pub fn intersection_ones<'a>(&'a self, other: &'a BitSet) -> PairOnes<'a> {
        self.check(other);
        PairOnes::new(&self.blocks, &other.blocks, false)
    }

    /// Iterator over the members of `self \ other`, ascending, computed one
    /// word at a time — no temporary set is allocated.
    pub fn difference_ones<'a>(&'a self, other: &'a BitSet) -> PairOnes<'a> {
        self.check(other);
        PairOnes::new(&self.blocks, &other.blocks, true)
    }

    /// Iterator over member indices in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            blocks: &self.blocks,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Iterator over the set bits in ascending order — the hot-path name for
    /// [`BitSet::iter`]. Use this instead of `to_vec()` when the indices are
    /// only walked once: it touches one word at a time and never allocates.
    #[inline]
    pub fn ones(&self) -> Iter<'_> {
        self.iter()
    }

    /// Make this set full over its universe (all bits set, tail trimmed).
    pub fn set_all(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = !0u64);
        self.trim_tail();
    }

    /// `self ∩= members`, where `members` yields indices in **strictly
    /// ascending** order (e.g. a sorted posting list). Works word-parallel:
    /// a 64-bit mask is accumulated per block and applied in one `&=`, and
    /// blocks with no member are zeroed wholesale — no temporary set is
    /// materialized.
    ///
    /// # Panics
    /// Panics if any index is `>= universe`. Debug-asserts ascending order.
    pub fn intersect_with_sorted(&mut self, members: impl IntoIterator<Item = usize>) {
        let mut word = 0usize;
        let mut mask = 0u64;
        let mut prev: Option<usize> = None;
        for i in members {
            assert!(i < self.len, "index {i} out of universe {}", self.len);
            debug_assert!(prev.is_none_or(|p| p < i), "members must be strictly ascending");
            prev = Some(i);
            let w = i / BITS;
            if w != word {
                self.blocks[word] &= mask;
                for b in &mut self.blocks[word + 1..w] {
                    *b = 0;
                }
                word = w;
                mask = 0;
            }
            mask |= 1u64 << (i % BITS);
        }
        if let Some(first) = self.blocks.get_mut(word) {
            *first &= mask;
        }
        let tail = (word + 1).min(self.blocks.len());
        for b in &mut self.blocks[tail..] {
            *b = 0;
        }
    }

    /// `self ∩= { id | (id, c) ∈ postings, c >= need }` — the posting-list
    /// form of [`BitSet::intersect_with_sorted`], for `(id, count)` runs
    /// sorted by strictly ascending id. Runs the dispatched chunked kernel:
    /// the count filter is folded branch-free into the per-word mask and no
    /// temporary set (or filtering iterator) is materialized.
    ///
    /// # Panics
    /// Panics if any id is `>= universe`. Debug-asserts ascending order.
    pub fn intersect_with_postings(&mut self, postings: &[(u32, u32)], need: u32) {
        if let Some(&(last, _)) = postings.last() {
            // Sorted ascending, so the last id bounds them all.
            assert!((last as usize) < self.len, "index {last} out of universe {}", self.len);
        }
        debug_assert!(
            postings.windows(2).all(|w| w[0].0 < w[1].0),
            "postings must be strictly ascending by id"
        );
        crate::simd::intersect_postings(&mut self.blocks, postings, need);
    }

    /// Grow the universe to `new_len`, keeping all members. New indices
    /// `old_len..new_len` start absent. Universes never shrink — a smaller
    /// `new_len` is a logic error (dataset removals tombstone instead of
    /// compacting, precisely so ids stay stable).
    ///
    /// # Panics
    /// Panics if `new_len < universe`.
    pub fn grow(&mut self, new_len: usize) {
        assert!(new_len >= self.len, "bitset universe cannot shrink: {} -> {new_len}", self.len);
        self.len = new_len;
        self.blocks.resize(new_len.div_ceil(BITS), 0);
    }

    /// Collect members into a `Vec<usize>` (ascending).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Approximate heap footprint in bytes (memory accounting).
    pub fn memory_bytes(&self) -> usize {
        self.blocks.len() * std::mem::size_of::<u64>()
    }

    #[inline]
    fn check(&self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset universe mismatch: {} vs {}", self.len, other.len);
    }

    fn trim_tail(&mut self) {
        let rem = self.len % BITS;
        if rem != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// Iterator over the members of a [`BitSet`].
pub struct Iter<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.block_idx * BITS + bit);
            }
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the members of `a ∩ b` or `a \ b` (see
/// [`BitSet::intersection_ones`] / [`BitSet::difference_ones`]): each
/// combined word is computed lazily when reached, so walking the pair costs
/// no allocation and touches each block once.
pub struct PairOnes<'a> {
    a: &'a [u64],
    b: &'a [u64],
    /// `false`: `a & b`; `true`: `a & !b`.
    invert: bool,
    block_idx: usize,
    current: u64,
}

impl<'a> PairOnes<'a> {
    fn new(a: &'a [u64], b: &'a [u64], invert: bool) -> Self {
        let current = match (a.first(), b.first()) {
            (Some(&x), Some(&y)) => x & if invert { !y } else { y },
            _ => 0,
        };
        PairOnes { a, b, invert, block_idx: 0, current }
    }
}

impl Iterator for PairOnes<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.block_idx * BITS + bit);
            }
            self.block_idx += 1;
            if self.block_idx >= self.a.len() {
                return None;
            }
            let y = self.b[self.block_idx];
            self.current = self.a[self.block_idx] & if self.invert { !y } else { y };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert_eq!(s.count(), 3);
        assert!(s.contains(129));
        assert!(!s.contains(128));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.to_vec(), vec![0, 129]);
    }

    #[test]
    fn full_respects_universe() {
        let s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        let e = BitSet::full(0);
        assert_eq!(e.count(), 0);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_indices(100, [1, 2, 3, 50, 99]);
        let b = BitSet::from_indices(100, [2, 3, 4, 99]);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 2, 3, 4, 50, 99]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![2, 3, 99]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1, 50]);

        assert!(i.is_subset(&a));
        assert!(i.is_subset(&b));
        assert!(!a.is_subset(&b));
        assert_eq!(a.intersection_count(&b), 3);
        assert!(!a.is_disjoint(&b));
        assert!(d.is_disjoint(&i));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn universe_mismatch_panics() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(11);
        a.union_with(&b);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn out_of_range_panics() {
        let mut a = BitSet::new(10);
        a.insert(10);
    }

    #[test]
    fn iter_matches_contains() {
        let members = [0usize, 63, 64, 65, 127, 128, 199];
        let s = BitSet::from_indices(200, members);
        assert_eq!(s.to_vec(), members.to_vec());
        for m in members {
            assert!(s.contains(m));
        }
    }

    #[test]
    fn ones_at_word_boundaries() {
        // 63 / 64 / 65 straddle the u64 block edge; 127/128 the next one.
        let members = [63usize, 64, 65, 127, 128];
        let s = BitSet::from_indices(130, members);
        assert_eq!(s.ones().collect::<Vec<_>>(), members.to_vec());
        // A universe ending exactly on a boundary and one bit short of it.
        for len in [64usize, 65, 128] {
            let full = BitSet::full(len);
            assert_eq!(full.ones().count(), len);
            assert_eq!(full.ones().last(), Some(len - 1));
        }
        assert_eq!(BitSet::new(64).ones().next(), None);
        assert_eq!(BitSet::new(0).ones().next(), None);
    }

    #[test]
    fn set_all_matches_full() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let mut s = BitSet::new(len);
            s.set_all();
            assert_eq!(s, BitSet::full(len), "set_all != full for len {len}");
            assert_eq!(s.count(), len);
        }
    }

    #[test]
    fn intersect_with_sorted_matches_intersect_with() {
        let base: Vec<usize> = vec![0, 1, 62, 63, 64, 65, 100, 127, 128, 129];
        let other: Vec<usize> = vec![1, 63, 64, 90, 128];
        let mut a = BitSet::from_indices(130, base.iter().copied());
        let mut b = a.clone();
        a.intersect_with(&BitSet::from_indices(130, other.iter().copied()));
        b.intersect_with_sorted(other.iter().copied());
        assert_eq!(a, b);
        // Empty member list zeroes everything.
        let mut c = BitSet::from_indices(130, base.iter().copied());
        c.intersect_with_sorted(std::iter::empty());
        assert!(c.is_empty());
        // Empty universe tolerates an empty member list.
        let mut e = BitSet::new(0);
        e.intersect_with_sorted(std::iter::empty());
        assert!(e.is_empty());
        // Members only in a late word: earlier words must be zeroed.
        let mut d = BitSet::from_indices(200, [0usize, 64, 128, 199]);
        d.intersect_with_sorted([199usize]);
        assert_eq!(d.to_vec(), vec![199]);
    }

    #[test]
    fn lazy_counts_and_pair_iterators_match_materialized() {
        let a = BitSet::from_indices(200, [0usize, 1, 63, 64, 65, 127, 128, 129, 199]);
        let b = BitSet::from_indices(200, [1usize, 64, 90, 128, 199]);
        let mut inter = a.clone();
        inter.intersect_with(&b);
        let mut diff = a.clone();
        diff.difference_with(&b);
        assert_eq!(a.intersect_count(&b), inter.count());
        assert_eq!(a.intersection_count(&b), inter.count());
        assert_eq!(a.difference_count(&b), diff.count());
        assert_eq!(a.intersection_ones(&b).collect::<Vec<_>>(), inter.to_vec());
        assert_eq!(a.difference_ones(&b).collect::<Vec<_>>(), diff.to_vec());
        // Empty-universe pairs terminate immediately.
        let e = BitSet::new(0);
        assert_eq!(e.intersection_ones(&e).next(), None);
        assert_eq!(e.difference_ones(&e).next(), None);
    }

    #[test]
    fn intersect_with_postings_matches_filtered_sorted() {
        let base: Vec<usize> = vec![0, 1, 62, 63, 64, 65, 100, 127, 128, 129];
        let postings: Vec<(u32, u32)> = vec![(1, 2), (63, 1), (64, 3), (90, 9), (128, 2)];
        for need in [1u32, 2, 3, 4] {
            let mut a = BitSet::from_indices(130, base.iter().copied());
            let mut b = a.clone();
            a.intersect_with_sorted(
                postings.iter().filter(|&&(_, c)| c >= need).map(|&(id, _)| id as usize),
            );
            b.intersect_with_postings(&postings, need);
            assert_eq!(a, b, "need {need}");
        }
        // Empty posting list clears; empty universe tolerates empty list.
        let mut c = BitSet::from_indices(130, base.iter().copied());
        c.intersect_with_postings(&[], 1);
        assert!(c.is_empty());
        let mut e = BitSet::new(0);
        e.intersect_with_postings(&[], 1);
        assert!(e.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn intersect_with_postings_rejects_out_of_universe() {
        let mut a = BitSet::new(64);
        a.intersect_with_postings(&[(10, 1), (64, 1)], 1);
    }

    #[test]
    fn grow_keeps_members_and_extends_universe() {
        let mut s = BitSet::from_indices(10, [0, 9]);
        s.grow(10); // no-op growth is allowed
        s.grow(129);
        assert_eq!(s.universe(), 129);
        assert_eq!(s.to_vec(), vec![0, 9]);
        assert!(!s.contains(10));
        assert!(s.insert(128));
        assert_eq!(s.to_vec(), vec![0, 9, 128]);
        // Grown sets interoperate with fresh sets of the new universe.
        let mut f = BitSet::full(129);
        f.intersect_with(&s);
        assert_eq!(f.to_vec(), vec![0, 9, 128]);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_rejects_shrinking() {
        let mut s = BitSet::new(10);
        s.grow(9);
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::from_indices(20, [5, 6]);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
    }
}
