//! Text I/O in the classic `t/v/e` transaction-graph format.
//!
//! This is the format the AIDS/NCI graph-query datasets ship in and the one
//! gSpan-family tooling reads:
//!
//! ```text
//! t # 0
//! v 0 2
//! v 1 0
//! e 0 1
//! t # 1
//! ...
//! ```
//!
//! * `t # <id>` starts a new graph (the id is informational; graphs are
//!   renumbered densely on load);
//! * `v <vid> <label>` declares a vertex — vids must be dense and in order;
//! * `e <u> <v>` declares an undirected edge;
//! * blank lines and `#`-comment lines are skipped.

use crate::{Graph, GraphBuilder, GraphError, Label, Result};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parse a whole dataset from a reader.
pub fn read_dataset<R: Read>(reader: R) -> Result<Vec<Graph>> {
    let reader = BufReader::new(reader);
    let mut graphs = Vec::new();
    let mut current: Option<GraphBuilder> = None;

    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| GraphError::Parse { line: lineno, msg: e.to_string() })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("t") => {
                if let Some(b) = current.take() {
                    graphs.push(b.build());
                }
                current = Some(GraphBuilder::new());
            }
            Some("v") => {
                let b = current.as_mut().ok_or_else(|| GraphError::Parse {
                    line: lineno,
                    msg: "vertex before any 't' line".into(),
                })?;
                let vid: u32 = parse_field(parts.next(), lineno, "vertex id")?;
                let label: u32 = parse_field(parts.next(), lineno, "vertex label")?;
                if vid as usize != b.vertex_count() {
                    return Err(GraphError::Parse {
                        line: lineno,
                        msg: format!(
                            "vertex ids must be dense and in order (expected {}, got {vid})",
                            b.vertex_count()
                        ),
                    });
                }
                b.add_vertex(Label(label));
            }
            Some("e") => {
                let b = current.as_mut().ok_or_else(|| GraphError::Parse {
                    line: lineno,
                    msg: "edge before any 't' line".into(),
                })?;
                let u: u32 = parse_field(parts.next(), lineno, "edge endpoint")?;
                let v: u32 = parse_field(parts.next(), lineno, "edge endpoint")?;
                // Some dataset dumps carry an edge label as a third field; the
                // model ignores it (vertex-labelled graphs), per the paper.
                b.add_edge(u, v)
                    .map_err(|e| GraphError::Parse { line: lineno, msg: e.to_string() })?;
            }
            Some(tok) => {
                return Err(GraphError::Parse {
                    line: lineno,
                    msg: format!("unknown record type {tok:?}"),
                })
            }
            None => unreachable!("empty lines are filtered above"),
        }
    }
    if let Some(b) = current.take() {
        graphs.push(b.build());
    }
    Ok(graphs)
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, line: usize, what: &str) -> Result<T> {
    let raw = field.ok_or_else(|| GraphError::Parse { line, msg: format!("missing {what}") })?;
    raw.parse().map_err(|_| GraphError::Parse { line, msg: format!("invalid {what}: {raw:?}") })
}

/// Parse a dataset from an in-memory string.
pub fn parse_dataset(text: &str) -> Result<Vec<Graph>> {
    read_dataset(text.as_bytes())
}

/// Load a dataset from a file path.
pub fn load_dataset(path: impl AsRef<Path>) -> Result<Vec<Graph>> {
    let file = std::fs::File::open(path.as_ref()).map_err(|e| GraphError::Parse {
        line: 0,
        msg: format!("cannot open {}: {e}", path.as_ref().display()),
    })?;
    read_dataset(file)
}

/// Write a dataset in `t/v/e` format.
pub fn write_dataset<W: Write>(mut w: W, graphs: &[Graph]) -> std::io::Result<()> {
    for (i, g) in graphs.iter().enumerate() {
        writeln!(w, "t # {i}")?;
        for v in g.vertices() {
            writeln!(w, "v {v} {}", g.label(v).0)?;
        }
        for (u, v) in g.edges() {
            writeln!(w, "e {u} {v}")?;
        }
    }
    Ok(())
}

/// Serialize a dataset to a string.
pub fn dataset_to_string(graphs: &[Graph]) -> String {
    let mut buf = Vec::new();
    write_dataset(&mut buf, graphs).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("format writes only ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
t # 0
v 0 2
v 1 0
v 2 0
e 0 1
e 1 2

t # 1
v 0 1
";

    #[test]
    fn parse_two_graphs() {
        let gs = parse_dataset(SAMPLE).unwrap();
        assert_eq!(gs.len(), 2);
        assert_eq!(gs[0].vertex_count(), 3);
        assert_eq!(gs[0].edge_count(), 2);
        assert_eq!(gs[0].label(0), Label(2));
        assert_eq!(gs[1].vertex_count(), 1);
        assert_eq!(gs[1].edge_count(), 0);
    }

    #[test]
    fn roundtrip() {
        let gs = parse_dataset(SAMPLE).unwrap();
        let text = dataset_to_string(&gs);
        let gs2 = parse_dataset(&text).unwrap();
        assert_eq!(gs, gs2);
    }

    #[test]
    fn error_on_sparse_vertex_ids() {
        let err = parse_dataset("t # 0\nv 1 0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn error_on_edge_before_t() {
        let err = parse_dataset("e 0 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn error_on_unknown_record() {
        let err = parse_dataset("t # 0\nx 1 2\n").unwrap_err();
        assert!(err.to_string().contains("unknown record type"));
    }

    #[test]
    fn error_on_bad_numbers() {
        let err = parse_dataset("t # 0\nv 0 banana\n").unwrap_err();
        assert!(err.to_string().contains("invalid vertex label"));
        let err = parse_dataset("t # 0\nv 0 1\ne 0\n").unwrap_err();
        assert!(err.to_string().contains("missing edge endpoint"));
    }

    #[test]
    fn duplicate_edge_reported_with_line() {
        let err = parse_dataset("t # 0\nv 0 0\nv 1 0\ne 0 1\ne 1 0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 5, .. }), "{err}");
    }

    #[test]
    fn empty_input_is_empty_dataset() {
        assert!(parse_dataset("").unwrap().is_empty());
        assert!(parse_dataset("\n# only comments\n").unwrap().is_empty());
    }
}
