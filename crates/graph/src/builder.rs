//! Mutable builder producing immutable [`Graph`]s.

use crate::{Graph, GraphError, Label, Result, VertexId};

/// Incremental builder for [`Graph`].
///
/// Vertices receive dense ids in insertion order; edges are validated
/// (endpoints must exist, no self-loops, no duplicates) and normalised to
/// `u < v`. [`GraphBuilder::build`] sorts adjacency lists and freezes the
/// graph.
///
/// ```
/// use gc_graph::{GraphBuilder, Label};
/// let mut b = GraphBuilder::new();
/// let u = b.add_vertex(Label(0));
/// let v = b.add_vertex(Label(1));
/// b.add_edge(u, v).unwrap();
/// let g = b.build();
/// assert_eq!(g.vertex_count(), 2);
/// assert!(g.has_edge(u, v));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    labels: Vec<Label>,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder with reserved capacity.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        GraphBuilder { labels: Vec::with_capacity(vertices), edges: Vec::with_capacity(edges) }
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add a vertex with the given label; returns its dense id.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = self.labels.len() as VertexId;
        self.labels.push(label);
        id
    }

    /// Add an undirected edge.
    ///
    /// Errors on unknown endpoints, self-loops, and duplicate edges.
    /// Duplicate detection is `O(edges)` in the worst case but the builder is
    /// only used at load/generation time, never on a query hot path.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        let n = self.labels.len() as u32;
        if u >= n {
            return Err(GraphError::UnknownVertex { vertex: u, n });
        }
        if v >= n {
            return Err(GraphError::UnknownVertex { vertex: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        let e = (u.min(v), u.max(v));
        if self.edges.contains(&e) {
            return Err(GraphError::DuplicateEdge { u: e.0, v: e.1 });
        }
        self.edges.push(e);
        Ok(())
    }

    /// Add an edge, silently ignoring duplicates (still errors on unknown
    /// endpoints and self-loops). Convenient for random generators.
    pub fn add_edge_dedup(&mut self, u: VertexId, v: VertexId) -> Result<bool> {
        match self.add_edge(u, v) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// `true` iff the (normalised) edge is already present.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let e = (u.min(v), u.max(v));
        self.edges.contains(&e)
    }

    /// Freeze into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.labels.len();
        let mut edges = self.edges;
        edges.sort_unstable();

        let mut degree = vec![0u32; n];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![0 as VertexId; 2 * edges.len()];
        for &(u, v) in &edges {
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            neighbors[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        Graph::from_parts(self.labels, offsets, neighbors, edges)
    }
}

/// Build a graph from explicit parts; convenient in tests and generators.
///
/// `edges` may be in any order/orientation; duplicates are an error.
pub fn graph_from_parts(labels: &[Label], edges: &[(VertexId, VertexId)]) -> Result<Graph> {
    let mut b = GraphBuilder::with_capacity(labels.len(), edges.len());
    for &l in labels {
        b.add_vertex(l);
    }
    for &(u, v) in edges {
        b.add_edge(u, v)?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_edges() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(Label(0));
        let v = b.add_vertex(Label(0));
        assert_eq!(b.add_edge(u, 7), Err(GraphError::UnknownVertex { vertex: 7, n: 2 }));
        assert_eq!(b.add_edge(u, u), Err(GraphError::SelfLoop { vertex: 0 }));
        b.add_edge(u, v).unwrap();
        assert_eq!(b.add_edge(v, u), Err(GraphError::DuplicateEdge { u: 0, v: 1 }));
    }

    #[test]
    fn dedup_variant() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(Label(0));
        let v = b.add_vertex(Label(0));
        assert!(b.add_edge_dedup(u, v).unwrap());
        assert!(!b.add_edge_dedup(v, u).unwrap());
        assert!(b.add_edge_dedup(u, u).is_err());
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn adjacency_is_sorted() {
        let mut b = GraphBuilder::new();
        for _ in 0..5 {
            b.add_vertex(Label(0));
        }
        for &(u, v) in &[(0u32, 4u32), (0, 2), (0, 1), (0, 3)] {
            b.add_edge(u, v).unwrap();
        }
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(g.degree(0), 4);
    }

    #[test]
    fn from_parts_helper() {
        let g = graph_from_parts(&[Label(0), Label(1), Label(2)], &[(2, 0), (1, 2)]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(1, 2));
        assert!(graph_from_parts(&[Label(0)], &[(0, 0)]).is_err());
    }
}
