//! Weisfeiler–Lehman fingerprints and hashing utilities.
//!
//! The cache needs a fast way to detect *exact-match* hits: two isomorphic
//! query graphs must map to the same bucket. We use the 1-dimensional
//! Weisfeiler–Lehman colour refinement: vertex colours start from labels and
//! are iteratively refined with the multiset of neighbour colours. The sorted
//! multiset of final colours (plus `n` and `m`) hashes into a 64-bit
//! fingerprint.
//!
//! WL fingerprints are *isomorphism-invariant* (isomorphic graphs always get
//! equal fingerprints) but not complete: rare non-isomorphic graphs can
//! collide, so exact-match lookups confirm with a proper isomorphism test
//! (see `gc-iso`). This mirrors the canonical-labelling + verification split
//! the papers describe.

use crate::{Graph, VertexId};

/// Number of WL refinement rounds. Three rounds distinguish all graphs that
/// show up in practice at query sizes (≤ a few dozen vertices); collisions
/// are caught downstream by the isomorphism check.
pub const WL_ROUNDS: usize = 3;

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Mix two 64-bit values, order-sensitively.
///
/// Deliberately non-commutative and non-cancelling: `a` enters through a
/// multiplication, `b` through `splitmix64`, so `mix(x, y) != mix(y, x)` in
/// general and `mix(x, x)` does not collapse to a constant (a plain
/// `S(a ^ S(b))` construction does both, which made WL refinement degenerate).
#[inline]
pub fn mix(a: u64, b: u64) -> u64 {
    splitmix64(a.wrapping_mul(0xA24BAED4963EE407).wrapping_add(splitmix64(b)))
}

/// Hash an ordered sequence of u64 values.
pub fn hash_seq(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut acc = 0x243F6A8885A308D3u64; // pi digits; arbitrary fixed seed
    for v in values {
        acc = mix(acc, v);
    }
    acc
}

/// One WL refinement round: `colors[v] <- H(colors[v], sorted neighbour colors)`.
fn wl_round(g: &Graph, colors: &[u64], next: &mut Vec<u64>, scratch: &mut Vec<u64>) {
    next.clear();
    for v in g.vertices() {
        scratch.clear();
        scratch.extend(g.neighbors(v).iter().map(|&w| colors[w as usize]));
        scratch.sort_unstable();
        let mut acc = splitmix64(colors[v as usize]);
        for &c in scratch.iter() {
            acc = mix(acc, c);
        }
        next.push(acc);
    }
}

/// Final WL colours after [`WL_ROUNDS`] rounds, indexed by vertex.
pub fn wl_colors(g: &Graph) -> Vec<u64> {
    wl_colors_rounds(g, WL_ROUNDS)
}

/// WL colours after a custom number of rounds.
pub fn wl_colors_rounds(g: &Graph, rounds: usize) -> Vec<u64> {
    let mut colors: Vec<u64> =
        g.vertices().map(|v| splitmix64(g.label(v).0 as u64 ^ 0xC0FFEE)).collect();
    let mut next = Vec::with_capacity(colors.len());
    let mut scratch = Vec::new();
    for _ in 0..rounds {
        wl_round(g, &colors, &mut next, &mut scratch);
        std::mem::swap(&mut colors, &mut next);
    }
    colors
}

/// Isomorphism-invariant 64-bit fingerprint of a graph.
///
/// Equal for isomorphic graphs; collisions between non-isomorphic graphs are
/// possible (use an isomorphism test to confirm).
pub fn fingerprint(g: &Graph) -> u64 {
    let mut colors = wl_colors(g);
    colors.sort_unstable();
    let header = mix(g.vertex_count() as u64, g.edge_count() as u64);
    mix(header, hash_seq(colors))
}

/// A vertex ordering by (WL colour, degree, id) — deterministic across
/// isomorphic presentations *up to colour ties*; used to seed search orders.
pub fn wl_vertex_order(g: &Graph) -> Vec<VertexId> {
    let colors = wl_colors(g);
    let mut order: Vec<VertexId> = g.vertices().collect();
    order.sort_by_key(|&v| (colors[v as usize], std::cmp::Reverse(g.degree(v)), v));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_parts;
    use crate::Label;

    fn relabel(labels: &[u32], edges: &[(u32, u32)], perm: &[u32]) -> Graph {
        // Apply vertex permutation: vertex i becomes perm[i].
        let n = labels.len();
        let mut new_labels = vec![Label(0); n];
        for (i, &l) in labels.iter().enumerate() {
            new_labels[perm[i] as usize] = Label(l);
        }
        let new_edges: Vec<(u32, u32)> =
            edges.iter().map(|&(u, v)| (perm[u as usize], perm[v as usize])).collect();
        graph_from_parts(&new_labels, &new_edges).unwrap()
    }

    #[test]
    fn isomorphic_graphs_same_fingerprint() {
        let labels = [0u32, 1, 0, 2, 1];
        let edges = [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)];
        let g1 = relabel(&labels, &edges, &[0, 1, 2, 3, 4]);
        let g2 = relabel(&labels, &edges, &[4, 2, 0, 1, 3]);
        let g3 = relabel(&labels, &edges, &[1, 3, 4, 0, 2]);
        assert_eq!(fingerprint(&g1), fingerprint(&g2));
        assert_eq!(fingerprint(&g1), fingerprint(&g3));
    }

    #[test]
    fn different_labels_different_fingerprint() {
        let edges = [(0u32, 1u32)];
        let g1 = graph_from_parts(&[Label(0), Label(1)], &edges).unwrap();
        let g2 = graph_from_parts(&[Label(0), Label(2)], &edges).unwrap();
        assert_ne!(fingerprint(&g1), fingerprint(&g2));
    }

    #[test]
    fn different_structure_different_fingerprint() {
        // Path P4 vs star S3, same labels and same degree *sum*.
        let p4 = graph_from_parts(&[Label(0); 4], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let s3 = graph_from_parts(&[Label(0); 4], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_ne!(fingerprint(&p4), fingerprint(&s3));
    }

    #[test]
    fn empty_and_singleton() {
        let e = graph_from_parts(&[], &[]).unwrap();
        let s = graph_from_parts(&[Label(7)], &[]).unwrap();
        assert_ne!(fingerprint(&e), fingerprint(&s));
    }

    #[test]
    fn wl_order_is_permutation() {
        let g =
            graph_from_parts(&[Label(0), Label(1), Label(0), Label(1)], &[(0, 1), (1, 2), (2, 3)])
                .unwrap();
        let mut order = wl_vertex_order(&g);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }
}
