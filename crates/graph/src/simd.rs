//! Runtime-dispatched word/SIMD kernels for the hot set-algebra loops.
//!
//! Every filter, prune, and probe stage bottoms out in a handful of flat
//! loops: bitwise AND/OR/ANDNOT over `u64` blocks, population counts, and
//! sorted posting-list intersection. This module compiles each of them
//! three ways and picks the widest one the running CPU supports, **once**,
//! via [`std::arch::is_x86_feature_detected!`]:
//!
//! * `"avx2"` — 256-bit vectors + hardware `POPCNT` (the AND/OR/count
//!   loops autovectorize to `vpand`/`vpor`/nibble-LUT popcount; the
//!   posting merge uses explicit AVX2 intrinsics);
//! * `"sse2"` — baseline x86-64 vectors with hardware `POPCNT` (the big
//!   win over portable code, whose `count_ones` lowers to a ~12-op SWAR
//!   sequence without the feature);
//! * `"scalar"` — the portable reference in [`scalar`], always compiled,
//!   the only tier off x86-64.
//!
//! The dispatched entry points are drop-in equal to their [`scalar`]
//! counterparts; the equivalence is property-tested across word-boundary
//! sizes in `tests/prop.rs` and raced in `gc-bench/benches/bitset_kernels.rs`.
//! [`kernel_name`] exposes the chosen tier so deployments can observe
//! which code path is live (surfaced as `GlobalStats::kernel_dispatch`).
//!
//! This is the one module in the workspace allowed to use `unsafe`: calling
//! a `#[target_feature]` function from a non-feature context, and the raw
//! vector loads of the posting merge. Everything else stays
//! `#![deny(unsafe_code)]`.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

const UNKNOWN: u8 = 0;
const SCALAR: u8 = 1;
const SSE2: u8 = 2;
const AVX2: u8 = 3;

/// Tier chosen at first use; `UNKNOWN` until then. Relaxed is enough: the
/// stored value is a pure function of the CPU, so racing initializers
/// agree.
static LEVEL: AtomicU8 = AtomicU8::new(UNKNOWN);

#[inline]
fn level() -> u8 {
    match LEVEL.load(Ordering::Relaxed) {
        UNKNOWN => detect(),
        l => l,
    }
}

#[cold]
fn detect() -> u8 {
    #[cfg(target_arch = "x86_64")]
    let l = if std::arch::is_x86_feature_detected!("avx2")
        && std::arch::is_x86_feature_detected!("popcnt")
    {
        AVX2
    } else if std::arch::is_x86_feature_detected!("popcnt") {
        SSE2
    } else {
        SCALAR
    };
    #[cfg(not(target_arch = "x86_64"))]
    let l = SCALAR;
    LEVEL.store(l, Ordering::Relaxed);
    l
}

/// Name of the dispatched kernel tier: `"avx2"`, `"sse2"`, or `"scalar"`.
///
/// Detection runs on first call and is cached for the process lifetime.
pub fn kernel_name() -> &'static str {
    match level() {
        AVX2 => "avx2",
        SSE2 => "sse2",
        _ => "scalar",
    }
}

/// Portable reference implementations — always compiled, dispatched to on
/// machines without the detected features, and the ground truth the
/// dispatched kernels are property-tested against.
///
/// Bodies are `#[inline(always)]` so the `#[target_feature]` tiers in this
/// module can inline them and have LLVM recompile the very same loops with
/// wider instructions — one source of truth for the semantics.
pub mod scalar {
    /// `a[i] &= b[i]` over the common prefix.
    #[inline(always)]
    pub fn and_words(a: &mut [u64], b: &[u64]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x &= *y;
        }
    }

    /// `a[i] |= b[i]` over the common prefix.
    #[inline(always)]
    pub fn or_words(a: &mut [u64], b: &[u64]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x |= *y;
        }
    }

    /// `a[i] &= !b[i]` over the common prefix.
    #[inline(always)]
    pub fn andnot_words(a: &mut [u64], b: &[u64]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x &= !*y;
        }
    }

    /// Total set bits in `a`.
    #[inline(always)]
    pub fn popcount_words(a: &[u64]) -> usize {
        a.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Total set bits of `a & b` without materializing it.
    #[inline(always)]
    pub fn and_popcount_words(a: &[u64], b: &[u64]) -> usize {
        a.iter().zip(b).map(|(x, y)| (*x & *y).count_ones() as usize).sum()
    }

    /// Total set bits of `a & !b` without materializing it.
    #[inline(always)]
    pub fn andnot_popcount_words(a: &[u64], b: &[u64]) -> usize {
        a.iter().zip(b).map(|(x, y)| (*x & !*y).count_ones() as usize).sum()
    }

    /// `blocks ∩= { id | (id, c) ∈ postings, c >= need }`, with `postings`
    /// sorted by strictly ascending id, `id / 64 < blocks.len()` for every
    /// posting. One 64-bit mask is accumulated per block (the count filter
    /// folded in branch-free) and applied in a single `&=`; blocks with no
    /// posting are zeroed wholesale.
    #[inline(always)]
    pub fn intersect_postings(blocks: &mut [u64], postings: &[(u32, u32)], need: u32) {
        let mut word = 0usize;
        let mut mask = 0u64;
        for &(id, c) in postings {
            let i = id as usize;
            let w = i >> 6;
            if w != word {
                blocks[word] &= mask;
                for b in &mut blocks[word + 1..w] {
                    *b = 0;
                }
                word = w;
                mask = 0;
            }
            mask |= u64::from(c >= need) << (i & 63);
        }
        if let Some(first) = blocks.get_mut(word) {
            *first &= mask;
        }
        let tail = (word + 1).min(blocks.len());
        for b in &mut blocks[tail..] {
            *b = 0;
        }
    }

    /// Linear posting-pair intersection: push each `e ∈ cur` (ascending,
    /// unique) that has a pair `(e, c)` in `list` (ascending by id) with
    /// `c >= need`. The reference semantics for
    /// [`intersect_pairs`](super::intersect_pairs) and for
    /// `gc_index::merge::intersect_two_pointer`.
    #[inline(always)]
    pub fn intersect_pairs(cur: &[u32], list: &[(u32, u32)], need: u32, out: &mut Vec<u32>) {
        out.clear();
        let (mut a, mut b) = (0usize, 0usize);
        while a < cur.len() && b < list.len() {
            let (e, c) = list[b];
            match cur[a].cmp(&e) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    if c >= need {
                        out.push(e);
                    }
                    a += 1;
                    b += 1;
                }
            }
        }
    }
}

// The AVX2 posting merge loads `(u32, u32)` pairs as raw 256-bit vectors;
// that is only sound while a pair is exactly two packed little words.
#[cfg(target_arch = "x86_64")]
const _: () = {
    assert!(std::mem::size_of::<(u32, u32)>() == 8);
    assert!(std::mem::offset_of!((u32, u32), 0) == 0);
    assert!(std::mem::offset_of!((u32, u32), 1) == 4);
};

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::scalar;
    use std::arch::x86_64::*;

    // The word kernels reuse the scalar bodies verbatim; `#[target_feature]`
    // makes LLVM recompile them with POPCNT / 256-bit vectors enabled.

    #[target_feature(enable = "popcnt")]
    pub fn and_words_popcnt(a: &mut [u64], b: &[u64]) {
        scalar::and_words(a, b)
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub fn and_words_avx2(a: &mut [u64], b: &[u64]) {
        scalar::and_words(a, b)
    }

    #[target_feature(enable = "popcnt")]
    pub fn or_words_popcnt(a: &mut [u64], b: &[u64]) {
        scalar::or_words(a, b)
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub fn or_words_avx2(a: &mut [u64], b: &[u64]) {
        scalar::or_words(a, b)
    }

    #[target_feature(enable = "popcnt")]
    pub fn andnot_words_popcnt(a: &mut [u64], b: &[u64]) {
        scalar::andnot_words(a, b)
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub fn andnot_words_avx2(a: &mut [u64], b: &[u64]) {
        scalar::andnot_words(a, b)
    }

    #[target_feature(enable = "popcnt")]
    pub fn popcount_words_popcnt(a: &[u64]) -> usize {
        scalar::popcount_words(a)
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub fn popcount_words_avx2(a: &[u64]) -> usize {
        scalar::popcount_words(a)
    }

    #[target_feature(enable = "popcnt")]
    pub fn and_popcount_words_popcnt(a: &[u64], b: &[u64]) -> usize {
        scalar::and_popcount_words(a, b)
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub fn and_popcount_words_avx2(a: &[u64], b: &[u64]) -> usize {
        scalar::and_popcount_words(a, b)
    }

    #[target_feature(enable = "popcnt")]
    pub fn andnot_popcount_words_popcnt(a: &[u64], b: &[u64]) -> usize {
        scalar::andnot_popcount_words(a, b)
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub fn andnot_popcount_words_avx2(a: &[u64], b: &[u64]) -> usize {
        scalar::andnot_popcount_words(a, b)
    }

    #[target_feature(enable = "popcnt")]
    pub fn intersect_postings_popcnt(blocks: &mut [u64], postings: &[(u32, u32)], need: u32) {
        scalar::intersect_postings(blocks, postings, need)
    }

    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub fn intersect_postings_avx2(blocks: &mut [u64], postings: &[(u32, u32)], need: u32) {
        scalar::intersect_postings(blocks, postings, need)
    }

    /// AVX2 posting-pair intersection: semantics of
    /// [`scalar::intersect_pairs`]. Each candidate id is broadcast and
    /// compared against 8 posting ids at once — two 256-bit loads over 8
    /// `(id, count)` pairs, even (id) lanes packed into one vector — with a
    /// monotone block cursor, so a whole block of misses costs one compare
    /// instead of eight. The sub-8-pair tail runs scalar.
    #[target_feature(enable = "avx2")]
    pub fn intersect_pairs_avx2(cur: &[u32], list: &[(u32, u32)], need: u32, out: &mut Vec<u32>) {
        out.clear();
        let even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
        let mut b = 0usize;
        for &e in cur {
            // Skip whole blocks strictly below `e` (cursor is monotone, so
            // this is linear in `list.len() / 8` across the entire call).
            while b + 8 <= list.len() && list[b + 7].0 < e {
                b += 8;
            }
            if b + 8 <= list.len() {
                // SAFETY: `b + 8 <= list.len()` and a pair is exactly 8
                // bytes (const-asserted above), so the 64 bytes starting at
                // `list[b]` are in bounds; the loads are unaligned.
                let (v0, v1) = unsafe {
                    let p = list.as_ptr().add(b).cast::<__m256i>();
                    (_mm256_loadu_si256(p), _mm256_loadu_si256(p.add(1)))
                };
                let ids0 = _mm256_permutevar8x32_epi32(v0, even);
                let ids1 = _mm256_permutevar8x32_epi32(v1, even);
                let ids = _mm256_inserti128_si256(ids0, _mm256_castsi256_si128(ids1), 1);
                let eq = _mm256_cmpeq_epi32(ids, _mm256_set1_epi32(e as i32));
                let hit = _mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32;
                if hit != 0 {
                    let lane = hit.trailing_zeros() as usize;
                    if list[b + lane].1 >= need {
                        out.push(e);
                    }
                    b += lane + 1;
                }
                // No lane matched with the block's last id >= e: `e` is
                // absent; the cursor stays for the next candidate.
            } else {
                while b < list.len() && list[b].0 < e {
                    b += 1;
                }
                if b < list.len() && list[b].0 == e {
                    if list[b].1 >= need {
                        out.push(e);
                    }
                    b += 1;
                }
            }
        }
    }
}

macro_rules! dispatched {
    ($(#[$doc:meta])* fn $name:ident / $avx2:ident / $popcnt:ident
        ( $($arg:ident : $ty:ty),* ) $(-> $ret:ty)?) => {
        $(#[$doc])*
        #[inline]
        pub fn $name($($arg: $ty),*) $(-> $ret)? {
            #[cfg(target_arch = "x86_64")]
            match level() {
                // SAFETY: `level()` only reports a tier after
                // `is_x86_feature_detected!` confirmed its features on this
                // CPU at runtime.
                AVX2 => return unsafe { x86::$avx2($($arg),*) },
                SSE2 => return unsafe { x86::$popcnt($($arg),*) },
                _ => {}
            }
            scalar::$name($($arg),*)
        }
    };
}

dispatched! {
    /// Dispatched [`scalar::and_words`]: `a[i] &= b[i]`.
    fn and_words / and_words_avx2 / and_words_popcnt (a: &mut [u64], b: &[u64])
}

dispatched! {
    /// Dispatched [`scalar::or_words`]: `a[i] |= b[i]`.
    fn or_words / or_words_avx2 / or_words_popcnt (a: &mut [u64], b: &[u64])
}

dispatched! {
    /// Dispatched [`scalar::andnot_words`]: `a[i] &= !b[i]`.
    fn andnot_words / andnot_words_avx2 / andnot_words_popcnt (a: &mut [u64], b: &[u64])
}

dispatched! {
    /// Dispatched [`scalar::popcount_words`]: total set bits.
    fn popcount_words / popcount_words_avx2 / popcount_words_popcnt (a: &[u64]) -> usize
}

dispatched! {
    /// Dispatched [`scalar::and_popcount_words`]: `|a ∩ b|` without
    /// materializing the intersection.
    fn and_popcount_words / and_popcount_words_avx2 / and_popcount_words_popcnt
        (a: &[u64], b: &[u64]) -> usize
}

dispatched! {
    /// Dispatched [`scalar::andnot_popcount_words`]: `|a \ b|` without
    /// materializing the difference.
    fn andnot_popcount_words / andnot_popcount_words_avx2 / andnot_popcount_words_popcnt
        (a: &[u64], b: &[u64]) -> usize
}

dispatched! {
    /// Dispatched [`scalar::intersect_postings`]: chunked sorted-posting
    /// intersection straight into bitset blocks.
    fn intersect_postings / intersect_postings_avx2 / intersect_postings_popcnt
        (blocks: &mut [u64], postings: &[(u32, u32)], need: u32)
}

/// How much longer than `cur` the posting list must be before the AVX2
/// block-scan beats the linear two-pointer merge. The vector path pays a
/// broadcast-compare per `cur` element, so it only wins when block
/// skipping lets it hop most of the list (measured crossover ≈ 8× on
/// Zen-class cores; below it the scalar walk is up to 4× faster).
const PAIR_SCAN_MIN_RATIO: usize = 8;

/// Where exponential-search galloping overtakes the block-scan again: the
/// scan is linear in `list` (one 8-pair block per step), so once the list
/// is hundreds of times the candidate run, logarithmic skipping wins.
/// Measured crossover sits between 128× and 512×.
const PAIR_SCAN_MAX_RATIO: usize = 256;

/// Whether the AVX2 pair block-scan is live on this machine *and* expected
/// to win on these lengths — the window between the two-pointer crossover
/// ([`PAIR_SCAN_MIN_RATIO`]) and the galloping crossover
/// ([`PAIR_SCAN_MAX_RATIO`]). Adaptive merges use this to route the
/// middle-skew shapes here instead of galloping.
#[inline]
pub fn pair_scan_wins(cur_len: usize, list_len: usize) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        level() == AVX2
            && list_len >= PAIR_SCAN_MIN_RATIO * cur_len.max(1)
            && list_len < PAIR_SCAN_MAX_RATIO * cur_len.max(1)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (cur_len, list_len);
        false
    }
}

/// Dispatched [`scalar::intersect_pairs`]: SIMD posting-pair block-scan on
/// AVX2 machines when the list is the much longer side (see
/// [`PAIR_SCAN_MIN_RATIO`]), the portable linear merge elsewhere.
#[inline]
pub fn intersect_pairs(cur: &[u32], list: &[(u32, u32)], need: u32, out: &mut Vec<u32>) {
    #[cfg(target_arch = "x86_64")]
    if level() == AVX2 && list.len() >= PAIR_SCAN_MIN_RATIO * cur.len().max(1) {
        // SAFETY: `level()` confirmed AVX2 at runtime.
        return unsafe { x86::intersect_pairs_avx2(cur, list, need, out) };
    }
    scalar::intersect_pairs(cur, list, need, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_name_is_stable_and_valid() {
        let name = kernel_name();
        assert!(["avx2", "sse2", "scalar"].contains(&name), "unexpected tier {name}");
        assert_eq!(kernel_name(), name, "detection must be cached");
    }

    fn words(bits: &[usize], len: usize) -> Vec<u64> {
        let mut w = vec![0u64; len];
        for &b in bits {
            w[b / 64] |= 1 << (b % 64);
        }
        w
    }

    #[test]
    fn dispatched_word_kernels_match_scalar() {
        let a0 = words(&[0, 1, 63, 64, 65, 127, 128, 200], 4);
        let b0 = words(&[1, 63, 65, 100, 128, 199, 255], 4);
        for (dispatched, reference) in [
            (and_words as fn(&mut [u64], &[u64]), scalar::and_words as fn(&mut [u64], &[u64])),
            (or_words, scalar::or_words),
            (andnot_words, scalar::andnot_words),
        ] {
            let (mut x, mut y) = (a0.clone(), a0.clone());
            dispatched(&mut x, &b0);
            reference(&mut y, &b0);
            assert_eq!(x, y);
        }
        assert_eq!(popcount_words(&a0), scalar::popcount_words(&a0));
        assert_eq!(and_popcount_words(&a0, &b0), scalar::and_popcount_words(&a0, &b0));
        assert_eq!(andnot_popcount_words(&a0, &b0), scalar::andnot_popcount_words(&a0, &b0));
    }

    #[test]
    fn intersect_pairs_matches_scalar_across_block_tails() {
        // Exercise both the 8-pair vector blocks and the scalar tail, with
        // ids straddling block edges and counts filtering.
        let list: Vec<(u32, u32)> = (0..100u32).map(|i| (i * 3, 1 + i % 4)).collect();
        for cur_len in [0usize, 1, 7, 8, 9, 33, 100] {
            let cur: Vec<u32> = (0..cur_len as u32).map(|i| i * 4).collect();
            for need in [1u32, 2, 4, 9] {
                let (mut got, mut want) = (Vec::new(), Vec::new());
                intersect_pairs(&cur, &list, need, &mut got);
                scalar::intersect_pairs(&cur, &list, need, &mut want);
                assert_eq!(got, want, "cur_len {cur_len} need {need}");
            }
        }
    }

    #[test]
    fn intersect_postings_matches_manual() {
        let mut blocks = words(&[0, 5, 63, 64, 65, 127, 128, 129], 3);
        let postings = [(0u32, 2u32), (5, 1), (64, 2), (127, 2), (129, 1)];
        intersect_postings(&mut blocks, &postings, 2);
        assert_eq!(blocks, words(&[0, 64, 127], 3));
        // Empty posting list clears everything.
        let mut blocks = words(&[1, 70], 2);
        intersect_postings(&mut blocks, &[], 1);
        assert_eq!(blocks, vec![0u64; 2]);
        // Empty blocks tolerate an empty posting list.
        intersect_postings(&mut [], &[], 1);
    }
}
