//! Cheap necessary conditions for subgraph containment.
//!
//! Before running an (exponential) sub-iso test `q ⊑ G`, GraphCache's
//! processors check O(n)-computable invariants that must hold whenever a
//! non-induced subgraph embedding exists:
//!
//! * `n(q) ≤ n(G)`, `m(q) ≤ m(G)`;
//! * label histogram of `q` is dominated by that of `G`;
//! * the sorted degree sequence of `q` is dominated element-wise by `G`'s
//!   (after aligning largest-to-largest) — a weaker but useful filter.
//!
//! These are *sound* (never reject a true containment) and are verified to be
//! so by property tests against the VF2 engine in `gc-iso`.

use crate::Graph;

/// Summary of a graph used for repeated containment pre-checks.
///
/// Build once per cached query / dataset graph; `O(n + m)` space.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GraphSummary {
    /// Vertex count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// `hist[l]` = #vertices with label `l` (length = max label + 1).
    pub label_hist: Vec<u32>,
    /// Degree sequence sorted descending.
    pub degrees_desc: Vec<u32>,
}

impl GraphSummary {
    /// Compute the summary of `g`.
    pub fn of(g: &Graph) -> Self {
        let mut degrees_desc: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
        degrees_desc.sort_unstable_by(|a, b| b.cmp(a));
        GraphSummary {
            n: g.vertex_count(),
            m: g.edge_count(),
            label_hist: g.label_histogram(),
            degrees_desc,
        }
    }

    /// `true` iff `self` *may* be contained in `other` (non-induced).
    ///
    /// Returns `false` only when containment is impossible.
    pub fn may_embed_into(&self, other: &GraphSummary) -> bool {
        if self.n > other.n || self.m > other.m {
            return false;
        }
        // Label-histogram domination.
        if self.label_hist.len() > other.label_hist.len() {
            // self uses a label other never has.
            if self.label_hist[other.label_hist.len()..].iter().any(|&c| c > 0) {
                return false;
            }
        }
        for (l, &c) in self.label_hist.iter().enumerate() {
            if c > other.label_hist.get(l).copied().unwrap_or(0) {
                return false;
            }
        }
        // Degree-sequence domination: the i-th largest degree of the pattern
        // cannot exceed the i-th largest of the target (each pattern vertex
        // needs an image with at least its degree; match greedily).
        for (i, &d) in self.degrees_desc.iter().enumerate() {
            if d > other.degrees_desc.get(i).copied().unwrap_or(0) {
                return false;
            }
        }
        true
    }
}

/// Convenience: run the pre-check directly on two graphs (allocates two
/// summaries; prefer caching [`GraphSummary`] values on hot paths).
pub fn may_embed(pattern: &Graph, target: &Graph) -> bool {
    GraphSummary::of(pattern).may_embed_into(&GraphSummary::of(target))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_parts;
    use crate::Label;

    fn triangle() -> Graph {
        graph_from_parts(&[Label(0), Label(0), Label(0)], &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    fn path2() -> Graph {
        graph_from_parts(&[Label(0), Label(0)], &[(0, 1)]).unwrap()
    }

    #[test]
    fn smaller_into_larger() {
        assert!(may_embed(&path2(), &triangle()));
        assert!(!may_embed(&triangle(), &path2()));
    }

    #[test]
    fn label_domination() {
        let q = graph_from_parts(&[Label(5)], &[]).unwrap();
        let g = triangle(); // labels all 0
        assert!(!may_embed(&q, &g));
        let g2 = graph_from_parts(&[Label(5), Label(0)], &[(0, 1)]).unwrap();
        assert!(may_embed(&q, &g2));
    }

    #[test]
    fn degree_sequence_filter() {
        // Star with centre degree 3 cannot embed into a path of 4 (max degree 2).
        let star = graph_from_parts(&[Label(0); 4], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let path = graph_from_parts(&[Label(0); 4], &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(!may_embed(&star, &path));
        assert!(may_embed(&path2(), &star));
    }

    #[test]
    fn reflexive() {
        let t = triangle();
        assert!(may_embed(&t, &t));
    }

    #[test]
    fn empty_pattern_embeds_everywhere() {
        let e = graph_from_parts(&[], &[]).unwrap();
        assert!(may_embed(&e, &triangle()));
        assert!(may_embed(&e, &e));
    }
}
