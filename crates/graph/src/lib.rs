//! # gc-graph — graph substrate for GraphCache
//!
//! This crate provides the data-graph substrate every other GraphCache crate
//! builds on:
//!
//! * [`Graph`]: an immutable, undirected, vertex-labelled graph in a compact
//!   CSR-like representation, built through [`GraphBuilder`];
//! * [`BitSet`]: a fixed-universe bitset used for answer sets and candidate
//!   sets over dataset graph ids;
//! * [`io`]: reader/writer for the `t/v/e` text format used by the classic
//!   graph-query datasets (AIDS, PubChem, gSpan tooling);
//! * [`simd`]: runtime-dispatched word/SIMD kernels under every hot
//!   [`BitSet`] and posting-merge loop (portable scalar fallback included);
//! * [`hash`]: Weisfeiler–Lehman fingerprints used for exact-match cache hits;
//! * [`invariants`]: cheap necessary conditions for subgraph containment used
//!   to prune sub-iso tests before they start.
//!
//! The paper (GC, VLDB'18) targets undirected graphs with labels on vertices
//! only; that is exactly what [`Graph`] models. Edge labels and direction are
//! noted by the paper as straightforward generalisations and are out of scope
//! here (see DESIGN.md).

// `deny` rather than `forbid`: the one sanctioned exception is the
// runtime-dispatched kernel module, which opts back in with a scoped
// `#![allow(unsafe_code)]` (feature-gated calls + raw vector loads).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod builder;
mod error;
mod graph;
pub mod hash;
pub mod invariants;
pub mod io;
pub mod simd;

pub use bitset::{BitSet, PairOnes};
pub use builder::{graph_from_parts, GraphBuilder};
pub use error::GraphError;
pub use graph::{EdgeIter, Graph, GraphId, Label, VertexId};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
