//! Sorted posting-list intersection kernels for the k-way sub-case merge.
//!
//! One step of [`crate::QueryIndex::sub_case_candidates_into`] intersects
//! the running candidate run `cur` (sorted entry ids) with one posting list
//! (sorted `(id, count)` pairs), keeping ids whose count dominates the
//! query's requirement. Two kernels compute that step:
//!
//! * [`intersect_two_pointer`] — the classic linear merge, optimal when the
//!   inputs have comparable lengths;
//! * [`intersect_gallop`] — walks the *shorter* side and locates each of
//!   its ids in the longer side by exponential (galloping) search from a
//!   monotone cursor: `O(short · log(long/short))`, which wins when the
//!   lengths are wildly skewed (needle-tail posting distributions).
//!
//! A third kernel, [`intersect_simd`], is the word/SIMD-parallel
//! counterpart of the linear merge: it defers to
//! [`gc_graph::simd::intersect_pairs`], which compares one candidate
//! against 8 posting ids per step on AVX2 machines (runtime-dispatched,
//! portable fallback identical to [`intersect_two_pointer`]).
//!
//! [`intersect_adaptive`] picks per step by the length ratio against
//! [`crate::IndexTuning::gallop_cutoff`]: galloping for wildly skewed
//! lengths, the dispatched SIMD merge otherwise — except the middle-skew
//! band where the AVX2 block-scan outruns exponential search
//! ([`gc_graph::simd::pair_scan_wins`]), which stays SIMD. The kernels are
//! cross-checked on adversarial skews in this module's tests and under
//! randomized inputs in `tests/prop.rs` (`gallop_matches_two_pointer`),
//! and raced in `gc-bench/benches/merge.rs`; all of them write the same
//! result:
//! sorted ids `e ∈ cur` with a posting `(e, c)` in `list` where
//! `c >= need`.

/// First index in `keys[lo..]` (keys ascending under `key`) whose key is
/// `>= target`, found by exponential search from `lo`.
#[inline]
fn gallop_to<T>(items: &[T], lo: usize, target: u32, key: impl Fn(&T) -> u32) -> usize {
    let mut step = 1usize;
    let mut hi = lo;
    // Widen until the key at `hi` passes the target (or the slice ends).
    while hi < items.len() && key(&items[hi]) < target {
        hi += step;
        step <<= 1;
    }
    let lo = hi.saturating_sub(step >> 1).max(lo);
    let hi = hi.min(items.len());
    lo + items[lo..hi].partition_point(|x| key(x) < target)
}

/// Linear two-pointer intersection step (see module docs for semantics).
pub fn intersect_two_pointer(cur: &[u32], list: &[(u32, u32)], need: u32, out: &mut Vec<u32>) {
    out.clear();
    let (mut a, mut b) = (0usize, 0usize);
    while a < cur.len() && b < list.len() {
        let (e, c) = list[b];
        match cur[a].cmp(&e) {
            std::cmp::Ordering::Less => a += 1,
            std::cmp::Ordering::Greater => b += 1,
            std::cmp::Ordering::Equal => {
                if c >= need {
                    out.push(e);
                }
                a += 1;
                b += 1;
            }
        }
    }
}

/// Galloping intersection step: iterates the shorter input, exponential
/// search in the longer (see module docs for semantics).
pub fn intersect_gallop(cur: &[u32], list: &[(u32, u32)], need: u32, out: &mut Vec<u32>) {
    out.clear();
    if cur.len() <= list.len() {
        let mut pos = 0usize;
        for &e in cur {
            pos = gallop_to(list, pos, e, |&(id, _)| id);
            match list.get(pos) {
                Some(&(id, c)) if id == e => {
                    if c >= need {
                        out.push(e);
                    }
                    pos += 1;
                }
                Some(_) => {}
                None => break,
            }
        }
    } else {
        let mut pos = 0usize;
        for &(e, c) in list {
            pos = gallop_to(cur, pos, e, |&id| id);
            match cur.get(pos) {
                Some(&id) if id == e => {
                    if c >= need {
                        out.push(e);
                    }
                    pos += 1;
                }
                Some(_) => {}
                None => break,
            }
        }
    }
}

/// Word/SIMD-parallel linear intersection step: semantics identical to
/// [`intersect_two_pointer`], executed by the runtime-dispatched
/// [`gc_graph::simd::intersect_pairs`] kernel (AVX2 8-wide id compares on
/// machines that have it, the portable linear merge elsewhere).
pub fn intersect_simd(cur: &[u32], list: &[(u32, u32)], need: u32, out: &mut Vec<u32>) {
    gc_graph::simd::intersect_pairs(cur, list, need, out)
}

/// Per-step kernel selection: gallop when the longer input is at least
/// `gallop_cutoff` times the shorter one, the dispatched SIMD linear merge
/// ([`intersect_simd`]) otherwise. A cutoff of 1 gallops always;
/// `usize::MAX` never does. One carve-out on AVX2 machines: in the
/// middle-skew band where the vector block-scan beats exponential search
/// ([`gc_graph::simd::pair_scan_wins`], roughly 8×–256× list-over-run),
/// the SIMD kernel is preferred even past the gallop cutoff.
pub fn intersect_adaptive(
    cur: &[u32],
    list: &[(u32, u32)],
    need: u32,
    gallop_cutoff: usize,
    out: &mut Vec<u32>,
) {
    let (short, long) = (cur.len().min(list.len()), cur.len().max(list.len()));
    if long >= gallop_cutoff.saturating_mul(short.max(1))
        && !gc_graph::simd::pair_scan_wins(cur.len(), list.len())
    {
        intersect_gallop(cur, list, need, out);
    } else {
        intersect_simd(cur, list, need, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(cur: &[u32], list: &[(u32, u32)], need: u32) -> Vec<u32> {
        let (mut a, mut b, mut c, mut d) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        intersect_two_pointer(cur, list, need, &mut a);
        intersect_gallop(cur, list, need, &mut b);
        intersect_adaptive(cur, list, need, 4, &mut c);
        intersect_simd(cur, list, need, &mut d);
        assert_eq!(a, b, "gallop diverged from two-pointer");
        assert_eq!(a, c, "adaptive diverged from two-pointer");
        assert_eq!(a, d, "simd diverged from two-pointer");
        a
    }

    #[test]
    fn basic_overlap_and_count_filter() {
        let cur = [1, 3, 5, 7];
        let list = [(0, 9), (3, 1), (5, 2), (8, 9)];
        assert_eq!(both(&cur, &list, 2), vec![5]);
        assert_eq!(both(&cur, &list, 1), vec![3, 5]);
    }

    #[test]
    fn empty_sides() {
        assert!(both(&[], &[(1, 1)], 1).is_empty());
        assert!(both(&[1], &[], 1).is_empty());
        assert!(both(&[], &[], 1).is_empty());
    }

    #[test]
    fn adversarial_skews_agree() {
        // A single candidate against a long run, and the converse skew.
        let long: Vec<(u32, u32)> = (0..10_000u32).map(|i| (i * 3, 1 + (i % 4))).collect();
        let cur = [29_997u32];
        assert_eq!(both(&cur, &long, 1), vec![29_997]);
        assert_eq!(both(&cur, &long, 4), vec![29_997]);
        let wide: Vec<u32> = (0..10_000u32).map(|i| i * 2).collect();
        let needle = [(4_000u32, 3u32), (4_001, 3)];
        assert_eq!(both(&wide, &needle, 2), vec![4_000]);
    }

    #[test]
    fn full_overlap() {
        let ids: Vec<u32> = (0..512).collect();
        let list: Vec<(u32, u32)> = ids.iter().map(|&i| (i, 2)).collect();
        assert_eq!(both(&ids, &list, 2), ids);
        assert!(both(&ids, &list, 3).is_empty());
    }
}
