//! GraphGrepSX-style trie over labelled paths — the FTV dataset index.
//!
//! Each node of the trie corresponds to a label sequence (the path from the
//! root); a node stores a posting list `(graph_id, occurrence_count)` sorted
//! by graph id. Filtering walks the trie once per query feature and
//! intersects the graphs whose counts dominate the query's.
//!
//! ## Arena layout
//!
//! The index is built once over the (static) dataset, so after construction
//! the node structs are **frozen into a contiguous arena**: per-node child
//! edges and postings become ranges into two flat arrays (`child_start` /
//! `post_start` prefix tables). Lookups binary-search a node's child slice;
//! postings are read as one contiguous slice — no pointer chasing, no
//! per-node allocations.
//!
//! Query-side work streams: the label-path DFS of
//! [`crate::extract::stream_label_paths`] walks the arena in step with the
//! enumeration (a node stack mirrors the path stack), so query paths are
//! never materialized, and candidate intersection goes word-parallel
//! straight into the caller's [`BitSet`] via
//! [`BitSet::intersect_with_sorted`] — the filter allocates nothing per
//! feature. Reusable state lives in [`TrieScratch`].
//!
//! Its [`memory_bytes`](PathTrie::memory_bytes) drives the space side of the
//! paper's Experiment II. Equivalence with the pointer-chasing
//! implementation is pinned against [`crate::reference::RefPathTrie`].

use crate::extract::{stream_label_paths, FeatureConfig, PathSink};
use gc_graph::{BitSet, Graph, GraphId, Label};

/// Sentinel for "the current path has left the trie" on the walk stack.
const MISS: u32 = u32::MAX;

#[derive(Debug, Default)]
struct BuildNode {
    /// Child edges sorted by label.
    children: Vec<(Label, u32)>,
    /// `(graph, count)` sorted by graph id (graphs are inserted in id
    /// order).
    postings: Vec<(GraphId, u32)>,
}

/// Reusable query-side state for [`PathTrie::candidates_into`] /
/// [`PathTrie::super_candidates_into`]. One per worker; buffers grow to
/// their high-water mark and stay.
#[derive(Debug, Default)]
pub struct TrieScratch {
    on_path: Vec<bool>,
    /// Trie node per path depth (`MISS` once off-trie).
    stack: Vec<u32>,
    /// One walked node id per emitted path occurrence.
    nodes: Vec<u32>,
    /// Aggregated `(node, required count)`.
    merged: Vec<(u32, u32)>,
    /// Dense Σmin accumulators, indexed by graph id.
    matched: Vec<u64>,
}

impl TrieScratch {
    /// Fresh scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Streams the query's label paths against the arena: maintains the trie
/// node reached by the current path and records it per emission.
struct WalkSink<'a> {
    trie: &'a PathTrie,
    stack: &'a mut Vec<u32>,
    nodes: &'a mut Vec<u32>,
    /// Some emitted path left the trie (a feature no indexed graph has).
    missing: bool,
}

impl PathSink for WalkSink<'_> {
    #[inline]
    fn push(&mut self, label: Label) {
        let parent = self.stack.last().copied().unwrap_or(0);
        let node = if parent == MISS { MISS } else { self.trie.child(parent, label) };
        self.stack.push(node);
    }

    #[inline]
    fn emit(&mut self) {
        let node = *self.stack.last().expect("emit follows a push");
        if node == MISS {
            self.missing = true;
        } else {
            self.nodes.push(node);
        }
    }

    #[inline]
    fn pop(&mut self) {
        self.stack.pop();
    }
}

/// The FTV dataset index: a trie of labelled simple paths up to a maximum
/// length, with per-graph occurrence counts, frozen into a flat arena.
#[derive(Debug)]
pub struct PathTrie {
    cfg: FeatureConfig,
    dataset_size: usize,
    /// Per-graph total path-occurrence counts (for supergraph-query
    /// filtering via the Σmin identity).
    totals: Vec<u64>,
    /// Graphs whose path enumeration was truncated; they are always
    /// candidates (soundness over filtering power).
    unfiltered: Vec<GraphId>,
    /// Arena: node `n`'s child edges are
    /// `child_labels/child_nodes[child_start[n]..child_start[n + 1]]`,
    /// sorted by label; its postings are
    /// `postings[post_start[n]..post_start[n + 1]]`, sorted by graph id.
    child_labels: Vec<Label>,
    child_nodes: Vec<u32>,
    child_start: Vec<u32>,
    postings: Vec<(GraphId, u32)>,
    post_start: Vec<u32>,
}

impl PathTrie {
    /// Build the index over `dataset` with feature config `cfg`.
    pub fn build(dataset: &[Graph], cfg: FeatureConfig) -> Self {
        let mut nodes: Vec<BuildNode> = vec![BuildNode::default()];
        let mut totals = vec![0u64; dataset.len()];
        let mut unfiltered = Vec::new();
        let mut on_path = Vec::new();

        /// Counts emissions without touching the trie (pass 1: truncation
        /// check, so a truncated graph never leaves partial postings).
        struct CountSink {
            emitted: u64,
        }
        impl PathSink for CountSink {
            fn push(&mut self, _: Label) {}
            fn emit(&mut self) {
                self.emitted += 1;
            }
            fn pop(&mut self) {}
        }

        struct InsertSink<'a> {
            nodes: &'a mut Vec<BuildNode>,
            stack: Vec<usize>,
            gid: GraphId,
        }
        impl PathSink for InsertSink<'_> {
            fn push(&mut self, label: Label) {
                let cur = self.stack.last().copied().unwrap_or(0);
                let next =
                    match self.nodes[cur].children.binary_search_by_key(&label, |&(cl, _)| cl) {
                        Ok(i) => self.nodes[cur].children[i].1 as usize,
                        Err(i) => {
                            let id = self.nodes.len() as u32;
                            self.nodes.push(BuildNode::default());
                            self.nodes[cur].children.insert(i, (label, id));
                            id as usize
                        }
                    };
                self.stack.push(next);
            }
            fn emit(&mut self) {
                let node = *self.stack.last().expect("emit follows a push");
                match self.nodes[node].postings.last_mut() {
                    Some((last_gid, c)) if *last_gid == self.gid => *c += 1,
                    _ => self.nodes[node].postings.push((self.gid, 1)),
                }
            }
            fn pop(&mut self) {
                self.stack.pop();
            }
        }

        for (gid, g) in dataset.iter().enumerate() {
            let gid = gid as GraphId;
            let mut counter = CountSink { emitted: 0 };
            if stream_label_paths(g, &cfg, &mut on_path, &mut counter) {
                unfiltered.push(gid);
                continue;
            }
            totals[gid as usize] = counter.emitted;
            let mut sink = InsertSink { nodes: &mut nodes, stack: Vec::new(), gid };
            stream_label_paths(g, &cfg, &mut on_path, &mut sink);
        }

        // Freeze into the arena (node ids preserved).
        let mut child_start = Vec::with_capacity(nodes.len() + 1);
        let mut post_start = Vec::with_capacity(nodes.len() + 1);
        let (mut nc, mut np) = (0u32, 0u32);
        for n in &nodes {
            child_start.push(nc);
            post_start.push(np);
            nc += n.children.len() as u32;
            np += n.postings.len() as u32;
        }
        child_start.push(nc);
        post_start.push(np);
        let mut child_labels = Vec::with_capacity(nc as usize);
        let mut child_nodes = Vec::with_capacity(nc as usize);
        let mut postings = Vec::with_capacity(np as usize);
        for n in nodes {
            for (l, c) in n.children {
                child_labels.push(l);
                child_nodes.push(c);
            }
            postings.extend(n.postings);
        }

        PathTrie {
            cfg,
            dataset_size: dataset.len(),
            totals,
            unfiltered,
            child_labels,
            child_nodes,
            child_start,
            postings,
            post_start,
        }
    }

    /// The feature configuration the index was built with.
    pub fn config(&self) -> &FeatureConfig {
        &self.cfg
    }

    /// Number of indexed graphs.
    pub fn dataset_size(&self) -> usize {
        self.dataset_size
    }

    /// Number of trie nodes (root included).
    pub fn node_count(&self) -> usize {
        self.child_start.len() - 1
    }

    /// The child of `node` along `label`, or [`MISS`].
    #[inline]
    fn child(&self, node: u32, label: Label) -> u32 {
        let (s, e) = (
            self.child_start[node as usize] as usize,
            self.child_start[node as usize + 1] as usize,
        );
        match self.child_labels[s..e].binary_search(&label) {
            Ok(i) => self.child_nodes[s + i],
            Err(_) => MISS,
        }
    }

    /// Posting slice of `node`.
    #[inline]
    fn node_postings(&self, node: u32) -> &[(GraphId, u32)] {
        let (s, e) =
            (self.post_start[node as usize] as usize, self.post_start[node as usize + 1] as usize);
        &self.postings[s..e]
    }

    fn walk(&self, labels: &[Label]) -> Option<u32> {
        let mut cur = 0u32;
        for &l in labels {
            cur = self.child(cur, l);
            if cur == MISS {
                return None;
            }
        }
        Some(cur)
    }

    /// Occurrence count of the exact label path `labels` in graph `gid`.
    pub fn count(&self, labels: &[Label], gid: GraphId) -> u32 {
        self.walk(labels)
            .and_then(|n| {
                let posts = self.node_postings(n);
                posts.binary_search_by_key(&gid, |&(g, _)| g).ok().map(|i| posts[i].1)
            })
            .unwrap_or(0)
    }

    /// Stream the query's paths against the arena, filling
    /// `scratch.nodes`. Returns `(truncated, missing)`.
    fn walk_query(&self, query: &Graph, scratch: &mut TrieScratch) -> (bool, bool) {
        scratch.stack.clear();
        scratch.nodes.clear();
        let mut sink = WalkSink {
            trie: self,
            stack: &mut scratch.stack,
            nodes: &mut scratch.nodes,
            missing: false,
        };
        let truncated = stream_label_paths(query, &self.cfg, &mut scratch.on_path, &mut sink);
        (truncated, sink.missing)
    }

    /// Aggregate `scratch.nodes` into sorted `(node, count)` runs in
    /// `scratch.merged`.
    fn aggregate_required(scratch: &mut TrieScratch) {
        scratch.nodes.sort_unstable();
        scratch.merged.clear();
        for &n in &scratch.nodes {
            match scratch.merged.last_mut() {
                Some((ln, c)) if *ln == n => *c += 1,
                _ => scratch.merged.push((n, 1)),
            }
        }
    }

    /// Compute the candidate set `C_M` for a subgraph query into `out`
    /// (universe must be `dataset_size`): every dataset graph whose
    /// per-feature counts dominate the query's.
    ///
    /// Sound: the true answer set is always a subset of the result.
    /// Allocation-free once `scratch` and `out` are warm.
    pub fn candidates_into(&self, query: &Graph, scratch: &mut TrieScratch, out: &mut BitSet) {
        assert_eq!(out.universe(), self.dataset_size, "candidate universe mismatch");
        let (truncated, missing) = self.walk_query(query, scratch);
        if truncated {
            // Cannot filter safely; everything is a candidate.
            out.set_all();
            return;
        }
        if missing {
            // Query has a path no dataset graph contains (beyond the
            // truncated ones).
            out.clear();
            for &g in &self.unfiltered {
                out.insert(g as usize);
            }
            return;
        }
        // (Forward and backward readings of a path reach *different* trie
        // nodes; counts are per-direction on both sides, so domination
        // still holds.)
        Self::aggregate_required(scratch);
        // Intersect, most selective (shortest posting list) first, each
        // feature's qualifying postings chunk-merged straight into `out` by
        // the dispatched posting kernel (count filter folded in).
        scratch.merged.sort_unstable_by_key(|&(n, _)| self.node_postings(n).len());
        out.set_all();
        for &(n, req) in &scratch.merged {
            out.intersect_with_postings(self.node_postings(n), req);
            if out.is_empty() {
                break;
            }
        }
        for &g in &self.unfiltered {
            out.insert(g as usize);
        }
    }

    /// Candidate set for a **supergraph** query into `out`: dataset graphs
    /// possibly *contained in* `query`. A graph qualifies when every one of
    /// its own path features appears in the query with at least the graph's
    /// count, checked via `Σ_f∈query min(cnt_G(f), cnt_q(f)) == total(G)` so
    /// the graphs' feature sets never need re-enumeration.
    ///
    /// Sound: the true answer set (`{G : G ⊑ q}`) is a subset of the
    /// result. Allocation-free once `scratch` and `out` are warm.
    pub fn super_candidates_into(
        &self,
        query: &Graph,
        scratch: &mut TrieScratch,
        out: &mut BitSet,
    ) {
        assert_eq!(out.universe(), self.dataset_size, "candidate universe mismatch");
        let (truncated, _missing) = self.walk_query(query, scratch);
        if truncated {
            out.set_all();
            return;
        }
        Self::aggregate_required(scratch);
        scratch.matched.clear();
        scratch.matched.resize(self.dataset_size, 0);
        for &(n, qc) in &scratch.merged {
            for &(gid, c) in self.node_postings(n) {
                scratch.matched[gid as usize] += c.min(qc) as u64;
            }
        }
        out.clear();
        for (gid, (&m, &t)) in scratch.matched.iter().zip(&self.totals).enumerate() {
            if m == t {
                out.insert(gid);
            }
        }
        for &g in &self.unfiltered {
            out.insert(g as usize);
        }
    }

    /// Allocating wrapper over [`PathTrie::candidates_into`].
    pub fn candidates(&self, query: &Graph) -> BitSet {
        let mut scratch = TrieScratch::new();
        let mut out = BitSet::new(self.dataset_size);
        self.candidates_into(query, &mut scratch, &mut out);
        out
    }

    /// Allocating wrapper over [`PathTrie::super_candidates_into`].
    pub fn super_candidates(&self, query: &Graph) -> BitSet {
        let mut scratch = TrieScratch::new();
        let mut out = BitSet::new(self.dataset_size);
        self.super_candidates_into(query, &mut scratch, &mut out);
        out
    }

    /// Approximate heap footprint in bytes — the "space requirement" of the
    /// FTV index in Experiment II.
    pub fn memory_bytes(&self) -> usize {
        self.child_labels.capacity() * std::mem::size_of::<Label>()
            + self.child_nodes.capacity() * std::mem::size_of::<u32>()
            + self.child_start.capacity() * std::mem::size_of::<u32>()
            + self.postings.capacity() * std::mem::size_of::<(GraphId, u32)>()
            + self.post_start.capacity() * std::mem::size_of::<u32>()
            + self.unfiltered.capacity() * std::mem::size_of::<GraphId>()
            + self.totals.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::graph_from_parts;

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    fn small_dataset() -> Vec<Graph> {
        vec![
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),         // path 0-1-2
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]), // triangle 0,1,0
            g(&[3, 3], &[(0, 1)]),                    // edge 3-3
            g(&[0, 1], &[(0, 1)]),                    // edge 0-1
        ]
    }

    #[test]
    fn exact_match_filtering() {
        let ds = small_dataset();
        let trie = PathTrie::build(&ds, FeatureConfig::with_max_len(2));
        // Query: single edge 0-1. Graphs 0, 1, 3 contain it.
        let q = g(&[0, 1], &[(0, 1)]);
        let c = trie.candidates(&q);
        assert_eq!(c.to_vec(), vec![0, 1, 3]);
    }

    #[test]
    fn missing_feature_empties_candidates() {
        let ds = small_dataset();
        let trie = PathTrie::build(&ds, FeatureConfig::with_max_len(2));
        let q = g(&[9], &[]);
        assert!(trie.candidates(&q).is_empty());
    }

    #[test]
    fn count_domination_filters() {
        // Query with two 0-1 edges requires count >= the query's own.
        let ds = small_dataset();
        let trie = PathTrie::build(&ds, FeatureConfig::with_max_len(2));
        let q = g(&[0, 1, 0], &[(0, 1), (1, 2)]); // path 0-1-0
        let c = trie.candidates(&q);
        // Graph 1 (triangle 0,1,0) contains path 0-1-0; graph 0 is 0-1-2 and
        // does not; graph 3 has only one 0-1 edge.
        assert_eq!(c.to_vec(), vec![1]);
    }

    #[test]
    fn filter_is_sound_vs_vf2() {
        let ds = small_dataset();
        let trie = PathTrie::build(&ds, FeatureConfig::with_max_len(3));
        let queries = [
            g(&[0, 1], &[(0, 1)]),
            g(&[1], &[]),
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]),
            g(&[3, 3], &[(0, 1)]),
        ];
        for q in &queries {
            let c = trie.candidates(q);
            for (gid, dg) in ds.iter().enumerate() {
                if gc_iso::vf2::exists(q, dg) {
                    assert!(c.contains(gid), "filter dropped true answer {gid}");
                }
            }
        }
    }

    #[test]
    fn count_lookup() {
        let ds = small_dataset();
        let trie = PathTrie::build(&ds, FeatureConfig::with_max_len(2));
        // Edge 0-1 occurs twice (two directions) in graph 3... as the
        // directed readings 0->1 and 1->0 land on different nodes, each
        // counted once.
        assert_eq!(trie.count(&[Label(0), Label(1)], 3), 1);
        assert_eq!(trie.count(&[Label(1), Label(0)], 3), 1);
        assert_eq!(trie.count(&[Label(9)], 3), 0);
    }

    #[test]
    fn empty_query_matches_all() {
        let ds = small_dataset();
        let trie = PathTrie::build(&ds, FeatureConfig::with_max_len(2));
        let q = g(&[], &[]);
        assert_eq!(trie.candidates(&q).count(), ds.len());
    }

    #[test]
    fn truncated_data_graph_is_always_candidate() {
        let mut edges = Vec::new();
        for u in 0..9u32 {
            for v in (u + 1)..9 {
                edges.push((u, v));
            }
        }
        let clique = g(&[0; 9], &edges);
        let ds = vec![clique, g(&[1], &[])];
        let cfg = FeatureConfig { max_len: 6, max_paths: 50 };
        let trie = PathTrie::build(&ds, cfg);
        // Query that the clique *does* contain but whose features were lost.
        let q = g(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let c = trie.candidates(&q);
        assert!(c.contains(0), "truncated graph must stay a candidate");
        assert!(!c.contains(1));
    }

    #[test]
    fn super_candidates_filtering() {
        let ds = small_dataset();
        let trie = PathTrie::build(&ds, FeatureConfig::with_max_len(2));
        // Supergraph query: triangle 0,1,0 with pendant 2 contains graphs 1
        // (triangle) and 3 (edge 0-1), and graph 0 (path 0-1-2).
        let q = g(&[0, 1, 0, 2], &[(0, 1), (1, 2), (0, 2), (1, 3)]);
        let c = trie.super_candidates(&q);
        for (gid, dg) in ds.iter().enumerate() {
            if gc_iso::vf2::exists(dg, &q) {
                assert!(c.contains(gid), "super filter dropped true answer {gid}");
            }
        }
        assert!(!c.contains(2)); // graph 2 is the 3-3 edge; label 3 nowhere in q
    }

    #[test]
    fn super_candidates_sound_small() {
        let ds = small_dataset();
        let trie = PathTrie::build(&ds, FeatureConfig::with_max_len(3));
        let queries = [
            g(&[0, 1], &[(0, 1)]),
            g(&[0, 1, 2, 0], &[(0, 1), (1, 2), (1, 3)]),
            g(&[3, 3, 3], &[(0, 1), (1, 2)]),
        ];
        for q in &queries {
            let c = trie.super_candidates(q);
            for (gid, dg) in ds.iter().enumerate() {
                if gc_iso::vf2::exists(dg, q) {
                    assert!(c.contains(gid));
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_is_stable() {
        let ds = small_dataset();
        let trie = PathTrie::build(&ds, FeatureConfig::with_max_len(3));
        let mut scratch = TrieScratch::new();
        let mut out = BitSet::new(ds.len());
        let queries =
            [g(&[0, 1], &[(0, 1)]), g(&[9], &[]), g(&[0, 1, 0], &[(0, 1), (1, 2)]), g(&[], &[])];
        for q in &queries {
            trie.candidates_into(q, &mut scratch, &mut out);
            assert_eq!(out, trie.candidates(q), "shared scratch changed the answer");
            trie.super_candidates_into(q, &mut scratch, &mut out);
            assert_eq!(out, trie.super_candidates(q));
        }
    }

    #[test]
    fn memory_grows_with_feature_size() {
        let ds = small_dataset();
        let t2 = PathTrie::build(&ds, FeatureConfig::with_max_len(2));
        let t4 = PathTrie::build(&ds, FeatureConfig::with_max_len(4));
        assert!(t4.memory_bytes() >= t2.memory_bytes());
        assert!(t4.node_count() >= t2.node_count());
    }
}
