//! GraphGrepSX-style suffix trie over labelled paths — the FTV dataset index.
//!
//! Each node of the trie corresponds to a label sequence (the path from the
//! root); a node stores a posting list `(graph_id, occurrence_count)` sorted
//! by graph id. Filtering walks the trie once per query feature and
//! intersects the graphs whose counts dominate the query's.
//!
//! The trie is built once over the (static) dataset; its
//! [`memory_bytes`](PathTrie::memory_bytes) drives the space side of the
//! paper's Experiment II.

use crate::extract::{enumerate_label_paths, FeatureConfig};
use gc_graph::{BitSet, Graph, GraphId, Label};

#[derive(Debug, Default)]
struct Node {
    /// Child edges sorted by label for binary search.
    children: Vec<(Label, u32)>,
    /// `(graph, count)` sorted by graph id.
    postings: Vec<(GraphId, u32)>,
}

/// The FTV dataset index: a trie of labelled simple paths up to a maximum
/// length, with per-graph occurrence counts.
#[derive(Debug)]
pub struct PathTrie {
    cfg: FeatureConfig,
    nodes: Vec<Node>,
    dataset_size: usize,
    /// Per-graph total path-occurrence counts (for supergraph-query
    /// filtering via the Σmin identity).
    totals: Vec<u64>,
    /// Graphs whose path enumeration was truncated; they are always
    /// candidates (soundness over filtering power).
    unfiltered: Vec<GraphId>,
}

impl PathTrie {
    /// Build the index over `dataset` with feature config `cfg`.
    pub fn build(dataset: &[Graph], cfg: FeatureConfig) -> Self {
        let mut trie = PathTrie {
            cfg,
            nodes: vec![Node::default()],
            dataset_size: dataset.len(),
            totals: vec![0; dataset.len()],
            unfiltered: Vec::new(),
        };
        for (gid, g) in dataset.iter().enumerate() {
            trie.insert_graph(gid as GraphId, g);
        }
        trie
    }

    /// The feature configuration the index was built with.
    pub fn config(&self) -> &FeatureConfig {
        &self.cfg
    }

    /// Number of indexed graphs.
    pub fn dataset_size(&self) -> usize {
        self.dataset_size
    }

    /// Number of trie nodes (root included).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn insert_graph(&mut self, gid: GraphId, g: &Graph) {
        let (paths, truncated) = enumerate_label_paths(g, &self.cfg);
        if truncated {
            self.unfiltered.push(gid);
            return;
        }
        self.totals[gid as usize] = paths.len() as u64;
        for path in &paths {
            let node = self.walk_insert(path);
            match self.nodes[node].postings.last_mut() {
                Some((last_gid, c)) if *last_gid == gid => *c += 1,
                _ => self.nodes[node].postings.push((gid, 1)),
            }
        }
    }

    fn walk_insert(&mut self, labels: &[Label]) -> usize {
        let mut cur = 0usize;
        for &l in labels {
            cur = match self.nodes[cur].children.binary_search_by_key(&l, |&(cl, _)| cl) {
                Ok(i) => self.nodes[cur].children[i].1 as usize,
                Err(i) => {
                    let id = self.nodes.len() as u32;
                    self.nodes.push(Node::default());
                    self.nodes[cur].children.insert(i, (l, id));
                    id as usize
                }
            };
        }
        cur
    }

    fn walk(&self, labels: &[Label]) -> Option<usize> {
        let mut cur = 0usize;
        for &l in labels {
            match self.nodes[cur].children.binary_search_by_key(&l, |&(cl, _)| cl) {
                Ok(i) => cur = self.nodes[cur].children[i].1 as usize,
                Err(_) => return None,
            }
        }
        Some(cur)
    }

    /// Occurrence count of the exact label path `labels` in graph `gid`.
    pub fn count(&self, labels: &[Label], gid: GraphId) -> u32 {
        self.walk(labels)
            .and_then(|n| {
                self.nodes[n]
                    .postings
                    .binary_search_by_key(&gid, |&(g, _)| g)
                    .ok()
                    .map(|i| self.nodes[n].postings[i].1)
            })
            .unwrap_or(0)
    }

    /// Compute the candidate set `C_M` for a subgraph query: every dataset
    /// graph whose per-feature counts dominate the query's.
    ///
    /// Sound: the true answer set is always a subset of the result.
    pub fn candidates(&self, query: &Graph) -> BitSet {
        let (qpaths, qtrunc) = enumerate_label_paths(query, &self.cfg);
        if qtrunc {
            // Cannot filter safely; everything is a candidate.
            return BitSet::full(self.dataset_size);
        }
        // Aggregate query features: trie node -> required count. (Forward and
        // backward readings of a path reach *different* trie nodes; counts
        // are per-direction on both sides, so domination still holds.)
        let mut required: Vec<(usize, u32)> = Vec::with_capacity(qpaths.len());
        for p in &qpaths {
            match self.walk(p) {
                Some(n) => required.push((n, 1)),
                None => {
                    // Query has a path no dataset graph contains (beyond the
                    // truncated ones).
                    return BitSet::from_indices(
                        self.dataset_size,
                        self.unfiltered.iter().map(|&g| g as usize),
                    );
                }
            }
        }
        required.sort_unstable();
        let mut merged: Vec<(usize, u32)> = Vec::new();
        for (n, c) in required {
            match merged.last_mut() {
                Some((ln, lc)) if *ln == n => *lc += c,
                _ => merged.push((n, c)),
            }
        }
        // Intersect, most selective (shortest posting list) first.
        merged.sort_unstable_by_key(|&(n, _)| self.nodes[n].postings.len());
        let mut cands = BitSet::full(self.dataset_size);
        let mut scratch = BitSet::new(self.dataset_size);
        for (n, req) in merged {
            scratch.clear();
            for &(gid, c) in &self.nodes[n].postings {
                if c >= req {
                    scratch.insert(gid as usize);
                }
            }
            cands.intersect_with(&scratch);
            if cands.is_empty() {
                break;
            }
        }
        for &g in &self.unfiltered {
            cands.insert(g as usize);
        }
        cands
    }

    /// Candidate set for a **supergraph** query: dataset graphs possibly
    /// *contained in* `query`. A graph qualifies when every one of its own
    /// path features appears in the query with at least the graph's count,
    /// checked via `Σ_f∈query min(cnt_G(f), cnt_q(f)) == total(G)` so the
    /// graphs' feature sets never need re-enumeration.
    ///
    /// Sound: the true answer set (`{G : G ⊑ q}`) is a subset of the result.
    pub fn super_candidates(&self, query: &Graph) -> BitSet {
        let (qpaths, qtrunc) = enumerate_label_paths(query, &self.cfg);
        if qtrunc {
            return BitSet::full(self.dataset_size);
        }
        // Aggregate query paths per trie node (see `candidates`).
        let mut required: Vec<usize> = qpaths.iter().filter_map(|p| self.walk(p)).collect();
        required.sort_unstable();
        let mut matched = vec![0u64; self.dataset_size];
        let mut i = 0;
        while i < required.len() {
            let n = required[i];
            let mut qc = 0u32;
            while i < required.len() && required[i] == n {
                qc += 1;
                i += 1;
            }
            for &(gid, c) in &self.nodes[n].postings {
                matched[gid as usize] += c.min(qc) as u64;
            }
        }
        let mut out = BitSet::new(self.dataset_size);
        for (gid, (&m, &t)) in matched.iter().zip(&self.totals).enumerate() {
            if m == t {
                out.insert(gid);
            }
        }
        for &g in &self.unfiltered {
            out.insert(g as usize);
        }
        out
    }

    /// Approximate heap footprint in bytes — the "space requirement" of the
    /// FTV index in Experiment II.
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.nodes.capacity() * std::mem::size_of::<Node>();
        for n in &self.nodes {
            bytes += n.children.capacity() * std::mem::size_of::<(Label, u32)>();
            bytes += n.postings.capacity() * std::mem::size_of::<(GraphId, u32)>();
        }
        bytes
            + self.unfiltered.capacity() * std::mem::size_of::<GraphId>()
            + self.totals.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::graph_from_parts;

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    fn small_dataset() -> Vec<Graph> {
        vec![
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),         // path 0-1-2
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]), // triangle 0,1,0
            g(&[3, 3], &[(0, 1)]),                    // edge 3-3
            g(&[0, 1], &[(0, 1)]),                    // edge 0-1
        ]
    }

    #[test]
    fn exact_match_filtering() {
        let ds = small_dataset();
        let trie = PathTrie::build(&ds, FeatureConfig::with_max_len(2));
        // Query: single edge 0-1. Graphs 0, 1, 3 contain it.
        let q = g(&[0, 1], &[(0, 1)]);
        let c = trie.candidates(&q);
        assert_eq!(c.to_vec(), vec![0, 1, 3]);
    }

    #[test]
    fn missing_feature_empties_candidates() {
        let ds = small_dataset();
        let trie = PathTrie::build(&ds, FeatureConfig::with_max_len(2));
        let q = g(&[9], &[]);
        assert!(trie.candidates(&q).is_empty());
    }

    #[test]
    fn count_domination_filters() {
        // Query with two 0-1 edges requires count >= the query's own.
        let ds = small_dataset();
        let trie = PathTrie::build(&ds, FeatureConfig::with_max_len(2));
        let q = g(&[0, 1, 0], &[(0, 1), (1, 2)]); // path 0-1-0
        let c = trie.candidates(&q);
        // Graph 1 (triangle 0,1,0) contains path 0-1-0; graph 0 is 0-1-2 and
        // does not; graph 3 has only one 0-1 edge.
        assert_eq!(c.to_vec(), vec![1]);
    }

    #[test]
    fn filter_is_sound_vs_vf2() {
        let ds = small_dataset();
        let trie = PathTrie::build(&ds, FeatureConfig::with_max_len(3));
        let queries = [
            g(&[0, 1], &[(0, 1)]),
            g(&[1], &[]),
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]),
            g(&[3, 3], &[(0, 1)]),
        ];
        for q in &queries {
            let c = trie.candidates(q);
            for (gid, dg) in ds.iter().enumerate() {
                if gc_iso::vf2::exists(q, dg) {
                    assert!(c.contains(gid), "filter dropped true answer {gid}");
                }
            }
        }
    }

    #[test]
    fn count_lookup() {
        let ds = small_dataset();
        let trie = PathTrie::build(&ds, FeatureConfig::with_max_len(2));
        // Edge 0-1 occurs twice (two directions) in graph 3... as the
        // directed readings 0->1 and 1->0 land on different nodes, each
        // counted once.
        assert_eq!(trie.count(&[Label(0), Label(1)], 3), 1);
        assert_eq!(trie.count(&[Label(1), Label(0)], 3), 1);
        assert_eq!(trie.count(&[Label(9)], 3), 0);
    }

    #[test]
    fn empty_query_matches_all() {
        let ds = small_dataset();
        let trie = PathTrie::build(&ds, FeatureConfig::with_max_len(2));
        let q = g(&[], &[]);
        assert_eq!(trie.candidates(&q).count(), ds.len());
    }

    #[test]
    fn truncated_data_graph_is_always_candidate() {
        let mut edges = Vec::new();
        for u in 0..9u32 {
            for v in (u + 1)..9 {
                edges.push((u, v));
            }
        }
        let clique = g(&[0; 9], &edges);
        let ds = vec![clique, g(&[1], &[])];
        let cfg = FeatureConfig { max_len: 6, max_paths: 50 };
        let trie = PathTrie::build(&ds, cfg);
        // Query that the clique *does* contain but whose features were lost.
        let q = g(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let c = trie.candidates(&q);
        assert!(c.contains(0), "truncated graph must stay a candidate");
        assert!(!c.contains(1));
    }

    #[test]
    fn super_candidates_filtering() {
        let ds = small_dataset();
        let trie = PathTrie::build(&ds, FeatureConfig::with_max_len(2));
        // Supergraph query: triangle 0,1,0 with pendant 2 contains graphs 1
        // (triangle) and 3 (edge 0-1), and graph 0 (path 0-1-2).
        let q = g(&[0, 1, 0, 2], &[(0, 1), (1, 2), (0, 2), (1, 3)]);
        let c = trie.super_candidates(&q);
        for (gid, dg) in ds.iter().enumerate() {
            if gc_iso::vf2::exists(dg, &q) {
                assert!(c.contains(gid), "super filter dropped true answer {gid}");
            }
        }
        assert!(!c.contains(2)); // graph 2 is the 3-3 edge; label 3 nowhere in q
    }

    #[test]
    fn super_candidates_sound_small() {
        let ds = small_dataset();
        let trie = PathTrie::build(&ds, FeatureConfig::with_max_len(3));
        let queries = [
            g(&[0, 1], &[(0, 1)]),
            g(&[0, 1, 2, 0], &[(0, 1), (1, 2), (1, 3)]),
            g(&[3, 3, 3], &[(0, 1), (1, 2)]),
        ];
        for q in &queries {
            let c = trie.super_candidates(q);
            for (gid, dg) in ds.iter().enumerate() {
                if gc_iso::vf2::exists(dg, q) {
                    assert!(c.contains(gid));
                }
            }
        }
    }

    #[test]
    fn memory_grows_with_feature_size() {
        let ds = small_dataset();
        let t2 = PathTrie::build(&ds, FeatureConfig::with_max_len(2));
        let t4 = PathTrie::build(&ds, FeatureConfig::with_max_len(4));
        assert!(t4.memory_bytes() >= t2.memory_bytes());
        assert!(t4.node_count() >= t2.node_count());
    }
}
