//! Dynamic, bidirectional containment index over cached query graphs.
//!
//! This is the data structure behind GraphCache's Sub/Super Case Processors
//! (paper Fig. 1), in the spirit of iGQ \[10\]: an inverted index from
//! feature hash to `(entry, count)` postings over the *currently cached*
//! queries, supporting insert (admission) and remove (eviction).
//!
//! For a new query `g` with feature vector `F(g)`:
//!
//! * **sub-case candidates** — cached entries `h` that *may contain* `g`
//!   (`g ⊑ h` possible): every feature of `g` must appear in `h` with at
//!   least `g`'s count;
//! * **super-case candidates** — cached entries `h` *possibly contained in*
//!   `g` (`h ⊑ g`): every feature of `h` must appear in `g` with at least
//!   `h`'s count, checked without touching `h`'s features via the
//!   `Σ min(cnt_h(f), cnt_g(f)) = total(h)` identity over `g`'s features.
//!
//! Both are sound overapproximations; the processors verify candidates with
//! the SI engine.

use crate::extract::{feature_vec, FeatureConfig, FeatureVec};
use gc_graph::Graph;
use std::collections::HashMap;

/// Identifier of an entry in the cache (assigned by the caller).
pub type EntryId = u32;

#[derive(Debug, Default)]
struct Slot {
    features: FeatureVec,
}

/// Inverted feature index over cached query graphs.
#[derive(Debug)]
pub struct QueryIndex {
    cfg: FeatureConfig,
    posting: HashMap<u64, Vec<(EntryId, u32)>>,
    slots: HashMap<EntryId, Slot>,
    /// Entries whose extraction was truncated: always candidates in both
    /// directions (soundness).
    unfiltered: Vec<EntryId>,
}

impl QueryIndex {
    /// New empty index with feature config `cfg`.
    pub fn new(cfg: FeatureConfig) -> Self {
        QueryIndex { cfg, posting: HashMap::new(), slots: HashMap::new(), unfiltered: Vec::new() }
    }

    /// The feature configuration.
    pub fn config(&self) -> &FeatureConfig {
        &self.cfg
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.slots.len() + self.unfiltered.len()
    }

    /// `true` iff no entries are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extract the feature vector of a query under this index's config.
    /// Exposed so the runtime can reuse it across sub/super probes.
    pub fn features_of(&self, g: &Graph) -> FeatureVec {
        feature_vec(g, &self.cfg)
    }

    /// Index a cached query graph under `id`.
    ///
    /// # Panics
    /// Panics if `id` is already present (cache ids are unique by
    /// construction; a duplicate indicates a bookkeeping bug upstream).
    pub fn insert(&mut self, id: EntryId, g: &Graph) {
        let fv = self.features_of(g);
        self.insert_features(id, fv);
    }

    /// Index a cached query by a precomputed feature vector (must have been
    /// produced by [`QueryIndex::features_of`] on the same config).
    pub fn insert_features(&mut self, id: EntryId, fv: FeatureVec) {
        assert!(
            !self.slots.contains_key(&id) && !self.unfiltered.contains(&id),
            "duplicate entry id {id}"
        );
        if fv.truncated() {
            self.unfiltered.push(id);
            return;
        }
        for &(h, c) in fv.items() {
            self.posting.entry(h).or_default().push((id, c));
        }
        self.slots.insert(id, Slot { features: fv });
    }

    /// Remove an entry (cache eviction). Unknown ids are ignored.
    pub fn remove(&mut self, id: EntryId) {
        if let Some(pos) = self.unfiltered.iter().position(|&e| e == id) {
            self.unfiltered.swap_remove(pos);
            return;
        }
        let Some(slot) = self.slots.remove(&id) else { return };
        for &(h, _) in slot.features.items() {
            if let Some(list) = self.posting.get_mut(&h) {
                if let Some(pos) = list.iter().position(|&(e, _)| e == id) {
                    list.swap_remove(pos);
                }
                if list.is_empty() {
                    self.posting.remove(&h);
                }
            }
        }
    }

    /// Cached entries that may *contain* the query (`g ⊑ h` candidates).
    ///
    /// `qf` must come from [`QueryIndex::features_of`].
    pub fn sub_case_candidates(&self, qf: &FeatureVec) -> Vec<EntryId> {
        let mut out: Vec<EntryId> = self.unfiltered.clone();
        if qf.truncated() {
            // Unfilterable query: every entry is a candidate.
            out.extend(self.slots.keys().copied());
            out.sort_unstable();
            return out;
        }
        if qf.is_empty() {
            // The empty query is contained in everything.
            out.extend(self.slots.keys().copied());
            out.sort_unstable();
            return out;
        }
        // acc[e] = number of query features satisfied by e.
        let mut acc: HashMap<EntryId, u32> = HashMap::new();
        let needed = qf.len() as u32;
        for (i, &(h, qc)) in qf.items().iter().enumerate() {
            let Some(list) = self.posting.get(&h) else { return out };
            if i == 0 {
                for &(e, c) in list {
                    if c >= qc {
                        acc.insert(e, 1);
                    }
                }
            } else {
                for &(e, c) in list {
                    if c >= qc {
                        if let Some(a) = acc.get_mut(&e) {
                            // Feature hashes are unique within qf, so each
                            // feature increments at most once per entry.
                            *a += 1;
                        }
                    }
                }
            }
        }
        out.extend(acc.iter().filter(|&(_, &a)| a == needed).map(|(&e, _)| e));
        out.sort_unstable();
        out
    }

    /// Cached entries possibly *contained in* the query (`h ⊑ g` candidates).
    pub fn super_case_candidates(&self, qf: &FeatureVec) -> Vec<EntryId> {
        let mut out: Vec<EntryId> = self.unfiltered.clone();
        if qf.truncated() {
            out.extend(self.slots.keys().copied());
            out.sort_unstable();
            return out;
        }
        // matched[e] = Σ_{f ∈ qf} min(cnt_e(f), cnt_q(f)); e qualifies iff
        // matched[e] == total(e). Entries with no features (empty graphs)
        // qualify trivially.
        let mut matched: HashMap<EntryId, u64> = HashMap::new();
        for &(h, qc) in qf.items() {
            if let Some(list) = self.posting.get(&h) {
                for &(e, c) in list {
                    *matched.entry(e).or_insert(0) += c.min(qc) as u64;
                }
            }
        }
        for (&e, slot) in &self.slots {
            let total = slot.features.total_count();
            if total == 0 || matched.get(&e).copied().unwrap_or(0) == total {
                out.push(e);
            }
        }
        out.sort_unstable();
        out
    }

    /// Approximate heap footprint in bytes (for the "GC memory is ~1% of the
    /// FTV index" comparison of Experiment II).
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.unfiltered.capacity() * std::mem::size_of::<EntryId>();
        for list in self.posting.values() {
            bytes += list.capacity() * std::mem::size_of::<(EntryId, u32)>()
                + std::mem::size_of::<u64>();
        }
        for slot in self.slots.values() {
            bytes += slot.features.memory_bytes();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    fn idx() -> (QueryIndex, Vec<Graph>) {
        let cfg = FeatureConfig::with_max_len(2);
        let cached = vec![
            g(&[0, 1], &[(0, 1)]),                    // 0: edge 0-1
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),         // 1: path 0-1-2
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]), // 2: triangle
            g(&[7], &[]),                             // 3: isolated 7
        ];
        let mut qi = QueryIndex::new(cfg);
        for (i, c) in cached.iter().enumerate() {
            qi.insert(i as EntryId, c);
        }
        (qi, cached)
    }

    #[test]
    fn sub_case_finds_supergraphs() {
        let (qi, cached) = idx();
        // New query = edge 0-1: contained in entries 0, 1, 2.
        let qf = qi.features_of(&g(&[0, 1], &[(0, 1)]));
        let cands = qi.sub_case_candidates(&qf);
        for (e, c) in cached.iter().enumerate() {
            let truly = gc_iso::vf2::exists(&g(&[0, 1], &[(0, 1)]), c);
            if truly {
                assert!(cands.contains(&(e as EntryId)), "missing true sub-case {e}");
            }
        }
        assert!(cands.contains(&0) && cands.contains(&1) && cands.contains(&2));
        assert!(!cands.contains(&3));
    }

    #[test]
    fn super_case_finds_subgraphs() {
        let (qi, _) = idx();
        // New query = triangle 0,1,0 with a pendant 2: entries 0 and 2 are
        // contained in it; entry 1 (path 0-1-2) is too.
        let q = g(&[0, 1, 0, 2], &[(0, 1), (1, 2), (0, 2), (1, 3)]);
        let qf = qi.features_of(&q);
        let cands = qi.super_case_candidates(&qf);
        assert!(cands.contains(&0));
        assert!(cands.contains(&2));
        assert!(!cands.contains(&3)); // label 7 nowhere in q
    }

    #[test]
    fn remove_unindexes() {
        let (mut qi, _) = idx();
        assert_eq!(qi.len(), 4);
        qi.remove(2);
        assert_eq!(qi.len(), 3);
        let qf = qi.features_of(&g(&[0, 1], &[(0, 1)]));
        let cands = qi.sub_case_candidates(&qf);
        assert!(!cands.contains(&2));
        // Removing twice (or unknown ids) is a no-op.
        qi.remove(2);
        qi.remove(99);
        assert_eq!(qi.len(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate entry id")]
    fn duplicate_insert_panics() {
        let (mut qi, _) = idx();
        qi.insert(0, &g(&[0], &[]));
    }

    #[test]
    fn empty_query_semantics() {
        let (qi, _) = idx();
        let qf = qi.features_of(&g(&[], &[]));
        // Empty query is a subgraph of every cached entry...
        assert_eq!(qi.sub_case_candidates(&qf).len(), 4);
        // ...and only contains cached entries that are themselves empty.
        assert!(qi.super_case_candidates(&qf).is_empty());
    }

    #[test]
    fn empty_cached_entry_always_super_candidate() {
        let mut qi = QueryIndex::new(FeatureConfig::default());
        qi.insert(0, &g(&[], &[]));
        let qf = qi.features_of(&g(&[5], &[]));
        assert_eq!(qi.super_case_candidates(&qf), vec![0]);
    }

    #[test]
    fn memory_accounting_positive() {
        let (qi, _) = idx();
        assert!(qi.memory_bytes() > 0);
    }
}
