//! Dynamic, bidirectional containment index over cached query graphs.
//!
//! This is the data structure behind GraphCache's Sub/Super Case Processors
//! (paper Fig. 1), in the spirit of iGQ \[10\]: an inverted index from
//! feature hash to `(entry, count)` postings over the *currently cached*
//! queries, supporting insert (admission) and remove (eviction).
//!
//! For a new query `g` with feature vector `F(g)`:
//!
//! * **sub-case candidates** — cached entries `h` that *may contain* `g`
//!   (`g ⊑ h` possible): every feature of `g` must appear in `h` with at
//!   least `g`'s count;
//! * **super-case candidates** — cached entries `h` *possibly contained in*
//!   `g` (`h ⊑ g`): every feature of `h` must appear in `g` with at least
//!   `h`'s count, checked without touching `h`'s features via the
//!   `Σ min(cnt_h(f), cnt_g(f)) = total(h)` identity over `g`'s features.
//!
//! Both are sound overapproximations; the processors verify candidates with
//! the SI engine.
//!
//! ## Layout
//!
//! Flat postings, no hash maps on the probe path: a churn-proof
//! [`crate::directory`] (sorted hash runs with tombstoned slots and a
//! batched append tail, binary-searched per query feature) indexes posting
//! lists sorted by entry id, so admission/eviction moves at most the small
//! tail run instead of the eager directory's full O(n) memmove per
//! new/drained hash.
//! Sub-case candidacy is a k-way sorted intersection (most selective list
//! first; each step picks two-pointer or galloping by length skew, see
//! [`crate::merge`]); super-case candidacy accumulates the Σmin identity
//! into a dense per-entry counter array. All per-probe state lives in a
//! caller-owned [`CandScratch`], so the steady-state probe path performs
//! **zero heap allocations** (pinned by `tests/alloc_free.rs`) and is
//! property-tested equal to both the HashMap reference
//! ([`crate::reference::RefQueryIndex`]) and the eager-directory reference
//! ([`crate::reference::EagerQueryIndex`]).
//!
//! Entry ids are expected to be *slab-dense* (the cache manager reuses
//! evicted slots), since the dense slot table and counter scratch are sized
//! by the maximum live id.

use crate::directory::{IndexTuning, PostingDir};
use crate::extract::{feature_vec, FeatureConfig, FeatureVec, FeaturesRef};
use crate::merge;
use gc_graph::Graph;

/// Identifier of an entry in the cache (assigned by the caller).
pub type EntryId = u32;

#[derive(Debug)]
struct Slot {
    features: FeatureVec,
    /// Cached `features.total_count()` (the Σmin identity's right-hand
    /// side; recomputing it per probe would rescan the items).
    total: u64,
}

/// Reusable probe state for [`QueryIndex::sub_case_candidates_into`] /
/// [`QueryIndex::super_case_candidates_into`]. One per worker; buffers grow
/// to their high-water mark and stay.
#[derive(Debug, Default)]
pub struct CandScratch {
    /// The result of the most recent probe (sorted ascending entry ids).
    out: Vec<EntryId>,
    cur: Vec<EntryId>,
    next: Vec<EntryId>,
    /// `(directory slot, required count)` per query feature, sorted most
    /// selective first.
    lists: Vec<(u32, u32)>,
    /// Dense Σmin accumulators, indexed by entry id.
    matched: Vec<u64>,
}

impl CandScratch {
    /// Fresh scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The candidates computed by the most recent `*_candidates_into` call,
    /// sorted ascending.
    pub fn candidates(&self) -> &[EntryId] {
        &self.out
    }
}

/// Inverted feature index over cached query graphs.
#[derive(Debug)]
pub struct QueryIndex {
    cfg: FeatureConfig,
    tuning: IndexTuning,
    /// Tombstoned sorted hash directory over posting lists.
    dir: PostingDir,
    /// Dense slot table indexed by entry id.
    slots: Vec<Option<Slot>>,
    live: usize,
    /// Entries whose extraction was truncated: always candidates in both
    /// directions (soundness). Sorted ascending.
    unfiltered: Vec<EntryId>,
}

impl QueryIndex {
    /// New empty index with feature config `cfg` and default tuning.
    pub fn new(cfg: FeatureConfig) -> Self {
        Self::with_tuning(cfg, IndexTuning::default())
    }

    /// New empty index with explicit [`IndexTuning`] (gallop cutoff,
    /// compaction threshold).
    pub fn with_tuning(cfg: FeatureConfig, tuning: IndexTuning) -> Self {
        QueryIndex {
            cfg,
            dir: PostingDir::new(&tuning),
            tuning,
            slots: Vec::new(),
            live: 0,
            unfiltered: Vec::new(),
        }
    }

    /// The feature configuration.
    pub fn config(&self) -> &FeatureConfig {
        &self.cfg
    }

    /// The active tuning knobs.
    pub fn tuning(&self) -> &IndexTuning {
        &self.tuning
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.live + self.unfiltered.len()
    }

    /// `true` iff no entries are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct live feature hashes in the directory.
    pub fn distinct_features(&self) -> usize {
        self.dir.live_slots()
    }

    /// Number of tombstoned directory slots awaiting compaction
    /// (diagnostics; bounded by the tuning's tombstone percentage).
    pub fn tombstoned_slots(&self) -> usize {
        self.dir.tombstoned_slots()
    }

    /// Extract the feature vector of a query under this index's config.
    /// Exposed so the runtime can compute it **once per query** and share it
    /// across the sub probe, the super probe and admission.
    pub fn features_of(&self, g: &Graph) -> FeatureVec {
        feature_vec(g, &self.cfg)
    }

    fn contains_id(&self, id: EntryId) -> bool {
        self.slots.get(id as usize).is_some_and(Option::is_some)
            || self.unfiltered.binary_search(&id).is_ok()
    }

    /// Index a cached query graph under `id`.
    ///
    /// # Panics
    /// Panics if `id` is already present (cache ids are unique by
    /// construction; a duplicate indicates a bookkeeping bug upstream).
    pub fn insert(&mut self, id: EntryId, g: &Graph) {
        let fv = self.features_of(g);
        self.insert_features(id, fv);
    }

    /// Index a cached query by a precomputed feature vector (must have been
    /// produced by [`QueryIndex::features_of`] on the same config — the
    /// admission stage passes the vector the probe stage already
    /// extracted).
    pub fn insert_features(&mut self, id: EntryId, fv: FeatureVec) {
        assert!(!self.contains_id(id), "duplicate entry id {id}");
        if fv.truncated() {
            let at = self.unfiltered.binary_search(&id).unwrap_err();
            self.unfiltered.insert(at, id);
            return;
        }
        for &(h, c) in fv.items() {
            self.dir.insert_posting(h, id, c);
        }
        if self.slots.len() <= id as usize {
            self.slots.resize_with(id as usize + 1, || None);
        }
        let total = fv.total_count();
        self.slots[id as usize] = Some(Slot { features: fv, total });
        self.live += 1;
    }

    /// Remove an entry (cache eviction). Unknown ids are ignored.
    pub fn remove(&mut self, id: EntryId) {
        if let Ok(pos) = self.unfiltered.binary_search(&id) {
            self.unfiltered.remove(pos);
            return;
        }
        let Some(slot) = self.slots.get_mut(id as usize).and_then(Option::take) else { return };
        self.live -= 1;
        for &(h, _) in slot.features.items() {
            self.dir.remove_posting(h, id);
        }
    }

    /// Merge `unfiltered` (sorted) with the sorted candidate run in `cur`
    /// into `out` (all three disjoint-id sorted sequences).
    fn merge_with_unfiltered(&self, cur: &[EntryId], out: &mut Vec<EntryId>) {
        out.clear();
        let (mut i, mut j) = (0, 0);
        while i < self.unfiltered.len() && j < cur.len() {
            if self.unfiltered[i] < cur[j] {
                out.push(self.unfiltered[i]);
                i += 1;
            } else {
                out.push(cur[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&self.unfiltered[i..]);
        out.extend_from_slice(&cur[j..]);
    }

    /// Every indexed entry (unfiltered ∪ live slots), ascending, into
    /// `scratch` (the unfilterable-query fallback).
    fn all_entries_into(&self, scratch: &mut CandScratch) {
        scratch.cur.clear();
        scratch.cur.extend(
            self.slots.iter().enumerate().filter_map(|(id, s)| s.as_ref().map(|_| id as EntryId)),
        );
        let cur = std::mem::take(&mut scratch.cur);
        self.merge_with_unfiltered(&cur, &mut scratch.out);
        scratch.cur = cur;
    }

    /// Cached entries that may *contain* the query (`g ⊑ h` candidates),
    /// written to `scratch` (read them via [`CandScratch::candidates`]).
    ///
    /// `f` must come from an extraction under [`QueryIndex::config`].
    /// Allocation-free once the scratch is warm.
    pub fn sub_case_candidates_into(&self, f: FeaturesRef<'_>, scratch: &mut CandScratch) {
        if f.truncated() || f.is_empty() {
            // Unfilterable query, or the empty query (contained in
            // everything): every entry is a candidate.
            self.all_entries_into(scratch);
            return;
        }
        scratch.lists.clear();
        for &(h, qc) in f.items() {
            match self.dir.find(h) {
                Some(slot) => scratch.lists.push((slot, qc)),
                None => {
                    // A query feature no (filterable) entry has.
                    scratch.out.clear();
                    scratch.out.extend_from_slice(&self.unfiltered);
                    return;
                }
            }
        }
        // Most selective (shortest) posting list first: the running
        // intersection can only shrink, so later merges scan less.
        scratch.lists.sort_unstable_by_key(|&(slot, _)| self.dir.list(slot).len());
        let (s0, qc0) = scratch.lists[0];
        scratch.cur.clear();
        scratch.cur.extend(self.dir.list(s0).iter().filter(|&&(_, c)| c >= qc0).map(|&(e, _)| e));
        for &(slot, qc) in &scratch.lists[1..] {
            if scratch.cur.is_empty() {
                break;
            }
            merge::intersect_adaptive(
                &scratch.cur,
                self.dir.list(slot),
                qc,
                self.tuning.gallop_cutoff,
                &mut scratch.next,
            );
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
        }
        let cur = std::mem::take(&mut scratch.cur);
        self.merge_with_unfiltered(&cur, &mut scratch.out);
        scratch.cur = cur;
    }

    /// Cached entries possibly *contained in* the query (`h ⊑ g`
    /// candidates), written to `scratch`. Allocation-free once the scratch
    /// is warm.
    pub fn super_case_candidates_into(&self, f: FeaturesRef<'_>, scratch: &mut CandScratch) {
        if f.truncated() {
            self.all_entries_into(scratch);
            return;
        }
        // matched[e] = Σ_{f ∈ qf} min(cnt_e(f), cnt_q(f)); e qualifies iff
        // matched[e] == total(e). Entries with no features (empty graphs)
        // qualify trivially.
        scratch.matched.clear();
        scratch.matched.resize(self.slots.len(), 0);
        for &(h, qc) in f.items() {
            if let Some(slot) = self.dir.find(h) {
                for &(e, c) in self.dir.list(slot) {
                    scratch.matched[e as usize] += c.min(qc) as u64;
                }
            }
        }
        scratch.cur.clear();
        for (id, slot) in self.slots.iter().enumerate() {
            if let Some(s) = slot {
                if s.total == 0 || scratch.matched[id] == s.total {
                    scratch.cur.push(id as EntryId);
                }
            }
        }
        let cur = std::mem::take(&mut scratch.cur);
        self.merge_with_unfiltered(&cur, &mut scratch.out);
        scratch.cur = cur;
    }

    /// Cached entries that may *contain* the query (`g ⊑ h` candidates),
    /// sorted ascending. Allocating convenience wrapper over
    /// [`QueryIndex::sub_case_candidates_into`].
    pub fn sub_case_candidates(&self, qf: &FeatureVec) -> Vec<EntryId> {
        let mut scratch = CandScratch::new();
        self.sub_case_candidates_into(qf.as_features(), &mut scratch);
        scratch.out
    }

    /// Cached entries possibly *contained in* the query (`h ⊑ g`
    /// candidates), sorted ascending. Allocating convenience wrapper over
    /// [`QueryIndex::super_case_candidates_into`].
    pub fn super_case_candidates(&self, qf: &FeatureVec) -> Vec<EntryId> {
        let mut scratch = CandScratch::new();
        self.super_case_candidates_into(qf.as_features(), &mut scratch);
        scratch.out
    }

    /// Approximate heap footprint in bytes (for the "GC memory is ~1% of the
    /// FTV index" comparison of Experiment II).
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.unfiltered.capacity() * std::mem::size_of::<EntryId>()
            + self.dir.memory_bytes()
            + self.slots.capacity() * std::mem::size_of::<Option<Slot>>();
        for slot in self.slots.iter().flatten() {
            bytes += slot.features.memory_bytes();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    fn idx() -> (QueryIndex, Vec<Graph>) {
        let cfg = FeatureConfig::with_max_len(2);
        let cached = vec![
            g(&[0, 1], &[(0, 1)]),                    // 0: edge 0-1
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),         // 1: path 0-1-2
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]), // 2: triangle
            g(&[7], &[]),                             // 3: isolated 7
        ];
        let mut qi = QueryIndex::new(cfg);
        for (i, c) in cached.iter().enumerate() {
            qi.insert(i as EntryId, c);
        }
        (qi, cached)
    }

    #[test]
    fn sub_case_finds_supergraphs() {
        let (qi, cached) = idx();
        // New query = edge 0-1: contained in entries 0, 1, 2.
        let qf = qi.features_of(&g(&[0, 1], &[(0, 1)]));
        let cands = qi.sub_case_candidates(&qf);
        for (e, c) in cached.iter().enumerate() {
            let truly = gc_iso::vf2::exists(&g(&[0, 1], &[(0, 1)]), c);
            if truly {
                assert!(cands.contains(&(e as EntryId)), "missing true sub-case {e}");
            }
        }
        assert!(cands.contains(&0) && cands.contains(&1) && cands.contains(&2));
        assert!(!cands.contains(&3));
    }

    #[test]
    fn super_case_finds_subgraphs() {
        let (qi, _) = idx();
        // New query = triangle 0,1,0 with a pendant 2: entries 0 and 2 are
        // contained in it; entry 1 (path 0-1-2) is too.
        let q = g(&[0, 1, 0, 2], &[(0, 1), (1, 2), (0, 2), (1, 3)]);
        let qf = qi.features_of(&q);
        let cands = qi.super_case_candidates(&qf);
        assert!(cands.contains(&0));
        assert!(cands.contains(&2));
        assert!(!cands.contains(&3)); // label 7 nowhere in q
    }

    #[test]
    fn candidates_are_sorted_ascending() {
        let (qi, _) = idx();
        let qf = qi.features_of(&g(&[0, 1], &[(0, 1)]));
        for cands in [qi.sub_case_candidates(&qf), qi.super_case_candidates(&qf)] {
            assert!(cands.windows(2).all(|w| w[0] < w[1]), "unsorted: {cands:?}");
        }
    }

    #[test]
    fn scratch_reuse_is_stable() {
        let (qi, _) = idx();
        let mut scratch = CandScratch::new();
        let qf = qi.features_of(&g(&[0, 1], &[(0, 1)]));
        qi.sub_case_candidates_into(qf.as_features(), &mut scratch);
        let first = scratch.candidates().to_vec();
        // Interleave a super probe, then repeat the sub probe.
        qi.super_case_candidates_into(qf.as_features(), &mut scratch);
        qi.sub_case_candidates_into(qf.as_features(), &mut scratch);
        assert_eq!(scratch.candidates(), first.as_slice());
    }

    #[test]
    fn remove_unindexes() {
        let (mut qi, _) = idx();
        assert_eq!(qi.len(), 4);
        qi.remove(2);
        assert_eq!(qi.len(), 3);
        let qf = qi.features_of(&g(&[0, 1], &[(0, 1)]));
        let cands = qi.sub_case_candidates(&qf);
        assert!(!cands.contains(&2));
        // Removing twice (or unknown ids) is a no-op.
        qi.remove(2);
        qi.remove(99);
        assert_eq!(qi.len(), 3);
    }

    #[test]
    fn slab_id_reuse_after_remove() {
        let (mut qi, _) = idx();
        qi.remove(1);
        // The cache manager reuses freed slots: re-inserting id 1 must work.
        qi.insert(1, &g(&[9, 9], &[(0, 1)]));
        assert_eq!(qi.len(), 4);
        let qf = qi.features_of(&g(&[9], &[]));
        assert_eq!(qi.sub_case_candidates(&qf), vec![1]);
    }

    #[test]
    #[should_panic(expected = "duplicate entry id")]
    fn duplicate_insert_panics() {
        let (mut qi, _) = idx();
        qi.insert(0, &g(&[0], &[]));
    }

    #[test]
    fn empty_query_semantics() {
        let (qi, _) = idx();
        let qf = qi.features_of(&g(&[], &[]));
        // Empty query is a subgraph of every cached entry...
        assert_eq!(qi.sub_case_candidates(&qf).len(), 4);
        // ...and only contains cached entries that are themselves empty.
        assert!(qi.super_case_candidates(&qf).is_empty());
    }

    #[test]
    fn empty_cached_entry_always_super_candidate() {
        let mut qi = QueryIndex::new(FeatureConfig::default());
        qi.insert(0, &g(&[], &[]));
        let qf = qi.features_of(&g(&[5], &[]));
        assert_eq!(qi.super_case_candidates(&qf), vec![0]);
    }

    #[test]
    fn truncated_entry_tracked_in_unfiltered() {
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                edges.push((u, v));
            }
        }
        let clique = g(&[0; 8], &edges);
        let cfg = FeatureConfig { max_len: 6, max_paths: 100 };
        let mut qi = QueryIndex::new(cfg);
        qi.insert(5, &clique);
        qi.insert(2, &g(&[1], &[]));
        assert_eq!(qi.len(), 2);
        // The truncated entry is a candidate for any query, in both
        // directions, and the output stays sorted.
        let qf = qi.features_of(&g(&[1], &[]));
        assert_eq!(qi.sub_case_candidates(&qf), vec![2, 5]);
        assert_eq!(qi.super_case_candidates(&qf), vec![2, 5]);
        qi.remove(5);
        assert_eq!(qi.sub_case_candidates(&qf), vec![2]);
    }

    #[test]
    fn memory_accounting_positive() {
        let (qi, _) = idx();
        assert!(qi.memory_bytes() > 0);
    }

    #[test]
    fn heavy_churn_keeps_candidates_exact() {
        // Cycle 200 admissions/evictions through 8 slab slots with graphs
        // drawn from a wide label alphabet so the directory crosses tail
        // merges and compactions; a final probe must still be exact.
        let cfg = FeatureConfig::with_max_len(2);
        let mut qi = QueryIndex::new(cfg);
        let make =
            |seed: u32| g(&[seed % 97, (seed * 31) % 97, (seed * 7) % 97], &[(0, 1), (1, 2)]);
        for round in 0..200u32 {
            let id = round % 8;
            if round >= 8 {
                qi.remove(id);
            }
            qi.insert(id, &make(round));
        }
        assert_eq!(qi.len(), 8);
        // Entries 192..200 are live; each must be its own sub/super
        // candidate.
        for round in 192..200u32 {
            let qf = qi.features_of(&make(round));
            assert!(qi.sub_case_candidates(&qf).contains(&(round % 8)));
            assert!(qi.super_case_candidates(&qf).contains(&(round % 8)));
        }
    }

    #[test]
    fn gallop_tuning_changes_no_answers() {
        let (qi_default, cached) = idx();
        for cutoff in [1usize, 2, usize::MAX] {
            let mut qi = QueryIndex::with_tuning(
                FeatureConfig::with_max_len(2),
                IndexTuning { gallop_cutoff: cutoff, ..IndexTuning::default() },
            );
            for (i, c) in cached.iter().enumerate() {
                qi.insert(i as EntryId, c);
            }
            for q in &cached {
                let qf = qi.features_of(q);
                assert_eq!(
                    qi.sub_case_candidates(&qf),
                    qi_default.sub_case_candidates(&qf),
                    "cutoff {cutoff} changed sub-case answers"
                );
            }
        }
    }
}
