//! Tree-feature extraction and the tree-feature FTV index.
//!
//! GraphGrepSX indexes *paths*; other FTV systems index *trees* or general
//! subgraphs ("feature is the sub-structure of graph, e.g., a path, tree or
//! subgraph" — paper §3.1). This module provides the tree option:
//!
//! * a *tree feature* is (the canonical form of) a subtree of the graph with
//!   at most `max_edges` edges — enumerated as connected acyclic edge
//!   subsets, canonised with an AHU-style hash rooted at the tree centre;
//! * occurrence counts dominate under non-induced embeddings by the same
//!   injectivity argument as paths (each subtree of the query maps to a
//!   distinct label-isomorphic subtree of the target), so count-domination
//!   filtering is sound in both containment directions.
//!
//! Trees have higher discriminative power than paths of the same size but
//! cost more to enumerate — exactly the trade-off axis of Experiment II.
//!
//! ## Flat layout and streaming enumeration
//!
//! [`TreeIndex`] follows the same flat-array discipline as the path tier:
//! canonical-subtree hashes live in the churn-proof tombstoned
//! [`crate::directory`] (so graphs can be inserted and removed at traffic
//! rates), posting lists are sorted by graph id and intersected
//! word-parallel into a caller-owned bitset, and all per-probe state —
//! including the subtree enumeration itself — lives in a reusable
//! [`TreeScratch`], making the steady-state probe path **zero-allocation**
//! (pinned by `tests/alloc_free.rs`).
//!
//! The enumerator behind it generates each connected acyclic edge subset
//! *exactly once* (no dedup hash set): subtrees are partitioned by their
//! minimum edge index (the *root edge*), grown only with larger-indexed
//! edges that attach a new vertex, and duplicates are cut by the classic
//! skip-exclusion rule — once a sibling branch has considered extension
//! edge `e`, deeper branches of the same node may not use it. The AHU
//! canonical hash is computed over scratch arrays with arithmetic identical
//! to the materializing reference enumerator ([`enumerate_tree_codes`]),
//! which is kept as the executable specification; equivalence of the whole
//! index against [`crate::reference::RefTreeIndex`] is property-tested
//! under interleaved insert/remove/probe schedules.

use crate::directory::{IndexTuning, PostingDir};
use gc_graph::hash::{hash_seq, mix};
use gc_graph::{BitSet, Graph, GraphId, VertexId};
use std::collections::{HashMap, HashSet};

/// Configuration of tree-feature extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum subtree size in edges (0 = single-vertex features).
    pub max_edges: usize,
    /// Safety valve on enumerated subtree occurrences per graph.
    pub max_trees: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_edges: 3, max_trees: 500_000 }
    }
}

impl TreeConfig {
    /// Config with the given maximum subtree size (edges).
    pub fn with_max_edges(max_edges: usize) -> Self {
        TreeConfig { max_edges, ..Default::default() }
    }
}

/// Enumerate the canonical hashes of all subtrees with `0..=max_edges`
/// edges. Returns one hash per subtree *occurrence* (distinct edge set),
/// plus a truncation flag.
///
/// This is the **materializing reference enumerator** (HashSet dedup,
/// per-subset allocations): the production tier streams through
/// [`TreeScratch`] and is property-tested to emit the same code multiset
/// and truncation flag.
pub fn enumerate_tree_codes(g: &Graph, cfg: &TreeConfig) -> (Vec<u64>, bool) {
    let mut out: Vec<u64> = Vec::new();
    let mut truncated = false;

    // 0-edge trees: single vertices.
    for v in g.vertices() {
        out.push(mix(0xA11CE, g.label(v).0 as u64));
    }
    if cfg.max_edges == 0 || g.edge_count() == 0 {
        return (out, truncated);
    }

    // Grow connected acyclic edge sets; dedup by sorted edge list.
    let mut seen: HashSet<Vec<(VertexId, VertexId)>> = HashSet::new();
    let mut stack: Vec<Vec<(VertexId, VertexId)>> = Vec::new();
    for e in g.edges() {
        stack.push(vec![e]);
    }
    while let Some(edges) = stack.pop() {
        let mut key = edges.clone();
        key.sort_unstable();
        if !seen.insert(key) {
            continue;
        }
        if seen.len() > cfg.max_trees {
            truncated = true;
            break;
        }
        out.push(ahu_hash(g, &edges));
        if edges.len() >= cfg.max_edges {
            continue;
        }
        // Extend by one incident edge that adds a NEW vertex (keeps the
        // subgraph acyclic and connected).
        let verts: HashSet<VertexId> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
        for &v in &verts {
            for &w in g.neighbors(v) {
                if !verts.contains(&w) {
                    let mut next = edges.clone();
                    next.push((v.min(w), v.max(w)));
                    stack.push(next);
                }
            }
        }
    }
    (out, truncated)
}

/// AHU-style canonical hash of the tree given by `edges` (labels from `g`).
/// Rooted at the tree centre; for bicentral trees the two rootings are
/// mixed order-insensitively.
fn ahu_hash(g: &Graph, edges: &[(VertexId, VertexId)]) -> u64 {
    let mut adj: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
    for &(u, v) in edges {
        adj.entry(u).or_default().push(v);
        adj.entry(v).or_default().push(u);
    }
    let centers = tree_centers(&adj);
    let h1 = rooted_hash(g, &adj, centers[0], None);
    if centers.len() == 1 {
        mix(0x7EE, h1)
    } else {
        let h2 = rooted_hash(g, &adj, centers[1], None);
        // Order-insensitive combination of the two centre rootings.
        mix(0x7EE, h1.min(h2).wrapping_add(h1.max(h2).rotate_left(17)))
    }
}

fn tree_centers(adj: &HashMap<VertexId, Vec<VertexId>>) -> Vec<VertexId> {
    let mut degree: HashMap<VertexId, usize> = adj.iter().map(|(&v, ns)| (v, ns.len())).collect();
    let mut remaining: HashSet<VertexId> = adj.keys().copied().collect();
    let mut leaves: Vec<VertexId> =
        degree.iter().filter(|&(_, &d)| d <= 1).map(|(&v, _)| v).collect();
    while remaining.len() > 2 {
        let mut next_leaves = Vec::new();
        for &leaf in &leaves {
            remaining.remove(&leaf);
            for &n in &adj[&leaf] {
                if remaining.contains(&n) {
                    let d = degree.get_mut(&n).expect("neighbour tracked");
                    *d -= 1;
                    if *d == 1 {
                        next_leaves.push(n);
                    }
                }
            }
        }
        leaves = next_leaves;
    }
    let mut centers: Vec<VertexId> = remaining.into_iter().collect();
    centers.sort_unstable();
    centers
}

fn rooted_hash(
    g: &Graph,
    adj: &HashMap<VertexId, Vec<VertexId>>,
    v: VertexId,
    parent: Option<VertexId>,
) -> u64 {
    let mut child_hashes: Vec<u64> = adj[&v]
        .iter()
        .filter(|&&w| Some(w) != parent)
        .map(|&w| rooted_hash(g, adj, w, Some(v)))
        .collect();
    child_hashes.sort_unstable();
    let base = mix(0x5AB1E, g.label(v).0 as u64);
    mix(base, hash_seq(child_hashes))
}

/// Sentinel local id for "no parent" in the scratch AHU recursion.
const NO_PARENT: u32 = u32::MAX;

/// Reusable tree-feature extraction and probe state. One per worker;
/// buffers grow to their high-water mark and stay, so steady-state
/// extraction and probing allocate nothing.
#[derive(Debug, Default)]
pub struct TreeScratch {
    // --- per-graph edge arrays + incidence CSR --------------------------
    edge_u: Vec<VertexId>,
    edge_v: Vec<VertexId>,
    inc_start: Vec<u32>,
    inc_edge: Vec<u32>,
    // --- enumeration state ----------------------------------------------
    /// Vertex membership of the current subset.
    in_sub: Vec<bool>,
    /// Skip-exclusion marks per edge.
    excluded: Vec<bool>,
    /// Edge indices of the current subset.
    sub_edges: Vec<u32>,
    /// Subset vertices in join order (first two = root edge endpoints).
    sub_verts: Vec<VertexId>,
    /// Extension-edge stack (per-level ranges live in recursion locals).
    ext: Vec<u32>,
    /// Edges excluded per level, unwound on backtrack.
    excl_trail: Vec<u32>,
    // --- scratch AHU hashing --------------------------------------------
    /// Vertex → local id within the current subset.
    local_id: Vec<u32>,
    /// Local adjacency (outer sized `max_edges + 1`).
    adj: Vec<Vec<u32>>,
    deg: Vec<u32>,
    alive: Vec<bool>,
    leaves: Vec<u32>,
    next_leaves: Vec<u32>,
    /// Per-depth child-hash buffers for the rooted AHU fold.
    child_bufs: Vec<Vec<u64>>,
    // --- outputs ---------------------------------------------------------
    codes: Vec<u64>,
    items: Vec<(u64, u32)>,
    // --- probe state ------------------------------------------------------
    /// `(directory slot, required count)`, sorted most selective first.
    req: Vec<(u32, u32)>,
    /// Dense Σmin accumulators, indexed by graph id.
    matched: Vec<u64>,
}

impl TreeScratch {
    /// Fresh scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enumerate `g`'s canonical subtree codes into `self.codes` (one per
    /// distinct edge set, unsorted) and aggregate them into sorted
    /// `(code, count)` runs in `self.items`. Returns the truncation flag.
    ///
    /// Emits the same code multiset and truncation flag as
    /// [`enumerate_tree_codes`] (property-tested), without allocating once
    /// the buffers are warm.
    fn extract(&mut self, g: &Graph, cfg: &TreeConfig) -> bool {
        self.codes.clear();
        for v in g.vertices() {
            self.codes.push(mix(0xA11CE, g.label(v).0 as u64));
        }
        let truncated = if cfg.max_edges == 0 || g.edge_count() == 0 {
            false
        } else {
            self.prepare(g, cfg);
            self.enumerate(g, cfg)
        };
        self.codes.sort_unstable();
        self.items.clear();
        for i in 0..self.codes.len() {
            let h = self.codes[i];
            match self.items.last_mut() {
                Some((lh, c)) if *lh == h => *c += 1,
                _ => self.items.push((h, 1)),
            }
        }
        truncated
    }

    /// Size the per-graph buffers: edge list, incidence CSR, membership and
    /// exclusion marks, local-AHU arrays.
    fn prepare(&mut self, g: &Graph, cfg: &TreeConfig) {
        let n = g.vertex_count();
        self.edge_u.clear();
        self.edge_v.clear();
        for (u, v) in g.edges() {
            self.edge_u.push(u);
            self.edge_v.push(v);
        }
        let m = self.edge_u.len();
        // Incidence CSR via counting sort.
        self.inc_start.clear();
        self.inc_start.resize(n + 1, 0);
        for i in 0..m {
            self.inc_start[self.edge_u[i] as usize + 1] += 1;
            self.inc_start[self.edge_v[i] as usize + 1] += 1;
        }
        for v in 0..n {
            self.inc_start[v + 1] += self.inc_start[v];
        }
        self.inc_edge.clear();
        self.inc_edge.resize(2 * m, 0);
        // Reuse `deg` as the fill cursor.
        self.deg.clear();
        self.deg.extend_from_slice(&self.inc_start[..n]);
        for e in 0..m {
            for x in [self.edge_u[e], self.edge_v[e]] {
                let cur = &mut self.deg[x as usize];
                self.inc_edge[*cur as usize] = e as u32;
                *cur += 1;
            }
        }
        self.in_sub.clear();
        self.in_sub.resize(n, false);
        self.excluded.clear();
        self.excluded.resize(m, false);
        self.local_id.clear();
        self.local_id.resize(n, 0);
        let k = cfg.max_edges + 1;
        if self.adj.len() < k {
            self.adj.resize_with(k, Vec::new);
        }
        if self.child_bufs.len() < k + 1 {
            self.child_bufs.resize_with(k + 1, Vec::new);
        }
        self.sub_edges.clear();
        self.sub_verts.clear();
        self.ext.clear();
        self.excl_trail.clear();
    }

    /// Duplicate-free subtree enumeration (see module docs). Returns the
    /// truncation flag — identical semantics to the reference enumerator:
    /// truncated iff the number of distinct subtrees exceeds
    /// `cfg.max_trees`.
    fn enumerate(&mut self, g: &Graph, cfg: &TreeConfig) -> bool {
        let m = self.edge_u.len();
        let mut emitted = 0usize;
        let mut truncated = false;
        for r in 0..m as u32 {
            let (u0, v0) = (self.edge_u[r as usize], self.edge_v[r as usize]);
            self.in_sub[u0 as usize] = true;
            self.in_sub[v0 as usize] = true;
            self.sub_edges.push(r);
            self.sub_verts.push(u0);
            self.sub_verts.push(v0);
            self.ext.clear();
            for x in [u0, v0] {
                self.push_fresh_candidates(x, r);
            }
            self.grow(g, r, cfg.max_edges - 1, cfg.max_trees, &mut emitted, &mut truncated);
            self.in_sub[u0 as usize] = false;
            self.in_sub[v0 as usize] = false;
            self.sub_edges.clear();
            self.sub_verts.clear();
            if truncated {
                // Exclusion marks deeper in the aborted branch were already
                // unwound by `grow`; clear any leftovers defensively.
                for &e in &self.excl_trail {
                    self.excluded[e as usize] = false;
                }
                self.excl_trail.clear();
                break;
            }
            debug_assert!(self.excl_trail.is_empty());
        }
        truncated
    }

    /// Append the extension edges discovered by vertex `x` joining the
    /// subset: incident edges with index > `root` whose other endpoint is
    /// outside (each such edge enters the stack exactly once — when its
    /// first endpoint joins).
    #[inline]
    fn push_fresh_candidates(&mut self, x: VertexId, root: u32) {
        let (s, e) = (self.inc_start[x as usize] as usize, self.inc_start[x as usize + 1] as usize);
        for k in s..e {
            let f = self.inc_edge[k];
            if f <= root || self.excluded[f as usize] {
                continue;
            }
            let (fu, fv) = (self.edge_u[f as usize], self.edge_v[f as usize]);
            let other = if fu == x { fv } else { fu };
            if !self.in_sub[other as usize] {
                self.ext.push(f);
            }
        }
    }

    /// Emit the current subset and branch over the extension stack with
    /// skip-exclusion (each acyclic connected superset is reached exactly
    /// once).
    fn grow(
        &mut self,
        g: &Graph,
        root: u32,
        remaining: usize,
        cap: usize,
        emitted: &mut usize,
        truncated: &mut bool,
    ) {
        *emitted += 1;
        if *emitted > cap {
            *truncated = true;
            return;
        }
        let code = self.ahu_subset(g);
        self.codes.push(code);
        if remaining == 0 {
            return;
        }
        let n_ext = self.ext.len();
        let trail_base = self.excl_trail.len();
        for i in 0..n_ext {
            let e = self.ext[i];
            if self.excluded[e as usize] {
                continue;
            }
            let (a, b) = (self.edge_u[e as usize], self.edge_v[e as usize]);
            let (ia, ib) = (self.in_sub[a as usize], self.in_sub[b as usize]);
            if ia && ib {
                // Both endpoints joined since this edge was stacked: adding
                // it now would close a cycle. It stays stacked (it becomes
                // valid again on shallower backtracks), just not chosen.
                continue;
            }
            debug_assert!(ia || ib, "stacked edges touch the subset");
            let x = if ia { b } else { a };
            self.sub_edges.push(e);
            self.sub_verts.push(x);
            self.in_sub[x as usize] = true;
            let ext_mark = self.ext.len();
            self.push_fresh_candidates(x, root);
            self.grow(g, root, remaining - 1, cap, emitted, truncated);
            self.ext.truncate(ext_mark);
            self.in_sub[x as usize] = false;
            self.sub_verts.pop();
            self.sub_edges.pop();
            if *truncated {
                break;
            }
            self.excluded[e as usize] = true;
            self.excl_trail.push(e);
        }
        for &e in &self.excl_trail[trail_base..] {
            self.excluded[e as usize] = false;
        }
        self.excl_trail.truncate(trail_base);
    }

    /// AHU canonical hash of the current subset — same arithmetic as the
    /// reference [`ahu_hash`] (centre rooting, sorted child folds), over
    /// scratch arrays.
    fn ahu_subset(&mut self, g: &Graph) -> u64 {
        let k = self.sub_verts.len();
        debug_assert_eq!(k, self.sub_edges.len() + 1);
        for (i, &v) in self.sub_verts.iter().enumerate() {
            self.local_id[v as usize] = i as u32;
        }
        for a in self.adj[..k].iter_mut() {
            a.clear();
        }
        for i in 0..self.sub_edges.len() {
            let e = self.sub_edges[i] as usize;
            let a = self.local_id[self.edge_u[e] as usize] as usize;
            let b = self.local_id[self.edge_v[e] as usize] as usize;
            self.adj[a].push(b as u32);
            self.adj[b].push(a as u32);
        }
        // Centre(s) by iterative leaf stripping.
        self.deg.clear();
        self.alive.clear();
        self.leaves.clear();
        for i in 0..k {
            let d = self.adj[i].len() as u32;
            self.deg.push(d);
            self.alive.push(true);
            if d <= 1 {
                self.leaves.push(i as u32);
            }
        }
        let mut remaining = k;
        while remaining > 2 {
            self.next_leaves.clear();
            for li in 0..self.leaves.len() {
                let leaf = self.leaves[li] as usize;
                self.alive[leaf] = false;
                remaining -= 1;
                for ni in 0..self.adj[leaf].len() {
                    let n = self.adj[leaf][ni] as usize;
                    if self.alive[n] {
                        self.deg[n] -= 1;
                        if self.deg[n] == 1 {
                            self.next_leaves.push(n as u32);
                        }
                    }
                }
            }
            std::mem::swap(&mut self.leaves, &mut self.next_leaves);
        }
        let mut c1 = NO_PARENT;
        let mut c2 = NO_PARENT;
        for i in 0..k {
            if self.alive[i] {
                if c1 == NO_PARENT {
                    c1 = i as u32;
                } else {
                    c2 = i as u32;
                }
            }
        }
        let h1 = self.rooted(g, c1, NO_PARENT, 0);
        if c2 == NO_PARENT {
            mix(0x7EE, h1)
        } else {
            let h2 = self.rooted(g, c2, NO_PARENT, 0);
            mix(0x7EE, h1.min(h2).wrapping_add(h1.max(h2).rotate_left(17)))
        }
    }

    /// Rooted AHU fold with per-depth child buffers (depth ≤ subset size).
    fn rooted(&mut self, g: &Graph, v: u32, parent: u32, depth: usize) -> u64 {
        let mut buf = std::mem::take(&mut self.child_bufs[depth]);
        buf.clear();
        for j in 0..self.adj[v as usize].len() {
            let w = self.adj[v as usize][j];
            if w != parent {
                buf.push(self.rooted(g, w, v, depth + 1));
            }
        }
        buf.sort_unstable();
        let vertex = self.sub_verts[v as usize];
        let base = mix(0x5AB1E, g.label(vertex).0 as u64);
        let h = mix(base, hash_seq(buf.iter().copied()));
        self.child_bufs[depth] = buf;
        h
    }
}

#[derive(Debug)]
struct TreeSlot {
    /// The graph's aggregated `(code, count)` items (needed for removal).
    items: Vec<(u64, u32)>,
    /// Total code occurrences (Σmin identity right-hand side).
    total: u64,
}

/// Tree-feature FTV index: canonical-subtree hash → per-graph counts, on
/// flat postings behind the tombstoned directory. Supports dynamic graph
/// insertion/removal; probes are allocation-free through a caller-owned
/// [`TreeScratch`].
#[derive(Debug)]
pub struct TreeIndex {
    cfg: TreeConfig,
    dir: PostingDir,
    /// Dense slot table indexed by graph id (`None` = absent/removed).
    slots: Vec<Option<TreeSlot>>,
    live: usize,
    /// Universe of candidate bitsets: high-water `gid + 1`.
    dataset_size: usize,
    /// Graphs whose enumeration was truncated: always candidates (sorted).
    unfiltered: Vec<GraphId>,
}

impl TreeIndex {
    /// New empty index with default tuning.
    pub fn new(cfg: TreeConfig) -> Self {
        Self::with_tuning(cfg, IndexTuning::default())
    }

    /// New empty index with explicit [`IndexTuning`].
    pub fn with_tuning(cfg: TreeConfig, tuning: IndexTuning) -> Self {
        TreeIndex {
            cfg,
            dir: PostingDir::new(&tuning),
            slots: Vec::new(),
            live: 0,
            dataset_size: 0,
            unfiltered: Vec::new(),
        }
    }

    /// Build over `dataset` (graph ids are dataset positions).
    pub fn build(dataset: &[Graph], cfg: TreeConfig) -> Self {
        let mut idx = Self::new(cfg);
        let mut scratch = TreeScratch::new();
        for (gid, g) in dataset.iter().enumerate() {
            idx.insert_graph_with(gid as GraphId, g, &mut scratch);
        }
        idx
    }

    /// The feature configuration.
    pub fn config(&self) -> &TreeConfig {
        &self.cfg
    }

    /// Number of indexed graphs.
    pub fn len(&self) -> usize {
        self.live + self.unfiltered.len()
    }

    /// `true` iff no graphs are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Universe of the candidate bitsets (high-water graph id + 1 —
    /// removal does not shrink it).
    pub fn dataset_size(&self) -> usize {
        self.dataset_size
    }

    /// Number of distinct live subtree codes in the directory.
    pub fn distinct_features(&self) -> usize {
        self.dir.live_slots()
    }

    fn contains_gid(&self, gid: GraphId) -> bool {
        self.slots.get(gid as usize).is_some_and(Option::is_some)
            || self.unfiltered.binary_search(&gid).is_ok()
    }

    /// Index `g` under `gid` (admission for dynamic datasets).
    ///
    /// # Panics
    /// Panics if `gid` is already present.
    pub fn insert_graph(&mut self, gid: GraphId, g: &Graph) {
        let mut scratch = TreeScratch::new();
        self.insert_graph_with(gid, g, &mut scratch);
    }

    /// Like [`TreeIndex::insert_graph`] with a caller-owned enumeration
    /// scratch (bulk builds and admission paths reuse one).
    pub fn insert_graph_with(&mut self, gid: GraphId, g: &Graph, scratch: &mut TreeScratch) {
        assert!(!self.contains_gid(gid), "duplicate graph id {gid}");
        self.dataset_size = self.dataset_size.max(gid as usize + 1);
        let truncated = scratch.extract(g, &self.cfg);
        if truncated {
            let at = self.unfiltered.binary_search(&gid).unwrap_err();
            self.unfiltered.insert(at, gid);
            return;
        }
        let mut total = 0u64;
        for &(code, count) in &scratch.items {
            self.dir.insert_posting(code, gid, count);
            total += count as u64;
        }
        if self.slots.len() <= gid as usize {
            self.slots.resize_with(gid as usize + 1, || None);
        }
        self.slots[gid as usize] = Some(TreeSlot { items: scratch.items.clone(), total });
        self.live += 1;
    }

    /// Remove a graph (eviction for dynamic datasets). Unknown ids are
    /// ignored. The candidate universe does not shrink.
    pub fn remove_graph(&mut self, gid: GraphId) {
        if let Ok(pos) = self.unfiltered.binary_search(&gid) {
            self.unfiltered.remove(pos);
            return;
        }
        let Some(slot) = self.slots.get_mut(gid as usize).and_then(Option::take) else { return };
        self.live -= 1;
        for &(code, _) in &slot.items {
            self.dir.remove_posting(code, gid);
        }
    }

    /// Candidate set for a subgraph query into `out` (universe must be
    /// [`TreeIndex::dataset_size`]): sound overapproximation of the graphs
    /// that may contain `query`. Allocation-free once `scratch` and `out`
    /// are warm.
    pub fn candidates_into(&self, query: &Graph, scratch: &mut TreeScratch, out: &mut BitSet) {
        assert_eq!(out.universe(), self.dataset_size, "candidate universe mismatch");
        if scratch.extract(query, &self.cfg) {
            out.set_all();
            return;
        }
        scratch.req.clear();
        for &(code, need) in &scratch.items {
            match self.dir.find(code) {
                Some(slot) => scratch.req.push((slot, need)),
                None => {
                    // A query subtree no (filterable) graph has.
                    out.clear();
                    for &g in &self.unfiltered {
                        out.insert(g as usize);
                    }
                    return;
                }
            }
        }
        if scratch.req.is_empty() {
            // Featureless query: every live graph qualifies. (Slot gaps —
            // removed gids — must not, so this cannot start from
            // `set_all`.)
            out.clear();
            for (gid, slot) in self.slots.iter().enumerate() {
                if slot.is_some() {
                    out.insert(gid);
                }
            }
        } else {
            // Most selective first, chunk-merged straight into `out` by the
            // dispatched posting kernel (count filter folded in); the
            // first intersection also erases never-indexed gap ids.
            scratch.req.sort_unstable_by_key(|&(slot, _)| self.dir.list(slot).len());
            out.set_all();
            for &(slot, need) in &scratch.req {
                out.intersect_with_postings(self.dir.list(slot), need);
                if out.is_empty() {
                    break;
                }
            }
        }
        for &g in &self.unfiltered {
            out.insert(g as usize);
        }
    }

    /// Candidate set for a supergraph query into `out`, via the Σmin
    /// identity. Sound overapproximation of the graphs possibly contained
    /// in `query`. Allocation-free once `scratch` and `out` are warm.
    pub fn super_candidates_into(
        &self,
        query: &Graph,
        scratch: &mut TreeScratch,
        out: &mut BitSet,
    ) {
        assert_eq!(out.universe(), self.dataset_size, "candidate universe mismatch");
        if scratch.extract(query, &self.cfg) {
            out.set_all();
            return;
        }
        scratch.matched.clear();
        scratch.matched.resize(self.slots.len(), 0);
        for &(code, qc) in &scratch.items {
            if let Some(slot) = self.dir.find(code) {
                for &(gid, c) in self.dir.list(slot) {
                    scratch.matched[gid as usize] += c.min(qc) as u64;
                }
            }
        }
        out.clear();
        for (gid, slot) in self.slots.iter().enumerate() {
            if let Some(s) = slot {
                if s.total == 0 || scratch.matched[gid] == s.total {
                    out.insert(gid);
                }
            }
        }
        for &g in &self.unfiltered {
            out.insert(g as usize);
        }
    }

    /// Candidate set for a subgraph query (allocating wrapper over
    /// [`TreeIndex::candidates_into`]).
    pub fn candidates(&self, query: &Graph) -> BitSet {
        let mut scratch = TreeScratch::new();
        let mut out = BitSet::new(self.dataset_size);
        self.candidates_into(query, &mut scratch, &mut out);
        out
    }

    /// Candidate set for a supergraph query (allocating wrapper over
    /// [`TreeIndex::super_candidates_into`]).
    pub fn super_candidates(&self, query: &Graph) -> BitSet {
        let mut scratch = TreeScratch::new();
        let mut out = BitSet::new(self.dataset_size);
        self.super_candidates_into(query, &mut scratch, &mut out);
        out
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.dir.memory_bytes()
            + self.unfiltered.capacity() * std::mem::size_of::<GraphId>()
            + self.slots.capacity() * std::mem::size_of::<Option<TreeSlot>>();
        for slot in self.slots.iter().flatten() {
            bytes += slot.items.capacity() * std::mem::size_of::<(u64, u32)>();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    /// Streaming extraction must emit exactly the reference code multiset.
    fn stream_codes(gr: &Graph, cfg: &TreeConfig) -> (Vec<u64>, bool) {
        let mut s = TreeScratch::new();
        let truncated = s.extract(gr, cfg);
        (s.codes.clone(), truncated)
    }

    #[test]
    fn streaming_enumeration_matches_reference() {
        let graphs = [
            g(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]),
            g(&[0, 1, 2, 1], &[(0, 1), (1, 2), (2, 3), (0, 3)]),
            g(&[5, 5, 5], &[(0, 1), (1, 2), (0, 2)]),
            g(&[1, 2, 3, 4, 5], &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]),
            g(&[3], &[]),
            g(&[], &[]),
        ];
        for gr in &graphs {
            for max_edges in 0..5 {
                let cfg = TreeConfig::with_max_edges(max_edges);
                let (mut want, wt) = enumerate_tree_codes(gr, &cfg);
                let (mut got, gt) = stream_codes(gr, &cfg);
                want.sort_unstable();
                got.sort_unstable();
                assert_eq!(gt, wt, "truncation flag diverged at T={max_edges}");
                assert_eq!(got, want, "code multiset diverged at T={max_edges}");
            }
        }
    }

    #[test]
    fn streaming_truncation_matches_reference() {
        let mut edges = Vec::new();
        for u in 0..7u32 {
            for v in (u + 1)..7 {
                edges.push((u, v));
            }
        }
        let clique = g(&[0; 7], &edges);
        for max_trees in [1usize, 10, 50, 100_000] {
            let cfg = TreeConfig { max_edges: 4, max_trees };
            let (_, wt) = enumerate_tree_codes(&clique, &cfg);
            let (_, gt) = stream_codes(&clique, &cfg);
            assert_eq!(gt, wt, "truncation flag diverged at cap {max_trees}");
        }
    }

    #[test]
    fn star_and_path_have_different_codes() {
        // Same label multiset and edge count, different shape: tree features
        // distinguish them where length-2 path features cannot fully.
        let star = g(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        let path = g(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        let cfg = TreeConfig::with_max_edges(3);
        let (mut cs, _) = stream_codes(&star, &cfg);
        let (mut cp, _) = stream_codes(&path, &cfg);
        cs.sort_unstable();
        cp.sort_unstable();
        assert_ne!(cs, cp);
    }

    #[test]
    fn codes_are_isomorphism_invariant() {
        let a = g(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let b = g(&[2, 1, 0], &[(0, 1), (1, 2)]); // same path reversed
        let cfg = TreeConfig::with_max_edges(2);
        let (mut ca, _) = stream_codes(&a, &cfg);
        let (mut cb, _) = stream_codes(&b, &cfg);
        ca.sort_unstable();
        cb.sort_unstable();
        assert_eq!(ca, cb);
    }

    fn small_dataset() -> Vec<Graph> {
        vec![
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]),
            g(&[3, 3], &[(0, 1)]),
            g(&[0, 1], &[(0, 1)]),
            g(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]),
        ]
    }

    #[test]
    fn filter_is_sound_vs_vf2() {
        let ds = small_dataset();
        let idx = TreeIndex::build(&ds, TreeConfig::with_max_edges(3));
        let queries = [
            g(&[0, 1], &[(0, 1)]),
            g(&[0, 0, 0], &[(0, 1), (0, 2)]),
            g(&[1], &[]),
            g(&[0, 1, 0], &[(0, 1), (1, 2)]),
        ];
        for q in &queries {
            let c = idx.candidates(q);
            for (gid, dg) in ds.iter().enumerate() {
                if gc_iso::vf2::exists(q, dg) {
                    assert!(c.contains(gid), "tree filter dropped true answer {gid}");
                }
            }
        }
    }

    #[test]
    fn super_filter_is_sound_vs_vf2() {
        let ds = small_dataset();
        let idx = TreeIndex::build(&ds, TreeConfig::with_max_edges(3));
        let q = g(&[0, 1, 0, 2], &[(0, 1), (1, 2), (0, 2), (1, 3)]);
        let c = idx.super_candidates(&q);
        for (gid, dg) in ds.iter().enumerate() {
            if gc_iso::vf2::exists(dg, &q) {
                assert!(c.contains(gid), "tree super filter dropped {gid}");
            }
        }
    }

    #[test]
    fn star_query_filters_paths_out() {
        let ds = small_dataset();
        let idx = TreeIndex::build(&ds, TreeConfig::with_max_edges(3));
        // 3-star of label 0 fits only in graph 4.
        let q = g(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        let c = idx.candidates(&q);
        assert_eq!(c.to_vec(), vec![4]);
    }

    #[test]
    fn memory_grows_with_size() {
        let ds = small_dataset();
        let small = TreeIndex::build(&ds, TreeConfig::with_max_edges(1));
        let large = TreeIndex::build(&ds, TreeConfig::with_max_edges(4));
        assert!(large.memory_bytes() >= small.memory_bytes());
    }

    #[test]
    fn truncation_keeps_graph_unfiltered() {
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                edges.push((u, v));
            }
        }
        let clique = g(&[0; 8], &edges);
        let ds = vec![clique, g(&[1], &[])];
        let idx = TreeIndex::build(&ds, TreeConfig { max_edges: 5, max_trees: 50 });
        let q = g(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        assert!(idx.candidates(&q).contains(0));
    }

    #[test]
    fn dynamic_insert_remove_roundtrip() {
        let ds = small_dataset();
        let built = TreeIndex::build(&ds, TreeConfig::with_max_edges(3));
        let mut dynamic = TreeIndex::new(TreeConfig::with_max_edges(3));
        for (gid, gr) in ds.iter().enumerate() {
            dynamic.insert_graph(gid as GraphId, gr);
        }
        // Remove then re-insert a middle graph; answers must match a clean
        // build on every query.
        dynamic.remove_graph(1);
        dynamic.remove_graph(1); // double remove is a no-op
        dynamic.insert_graph(1, &ds[1]);
        for q in &ds {
            assert_eq!(dynamic.candidates(q), built.candidates(q));
            assert_eq!(dynamic.super_candidates(q), built.super_candidates(q));
        }
        dynamic.remove_graph(3);
        let q = g(&[0, 1], &[(0, 1)]);
        assert!(!dynamic.candidates(&q).contains(3), "removed graph still a candidate");
    }

    #[test]
    #[should_panic(expected = "duplicate graph id")]
    fn duplicate_insert_panics() {
        let ds = small_dataset();
        let mut idx = TreeIndex::build(&ds, TreeConfig::with_max_edges(2));
        idx.insert_graph(0, &ds[0]);
    }

    #[test]
    fn scratch_reuse_is_stable() {
        let ds = small_dataset();
        let idx = TreeIndex::build(&ds, TreeConfig::with_max_edges(3));
        let mut scratch = TreeScratch::new();
        let mut out = BitSet::new(idx.dataset_size());
        let queries =
            [g(&[0, 1], &[(0, 1)]), g(&[9], &[]), g(&[0, 0, 0], &[(0, 1), (0, 2)]), g(&[], &[])];
        for q in &queries {
            idx.candidates_into(q, &mut scratch, &mut out);
            assert_eq!(out, idx.candidates(q), "shared scratch changed the answer");
            idx.super_candidates_into(q, &mut scratch, &mut out);
            assert_eq!(out, idx.super_candidates(q));
        }
    }
}
