//! Tree-feature extraction and the tree-feature FTV index.
//!
//! GraphGrepSX indexes *paths*; other FTV systems index *trees* or general
//! subgraphs ("feature is the sub-structure of graph, e.g., a path, tree or
//! subgraph" — paper §3.1). This module provides the tree option:
//!
//! * a *tree feature* is (the canonical form of) a subtree of the graph with
//!   at most `max_edges` edges — enumerated as connected acyclic edge
//!   subsets, canonised with an AHU-style hash rooted at the tree centre;
//! * occurrence counts dominate under non-induced embeddings by the same
//!   injectivity argument as paths (each subtree of the query maps to a
//!   distinct label-isomorphic subtree of the target), so count-domination
//!   filtering is sound in both containment directions.
//!
//! Trees have higher discriminative power than paths of the same size but
//! cost more to enumerate — exactly the trade-off axis of Experiment II.

use gc_graph::hash::{hash_seq, mix};
use gc_graph::{BitSet, Graph, GraphId, VertexId};
use std::collections::{HashMap, HashSet};

/// Configuration of tree-feature extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum subtree size in edges (0 = single-vertex features).
    pub max_edges: usize,
    /// Safety valve on enumerated subtree occurrences per graph.
    pub max_trees: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_edges: 3, max_trees: 500_000 }
    }
}

impl TreeConfig {
    /// Config with the given maximum subtree size (edges).
    pub fn with_max_edges(max_edges: usize) -> Self {
        TreeConfig { max_edges, ..Default::default() }
    }
}

/// Enumerate the canonical hashes of all subtrees with `0..=max_edges`
/// edges. Returns one hash per subtree *occurrence* (distinct edge set),
/// plus a truncation flag.
pub fn enumerate_tree_codes(g: &Graph, cfg: &TreeConfig) -> (Vec<u64>, bool) {
    let mut out: Vec<u64> = Vec::new();
    let mut truncated = false;

    // 0-edge trees: single vertices.
    for v in g.vertices() {
        out.push(mix(0xA11CE, g.label(v).0 as u64));
    }
    if cfg.max_edges == 0 || g.edge_count() == 0 {
        return (out, truncated);
    }

    // Grow connected acyclic edge sets; dedup by sorted edge list.
    let mut seen: HashSet<Vec<(VertexId, VertexId)>> = HashSet::new();
    let mut stack: Vec<Vec<(VertexId, VertexId)>> = Vec::new();
    for e in g.edges() {
        stack.push(vec![e]);
    }
    while let Some(edges) = stack.pop() {
        let mut key = edges.clone();
        key.sort_unstable();
        if !seen.insert(key) {
            continue;
        }
        if seen.len() > cfg.max_trees {
            truncated = true;
            break;
        }
        out.push(ahu_hash(g, &edges));
        if edges.len() >= cfg.max_edges {
            continue;
        }
        // Extend by one incident edge that adds a NEW vertex (keeps the
        // subgraph acyclic and connected).
        let verts: HashSet<VertexId> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
        for &v in &verts {
            for &w in g.neighbors(v) {
                if !verts.contains(&w) {
                    let mut next = edges.clone();
                    next.push((v.min(w), v.max(w)));
                    stack.push(next);
                }
            }
        }
    }
    (out, truncated)
}

/// AHU-style canonical hash of the tree given by `edges` (labels from `g`).
/// Rooted at the tree centre; for bicentral trees the two rootings are
/// mixed order-insensitively.
fn ahu_hash(g: &Graph, edges: &[(VertexId, VertexId)]) -> u64 {
    let mut adj: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
    for &(u, v) in edges {
        adj.entry(u).or_default().push(v);
        adj.entry(v).or_default().push(u);
    }
    let centers = tree_centers(&adj);
    let h1 = rooted_hash(g, &adj, centers[0], None);
    if centers.len() == 1 {
        mix(0x7EE, h1)
    } else {
        let h2 = rooted_hash(g, &adj, centers[1], None);
        // Order-insensitive combination of the two centre rootings.
        mix(0x7EE, h1.min(h2).wrapping_add(h1.max(h2).rotate_left(17)))
    }
}

fn tree_centers(adj: &HashMap<VertexId, Vec<VertexId>>) -> Vec<VertexId> {
    let mut degree: HashMap<VertexId, usize> = adj.iter().map(|(&v, ns)| (v, ns.len())).collect();
    let mut remaining: HashSet<VertexId> = adj.keys().copied().collect();
    let mut leaves: Vec<VertexId> =
        degree.iter().filter(|&(_, &d)| d <= 1).map(|(&v, _)| v).collect();
    while remaining.len() > 2 {
        let mut next_leaves = Vec::new();
        for &leaf in &leaves {
            remaining.remove(&leaf);
            for &n in &adj[&leaf] {
                if remaining.contains(&n) {
                    let d = degree.get_mut(&n).expect("neighbour tracked");
                    *d -= 1;
                    if *d == 1 {
                        next_leaves.push(n);
                    }
                }
            }
        }
        leaves = next_leaves;
    }
    let mut centers: Vec<VertexId> = remaining.into_iter().collect();
    centers.sort_unstable();
    centers
}

fn rooted_hash(
    g: &Graph,
    adj: &HashMap<VertexId, Vec<VertexId>>,
    v: VertexId,
    parent: Option<VertexId>,
) -> u64 {
    let mut child_hashes: Vec<u64> = adj[&v]
        .iter()
        .filter(|&&w| Some(w) != parent)
        .map(|&w| rooted_hash(g, adj, w, Some(v)))
        .collect();
    child_hashes.sort_unstable();
    let base = mix(0x5AB1E, g.label(v).0 as u64);
    mix(base, hash_seq(child_hashes))
}

#[derive(Debug, Default)]
struct Postings(Vec<(GraphId, u32)>);

/// Tree-feature FTV index: canonical-subtree hash → per-graph counts.
#[derive(Debug)]
pub struct TreeIndex {
    cfg: TreeConfig,
    postings: HashMap<u64, Postings>,
    totals: Vec<u64>,
    dataset_size: usize,
    unfiltered: Vec<GraphId>,
}

impl TreeIndex {
    /// Build over `dataset`.
    pub fn build(dataset: &[Graph], cfg: TreeConfig) -> Self {
        let mut idx = TreeIndex {
            cfg,
            postings: HashMap::new(),
            totals: vec![0; dataset.len()],
            dataset_size: dataset.len(),
            unfiltered: Vec::new(),
        };
        for (gid, g) in dataset.iter().enumerate() {
            let (codes, truncated) = enumerate_tree_codes(g, &cfg);
            if truncated {
                idx.unfiltered.push(gid as GraphId);
                continue;
            }
            idx.totals[gid] = codes.len() as u64;
            let mut counts: HashMap<u64, u32> = HashMap::new();
            for c in codes {
                *counts.entry(c).or_insert(0) += 1;
            }
            for (code, count) in counts {
                idx.postings.entry(code).or_default().0.push((gid as GraphId, count));
            }
        }
        idx
    }

    /// The feature configuration.
    pub fn config(&self) -> &TreeConfig {
        &self.cfg
    }

    /// Candidate set for a subgraph query (sound overapproximation).
    pub fn candidates(&self, query: &Graph) -> BitSet {
        let (codes, truncated) = enumerate_tree_codes(query, &self.cfg);
        if truncated {
            return BitSet::full(self.dataset_size);
        }
        let mut required: HashMap<u64, u32> = HashMap::new();
        for c in codes {
            *required.entry(c).or_insert(0) += 1;
        }
        let mut cands = BitSet::full(self.dataset_size);
        let mut scratch = BitSet::new(self.dataset_size);
        // Most selective first.
        let mut reqs: Vec<(u64, u32)> = required.into_iter().collect();
        reqs.sort_by_key(|&(code, _)| self.postings.get(&code).map_or(0, |p| p.0.len()));
        for (code, need) in reqs {
            let Some(list) = self.postings.get(&code) else {
                return BitSet::from_indices(
                    self.dataset_size,
                    self.unfiltered.iter().map(|&g| g as usize),
                );
            };
            scratch.clear();
            for &(gid, c) in &list.0 {
                if c >= need {
                    scratch.insert(gid as usize);
                }
            }
            cands.intersect_with(&scratch);
            if cands.is_empty() {
                break;
            }
        }
        for &g in &self.unfiltered {
            cands.insert(g as usize);
        }
        cands
    }

    /// Candidate set for a supergraph query via the Σmin identity.
    pub fn super_candidates(&self, query: &Graph) -> BitSet {
        let (codes, truncated) = enumerate_tree_codes(query, &self.cfg);
        if truncated {
            return BitSet::full(self.dataset_size);
        }
        let mut qcounts: HashMap<u64, u32> = HashMap::new();
        for c in codes {
            *qcounts.entry(c).or_insert(0) += 1;
        }
        let mut matched = vec![0u64; self.dataset_size];
        for (code, qc) in qcounts {
            if let Some(list) = self.postings.get(&code) {
                for &(gid, c) in &list.0 {
                    matched[gid as usize] += c.min(qc) as u64;
                }
            }
        }
        let mut out = BitSet::new(self.dataset_size);
        for (gid, (&m, &t)) in matched.iter().zip(&self.totals).enumerate() {
            if m == t {
                out.insert(gid);
            }
        }
        for &g in &self.unfiltered {
            out.insert(g as usize);
        }
        out
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.totals.capacity() * std::mem::size_of::<u64>()
            + self.unfiltered.capacity() * std::mem::size_of::<GraphId>();
        for p in self.postings.values() {
            bytes +=
                p.0.capacity() * std::mem::size_of::<(GraphId, u32)>() + std::mem::size_of::<u64>();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    #[test]
    fn star_and_path_have_different_codes() {
        // Same label multiset and edge count, different shape: tree features
        // distinguish them where length-2 path features cannot fully.
        let star = g(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        let path = g(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        let cfg = TreeConfig::with_max_edges(3);
        let (mut cs, _) = enumerate_tree_codes(&star, &cfg);
        let (mut cp, _) = enumerate_tree_codes(&path, &cfg);
        cs.sort_unstable();
        cp.sort_unstable();
        // Same vertex/edge features, but the 2- and 3-edge subtrees differ
        // (S3 vs P4 and their counts), so the multisets must differ.
        assert_ne!(cs, cp);
        // And the full star's own code never occurs in the path.
        let star_code = *enumerate_tree_codes(&star, &TreeConfig::with_max_edges(3))
            .0
            .iter()
            .find(|c| !cp.contains(c))
            .expect("some star code must be absent from the path");
        assert!(!cp.contains(&star_code));
    }

    #[test]
    fn codes_are_isomorphism_invariant() {
        let a = g(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let b = g(&[2, 1, 0], &[(0, 1), (1, 2)]); // same path reversed
        let cfg = TreeConfig::with_max_edges(2);
        let (mut ca, _) = enumerate_tree_codes(&a, &cfg);
        let (mut cb, _) = enumerate_tree_codes(&b, &cfg);
        ca.sort_unstable();
        cb.sort_unstable();
        assert_eq!(ca, cb);
    }

    fn small_dataset() -> Vec<Graph> {
        vec![
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]),
            g(&[3, 3], &[(0, 1)]),
            g(&[0, 1], &[(0, 1)]),
            g(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]),
        ]
    }

    #[test]
    fn filter_is_sound_vs_vf2() {
        let ds = small_dataset();
        let idx = TreeIndex::build(&ds, TreeConfig::with_max_edges(3));
        let queries = [
            g(&[0, 1], &[(0, 1)]),
            g(&[0, 0, 0], &[(0, 1), (0, 2)]),
            g(&[1], &[]),
            g(&[0, 1, 0], &[(0, 1), (1, 2)]),
        ];
        for q in &queries {
            let c = idx.candidates(q);
            for (gid, dg) in ds.iter().enumerate() {
                if gc_iso::vf2::exists(q, dg) {
                    assert!(c.contains(gid), "tree filter dropped true answer {gid}");
                }
            }
        }
    }

    #[test]
    fn super_filter_is_sound_vs_vf2() {
        let ds = small_dataset();
        let idx = TreeIndex::build(&ds, TreeConfig::with_max_edges(3));
        let q = g(&[0, 1, 0, 2], &[(0, 1), (1, 2), (0, 2), (1, 3)]);
        let c = idx.super_candidates(&q);
        for (gid, dg) in ds.iter().enumerate() {
            if gc_iso::vf2::exists(dg, &q) {
                assert!(c.contains(gid), "tree super filter dropped {gid}");
            }
        }
    }

    #[test]
    fn star_query_filters_paths_out() {
        let ds = small_dataset();
        let idx = TreeIndex::build(&ds, TreeConfig::with_max_edges(3));
        // 3-star of label 0 fits only in graph 4.
        let q = g(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        let c = idx.candidates(&q);
        assert_eq!(c.to_vec(), vec![4]);
    }

    #[test]
    fn memory_grows_with_size() {
        let ds = small_dataset();
        let small = TreeIndex::build(&ds, TreeConfig::with_max_edges(1));
        let large = TreeIndex::build(&ds, TreeConfig::with_max_edges(4));
        assert!(large.memory_bytes() >= small.memory_bytes());
    }

    #[test]
    fn truncation_keeps_graph_unfiltered() {
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                edges.push((u, v));
            }
        }
        let clique = g(&[0; 8], &edges);
        let ds = vec![clique, g(&[1], &[])];
        let idx = TreeIndex::build(&ds, TreeConfig { max_edges: 5, max_trees: 50 });
        let q = g(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        assert!(idx.candidates(&q).contains(0));
    }
}
