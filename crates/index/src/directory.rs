//! Churn-proof sorted posting directory shared by the dynamic indexes.
//!
//! The previous `QueryIndex` kept one eagerly-sorted `Vec<u64>` hash
//! directory: every admission inserting a *new* feature hash paid a
//! `Vec::insert` memmove over the whole directory, and every eviction that
//! emptied a posting list paid the matching `Vec::remove` — O(n) per
//! operation, which dominates admission/eviction-heavy workloads once the
//! directory holds tens of thousands of distinct hashes (ROADMAP item
//! "QueryIndex directory maintenance is O(n) per new hash").
//!
//! [`PostingDir`] replaces that with two classic amortization tricks:
//!
//! * **tombstoned slots** — removal never compacts the directory. A slot
//!   whose posting list drains empty becomes a *tombstone*: its hash stays
//!   in place (so binary search still works) but lookups treat it as
//!   absent. When tombstones reach [`IndexTuning::compact_tombstone_pct`]
//!   percent of all slots, one O(n) compaction sweep reclaims them —
//!   amortized O(1) per removal.
//! * **batched append-and-merge** — insertion of a new hash goes into a
//!   small sorted *tail* run (bounded by `max(16, main/16)` slots), kept
//!   disjoint from the sorted *main* run. Lookups binary-search both runs
//!   (two O(log n) probes). When the tail outgrows its bound it is merged
//!   into the main run in one sweep, so each insertion memmoves at most
//!   the tail — a ~16× cut of the per-insert move cost versus shifting
//!   the whole directory, plus the amortized merge.
//!
//! Probe paths address slots by the opaque index returned from
//! [`PostingDir::find`]; any mutation may invalidate those indices, so they
//! must not be held across inserts/removals (the probes never mutate).
//! Equivalence with the eager directory is property-tested in
//! `tests/prop.rs` against [`crate::reference::EagerQueryIndex`].

/// Tuning knobs of the dynamic posting indexes ([`crate::QueryIndex`],
/// [`crate::TreeIndex`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexTuning {
    /// Posting-list length ratio (longer/shorter) at or above which one
    /// step of the k-way sub-case merge switches from two-pointer scanning
    /// to a galloping (exponential-search) intersection over the longer
    /// list. `1` gallops always; large values effectively disable it. See
    /// [`crate::merge`].
    pub gallop_cutoff: usize,
    /// Compact the posting directory when tombstoned slots reach this
    /// percentage of all directory slots (1..=100).
    pub compact_tombstone_pct: usize,
}

impl Default for IndexTuning {
    fn default() -> Self {
        IndexTuning { gallop_cutoff: 8, compact_tombstone_pct: 50 }
    }
}

impl IndexTuning {
    /// Compaction never triggers below this many tombstones, regardless of
    /// [`IndexTuning::compact_tombstone_pct`] (tiny directories are cheap
    /// to scan anyway). Exposed so health checks can assert the real
    /// trigger.
    pub const COMPACT_MIN: usize = 8;

    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.gallop_cutoff == 0 {
            return Err("gallop_cutoff must be >= 1".into());
        }
        if self.compact_tombstone_pct == 0 || self.compact_tombstone_pct > 100 {
            return Err("compact_tombstone_pct must be in 1..=100".into());
        }
        Ok(())
    }
}

/// One posting: `(id, count)` — entry id for the query index, graph id for
/// the tree index.
pub(crate) type Posting = (u32, u32);

/// Minimum tail capacity before a merge is considered.
const TAIL_MIN: usize = 16;
/// Tail is merged when it exceeds `main_len >> TAIL_SHIFT` (and `TAIL_MIN`).
const TAIL_SHIFT: usize = 4;

/// Sorted hash directory with tombstoned slots and a batched append tail.
///
/// A slot is *live* iff its posting list is non-empty; an empty list is a
/// tombstone. The `main` and `tail` runs are individually sorted and hold
/// disjoint hashes.
#[derive(Debug, Default)]
pub(crate) struct PostingDir {
    main: Vec<u64>,
    main_posts: Vec<Vec<Posting>>,
    tail: Vec<u64>,
    tail_posts: Vec<Vec<Posting>>,
    tombstones: usize,
    compact_pct: usize,
}

impl PostingDir {
    pub(crate) fn new(tuning: &IndexTuning) -> Self {
        PostingDir { compact_pct: tuning.compact_tombstone_pct, ..PostingDir::default() }
    }

    /// Opaque slot index of a *live* `hash`, usable with
    /// [`PostingDir::list`] until the next mutation.
    #[inline]
    pub(crate) fn find(&self, hash: u64) -> Option<u32> {
        if let Ok(i) = self.main.binary_search(&hash) {
            return (!self.main_posts[i].is_empty()).then_some(i as u32);
        }
        if let Ok(i) = self.tail.binary_search(&hash) {
            return (!self.tail_posts[i].is_empty()).then_some((self.main.len() + i) as u32);
        }
        None
    }

    /// Posting list of a slot returned by [`PostingDir::find`], sorted by
    /// id.
    #[inline]
    pub(crate) fn list(&self, slot: u32) -> &[Posting] {
        let slot = slot as usize;
        if slot < self.main.len() {
            &self.main_posts[slot]
        } else {
            &self.tail_posts[slot - self.main.len()]
        }
    }

    /// Insert `(id, count)` under `hash`, creating (or reviving) the slot.
    ///
    /// # Panics
    /// Panics if `id` already has a posting under `hash` (each id
    /// contributes one posting per feature by construction).
    pub(crate) fn insert_posting(&mut self, hash: u64, id: u32, count: u32) {
        // `revived`: the hash already had a slot whose list had drained —
        // a tombstone coming back to life (fresh tail slots are not
        // tombstones).
        let (list, revived) = match self.main.binary_search(&hash) {
            Ok(i) => {
                let empty = self.main_posts[i].is_empty();
                (&mut self.main_posts[i], empty)
            }
            Err(_) => match self.tail.binary_search(&hash) {
                Ok(i) => {
                    let empty = self.tail_posts[i].is_empty();
                    (&mut self.tail_posts[i], empty)
                }
                Err(i) => {
                    self.tail.insert(i, hash);
                    self.tail_posts.insert(i, Vec::new());
                    (&mut self.tail_posts[i], false)
                }
            },
        };
        let at = list
            .binary_search_by_key(&id, |&(e, _)| e)
            .expect_err("ids are unique per feature hash");
        list.insert(at, (id, count));
        if revived {
            self.tombstones -= 1;
        }
        if self.tail.len() > TAIL_MIN.max(self.main.len() >> TAIL_SHIFT) {
            self.rebuild();
        }
    }

    /// Remove `id`'s posting under `hash` (missing hash/id is a no-op). A
    /// drained list becomes a tombstone; crossing the tombstone threshold
    /// compacts the directory.
    pub(crate) fn remove_posting(&mut self, hash: u64, id: u32) {
        let list = match self.main.binary_search(&hash) {
            Ok(i) => &mut self.main_posts[i],
            Err(_) => match self.tail.binary_search(&hash) {
                Ok(i) => &mut self.tail_posts[i],
                Err(_) => return,
            },
        };
        if let Ok(pos) = list.binary_search_by_key(&id, |&(e, _)| e) {
            list.remove(pos);
            if list.is_empty() {
                self.tombstones += 1;
                let total = self.main.len() + self.tail.len();
                if self.tombstones >= IndexTuning::COMPACT_MIN
                    && self.tombstones * 100 >= self.compact_pct * total
                {
                    self.rebuild();
                }
            }
        }
    }

    /// Merge the tail into the main run, dropping tombstones (one sweep
    /// serves both the batched append and the lazy compaction).
    fn rebuild(&mut self) {
        let live = self.main.len() + self.tail.len() - self.tombstones;
        let mut keys = Vec::with_capacity(live);
        let mut posts = Vec::with_capacity(live);
        let main_keys = std::mem::take(&mut self.main);
        let main_posts = std::mem::take(&mut self.main_posts);
        let tail_keys = std::mem::take(&mut self.tail);
        let tail_posts = std::mem::take(&mut self.tail_posts);
        let mut a = main_keys.into_iter().zip(main_posts).peekable();
        let mut b = tail_keys.into_iter().zip(tail_posts).peekable();
        loop {
            let take_a = match (a.peek(), b.peek()) {
                (Some((ka, _)), Some((kb, _))) => ka < kb,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (k, p) = if take_a { a.next() } else { b.next() }.expect("peeked");
            if !p.is_empty() {
                keys.push(k);
                posts.push(p);
            }
        }
        self.main = keys;
        self.main_posts = posts;
        self.tombstones = 0;
    }

    /// Number of live (non-tombstone) slots.
    pub(crate) fn live_slots(&self) -> usize {
        self.main.len() + self.tail.len() - self.tombstones
    }

    /// Number of tombstoned slots currently awaiting compaction.
    pub(crate) fn tombstoned_slots(&self) -> usize {
        self.tombstones
    }

    /// Approximate heap footprint in bytes.
    pub(crate) fn memory_bytes(&self) -> usize {
        let mut bytes = (self.main.capacity() + self.tail.capacity()) * std::mem::size_of::<u64>()
            + (self.main_posts.capacity() + self.tail_posts.capacity())
                * std::mem::size_of::<Vec<Posting>>();
        for list in self.main_posts.iter().chain(&self.tail_posts) {
            bytes += list.capacity() * std::mem::size_of::<Posting>();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> PostingDir {
        PostingDir::new(&IndexTuning::default())
    }

    fn cands(d: &PostingDir, hash: u64) -> Vec<Posting> {
        d.find(hash).map(|s| d.list(s).to_vec()).unwrap_or_default()
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut d = dir();
        d.insert_posting(10, 1, 2);
        d.insert_posting(10, 0, 1);
        d.insert_posting(99, 7, 4);
        assert_eq!(cands(&d, 10), vec![(0, 1), (1, 2)]);
        assert_eq!(cands(&d, 99), vec![(7, 4)]);
        assert!(d.find(11).is_none());
        d.remove_posting(10, 0);
        assert_eq!(cands(&d, 10), vec![(1, 2)]);
        d.remove_posting(10, 1);
        assert!(d.find(10).is_none(), "drained slot must read as absent");
        assert_eq!(d.tombstoned_slots(), 1);
        assert_eq!(d.live_slots(), 1);
    }

    #[test]
    fn tombstone_revival_reuses_slot() {
        let mut d = dir();
        d.insert_posting(42, 1, 1);
        d.remove_posting(42, 1);
        assert_eq!(d.tombstoned_slots(), 1);
        d.insert_posting(42, 2, 3);
        assert_eq!(d.tombstoned_slots(), 0, "re-insert must revive the tombstone");
        assert_eq!(cands(&d, 42), vec![(2, 3)]);
    }

    #[test]
    fn tail_merges_at_bound_and_lookups_survive() {
        let mut d = dir();
        // Enough distinct hashes to force several tail merges.
        for h in 0..200u64 {
            d.insert_posting(h * 17 % 199, h as u32, 1);
        }
        for h in 0..200u64 {
            assert!(d.find(h * 17 % 199).is_some(), "hash {h} lost across merges");
        }
        assert!(d.tail.len() <= TAIL_MIN.max(d.main.len() >> TAIL_SHIFT));
    }

    #[test]
    fn compaction_triggers_exactly_at_threshold() {
        let mut d = dir();
        // 16 live slots in one run; threshold is 50% with a floor of 8
        // tombstones, so the 8th drain must compact and the 7th must not.
        for h in 0..16u64 {
            d.insert_posting(h, 1, 1);
        }
        d.rebuild(); // everything into main, empty tail
        for h in 0..7u64 {
            d.remove_posting(h, 1);
        }
        assert_eq!(d.tombstoned_slots(), 7, "below both floors: no compaction yet");
        d.remove_posting(7, 1);
        assert_eq!(d.tombstoned_slots(), 0, "8th tombstone = 50% of 16 slots: compacted");
        assert_eq!(d.live_slots(), 8);
        for h in 8..16u64 {
            assert!(d.find(h).is_some(), "live hash {h} lost by compaction");
        }
    }

    #[test]
    fn removing_unknown_is_noop() {
        let mut d = dir();
        d.insert_posting(5, 1, 1);
        d.remove_posting(6, 1);
        d.remove_posting(5, 9);
        assert_eq!(cands(&d, 5), vec![(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "ids are unique")]
    fn duplicate_posting_panics() {
        let mut d = dir();
        d.insert_posting(5, 1, 1);
        d.insert_posting(5, 1, 2);
    }
}
