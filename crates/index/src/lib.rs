//! # gc-index — feature indices for GraphCache
//!
//! Two index families power GraphCache:
//!
//! 1. **FTV dataset index** ([`PathTrie`]): the "Filter" of Method M
//!    (paper Fig. 1), modelled on GraphGrepSX (the paper's reference \[1\]):
//!    all labelled simple paths of up to `L` edges of each dataset graph are
//!    stored in a suffix-trie-like structure with per-graph occurrence
//!    counts. A query's candidate set is every graph whose counts dominate
//!    the query's counts on all query features. `L` is the *feature size*
//!    knob of the paper's Experiment II ("Speedup versus Overhead").
//!    [`TreeIndex`] provides the alternative *tree*-feature family (the
//!    paper's "a path, tree or subgraph"), trading enumeration cost for
//!    discriminative power.
//!
//! 2. **Dynamic query index** ([`QueryIndex`]): the structure behind the
//!    Sub/Super Case Processors, modelled on iGQ (the paper's reference
//!    \[10\]): an inverted index over *cached query graphs* supporting both
//!    containment directions — "which cached queries may contain the new
//!    query g?" (sub-case candidates) and "which cached queries may be
//!    contained in g?" (super-case candidates) — with insertion and removal
//!    as the cache admits and evicts entries.
//!
//! Both filters are **sound**: they may return false candidates (removed by
//! sub-iso verification downstream) but never drop a true one. This is
//! property-tested against the VF2 engine.
//!
//! ## Allocation discipline
//!
//! The per-query front-end (extraction + index lookups) is the hot path of
//! every cache probe, so it follows the same flat-array discipline as the
//! verification engines: extraction streams paths through a
//! [`PathSink`] into a reusable [`ExtractScratch`] (no per-path `Vec`s),
//! [`QueryIndex`] keeps sorted flat postings probed through a
//! [`CandScratch`], [`TreeIndex`] streams its subtree enumeration through a
//! [`TreeScratch`], and [`PathTrie`] is a contiguous arena intersected
//! word-parallel into a caller-owned bitset via a [`TrieScratch`]. After
//! warm-up the whole probe path performs zero heap allocations
//! (`tests/alloc_free.rs`); the [`reference`] module keeps the previous
//! materializing/HashMap/eager implementations as executable
//! specifications.
//!
//! ## Maintenance discipline
//!
//! Admission and eviction churn the dynamic indexes at traffic rates, so
//! directory maintenance is amortized too: both [`QueryIndex`] and
//! [`TreeIndex`] keep their sorted hash directories behind tombstoned
//! slots with lazy compaction and a batched append tail (insert/remove
//! memmoves at most the small tail run instead of the whole directory),
//! and the k-way
//! sub-case merge switches per step between two-pointer and galloping
//! intersection ([`merge`]) when posting-list lengths are skewed. The
//! knobs live in [`IndexTuning`]; `exp10_index_churn` races the tiers
//! under an interleaved admit/evict/probe schedule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod directory;
mod extract;
pub mod merge;
mod query_index;
pub mod reference;
mod tree;
mod trie;

pub use directory::IndexTuning;
pub use extract::{
    enumerate_label_paths, feature_hash, feature_vec, stream_label_paths, ExtractScratch,
    FeatureConfig, FeatureVec, FeaturesRef, PathSink,
};
pub use query_index::{CandScratch, EntryId, QueryIndex};
pub use tree::{enumerate_tree_codes, TreeConfig, TreeIndex, TreeScratch};
pub use trie::{PathTrie, TrieScratch};
