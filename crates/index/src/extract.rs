//! Labelled-path feature extraction.
//!
//! A *feature* is the label sequence of a simple path (no repeated vertices)
//! with at most `max_len` edges. Paths are enumerated in both directions from
//! every start vertex — consistently for data graphs and query graphs, so
//! occurrence counts remain comparable. Count domination is a *sound* filter
//! for non-induced subgraph isomorphism: an embedding maps each simple path
//! of the pattern to a distinct simple path of the target with the same label
//! sequence, injectively, hence `count_q(f) ≤ count_G(f)` for every feature
//! `f` of the query.
//!
//! For the inverted indices we identify a feature by a 64-bit hash of its
//! label sequence ([`FeatureVec`]). Hash grouping preserves soundness: merged
//! counts of dominated features remain dominated.

use gc_graph::hash::hash_seq;
use gc_graph::{Graph, Label, VertexId};

/// Configuration of path-feature extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureConfig {
    /// Maximum path length in edges (0 = single-vertex features only).
    /// The paper's "feature size"; GraphGrepSX defaults to 4, our Experiment
    /// II compares `max_len` vs `max_len + 1`.
    pub max_len: usize,
    /// Safety valve: stop enumerating after this many path occurrences per
    /// graph (dense pathological graphs only; molecule-like data never hits
    /// it). Truncation is applied to *data and query alike only at the same
    /// config*, so an index built with a given config stays sound for queries
    /// extracted with the same config as long as the cap is not reached; a
    /// reached cap is reported by [`enumerate_label_paths`] via its return
    /// flag so callers can fall back to no filtering.
    pub max_paths: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig { max_len: 3, max_paths: 1_000_000 }
    }
}

impl FeatureConfig {
    /// Config with the given maximum path length (edges).
    pub fn with_max_len(max_len: usize) -> Self {
        FeatureConfig { max_len, ..Default::default() }
    }
}

/// Enumerate the label sequences of all simple paths with `0..=cfg.max_len`
/// edges, from every start vertex, in both directions.
///
/// Returns `(paths, truncated)`; when `truncated` is true the enumeration hit
/// `cfg.max_paths` and the result is partial (callers must then treat the
/// graph as unfilterable).
pub fn enumerate_label_paths(g: &Graph, cfg: &FeatureConfig) -> (Vec<Vec<Label>>, bool) {
    let mut out = Vec::new();
    let mut truncated = false;
    let mut on_path = vec![false; g.vertex_count()];
    let mut path_labels: Vec<Label> = Vec::with_capacity(cfg.max_len + 1);

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        g: &Graph,
        v: VertexId,
        remaining: usize,
        on_path: &mut [bool],
        path_labels: &mut Vec<Label>,
        out: &mut Vec<Vec<Label>>,
        cap: usize,
        truncated: &mut bool,
    ) {
        if *truncated {
            return;
        }
        path_labels.push(g.label(v));
        on_path[v as usize] = true;
        if out.len() >= cap {
            *truncated = true;
        } else {
            out.push(path_labels.clone());
            if remaining > 0 {
                for &w in g.neighbors(v) {
                    if !on_path[w as usize] {
                        dfs(g, w, remaining - 1, on_path, path_labels, out, cap, truncated);
                    }
                }
            }
        }
        on_path[v as usize] = false;
        path_labels.pop();
    }

    for v in g.vertices() {
        dfs(
            g,
            v,
            cfg.max_len,
            &mut on_path,
            &mut path_labels,
            &mut out,
            cfg.max_paths,
            &mut truncated,
        );
        if truncated {
            break;
        }
    }
    (out, truncated)
}

/// A graph's feature multiset, represented as `(feature_hash, count)` pairs
/// sorted by hash.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FeatureVec {
    items: Vec<(u64, u32)>,
    truncated: bool,
}

impl FeatureVec {
    /// The `(hash, count)` pairs, sorted ascending by hash.
    pub fn items(&self) -> &[(u64, u32)] {
        &self.items
    }

    /// Number of distinct features.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff no features (the empty graph).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total occurrence count over all features.
    pub fn total_count(&self) -> u64 {
        self.items.iter().map(|&(_, c)| c as u64).sum()
    }

    /// `true` when path enumeration was truncated; domination answers are
    /// then unreliable and callers must skip filtering.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Count for a feature hash (0 when absent).
    pub fn count(&self, hash: u64) -> u32 {
        match self.items.binary_search_by_key(&hash, |&(h, _)| h) {
            Ok(i) => self.items[i].1,
            Err(_) => 0,
        }
    }

    /// `true` iff `self`'s counts dominate `other`'s on every feature of
    /// `other` (i.e. `other` may be contained in `self`).
    pub fn dominates(&self, other: &FeatureVec) -> bool {
        other.items.iter().all(|&(h, c)| self.count(h) >= c)
    }

    /// Approximate heap bytes (for index-size accounting).
    pub fn memory_bytes(&self) -> usize {
        self.items.len() * std::mem::size_of::<(u64, u32)>()
    }
}

/// Hash a label sequence canonically: a path read forward and backward is
/// the same physical feature, so we hash the lexicographically smaller of
/// the two readings.
pub fn feature_hash(labels: &[Label]) -> u64 {
    let forward = labels.iter().map(|l| l.0 as u64);
    let rev_smaller = {
        let fw: Vec<u32> = labels.iter().map(|l| l.0).collect();
        let mut bw = fw.clone();
        bw.reverse();
        bw < fw
    };
    if rev_smaller {
        hash_seq(labels.iter().rev().map(|l| l.0 as u64))
    } else {
        hash_seq(forward)
    }
}

/// Extract the [`FeatureVec`] of a graph under `cfg`.
pub fn feature_vec(g: &Graph, cfg: &FeatureConfig) -> FeatureVec {
    let (paths, truncated) = enumerate_label_paths(g, cfg);
    let mut hashes: Vec<u64> = paths.iter().map(|p| feature_hash(p)).collect();
    hashes.sort_unstable();
    let mut items: Vec<(u64, u32)> = Vec::new();
    for h in hashes {
        match items.last_mut() {
            Some((lh, c)) if *lh == h => *c += 1,
            _ => items.push((h, 1)),
        }
    }
    FeatureVec { items, truncated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::graph_from_parts;

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    #[test]
    fn single_edge_paths() {
        let e = g(&[0, 1], &[(0, 1)]);
        let (paths, trunc) = enumerate_label_paths(&e, &FeatureConfig::with_max_len(1));
        assert!(!trunc);
        // 2 single-vertex paths + the edge in both directions.
        assert_eq!(paths.len(), 4);
    }

    #[test]
    fn max_len_zero_gives_label_histogram() {
        let t = g(&[0, 0, 5], &[(0, 1), (1, 2)]);
        let fv = feature_vec(&t, &FeatureConfig::with_max_len(0));
        assert_eq!(fv.len(), 2); // labels {0, 5}
        assert_eq!(fv.total_count(), 3);
    }

    #[test]
    fn forward_backward_same_hash() {
        let a = [Label(1), Label(2), Label(3)];
        let b = [Label(3), Label(2), Label(1)];
        assert_eq!(feature_hash(&a), feature_hash(&b));
        let c = [Label(1), Label(3), Label(2)];
        assert_ne!(feature_hash(&a), feature_hash(&c));
    }

    #[test]
    fn domination_on_subgraph() {
        let cfg = FeatureConfig::with_max_len(3);
        let path = g(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let tri = g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]);
        let f_path = feature_vec(&path, &cfg);
        let f_tri = feature_vec(&tri, &cfg);
        assert!(f_tri.dominates(&f_path));
        assert!(!f_path.dominates(&f_tri));
        assert!(f_tri.dominates(&f_tri));
    }

    #[test]
    fn empty_graph_dominated_by_all() {
        let cfg = FeatureConfig::default();
        let e = feature_vec(&g(&[], &[]), &cfg);
        let x = feature_vec(&g(&[0], &[]), &cfg);
        assert!(x.dominates(&e));
        assert!(e.dominates(&e));
        assert!(!e.dominates(&x));
    }

    #[test]
    fn truncation_flag() {
        // A clique blows up path counts quickly.
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                edges.push((u, v));
            }
        }
        let k8 = g(&[0; 8], &edges);
        let cfg = FeatureConfig { max_len: 6, max_paths: 100 };
        let fv = feature_vec(&k8, &cfg);
        assert!(fv.truncated());
    }

    #[test]
    fn counts_are_exact_on_path_graph() {
        // P3 labelled 0-1-2: features of len<=1: [0],[1],[2],[0,1],[1,2]
        // each edge counted twice (two directions) but canonical hash merges
        // them into one feature with count 2.
        let p = g(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let fv = feature_vec(&p, &FeatureConfig::with_max_len(1));
        assert_eq!(fv.len(), 5);
        assert_eq!(fv.total_count(), 7); // 3 vertices + 2 edges * 2 dirs
    }
}
