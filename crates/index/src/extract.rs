//! Labelled-path feature extraction.
//!
//! A *feature* is the label sequence of a simple path (no repeated vertices)
//! with at most `max_len` edges. Paths are enumerated in both directions from
//! every start vertex — consistently for data graphs and query graphs, so
//! occurrence counts remain comparable. Count domination is a *sound* filter
//! for non-induced subgraph isomorphism: an embedding maps each simple path
//! of the pattern to a distinct simple path of the target with the same label
//! sequence, injectively, hence `count_q(f) ≤ count_G(f)` for every feature
//! `f` of the query.
//!
//! For the inverted indices we identify a feature by a 64-bit hash of its
//! label sequence ([`FeatureVec`]). Hash grouping preserves soundness: merged
//! counts of dominated features remain dominated.
//!
//! ## Streaming extraction
//!
//! The hot path never materializes paths. [`stream_label_paths`] drives a
//! [`PathSink`] with `push` / `emit` / `pop` events, and the sinks roll
//! whatever per-path state they need incrementally: [`ExtractScratch`] rolls
//! the forward feature hash on a prefix stack (the backward reading, needed
//! for the canonical hash, is folded from the ≤ `max_len + 1` labels on the
//! stack — still allocation-free), the dataset trie walks its arena in step
//! with the DFS. After warm-up the whole extraction performs **zero heap
//! allocations**; this is pinned by `tests/alloc_free.rs` and the streaming
//! result is property-tested equal to the materializing reference
//! enumerator, [`enumerate_label_paths`].

use gc_graph::hash::{hash_seq, mix};
use gc_graph::{Graph, Label, VertexId};

/// Configuration of path-feature extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureConfig {
    /// Maximum path length in edges (0 = single-vertex features only).
    /// The paper's "feature size"; GraphGrepSX defaults to 4, our Experiment
    /// II compares `max_len` vs `max_len + 1`.
    pub max_len: usize,
    /// Safety valve: stop enumerating after this many path occurrences per
    /// graph (dense pathological graphs only; molecule-like data never hits
    /// it). Truncation is applied to *data and query alike only at the same
    /// config*, so an index built with a given config stays sound for queries
    /// extracted with the same config as long as the cap is not reached; a
    /// reached cap is reported via the enumerators' truncation flag so
    /// callers can fall back to no filtering.
    pub max_paths: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig { max_len: 3, max_paths: 1_000_000 }
    }
}

impl FeatureConfig {
    /// Config with the given maximum path length (edges).
    pub fn with_max_len(max_len: usize) -> Self {
        FeatureConfig { max_len, ..Default::default() }
    }
}

/// Receives the streaming path enumeration of [`stream_label_paths`].
///
/// Event order mirrors the DFS: `push(l)` when a vertex with label `l`
/// extends the current path, then `emit()` exactly once for that path
/// occurrence (unless the enumeration cap was reached), recursion into the
/// children, and a matching `pop()` on backtrack. The labels pushed and not
/// yet popped *are* the current path.
pub trait PathSink {
    /// A vertex with `label` was appended to the current path.
    fn push(&mut self, label: Label);
    /// The current path is emitted as one feature occurrence.
    fn emit(&mut self);
    /// The deepest vertex was removed (backtrack).
    fn pop(&mut self);
}

/// Enumerate the labelled simple paths of `g` (both directions, every start
/// vertex, `0..=cfg.max_len` edges) into `sink`, without materializing them.
///
/// `on_path` is caller-provided scratch (cleared and resized here) so
/// steady-state extraction does not allocate. Returns `true` when the
/// enumeration hit `cfg.max_paths` and the emitted stream is partial —
/// callers must then treat the graph as unfilterable. Traversal order, cap
/// accounting and the truncation flag are identical to
/// [`enumerate_label_paths`] (property-tested).
pub fn stream_label_paths(
    g: &Graph,
    cfg: &FeatureConfig,
    on_path: &mut Vec<bool>,
    sink: &mut impl PathSink,
) -> bool {
    on_path.clear();
    on_path.resize(g.vertex_count(), false);
    let mut emitted = 0usize;
    let mut truncated = false;

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        g: &Graph,
        v: VertexId,
        remaining: usize,
        on_path: &mut [bool],
        sink: &mut impl PathSink,
        cap: usize,
        emitted: &mut usize,
        truncated: &mut bool,
    ) {
        if *truncated {
            return;
        }
        sink.push(g.label(v));
        on_path[v as usize] = true;
        if *emitted >= cap {
            *truncated = true;
        } else {
            *emitted += 1;
            sink.emit();
            if remaining > 0 {
                for &w in g.neighbors(v) {
                    if !on_path[w as usize] {
                        dfs(g, w, remaining - 1, on_path, sink, cap, emitted, truncated);
                    }
                }
            }
        }
        on_path[v as usize] = false;
        sink.pop();
    }

    for v in g.vertices() {
        dfs(g, v, cfg.max_len, on_path, sink, cfg.max_paths, &mut emitted, &mut truncated);
        if truncated {
            break;
        }
    }
    truncated
}

/// Enumerate the label sequences of all simple paths with `0..=cfg.max_len`
/// edges, from every start vertex, in both directions — the **materializing
/// reference enumerator**. The production pipeline uses
/// [`stream_label_paths`] / [`ExtractScratch`]; this stays as the executable
/// specification for equivalence tests and the [`crate::reference`] module.
///
/// Returns `(paths, truncated)`; when `truncated` is true the enumeration hit
/// `cfg.max_paths` and the result is partial (callers must then treat the
/// graph as unfilterable).
pub fn enumerate_label_paths(g: &Graph, cfg: &FeatureConfig) -> (Vec<Vec<Label>>, bool) {
    // Deliberately NOT built on `stream_label_paths`: this is the
    // independent specification the streaming enumerator is property-tested
    // against.
    let mut out = Vec::new();
    let mut truncated = false;
    let mut on_path = vec![false; g.vertex_count()];
    let mut path_labels: Vec<Label> = Vec::with_capacity(cfg.max_len + 1);

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        g: &Graph,
        v: VertexId,
        remaining: usize,
        on_path: &mut [bool],
        path_labels: &mut Vec<Label>,
        out: &mut Vec<Vec<Label>>,
        cap: usize,
        truncated: &mut bool,
    ) {
        if *truncated {
            return;
        }
        path_labels.push(g.label(v));
        on_path[v as usize] = true;
        if out.len() >= cap {
            *truncated = true;
        } else {
            out.push(path_labels.clone());
            if remaining > 0 {
                for &w in g.neighbors(v) {
                    if !on_path[w as usize] {
                        dfs(g, w, remaining - 1, on_path, path_labels, out, cap, truncated);
                    }
                }
            }
        }
        on_path[v as usize] = false;
        path_labels.pop();
    }

    for v in g.vertices() {
        dfs(
            g,
            v,
            cfg.max_len,
            &mut on_path,
            &mut path_labels,
            &mut out,
            cfg.max_paths,
            &mut truncated,
        );
        if truncated {
            break;
        }
    }
    (out, truncated)
}

/// Borrowed view of a graph's extracted features: `(hash, count)` pairs
/// sorted ascending by hash, plus the truncation flag. This is what the hot
/// probe path passes around — it borrows an [`ExtractScratch`] (or a
/// [`FeatureVec`]) instead of owning an allocation.
#[derive(Debug, Clone, Copy)]
pub struct FeaturesRef<'a> {
    items: &'a [(u64, u32)],
    truncated: bool,
}

impl<'a> FeaturesRef<'a> {
    /// View over externally-assembled items (must be sorted by hash with
    /// unique hashes, as produced by extraction).
    pub fn new(items: &'a [(u64, u32)], truncated: bool) -> Self {
        FeaturesRef { items, truncated }
    }

    /// The `(hash, count)` pairs, sorted ascending by hash.
    pub fn items(&self) -> &'a [(u64, u32)] {
        self.items
    }

    /// Number of distinct features.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff no features (the empty graph).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total occurrence count over all features.
    pub fn total_count(&self) -> u64 {
        self.items.iter().map(|&(_, c)| c as u64).sum()
    }

    /// `true` when path enumeration was truncated; domination answers are
    /// then unreliable and callers must skip filtering.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Count for a feature hash (0 when absent).
    pub fn count(&self, hash: u64) -> u32 {
        match self.items.binary_search_by_key(&hash, |&(h, _)| h) {
            Ok(i) => self.items[i].1,
            Err(_) => 0,
        }
    }

    /// Copy into an owned [`FeatureVec`] (one allocation; done once per
    /// query so probe and admission share the same extraction).
    pub fn to_feature_vec(&self) -> FeatureVec {
        FeatureVec { items: self.items.to_vec(), truncated: self.truncated }
    }
}

/// Reusable extraction state: path bookkeeping, the rolling prefix-hash
/// stack, and the hash/item output buffers. One scratch per worker; after
/// the first extraction at a given graph scale, [`ExtractScratch::extract`]
/// performs no heap allocation.
#[derive(Debug, Default)]
pub struct ExtractScratch {
    on_path: Vec<bool>,
    labels: Vec<Label>,
    /// `prefix[d]` = `hash_seq(labels[..=d])`, rolled incrementally.
    prefix: Vec<u64>,
    hashes: Vec<u64>,
    items: Vec<(u64, u32)>,
}

/// Sink that canonically hashes every emitted path with zero allocation.
struct HashSink<'a> {
    labels: &'a mut Vec<Label>,
    prefix: &'a mut Vec<u64>,
    hashes: &'a mut Vec<u64>,
    /// `hash_seq` of the empty sequence — the prefix-stack seed.
    empty_hash: u64,
}

impl PathSink for HashSink<'_> {
    #[inline]
    fn push(&mut self, label: Label) {
        let base = self.prefix.last().copied().unwrap_or(self.empty_hash);
        self.labels.push(label);
        self.prefix.push(mix(base, label.0 as u64));
    }

    #[inline]
    fn emit(&mut self) {
        // Canonical reading: the lexicographically smaller of forward and
        // backward. Forward is the rolled prefix hash; backward (rare — only
        // when the reversed labels compare smaller) folds the ≤ max_len + 1
        // labels on the stack.
        let labels = self.labels.as_slice();
        let n = labels.len();
        let mut rev_smaller = false;
        for i in 0..n / 2 {
            let (a, b) = (labels[i].0, labels[n - 1 - i].0);
            if a != b {
                rev_smaller = b < a;
                break;
            }
        }
        let h = if rev_smaller {
            hash_seq(labels.iter().rev().map(|l| l.0 as u64))
        } else {
            *self.prefix.last().expect("emit follows a push")
        };
        self.hashes.push(h);
    }

    #[inline]
    fn pop(&mut self) {
        self.labels.pop();
        self.prefix.pop();
    }
}

impl ExtractScratch {
    /// Fresh scratch (buffers grow to their high-water mark on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Extract the features of `g` under `cfg` into this scratch, returning
    /// a borrowed view. Equivalent to [`feature_vec`] but reusable: no
    /// allocation once the buffers are warm.
    pub fn extract(&mut self, g: &Graph, cfg: &FeatureConfig) -> FeaturesRef<'_> {
        self.labels.clear();
        self.prefix.clear();
        self.hashes.clear();
        self.items.clear();
        let truncated = {
            let mut sink = HashSink {
                labels: &mut self.labels,
                prefix: &mut self.prefix,
                hashes: &mut self.hashes,
                empty_hash: hash_seq(std::iter::empty()),
            };
            stream_label_paths(g, cfg, &mut self.on_path, &mut sink)
        };
        self.hashes.sort_unstable();
        let items = &mut self.items;
        for &h in self.hashes.iter() {
            match items.last_mut() {
                Some((lh, c)) if *lh == h => *c += 1,
                _ => items.push((h, 1)),
            }
        }
        FeaturesRef { items: &self.items, truncated }
    }
}

/// A graph's feature multiset, represented as `(feature_hash, count)` pairs
/// sorted by hash.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FeatureVec {
    items: Vec<(u64, u32)>,
    truncated: bool,
}

impl FeatureVec {
    /// Assemble from pre-sorted, hash-unique items (crate-internal: used by
    /// the reference implementations).
    pub(crate) fn from_sorted_items(items: Vec<(u64, u32)>, truncated: bool) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0].0 < w[1].0), "items must be sorted + unique");
        FeatureVec { items, truncated }
    }

    /// Borrowed view for the allocation-free index APIs.
    pub fn as_features(&self) -> FeaturesRef<'_> {
        FeaturesRef { items: &self.items, truncated: self.truncated }
    }

    /// The `(hash, count)` pairs, sorted ascending by hash.
    pub fn items(&self) -> &[(u64, u32)] {
        &self.items
    }

    /// Number of distinct features.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff no features (the empty graph).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total occurrence count over all features.
    pub fn total_count(&self) -> u64 {
        self.items.iter().map(|&(_, c)| c as u64).sum()
    }

    /// `true` when path enumeration was truncated; domination answers are
    /// then unreliable and callers must skip filtering.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Count for a feature hash (0 when absent).
    pub fn count(&self, hash: u64) -> u32 {
        self.as_features().count(hash)
    }

    /// `true` iff `self`'s counts dominate `other`'s on every feature of
    /// `other` (i.e. `other` may be contained in `self`).
    pub fn dominates(&self, other: &FeatureVec) -> bool {
        other.items.iter().all(|&(h, c)| self.count(h) >= c)
    }

    /// Approximate heap bytes (for index-size accounting).
    pub fn memory_bytes(&self) -> usize {
        self.items.len() * std::mem::size_of::<(u64, u32)>()
    }
}

/// Hash a label sequence canonically: a path read forward and backward is
/// the same physical feature, so we hash the lexicographically smaller of
/// the two readings.
pub fn feature_hash(labels: &[Label]) -> u64 {
    let forward = labels.iter().map(|l| l.0 as u64);
    let rev_smaller = {
        let fw: Vec<u32> = labels.iter().map(|l| l.0).collect();
        let mut bw = fw.clone();
        bw.reverse();
        bw < fw
    };
    if rev_smaller {
        hash_seq(labels.iter().rev().map(|l| l.0 as u64))
    } else {
        hash_seq(forward)
    }
}

/// Extract the [`FeatureVec`] of a graph under `cfg` (streaming; one
/// allocation for the owned result).
pub fn feature_vec(g: &Graph, cfg: &FeatureConfig) -> FeatureVec {
    let mut scratch = ExtractScratch::new();
    scratch.extract(g, cfg).to_feature_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::graph_from_parts;

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    #[test]
    fn single_edge_paths() {
        let e = g(&[0, 1], &[(0, 1)]);
        let (paths, trunc) = enumerate_label_paths(&e, &FeatureConfig::with_max_len(1));
        assert!(!trunc);
        // 2 single-vertex paths + the edge in both directions.
        assert_eq!(paths.len(), 4);
    }

    #[test]
    fn max_len_zero_gives_label_histogram() {
        let t = g(&[0, 0, 5], &[(0, 1), (1, 2)]);
        let fv = feature_vec(&t, &FeatureConfig::with_max_len(0));
        assert_eq!(fv.len(), 2); // labels {0, 5}
        assert_eq!(fv.total_count(), 3);
    }

    #[test]
    fn forward_backward_same_hash() {
        let a = [Label(1), Label(2), Label(3)];
        let b = [Label(3), Label(2), Label(1)];
        assert_eq!(feature_hash(&a), feature_hash(&b));
        let c = [Label(1), Label(3), Label(2)];
        assert_ne!(feature_hash(&a), feature_hash(&c));
    }

    #[test]
    fn streaming_matches_materialized_hashes() {
        // The rolled prefix hash + reverse fold must equal feature_hash on
        // every enumerated path.
        let graphs = [
            g(&[0, 1, 2, 1], &[(0, 1), (1, 2), (2, 3), (0, 3)]),
            g(&[5, 5, 5], &[(0, 1), (1, 2), (0, 2)]),
            g(&[3], &[]),
            g(&[], &[]),
        ];
        for gr in &graphs {
            for max_len in 0..4 {
                let cfg = FeatureConfig::with_max_len(max_len);
                let (paths, _) = enumerate_label_paths(gr, &cfg);
                let mut want: Vec<u64> = paths.iter().map(|p| feature_hash(p)).collect();
                want.sort_unstable();
                let mut scratch = ExtractScratch::new();
                let f = scratch.extract(gr, &cfg);
                let total: u64 = f.total_count();
                assert_eq!(total as usize, want.len());
                let mut got: Vec<u64> = Vec::new();
                for &(h, c) in f.items() {
                    got.extend(std::iter::repeat_n(h, c as usize));
                }
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn scratch_reuse_across_graphs() {
        let mut scratch = ExtractScratch::new();
        let cfg = FeatureConfig::with_max_len(2);
        let a = g(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let b = g(&[7], &[]);
        let fa1 = scratch.extract(&a, &cfg).to_feature_vec();
        let fb = scratch.extract(&b, &cfg).to_feature_vec();
        let fa2 = scratch.extract(&a, &cfg).to_feature_vec();
        assert_eq!(fa1, fa2, "scratch reuse must not change the result");
        assert_eq!(fb.len(), 1);
        assert_eq!(feature_vec(&a, &cfg), fa1);
    }

    #[test]
    fn domination_on_subgraph() {
        let cfg = FeatureConfig::with_max_len(3);
        let path = g(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let tri = g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]);
        let f_path = feature_vec(&path, &cfg);
        let f_tri = feature_vec(&tri, &cfg);
        assert!(f_tri.dominates(&f_path));
        assert!(!f_path.dominates(&f_tri));
        assert!(f_tri.dominates(&f_tri));
    }

    #[test]
    fn empty_graph_dominated_by_all() {
        let cfg = FeatureConfig::default();
        let e = feature_vec(&g(&[], &[]), &cfg);
        let x = feature_vec(&g(&[0], &[]), &cfg);
        assert!(x.dominates(&e));
        assert!(e.dominates(&e));
        assert!(!e.dominates(&x));
    }

    #[test]
    fn truncation_flag() {
        // A clique blows up path counts quickly.
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in (u + 1)..8 {
                edges.push((u, v));
            }
        }
        let k8 = g(&[0; 8], &edges);
        let cfg = FeatureConfig { max_len: 6, max_paths: 100 };
        let fv = feature_vec(&k8, &cfg);
        assert!(fv.truncated());
        let (_, trunc) = enumerate_label_paths(&k8, &cfg);
        assert!(trunc);
    }

    #[test]
    fn counts_are_exact_on_path_graph() {
        // P3 labelled 0-1-2: features of len<=1: [0],[1],[2],[0,1],[1,2]
        // each edge counted twice (two directions) but canonical hash merges
        // them into one feature with count 2.
        let p = g(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let fv = feature_vec(&p, &FeatureConfig::with_max_len(1));
        assert_eq!(fv.len(), 5);
        assert_eq!(fv.total_count(), 7); // 3 vertices + 2 edges * 2 dirs
    }
}
