//! Reference implementations of the feature front-end.
//!
//! These are the pre-arena/pre-flat-postings data structures, kept as
//! *executable specifications*: the property tests in `tests/prop.rs` assert
//! the production structures compute identical candidate sets, and the
//! `exp9_filter_frontend` benchmark measures the production front-end
//! against them (answer-cross-checked on every query). They are **not** on
//! any hot path — do not optimize them; their value is being obviously
//! equivalent to the documented semantics.

use crate::extract::{enumerate_label_paths, feature_hash, FeatureConfig, FeatureVec};
use crate::query_index::EntryId;
use crate::tree::{enumerate_tree_codes, TreeConfig};
use gc_graph::{BitSet, Graph, GraphId, Label};
use std::collections::HashMap;

/// Materializing feature extraction: enumerate every path into an owned
/// `Vec<Vec<Label>>`, hash each, sort and aggregate. The pre-streaming
/// implementation of [`crate::feature_vec`].
pub fn feature_vec_materialized(g: &Graph, cfg: &FeatureConfig) -> FeatureVec {
    let (paths, truncated) = enumerate_label_paths(g, cfg);
    let mut hashes: Vec<u64> = paths.iter().map(|p| feature_hash(p)).collect();
    hashes.sort_unstable();
    let mut items: Vec<(u64, u32)> = Vec::new();
    for h in hashes {
        match items.last_mut() {
            Some((lh, c)) if *lh == h => *c += 1,
            _ => items.push((h, 1)),
        }
    }
    FeatureVec::from_sorted_items(items, truncated)
}

#[derive(Debug, Default)]
struct Slot {
    features: FeatureVec,
}

/// The HashMap-postings containment index over cached query graphs — the
/// pre-flat implementation of [`crate::QueryIndex`], semantics documented
/// there.
#[derive(Debug)]
pub struct RefQueryIndex {
    cfg: FeatureConfig,
    posting: HashMap<u64, Vec<(EntryId, u32)>>,
    slots: HashMap<EntryId, Slot>,
    unfiltered: Vec<EntryId>,
}

impl RefQueryIndex {
    /// New empty index with feature config `cfg`.
    pub fn new(cfg: FeatureConfig) -> Self {
        RefQueryIndex {
            cfg,
            posting: HashMap::new(),
            slots: HashMap::new(),
            unfiltered: Vec::new(),
        }
    }

    /// Extract a query's features under this index's config (materialized).
    pub fn features_of(&self, g: &Graph) -> FeatureVec {
        feature_vec_materialized(g, &self.cfg)
    }

    /// Index a cached query graph under `id`.
    pub fn insert(&mut self, id: EntryId, g: &Graph) {
        let fv = self.features_of(g);
        assert!(
            !self.slots.contains_key(&id) && !self.unfiltered.contains(&id),
            "duplicate entry id {id}"
        );
        if fv.truncated() {
            self.unfiltered.push(id);
            return;
        }
        for &(h, c) in fv.items() {
            self.posting.entry(h).or_default().push((id, c));
        }
        self.slots.insert(id, Slot { features: fv });
    }

    /// Remove an entry. Unknown ids are ignored.
    pub fn remove(&mut self, id: EntryId) {
        if let Some(pos) = self.unfiltered.iter().position(|&e| e == id) {
            self.unfiltered.swap_remove(pos);
            return;
        }
        let Some(slot) = self.slots.remove(&id) else { return };
        for &(h, _) in slot.features.items() {
            if let Some(list) = self.posting.get_mut(&h) {
                if let Some(pos) = list.iter().position(|&(e, _)| e == id) {
                    list.swap_remove(pos);
                }
                if list.is_empty() {
                    self.posting.remove(&h);
                }
            }
        }
    }

    /// Cached entries that may *contain* the query (`g ⊑ h` candidates),
    /// sorted ascending.
    pub fn sub_case_candidates(&self, qf: &FeatureVec) -> Vec<EntryId> {
        let mut out: Vec<EntryId> = self.unfiltered.clone();
        if qf.truncated() || qf.is_empty() {
            out.extend(self.slots.keys().copied());
            out.sort_unstable();
            return out;
        }
        // acc[e] = number of query features satisfied by e.
        let mut acc: HashMap<EntryId, u32> = HashMap::new();
        let needed = qf.len() as u32;
        for (i, &(h, qc)) in qf.items().iter().enumerate() {
            let Some(list) = self.posting.get(&h) else {
                out.sort_unstable();
                return out;
            };
            for &(e, c) in list {
                if c >= qc {
                    if i == 0 {
                        acc.insert(e, 1);
                    } else if let Some(a) = acc.get_mut(&e) {
                        *a += 1;
                    }
                }
            }
        }
        out.extend(acc.iter().filter(|&(_, &a)| a == needed).map(|(&e, _)| e));
        out.sort_unstable();
        out
    }

    /// Cached entries possibly *contained in* the query (`h ⊑ g`
    /// candidates), sorted ascending.
    pub fn super_case_candidates(&self, qf: &FeatureVec) -> Vec<EntryId> {
        let mut out: Vec<EntryId> = self.unfiltered.clone();
        if qf.truncated() {
            out.extend(self.slots.keys().copied());
            out.sort_unstable();
            return out;
        }
        let mut matched: HashMap<EntryId, u64> = HashMap::new();
        for &(h, qc) in qf.items() {
            if let Some(list) = self.posting.get(&h) {
                for &(e, c) in list {
                    *matched.entry(e).or_insert(0) += c.min(qc) as u64;
                }
            }
        }
        for (&e, slot) in &self.slots {
            let total = slot.features.total_count();
            if total == 0 || matched.get(&e).copied().unwrap_or(0) == total {
                out.push(e);
            }
        }
        out.sort_unstable();
        out
    }
}

/// The eagerly-maintained sorted-directory containment index — the
/// pre-tombstone implementation of [`crate::QueryIndex`]: every insertion
/// of a new feature hash pays a `Vec::insert` memmove over the whole
/// directory and every drained posting list pays the matching
/// `Vec::remove`. Kept as the *old tier* of `exp10_index_churn` and as the
/// "eager directory" side of the tombstone-equivalence property tests.
#[derive(Debug)]
pub struct EagerQueryIndex {
    cfg: FeatureConfig,
    /// Sorted feature-hash directory (eagerly compacted).
    dir: Vec<u64>,
    /// `posts[i]` holds the postings of `dir[i]`, sorted by entry id.
    posts: Vec<Vec<(EntryId, u32)>>,
    slots: HashMap<EntryId, Slot>,
    unfiltered: Vec<EntryId>,
}

impl EagerQueryIndex {
    /// New empty index with feature config `cfg`.
    pub fn new(cfg: FeatureConfig) -> Self {
        EagerQueryIndex {
            cfg,
            dir: Vec::new(),
            posts: Vec::new(),
            slots: HashMap::new(),
            unfiltered: Vec::new(),
        }
    }

    /// Extract a query's features under this index's config.
    pub fn features_of(&self, g: &Graph) -> FeatureVec {
        crate::extract::feature_vec(g, &self.cfg)
    }

    /// Index a cached query graph under `id`.
    pub fn insert(&mut self, id: EntryId, g: &Graph) {
        let fv = self.features_of(g);
        self.insert_features(id, fv);
    }

    /// Index a cached query by a precomputed feature vector.
    pub fn insert_features(&mut self, id: EntryId, fv: FeatureVec) {
        assert!(
            !self.slots.contains_key(&id) && !self.unfiltered.contains(&id),
            "duplicate entry id {id}"
        );
        if fv.truncated() {
            self.unfiltered.push(id);
            return;
        }
        for &(h, c) in fv.items() {
            match self.dir.binary_search(&h) {
                Ok(i) => {
                    let list = &mut self.posts[i];
                    let at = list
                        .binary_search_by_key(&id, |&(e, _)| e)
                        .expect_err("feature hashes are unique per entry");
                    list.insert(at, (id, c));
                }
                Err(i) => {
                    self.dir.insert(i, h);
                    self.posts.insert(i, vec![(id, c)]);
                }
            }
        }
        self.slots.insert(id, Slot { features: fv });
    }

    /// Remove an entry (cache eviction). Unknown ids are ignored.
    pub fn remove(&mut self, id: EntryId) {
        if let Some(pos) = self.unfiltered.iter().position(|&e| e == id) {
            self.unfiltered.swap_remove(pos);
            return;
        }
        let Some(slot) = self.slots.remove(&id) else { return };
        for &(h, _) in slot.features.items() {
            if let Ok(i) = self.dir.binary_search(&h) {
                let list = &mut self.posts[i];
                if let Ok(pos) = list.binary_search_by_key(&id, |&(e, _)| e) {
                    list.remove(pos);
                }
                if list.is_empty() {
                    self.dir.remove(i);
                    self.posts.remove(i);
                }
            }
        }
    }

    /// Cached entries that may *contain* the query, sorted ascending
    /// (two-pointer k-way merge, most selective list first).
    pub fn sub_case_candidates(&self, qf: &FeatureVec) -> Vec<EntryId> {
        let mut out: Vec<EntryId> = self.unfiltered.clone();
        if qf.truncated() || qf.is_empty() {
            out.extend(self.slots.keys().copied());
            out.sort_unstable();
            return out;
        }
        let mut lists: Vec<(usize, u32)> = Vec::with_capacity(qf.len());
        for &(h, qc) in qf.items() {
            match self.dir.binary_search(&h) {
                Ok(i) => lists.push((i, qc)),
                Err(_) => {
                    out.sort_unstable();
                    return out;
                }
            }
        }
        lists.sort_unstable_by_key(|&(i, _)| self.posts[i].len());
        let (i0, qc0) = lists[0];
        let mut cur: Vec<EntryId> =
            self.posts[i0].iter().filter(|&&(_, c)| c >= qc0).map(|&(e, _)| e).collect();
        let mut next = Vec::new();
        for &(li, qc) in &lists[1..] {
            if cur.is_empty() {
                break;
            }
            crate::merge::intersect_two_pointer(&cur, &self.posts[li], qc, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        out.extend(cur);
        out.sort_unstable();
        out
    }

    /// Cached entries possibly *contained in* the query, sorted ascending.
    pub fn super_case_candidates(&self, qf: &FeatureVec) -> Vec<EntryId> {
        let mut out: Vec<EntryId> = self.unfiltered.clone();
        if qf.truncated() {
            out.extend(self.slots.keys().copied());
            out.sort_unstable();
            return out;
        }
        let mut matched: HashMap<EntryId, u64> = HashMap::new();
        for &(h, qc) in qf.items() {
            if let Ok(i) = self.dir.binary_search(&h) {
                for &(e, c) in &self.posts[i] {
                    *matched.entry(e).or_insert(0) += c.min(qc) as u64;
                }
            }
        }
        for (&e, slot) in &self.slots {
            let total = slot.features.total_count();
            if total == 0 || matched.get(&e).copied().unwrap_or(0) == total {
                out.push(e);
            }
        }
        out.sort_unstable();
        out
    }
}

/// The HashMap-postings tree-feature index — the pre-flat implementation of
/// [`crate::TreeIndex`], extended with the same dynamic insert/remove API
/// so the flat tier can be property-tested against it under interleaved
/// admission/eviction/probe schedules. Semantics documented on
/// [`crate::TreeIndex`].
#[derive(Debug)]
pub struct RefTreeIndex {
    cfg: TreeConfig,
    postings: HashMap<u64, Vec<(GraphId, u32)>>,
    /// Per-graph `(code, count)` items (sorted by code) + total, for
    /// removal.
    slots: HashMap<GraphId, (Vec<(u64, u32)>, u64)>,
    dataset_size: usize,
    unfiltered: Vec<GraphId>,
}

impl RefTreeIndex {
    /// New empty index.
    pub fn new(cfg: TreeConfig) -> Self {
        RefTreeIndex {
            cfg,
            postings: HashMap::new(),
            slots: HashMap::new(),
            dataset_size: 0,
            unfiltered: Vec::new(),
        }
    }

    /// Build over `dataset` (graph ids are dataset positions).
    pub fn build(dataset: &[Graph], cfg: TreeConfig) -> Self {
        let mut idx = Self::new(cfg);
        for (gid, g) in dataset.iter().enumerate() {
            idx.insert_graph(gid as GraphId, g);
        }
        idx
    }

    /// Index `g` under `gid`.
    pub fn insert_graph(&mut self, gid: GraphId, g: &Graph) {
        assert!(
            !self.slots.contains_key(&gid) && !self.unfiltered.contains(&gid),
            "duplicate graph id {gid}"
        );
        self.dataset_size = self.dataset_size.max(gid as usize + 1);
        let (codes, truncated) = enumerate_tree_codes(g, &self.cfg);
        if truncated {
            self.unfiltered.push(gid);
            return;
        }
        let total = codes.len() as u64;
        let mut sorted = codes;
        sorted.sort_unstable();
        let mut items: Vec<(u64, u32)> = Vec::new();
        for c in sorted {
            match items.last_mut() {
                Some((lc, n)) if *lc == c => *n += 1,
                _ => items.push((c, 1)),
            }
        }
        for &(code, count) in &items {
            self.postings.entry(code).or_default().push((gid, count));
        }
        self.slots.insert(gid, (items, total));
    }

    /// Remove a graph. Unknown ids are ignored; the universe keeps its
    /// high-water size.
    pub fn remove_graph(&mut self, gid: GraphId) {
        if let Some(pos) = self.unfiltered.iter().position(|&e| e == gid) {
            self.unfiltered.swap_remove(pos);
            return;
        }
        let Some((items, _)) = self.slots.remove(&gid) else { return };
        for &(code, _) in &items {
            if let Some(list) = self.postings.get_mut(&code) {
                if let Some(pos) = list.iter().position(|&(e, _)| e == gid) {
                    list.swap_remove(pos);
                }
                if list.is_empty() {
                    self.postings.remove(&code);
                }
            }
        }
    }

    /// Universe of the candidate bitsets (high-water graph id + 1).
    pub fn dataset_size(&self) -> usize {
        self.dataset_size
    }

    /// Candidate set for a subgraph query (sound overapproximation).
    pub fn candidates(&self, query: &Graph) -> BitSet {
        let (codes, truncated) = enumerate_tree_codes(query, &self.cfg);
        if truncated {
            return BitSet::full(self.dataset_size);
        }
        let mut required: HashMap<u64, u32> = HashMap::new();
        for c in codes {
            *required.entry(c).or_insert(0) += 1;
        }
        if required.is_empty() {
            // No features (the empty query): every indexed graph qualifies.
            return BitSet::from_indices(
                self.dataset_size,
                self.slots
                    .keys()
                    .map(|&g| g as usize)
                    .chain(self.unfiltered.iter().map(|&g| g as usize)),
            );
        }
        let mut cands: Option<BitSet> = None;
        for (code, need) in required {
            let Some(list) = self.postings.get(&code) else {
                return BitSet::from_indices(
                    self.dataset_size,
                    self.unfiltered.iter().map(|&g| g as usize),
                );
            };
            let mut qualifying = BitSet::new(self.dataset_size);
            for &(gid, c) in list {
                if c >= need {
                    qualifying.insert(gid as usize);
                }
            }
            match cands.as_mut() {
                Some(acc) => acc.intersect_with(&qualifying),
                None => cands = Some(qualifying),
            }
        }
        let mut cands = cands.expect("required is non-empty");
        for &g in &self.unfiltered {
            cands.insert(g as usize);
        }
        cands
    }

    /// Candidate set for a supergraph query via the Σmin identity.
    pub fn super_candidates(&self, query: &Graph) -> BitSet {
        let (codes, truncated) = enumerate_tree_codes(query, &self.cfg);
        if truncated {
            return BitSet::full(self.dataset_size);
        }
        let mut qcounts: HashMap<u64, u32> = HashMap::new();
        for c in codes {
            *qcounts.entry(c).or_insert(0) += 1;
        }
        let mut matched: HashMap<GraphId, u64> = HashMap::new();
        for (code, qc) in qcounts {
            if let Some(list) = self.postings.get(&code) {
                for &(gid, c) in list {
                    *matched.entry(gid).or_insert(0) += c.min(qc) as u64;
                }
            }
        }
        let mut out = BitSet::new(self.dataset_size);
        for (&gid, &(_, total)) in &self.slots {
            if total == 0 || matched.get(&gid).copied().unwrap_or(0) == total {
                out.insert(gid as usize);
            }
        }
        for &g in &self.unfiltered {
            out.insert(g as usize);
        }
        out
    }
}

#[derive(Debug, Default)]
struct Node {
    /// Child edges sorted by label for binary search.
    children: Vec<(Label, u32)>,
    /// `(graph, count)` sorted by graph id.
    postings: Vec<(GraphId, u32)>,
}

/// The pointer-chasing node trie — the pre-arena implementation of
/// [`crate::PathTrie`], semantics documented there.
#[derive(Debug)]
pub struct RefPathTrie {
    cfg: FeatureConfig,
    nodes: Vec<Node>,
    dataset_size: usize,
    totals: Vec<u64>,
    unfiltered: Vec<GraphId>,
}

impl RefPathTrie {
    /// Build the index over `dataset` with feature config `cfg`.
    pub fn build(dataset: &[Graph], cfg: FeatureConfig) -> Self {
        let mut trie = RefPathTrie {
            cfg,
            nodes: vec![Node::default()],
            dataset_size: dataset.len(),
            totals: vec![0; dataset.len()],
            unfiltered: Vec::new(),
        };
        for (gid, g) in dataset.iter().enumerate() {
            trie.insert_graph(gid as GraphId, g);
        }
        trie
    }

    fn insert_graph(&mut self, gid: GraphId, g: &Graph) {
        let (paths, truncated) = enumerate_label_paths(g, &self.cfg);
        if truncated {
            self.unfiltered.push(gid);
            return;
        }
        self.totals[gid as usize] = paths.len() as u64;
        for path in &paths {
            let node = self.walk_insert(path);
            match self.nodes[node].postings.last_mut() {
                Some((last_gid, c)) if *last_gid == gid => *c += 1,
                _ => self.nodes[node].postings.push((gid, 1)),
            }
        }
    }

    fn walk_insert(&mut self, labels: &[Label]) -> usize {
        let mut cur = 0usize;
        for &l in labels {
            cur = match self.nodes[cur].children.binary_search_by_key(&l, |&(cl, _)| cl) {
                Ok(i) => self.nodes[cur].children[i].1 as usize,
                Err(i) => {
                    let id = self.nodes.len() as u32;
                    self.nodes.push(Node::default());
                    self.nodes[cur].children.insert(i, (l, id));
                    id as usize
                }
            };
        }
        cur
    }

    fn walk(&self, labels: &[Label]) -> Option<usize> {
        let mut cur = 0usize;
        for &l in labels {
            match self.nodes[cur].children.binary_search_by_key(&l, |&(cl, _)| cl) {
                Ok(i) => cur = self.nodes[cur].children[i].1 as usize,
                Err(_) => return None,
            }
        }
        Some(cur)
    }

    /// Candidate set for a subgraph query (sound overapproximation).
    pub fn candidates(&self, query: &Graph) -> BitSet {
        let (qpaths, qtrunc) = enumerate_label_paths(query, &self.cfg);
        if qtrunc {
            return BitSet::full(self.dataset_size);
        }
        let mut required: Vec<(usize, u32)> = Vec::with_capacity(qpaths.len());
        for p in &qpaths {
            match self.walk(p) {
                Some(n) => required.push((n, 1)),
                None => {
                    return BitSet::from_indices(
                        self.dataset_size,
                        self.unfiltered.iter().map(|&g| g as usize),
                    );
                }
            }
        }
        required.sort_unstable();
        let mut merged: Vec<(usize, u32)> = Vec::new();
        for (n, c) in required {
            match merged.last_mut() {
                Some((ln, lc)) if *ln == n => *lc += c,
                _ => merged.push((n, c)),
            }
        }
        merged.sort_unstable_by_key(|&(n, _)| self.nodes[n].postings.len());
        let mut cands = BitSet::full(self.dataset_size);
        let mut scratch = BitSet::new(self.dataset_size);
        for (n, req) in merged {
            scratch.clear();
            for &(gid, c) in &self.nodes[n].postings {
                if c >= req {
                    scratch.insert(gid as usize);
                }
            }
            cands.intersect_with(&scratch);
            if cands.is_empty() {
                break;
            }
        }
        for &g in &self.unfiltered {
            cands.insert(g as usize);
        }
        cands
    }

    /// Candidate set for a supergraph query (sound overapproximation).
    pub fn super_candidates(&self, query: &Graph) -> BitSet {
        let (qpaths, qtrunc) = enumerate_label_paths(query, &self.cfg);
        if qtrunc {
            return BitSet::full(self.dataset_size);
        }
        let mut required: Vec<usize> = qpaths.iter().filter_map(|p| self.walk(p)).collect();
        required.sort_unstable();
        let mut matched = vec![0u64; self.dataset_size];
        let mut i = 0;
        while i < required.len() {
            let n = required[i];
            let mut qc = 0u32;
            while i < required.len() && required[i] == n {
                qc += 1;
                i += 1;
            }
            for &(gid, c) in &self.nodes[n].postings {
                matched[gid as usize] += c.min(qc) as u64;
            }
        }
        let mut out = BitSet::new(self.dataset_size);
        for (gid, (&m, &t)) in matched.iter().zip(&self.totals).enumerate() {
            if m == t {
                out.insert(gid);
            }
        }
        for &g in &self.unfiltered {
            out.insert(g as usize);
        }
        out
    }
}
