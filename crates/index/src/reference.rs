//! Reference implementations of the feature front-end.
//!
//! These are the pre-arena/pre-flat-postings data structures, kept as
//! *executable specifications*: the property tests in `tests/prop.rs` assert
//! the production structures compute identical candidate sets, and the
//! `exp9_filter_frontend` benchmark measures the production front-end
//! against them (answer-cross-checked on every query). They are **not** on
//! any hot path — do not optimize them; their value is being obviously
//! equivalent to the documented semantics.

use crate::extract::{enumerate_label_paths, feature_hash, FeatureConfig, FeatureVec};
use crate::query_index::EntryId;
use gc_graph::{BitSet, Graph, GraphId, Label};
use std::collections::HashMap;

/// Materializing feature extraction: enumerate every path into an owned
/// `Vec<Vec<Label>>`, hash each, sort and aggregate. The pre-streaming
/// implementation of [`crate::feature_vec`].
pub fn feature_vec_materialized(g: &Graph, cfg: &FeatureConfig) -> FeatureVec {
    let (paths, truncated) = enumerate_label_paths(g, cfg);
    let mut hashes: Vec<u64> = paths.iter().map(|p| feature_hash(p)).collect();
    hashes.sort_unstable();
    let mut items: Vec<(u64, u32)> = Vec::new();
    for h in hashes {
        match items.last_mut() {
            Some((lh, c)) if *lh == h => *c += 1,
            _ => items.push((h, 1)),
        }
    }
    FeatureVec::from_sorted_items(items, truncated)
}

#[derive(Debug, Default)]
struct Slot {
    features: FeatureVec,
}

/// The HashMap-postings containment index over cached query graphs — the
/// pre-flat implementation of [`crate::QueryIndex`], semantics documented
/// there.
#[derive(Debug)]
pub struct RefQueryIndex {
    cfg: FeatureConfig,
    posting: HashMap<u64, Vec<(EntryId, u32)>>,
    slots: HashMap<EntryId, Slot>,
    unfiltered: Vec<EntryId>,
}

impl RefQueryIndex {
    /// New empty index with feature config `cfg`.
    pub fn new(cfg: FeatureConfig) -> Self {
        RefQueryIndex {
            cfg,
            posting: HashMap::new(),
            slots: HashMap::new(),
            unfiltered: Vec::new(),
        }
    }

    /// Extract a query's features under this index's config (materialized).
    pub fn features_of(&self, g: &Graph) -> FeatureVec {
        feature_vec_materialized(g, &self.cfg)
    }

    /// Index a cached query graph under `id`.
    pub fn insert(&mut self, id: EntryId, g: &Graph) {
        let fv = self.features_of(g);
        assert!(
            !self.slots.contains_key(&id) && !self.unfiltered.contains(&id),
            "duplicate entry id {id}"
        );
        if fv.truncated() {
            self.unfiltered.push(id);
            return;
        }
        for &(h, c) in fv.items() {
            self.posting.entry(h).or_default().push((id, c));
        }
        self.slots.insert(id, Slot { features: fv });
    }

    /// Remove an entry. Unknown ids are ignored.
    pub fn remove(&mut self, id: EntryId) {
        if let Some(pos) = self.unfiltered.iter().position(|&e| e == id) {
            self.unfiltered.swap_remove(pos);
            return;
        }
        let Some(slot) = self.slots.remove(&id) else { return };
        for &(h, _) in slot.features.items() {
            if let Some(list) = self.posting.get_mut(&h) {
                if let Some(pos) = list.iter().position(|&(e, _)| e == id) {
                    list.swap_remove(pos);
                }
                if list.is_empty() {
                    self.posting.remove(&h);
                }
            }
        }
    }

    /// Cached entries that may *contain* the query (`g ⊑ h` candidates),
    /// sorted ascending.
    pub fn sub_case_candidates(&self, qf: &FeatureVec) -> Vec<EntryId> {
        let mut out: Vec<EntryId> = self.unfiltered.clone();
        if qf.truncated() || qf.is_empty() {
            out.extend(self.slots.keys().copied());
            out.sort_unstable();
            return out;
        }
        // acc[e] = number of query features satisfied by e.
        let mut acc: HashMap<EntryId, u32> = HashMap::new();
        let needed = qf.len() as u32;
        for (i, &(h, qc)) in qf.items().iter().enumerate() {
            let Some(list) = self.posting.get(&h) else {
                out.sort_unstable();
                return out;
            };
            for &(e, c) in list {
                if c >= qc {
                    if i == 0 {
                        acc.insert(e, 1);
                    } else if let Some(a) = acc.get_mut(&e) {
                        *a += 1;
                    }
                }
            }
        }
        out.extend(acc.iter().filter(|&(_, &a)| a == needed).map(|(&e, _)| e));
        out.sort_unstable();
        out
    }

    /// Cached entries possibly *contained in* the query (`h ⊑ g`
    /// candidates), sorted ascending.
    pub fn super_case_candidates(&self, qf: &FeatureVec) -> Vec<EntryId> {
        let mut out: Vec<EntryId> = self.unfiltered.clone();
        if qf.truncated() {
            out.extend(self.slots.keys().copied());
            out.sort_unstable();
            return out;
        }
        let mut matched: HashMap<EntryId, u64> = HashMap::new();
        for &(h, qc) in qf.items() {
            if let Some(list) = self.posting.get(&h) {
                for &(e, c) in list {
                    *matched.entry(e).or_insert(0) += c.min(qc) as u64;
                }
            }
        }
        for (&e, slot) in &self.slots {
            let total = slot.features.total_count();
            if total == 0 || matched.get(&e).copied().unwrap_or(0) == total {
                out.push(e);
            }
        }
        out.sort_unstable();
        out
    }
}

#[derive(Debug, Default)]
struct Node {
    /// Child edges sorted by label for binary search.
    children: Vec<(Label, u32)>,
    /// `(graph, count)` sorted by graph id.
    postings: Vec<(GraphId, u32)>,
}

/// The pointer-chasing node trie — the pre-arena implementation of
/// [`crate::PathTrie`], semantics documented there.
#[derive(Debug)]
pub struct RefPathTrie {
    cfg: FeatureConfig,
    nodes: Vec<Node>,
    dataset_size: usize,
    totals: Vec<u64>,
    unfiltered: Vec<GraphId>,
}

impl RefPathTrie {
    /// Build the index over `dataset` with feature config `cfg`.
    pub fn build(dataset: &[Graph], cfg: FeatureConfig) -> Self {
        let mut trie = RefPathTrie {
            cfg,
            nodes: vec![Node::default()],
            dataset_size: dataset.len(),
            totals: vec![0; dataset.len()],
            unfiltered: Vec::new(),
        };
        for (gid, g) in dataset.iter().enumerate() {
            trie.insert_graph(gid as GraphId, g);
        }
        trie
    }

    fn insert_graph(&mut self, gid: GraphId, g: &Graph) {
        let (paths, truncated) = enumerate_label_paths(g, &self.cfg);
        if truncated {
            self.unfiltered.push(gid);
            return;
        }
        self.totals[gid as usize] = paths.len() as u64;
        for path in &paths {
            let node = self.walk_insert(path);
            match self.nodes[node].postings.last_mut() {
                Some((last_gid, c)) if *last_gid == gid => *c += 1,
                _ => self.nodes[node].postings.push((gid, 1)),
            }
        }
    }

    fn walk_insert(&mut self, labels: &[Label]) -> usize {
        let mut cur = 0usize;
        for &l in labels {
            cur = match self.nodes[cur].children.binary_search_by_key(&l, |&(cl, _)| cl) {
                Ok(i) => self.nodes[cur].children[i].1 as usize,
                Err(i) => {
                    let id = self.nodes.len() as u32;
                    self.nodes.push(Node::default());
                    self.nodes[cur].children.insert(i, (l, id));
                    id as usize
                }
            };
        }
        cur
    }

    fn walk(&self, labels: &[Label]) -> Option<usize> {
        let mut cur = 0usize;
        for &l in labels {
            match self.nodes[cur].children.binary_search_by_key(&l, |&(cl, _)| cl) {
                Ok(i) => cur = self.nodes[cur].children[i].1 as usize,
                Err(_) => return None,
            }
        }
        Some(cur)
    }

    /// Candidate set for a subgraph query (sound overapproximation).
    pub fn candidates(&self, query: &Graph) -> BitSet {
        let (qpaths, qtrunc) = enumerate_label_paths(query, &self.cfg);
        if qtrunc {
            return BitSet::full(self.dataset_size);
        }
        let mut required: Vec<(usize, u32)> = Vec::with_capacity(qpaths.len());
        for p in &qpaths {
            match self.walk(p) {
                Some(n) => required.push((n, 1)),
                None => {
                    return BitSet::from_indices(
                        self.dataset_size,
                        self.unfiltered.iter().map(|&g| g as usize),
                    );
                }
            }
        }
        required.sort_unstable();
        let mut merged: Vec<(usize, u32)> = Vec::new();
        for (n, c) in required {
            match merged.last_mut() {
                Some((ln, lc)) if *ln == n => *lc += c,
                _ => merged.push((n, c)),
            }
        }
        merged.sort_unstable_by_key(|&(n, _)| self.nodes[n].postings.len());
        let mut cands = BitSet::full(self.dataset_size);
        let mut scratch = BitSet::new(self.dataset_size);
        for (n, req) in merged {
            scratch.clear();
            for &(gid, c) in &self.nodes[n].postings {
                if c >= req {
                    scratch.insert(gid as usize);
                }
            }
            cands.intersect_with(&scratch);
            if cands.is_empty() {
                break;
            }
        }
        for &g in &self.unfiltered {
            cands.insert(g as usize);
        }
        cands
    }

    /// Candidate set for a supergraph query (sound overapproximation).
    pub fn super_candidates(&self, query: &Graph) -> BitSet {
        let (qpaths, qtrunc) = enumerate_label_paths(query, &self.cfg);
        if qtrunc {
            return BitSet::full(self.dataset_size);
        }
        let mut required: Vec<usize> = qpaths.iter().filter_map(|p| self.walk(p)).collect();
        required.sort_unstable();
        let mut matched = vec![0u64; self.dataset_size];
        let mut i = 0;
        while i < required.len() {
            let n = required[i];
            let mut qc = 0u32;
            while i < required.len() && required[i] == n {
                qc += 1;
                i += 1;
            }
            for &(gid, c) in &self.nodes[n].postings {
                matched[gid as usize] += c.min(qc) as u64;
            }
        }
        let mut out = BitSet::new(self.dataset_size);
        for (gid, (&m, &t)) in matched.iter().zip(&self.totals).enumerate() {
            if m == t {
                out.insert(gid);
            }
        }
        for &g in &self.unfiltered {
            out.insert(g as usize);
        }
        out
    }
}
