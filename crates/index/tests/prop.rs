//! Property tests: both index families are sound overapproximations.

use gc_graph::{Graph, Label};
use gc_index::{FeatureConfig, PathTrie, QueryIndex};
use proptest::prelude::*;

fn arb_graph(max_n: usize, max_label: u32) -> impl Strategy<Value = Graph> {
    (0..=max_n).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0..=max_label, n);
        let edges = if n >= 2 {
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(2 * n)).boxed()
        } else {
            Just(Vec::new()).boxed()
        };
        (labels, edges).prop_map(|(ls, es)| {
            let mut b = gc_graph::GraphBuilder::new();
            for l in ls {
                b.add_vertex(Label(l));
            }
            for (u, v) in es {
                if u != v {
                    let _ = b.add_edge_dedup(u, v);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn path_trie_filter_is_sound(
        dataset in proptest::collection::vec(arb_graph(6, 2), 1..8),
        query in arb_graph(4, 2),
        max_len in 0usize..4,
    ) {
        let trie = PathTrie::build(&dataset, FeatureConfig::with_max_len(max_len));
        let cands = trie.candidates(&query);
        for (gid, g) in dataset.iter().enumerate() {
            if gc_iso::vf2::exists(&query, g) {
                prop_assert!(cands.contains(gid), "FTV filter dropped true answer {gid}");
            }
        }
    }

    #[test]
    fn path_trie_super_filter_is_sound(
        dataset in proptest::collection::vec(arb_graph(5, 2), 1..8),
        query in arb_graph(7, 2),
        max_len in 0usize..4,
    ) {
        let trie = PathTrie::build(&dataset, FeatureConfig::with_max_len(max_len));
        let cands = trie.super_candidates(&query);
        for (gid, g) in dataset.iter().enumerate() {
            if gc_iso::vf2::exists(g, &query) {
                prop_assert!(cands.contains(gid), "super filter dropped true answer {gid}");
            }
        }
    }

    #[test]
    fn query_index_sub_case_is_sound(
        cached in proptest::collection::vec(arb_graph(5, 2), 1..8),
        query in arb_graph(4, 2),
        max_len in 0usize..3,
    ) {
        let mut qi = QueryIndex::new(FeatureConfig::with_max_len(max_len));
        for (i, c) in cached.iter().enumerate() {
            qi.insert(i as u32, c);
        }
        let qf = qi.features_of(&query);
        let cands = qi.sub_case_candidates(&qf);
        for (i, c) in cached.iter().enumerate() {
            if gc_iso::vf2::exists(&query, c) {
                prop_assert!(
                    cands.contains(&(i as u32)),
                    "sub-case candidates dropped true supergraph {i}"
                );
            }
        }
    }

    #[test]
    fn query_index_super_case_is_sound(
        cached in proptest::collection::vec(arb_graph(5, 2), 1..8),
        query in arb_graph(6, 2),
        max_len in 0usize..3,
    ) {
        let mut qi = QueryIndex::new(FeatureConfig::with_max_len(max_len));
        for (i, c) in cached.iter().enumerate() {
            qi.insert(i as u32, c);
        }
        let qf = qi.features_of(&query);
        let cands = qi.super_case_candidates(&qf);
        for (i, c) in cached.iter().enumerate() {
            if gc_iso::vf2::exists(c, &query) {
                prop_assert!(
                    cands.contains(&(i as u32)),
                    "super-case candidates dropped true subgraph {i}"
                );
            }
        }
    }

    #[test]
    fn query_index_insert_remove_roundtrip(
        cached in proptest::collection::vec(arb_graph(5, 2), 2..8),
        query in arb_graph(4, 2),
    ) {
        // Removing and re-inserting an entry leaves candidate sets unchanged.
        let cfg = FeatureConfig::with_max_len(2);
        let mut qi = QueryIndex::new(cfg);
        for (i, c) in cached.iter().enumerate() {
            qi.insert(i as u32, c);
        }
        let qf = qi.features_of(&query);
        let before_sub = qi.sub_case_candidates(&qf);
        let before_super = qi.super_case_candidates(&qf);

        qi.remove(0);
        qi.insert(0, &cached[0]);

        prop_assert_eq!(before_sub, qi.sub_case_candidates(&qf));
        prop_assert_eq!(before_super, qi.super_case_candidates(&qf));
    }

    #[test]
    fn feature_vec_domination_is_sound(
        p in arb_graph(4, 2),
        t in arb_graph(6, 2),
        max_len in 0usize..4,
    ) {
        let cfg = FeatureConfig::with_max_len(max_len);
        if gc_iso::vf2::exists(&p, &t) {
            let fp = gc_index::feature_vec(&p, &cfg);
            let ft = gc_index::feature_vec(&t, &cfg);
            prop_assert!(ft.dominates(&fp), "containment without feature domination");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn tree_index_filter_is_sound(
        dataset in proptest::collection::vec(arb_graph(6, 2), 1..7),
        query in arb_graph(4, 2),
        max_edges in 0usize..4,
    ) {
        let idx = gc_index::TreeIndex::build(
            &dataset,
            gc_index::TreeConfig::with_max_edges(max_edges),
        );
        let cands = idx.candidates(&query);
        for (gid, g) in dataset.iter().enumerate() {
            if gc_iso::vf2::exists(&query, g) {
                prop_assert!(cands.contains(gid), "tree filter dropped true answer {gid}");
            }
        }
    }

    #[test]
    fn tree_index_super_filter_is_sound(
        dataset in proptest::collection::vec(arb_graph(5, 2), 1..7),
        query in arb_graph(7, 2),
        max_edges in 0usize..4,
    ) {
        let idx = gc_index::TreeIndex::build(
            &dataset,
            gc_index::TreeConfig::with_max_edges(max_edges),
        );
        let cands = idx.super_candidates(&query);
        for (gid, g) in dataset.iter().enumerate() {
            if gc_iso::vf2::exists(g, &query) {
                prop_assert!(cands.contains(gid), "tree super filter dropped {gid}");
            }
        }
    }

    #[test]
    fn tree_codes_isomorphism_invariant(
        t in arb_graph(6, 3),
        seed in any::<u64>(),
    ) {
        // Permute t; canonical tree-code multisets must match.
        let n = t.vertex_count();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut s = seed | 1;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let mut labels = vec![Label(0); n];
        for v in 0..n {
            labels[perm[v] as usize] = t.label(v as u32);
        }
        let edges: Vec<(u32, u32)> = t.edges().map(|(u, v)| (perm[u as usize], perm[v as usize])).collect();
        let t2 = gc_graph::graph_from_parts(&labels, &edges).unwrap();
        let cfg = gc_index::TreeConfig::with_max_edges(3);
        let (mut a, _) = gc_index::enumerate_tree_codes(&t, &cfg);
        let (mut b, _) = gc_index::enumerate_tree_codes(&t2, &cfg);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Equivalence: the allocation-free front-end vs the reference implementations
// (the pre-streaming extraction, HashMap-postings query index and
// pointer-chasing trie preserved in `gc_index::reference`).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn streaming_extraction_matches_materialized(
        g in arb_graph(7, 3),
        max_len in 0usize..4,
        // Small caps exercise the truncation flag on dense graphs.
        cap_sel in 0usize..3,
    ) {
        let max_paths = [10usize, 100, 1_000_000][cap_sel];
        let cfg = FeatureConfig { max_len, max_paths };
        let reference = gc_index::reference::feature_vec_materialized(&g, &cfg);
        let streamed = gc_index::feature_vec(&g, &cfg);
        prop_assert_eq!(streamed.truncated(), reference.truncated(), "truncation flag diverged");
        prop_assert_eq!(streamed.items(), reference.items(), "feature multiset diverged");

        // The reusable-scratch path agrees with the one-shot path.
        let mut scratch = gc_index::ExtractScratch::new();
        let viewed = scratch.extract(&g, &cfg);
        prop_assert_eq!(viewed.truncated(), reference.truncated());
        prop_assert_eq!(viewed.items(), reference.items());
    }

    #[test]
    fn flat_query_index_matches_hashmap_reference(
        cached in proptest::collection::vec(arb_graph(5, 2), 1..10),
        queries in proptest::collection::vec(arb_graph(5, 2), 1..4),
        remove_mask in any::<u32>(),
        max_len in 0usize..3,
    ) {
        let cfg = FeatureConfig::with_max_len(max_len);
        let mut flat = QueryIndex::new(cfg);
        let mut reference = gc_index::reference::RefQueryIndex::new(cfg);
        for (i, c) in cached.iter().enumerate() {
            flat.insert(i as u32, c);
            reference.insert(i as u32, c);
        }
        // Interleave removals so the dynamic maintenance paths are compared
        // too, not just bulk construction.
        for i in 0..cached.len() {
            if remove_mask & (1 << i) != 0 {
                flat.remove(i as u32);
                reference.remove(i as u32);
            }
        }
        let mut scratch = gc_index::CandScratch::new();
        for q in &queries {
            let qf = flat.features_of(q);
            prop_assert_eq!(&qf, &reference.features_of(q), "feature extraction diverged");
            prop_assert_eq!(
                flat.sub_case_candidates(&qf),
                reference.sub_case_candidates(&qf),
                "sub-case candidates diverged"
            );
            prop_assert_eq!(
                flat.super_case_candidates(&qf),
                reference.super_case_candidates(&qf),
                "super-case candidates diverged"
            );
            // The scratch-reusing probe path agrees with the wrappers.
            flat.sub_case_candidates_into(qf.as_features(), &mut scratch);
            prop_assert_eq!(scratch.candidates(), reference.sub_case_candidates(&qf).as_slice());
            flat.super_case_candidates_into(qf.as_features(), &mut scratch);
            prop_assert_eq!(scratch.candidates(), reference.super_case_candidates(&qf).as_slice());
        }
    }

    #[test]
    fn tombstoned_query_index_matches_eager_under_churn(
        graphs in proptest::collection::vec(arb_graph(5, 40), 2..8),
        queries in proptest::collection::vec(arb_graph(4, 40), 1..4),
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..60),
        max_len in 0usize..3,
    ) {
        // Wide label alphabet: most features are unique to one entry, so
        // removals drain posting lists and exercise tombstoning, tail
        // merges and compaction; the eager directory is the executable
        // specification of the maintenance semantics.
        let cfg = FeatureConfig::with_max_len(max_len);
        let mut flat = QueryIndex::new(cfg);
        let mut eager = gc_index::reference::EagerQueryIndex::new(cfg);
        let mut live: Vec<u32> = Vec::new();
        let mut next_id = 0u32;
        let mut scratch = gc_index::CandScratch::new();
        for (op, sel) in ops {
            if op % 3 == 0 && !live.is_empty() {
                let id = live[sel as usize % live.len()];
                live.retain(|&e| e != id);
                flat.remove(id);
                eager.remove(id);
            } else {
                let id = next_id;
                let g = &graphs[id as usize % graphs.len()];
                flat.insert(id, g);
                eager.insert(id, g);
                live.push(id);
                next_id += 1;
            }
            // Probe equivalence after *every* mutation, so divergence is
            // caught at the op that introduced it.
            let qf = flat.features_of(&queries[0]);
            prop_assert_eq!(
                flat.sub_case_candidates(&qf),
                eager.sub_case_candidates(&qf),
                "sub-case diverged mid-churn"
            );
            prop_assert_eq!(
                flat.super_case_candidates(&qf),
                eager.super_case_candidates(&qf),
                "super-case diverged mid-churn"
            );
        }
        for q in &queries {
            let qf = flat.features_of(q);
            prop_assert_eq!(flat.sub_case_candidates(&qf), eager.sub_case_candidates(&qf));
            prop_assert_eq!(flat.super_case_candidates(&qf), eager.super_case_candidates(&qf));
            // The scratch-reusing probe path agrees too.
            flat.sub_case_candidates_into(qf.as_features(), &mut scratch);
            prop_assert_eq!(scratch.candidates(), eager.sub_case_candidates(&qf).as_slice());
            flat.super_case_candidates_into(qf.as_features(), &mut scratch);
            prop_assert_eq!(scratch.candidates(), eager.super_case_candidates(&qf).as_slice());
        }
    }

    #[test]
    fn flat_tree_index_matches_reference_under_churn(
        graphs in proptest::collection::vec(arb_graph(6, 3), 2..8),
        queries in proptest::collection::vec(arb_graph(5, 3), 1..4),
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..40),
        max_edges in 0usize..3,
    ) {
        let cfg = gc_index::TreeConfig::with_max_edges(max_edges);
        let mut flat = gc_index::TreeIndex::new(cfg);
        let mut reference = gc_index::reference::RefTreeIndex::new(cfg);
        let mut live: Vec<u32> = Vec::new();
        let mut next_gid = 0u32;
        for (op, sel) in ops {
            if op % 3 == 0 && !live.is_empty() {
                let gid = live[sel as usize % live.len()];
                live.retain(|&g| g != gid);
                flat.remove_graph(gid);
                reference.remove_graph(gid);
            } else {
                let g = &graphs[next_gid as usize % graphs.len()];
                flat.insert_graph(next_gid, g);
                reference.insert_graph(next_gid, g);
                live.push(next_gid);
                next_gid += 1;
            }
            prop_assert_eq!(
                flat.candidates(&queries[0]),
                reference.candidates(&queries[0]),
                "tree sub filter diverged mid-churn"
            );
        }
        let mut scratch = gc_index::TreeScratch::new();
        let mut out = gc_graph::BitSet::new(flat.dataset_size());
        for q in &queries {
            prop_assert_eq!(flat.candidates(q), reference.candidates(q), "sub filter diverged");
            prop_assert_eq!(
                flat.super_candidates(q),
                reference.super_candidates(q),
                "super filter diverged"
            );
            // Scratch-reusing paths agree with the wrappers.
            flat.candidates_into(q, &mut scratch, &mut out);
            prop_assert_eq!(&out, &reference.candidates(q));
            flat.super_candidates_into(q, &mut scratch, &mut out);
            prop_assert_eq!(&out, &reference.super_candidates(q));
        }
    }

    #[test]
    fn gallop_matches_two_pointer(
        cur_raw in proptest::collection::vec(0u32..500, 0..80),
        list_raw in proptest::collection::vec((0u32..500, 1u32..4), 0..80),
        need in 1u32..4,
    ) {
        let mut cur = cur_raw;
        cur.sort_unstable();
        cur.dedup();
        let mut list = list_raw;
        list.sort_unstable_by_key(|&(id, _)| id);
        list.dedup_by_key(|&mut (id, _)| id);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        gc_index::merge::intersect_two_pointer(&cur, &list, need, &mut a);
        gc_index::merge::intersect_gallop(&cur, &list, need, &mut b);
        prop_assert_eq!(&a, &b, "gallop diverged from two-pointer");
        for cutoff in [1usize, 8, usize::MAX] {
            let mut c = Vec::new();
            gc_index::merge::intersect_adaptive(&cur, &list, need, cutoff, &mut c);
            prop_assert_eq!(&a, &c, "adaptive diverged at cutoff {}", cutoff);
        }
    }

    #[test]
    fn arena_trie_matches_node_reference(
        dataset in proptest::collection::vec(arb_graph(6, 2), 1..8),
        queries in proptest::collection::vec(arb_graph(5, 2), 1..4),
        max_len in 0usize..4,
    ) {
        let cfg = FeatureConfig::with_max_len(max_len);
        let arena = PathTrie::build(&dataset, cfg);
        let reference = gc_index::reference::RefPathTrie::build(&dataset, cfg);
        let mut scratch = gc_index::TrieScratch::new();
        let mut out = gc_graph::BitSet::new(dataset.len());
        for q in &queries {
            prop_assert_eq!(arena.candidates(q), reference.candidates(q), "sub filter diverged");
            prop_assert_eq!(
                arena.super_candidates(q),
                reference.super_candidates(q),
                "super filter diverged"
            );
            // Scratch-reusing paths agree with the wrappers.
            arena.candidates_into(q, &mut scratch, &mut out);
            prop_assert_eq!(&out, &reference.candidates(q));
            arena.super_candidates_into(q, &mut scratch, &mut out);
            prop_assert_eq!(&out, &reference.super_candidates(q));
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic compaction-trigger boundary: the directory must stay
// equivalent to the eager one exactly at the sweep that reclaims tombstones.
// ---------------------------------------------------------------------------

#[test]
fn query_index_compaction_boundary_keeps_candidates_exact() {
    use gc_graph::graph_from_parts;
    // Chain graphs over a wide alphabet: every entry owns most of its
    // feature hashes, so each removal drains lists into tombstones.
    let chain = |seed: u32| {
        let labels: Vec<Label> = (0..5u32).map(|i| Label(1000 + seed * 17 + i * 3)).collect();
        graph_from_parts(&labels, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
    };
    let cfg = FeatureConfig::with_max_len(3);
    let mut flat = QueryIndex::new(cfg);
    let mut eager = gc_index::reference::EagerQueryIndex::new(cfg);
    for id in 0..32u32 {
        flat.insert(id, &chain(id));
        eager.insert(id, &chain(id));
    }
    let probe = chain(3);
    let mut crossed = false;
    for id in 0..24u32 {
        flat.remove(id);
        eager.remove(id);
        if flat.tombstoned_slots() == 0 && id >= 1 {
            crossed = true; // a compaction sweep ran somewhere in the prefix
        }
        // Equivalence must hold on both sides of every compaction sweep.
        let qf = flat.features_of(&probe);
        assert_eq!(flat.sub_case_candidates(&qf), eager.sub_case_candidates(&qf));
        assert_eq!(flat.super_case_candidates(&qf), eager.super_case_candidates(&qf));
    }
    assert!(crossed, "removals never crossed a compaction boundary");
    assert_eq!(flat.len(), 8);
}
