//! Proof that the steady-state filter front-end is allocation-free.
//!
//! Same harness as `crates/iso/tests/alloc_free.rs`: a counting global
//! allocator tracks allocations **per thread**. After one warm-up pass grows
//! every scratch buffer to its high-water mark, a second pass over the same
//! queries must perform zero allocations across the whole probe path —
//! streaming feature extraction ([`ExtractScratch`]), both containment
//! probes of the flat-postings [`QueryIndex`] ([`CandScratch`]) and both
//! directions of the arena [`PathTrie`] filter ([`TrieScratch`] + a reused
//! candidate bitset).
//!
//! This is an integration test (its own binary) so the `#[global_allocator]`
//! cannot interfere with the library's unit tests, and so the crate-level
//! `#![forbid(unsafe_code)]` (which the allocator impl necessarily violates)
//! stays intact for the library itself.

use gc_graph::{graph_from_parts, BitSet, Graph, Label};
use gc_index::{
    CandScratch, ExtractScratch, FeatureConfig, PathTrie, QueryIndex, TreeConfig, TreeIndex,
    TreeScratch, TrieScratch,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the only addition is a
// thread-local counter bump (Cell<u64> is const-initialized and has no
// destructor, so touching it from the allocator cannot recurse or allocate).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// A labelled ring with a tail — molecule-ish shape, `n >= 3` vertices.
fn ring_with_tail(n: u32, ring: u32, label_stride: u32) -> Graph {
    let ring = ring.min(n);
    let labels: Vec<Label> = (0..n).map(|v| Label((v * label_stride) % 5)).collect();
    let mut edges: Vec<(u32, u32)> = (0..ring).map(|v| (v, (v + 1) % ring)).collect();
    for v in ring..n {
        edges.push((v - 1, v));
    }
    graph_from_parts(&labels, &edges).unwrap()
}

struct Fixture {
    trie: PathTrie,
    tree: TreeIndex,
    index: QueryIndex,
    queries: Vec<Graph>,
}

fn fixture() -> Fixture {
    let cfg = FeatureConfig::with_max_len(3);
    // Dataset of 70 mixed rings/chains: the universe crosses a bitset word
    // boundary, sizes vary and labels repeat so features are shared.
    let dataset: Vec<Graph> =
        (0..70).map(|i| ring_with_tail(3 + (i % 9), 3 + (i % 4), 1 + (i % 3))).collect();
    let trie = PathTrie::build(&dataset, cfg);
    let tree = TreeIndex::build(&dataset, TreeConfig::with_max_edges(2));
    // Cached queries: substructures of the dataset shapes.
    let mut index = QueryIndex::new(cfg);
    for (id, i) in (0..10u32).enumerate() {
        index.insert(id as u32, &ring_with_tail(3 + i, 3, 1 + (i % 3)));
    }
    let queries: Vec<Graph> = vec![
        ring_with_tail(4, 4, 1),
        ring_with_tail(7, 3, 2),
        ring_with_tail(5, 5, 3),
        graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap(),
        graph_from_parts(&[Label(9)], &[]).unwrap(), // feature missing everywhere
    ];
    Fixture { trie, tree, index, queries }
}

struct Scratches {
    extract: ExtractScratch,
    cand: CandScratch,
    trie: TrieScratch,
    tree: TreeScratch,
    cm: BitSet,
}

impl Scratches {
    fn new(fx: &Fixture) -> Self {
        Scratches {
            extract: ExtractScratch::new(),
            cand: CandScratch::new(),
            trie: TrieScratch::new(),
            tree: TreeScratch::new(),
            cm: BitSet::new(fx.trie.dataset_size()),
        }
    }
}

/// One steady-state probe pass: extraction once per query, both query-index
/// probes on the shared extraction, both trie filter directions, both
/// tree-feature filter directions.
fn sweep(fx: &Fixture, s: &mut Scratches) -> usize {
    let mut touched = 0usize;
    for q in &fx.queries {
        let cfg = *fx.index.config();
        let features = s.extract.extract(q, &cfg);
        fx.index.sub_case_candidates_into(features, &mut s.cand);
        touched += s.cand.candidates().len();
        fx.index.super_case_candidates_into(features, &mut s.cand);
        touched += s.cand.candidates().len();
        fx.trie.candidates_into(q, &mut s.trie, &mut s.cm);
        touched += s.cm.count();
        fx.trie.super_candidates_into(q, &mut s.trie, &mut s.cm);
        touched += s.cm.count();
        fx.tree.candidates_into(q, &mut s.tree, &mut s.cm);
        touched += s.cm.count();
        fx.tree.super_candidates_into(q, &mut s.tree, &mut s.cm);
        touched += s.cm.count();
    }
    touched
}

#[test]
fn steady_state_probe_path_is_allocation_free() {
    let fx = fixture();
    let mut s = Scratches::new(&fx);

    // Warm-up: grows every scratch buffer to its high-water mark.
    let warm = sweep(&fx, &mut s);
    assert!(warm > 0, "the sweep must do real filtering work");

    // Measured pass: identical work, zero allocations.
    let before = allocations_on_this_thread();
    let touched = sweep(&fx, &mut s);
    let after = allocations_on_this_thread();

    assert_eq!(after - before, 0, "filter front-end allocated on the hot path");
    assert_eq!(touched, warm, "reused scratch must not change the candidates");
}

#[test]
fn scratch_growth_happens_only_at_the_high_water_mark() {
    let fx = fixture();
    let mut s = Scratches::new(&fx);
    // Warm up on the *largest* query only; smaller queries afterwards must
    // not allocate even on first sight.
    let largest = fx
        .queries
        .iter()
        .max_by_key(|q| q.vertex_count() + q.edge_count())
        .expect("fixture has queries");
    let cfg = *fx.index.config();
    let features = s.extract.extract(largest, &cfg);
    fx.index.sub_case_candidates_into(features, &mut s.cand);
    let features = s.extract.extract(largest, &cfg);
    fx.index.super_case_candidates_into(features, &mut s.cand);
    fx.trie.candidates_into(largest, &mut s.trie, &mut s.cm);
    fx.trie.super_candidates_into(largest, &mut s.trie, &mut s.cm);
    fx.tree.candidates_into(largest, &mut s.tree, &mut s.cm);
    fx.tree.super_candidates_into(largest, &mut s.tree, &mut s.cm);

    let before = allocations_on_this_thread();
    let smallest = &fx.queries[4]; // the single-vertex query
    let features = s.extract.extract(smallest, &cfg);
    fx.index.sub_case_candidates_into(features, &mut s.cand);
    let features = s.extract.extract(smallest, &cfg);
    fx.index.super_case_candidates_into(features, &mut s.cand);
    fx.trie.candidates_into(smallest, &mut s.trie, &mut s.cm);
    fx.trie.super_candidates_into(smallest, &mut s.trie, &mut s.cm);
    fx.tree.candidates_into(smallest, &mut s.tree, &mut s.cm);
    fx.tree.super_candidates_into(smallest, &mut s.tree, &mut s.cm);
    let after = allocations_on_this_thread();
    assert_eq!(after - before, 0, "smaller queries must fit the warmed scratch");
}

/// After admission/eviction churn drives the query-index directory through
/// tail merges and a compaction sweep, the probe path must still be
/// allocation-free (compaction rebuilds the runs; the probe scratch and
/// slot tables are untouched).
#[test]
fn post_compaction_probe_path_is_allocation_free() {
    let chain = |seed: u32| {
        let labels: Vec<Label> = (0..5u32).map(|i| Label(500 + seed * 13 + i * 7)).collect();
        graph_from_parts(&labels, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
    };
    let cfg = FeatureConfig::with_max_len(3);
    let mut index = QueryIndex::new(cfg);
    for id in 0..40u32 {
        index.insert(id, &chain(id));
    }
    // Evictions over the wide alphabet drain posting lists; crossing the
    // tombstone threshold compacts the directory.
    let mut saw_tombstones = 0usize;
    for id in 0..30u32 {
        index.remove(id);
        saw_tombstones = saw_tombstones.max(index.tombstoned_slots());
    }
    assert!(saw_tombstones > 0, "churn must create tombstones");
    assert!(
        index.tombstoned_slots() < saw_tombstones,
        "a compaction sweep must have reclaimed tombstones"
    );

    let mut extract = ExtractScratch::new();
    let mut cand = CandScratch::new();
    let queries = [chain(32), chain(35), chain(2) /* evicted: miss path */];
    // Warm-up pass, then the measured pass must not allocate.
    for q in &queries {
        let features = extract.extract(q, &cfg);
        index.sub_case_candidates_into(features, &mut cand);
        index.super_case_candidates_into(features, &mut cand);
    }
    let before = allocations_on_this_thread();
    let mut touched = 0usize;
    for q in &queries {
        let features = extract.extract(q, &cfg);
        index.sub_case_candidates_into(features, &mut cand);
        touched += cand.candidates().len();
        index.super_case_candidates_into(features, &mut cand);
        touched += cand.candidates().len();
    }
    let after = allocations_on_this_thread();
    assert_eq!(after - before, 0, "post-compaction probe path allocated");
    assert!(touched > 0, "live entries must still probe as candidates");
}
