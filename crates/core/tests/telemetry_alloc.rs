//! Alloc-count assertion for the telemetry hot path: with the trace
//! sampler disabled (`trace_sample_rate = 0`) and no slow queries, the
//! full per-query telemetry protocol — `begin_query`, stage spans, and
//! `finish_query` — performs **zero heap allocations**. Everything is
//! relaxed atomics; the trace-building closure is never invoked.
//!
//! Same counting-allocator harness as `probe_alloc.rs`; its own binary so
//! the `#[global_allocator]` stays out of the other integration tests.

use gc_core::telemetry::{PipelineStage, QueryTiming, Telemetry};
use gc_core::CacheConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Duration;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the only addition is a
// thread-local counter bump (Cell<u64> is const-initialized and has no
// destructor, so touching it from the allocator cannot recurse or allocate).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

#[test]
fn disabled_sampler_allocates_nothing_on_the_query_path() {
    let config = CacheConfig {
        trace_sample_rate: 0.0, // sampling off
        // Default threshold (100 ms) — the synthetic 5 µs "queries" below
        // can never trip the slow-query capture.
        ..CacheConfig::default()
    };
    let telemetry = Telemetry::from_config(&config);

    let before = allocations_on_this_thread();
    for _ in 0..1000 {
        let seq = telemetry.begin_query();
        let mut timing = QueryTiming::default();
        for stage in PipelineStage::ALL {
            let _span = telemetry.span(stage, &mut timing);
        }
        telemetry.finish_query(seq, Duration::from_micros(5), |_| {
            unreachable!("disabled sampler must never build a trace")
        });
    }
    let after = allocations_on_this_thread();
    assert_eq!(after - before, 0, "telemetry allocated with the sampler disabled");
    assert_eq!(telemetry.total().count(), 1000);
    assert_eq!(telemetry.sampled_count(), 0);
    assert_eq!(telemetry.slow_count(), 0);
}

#[test]
fn slow_query_capture_still_works_with_sampler_disabled() {
    // Companion check: the zero-alloc guarantee applies only to the
    // fast/unsampled path; a query over the slow threshold still builds
    // and stores its trace.
    let config = CacheConfig {
        trace_sample_rate: 0.0,
        slow_query_threshold: Duration::from_micros(10),
        ..CacheConfig::default()
    };
    let telemetry = Telemetry::from_config(&config);
    let seq = telemetry.begin_query();
    let mut timing = QueryTiming::default();
    {
        let _span = telemetry.span(PipelineStage::Verify, &mut timing);
    }
    telemetry.finish_query(seq, Duration::from_millis(5), |slow| {
        assert!(slow);
        gc_core::QueryTrace {
            seq,
            request_id: None,
            kind: "sub".into(),
            outcome: "pipeline".into(),
            shard: 0,
            generation: 0,
            total_us: 5_000,
            filter_us: 0,
            probe_us: 0,
            prune_us: 0,
            verify_us: timing.stage_us[3],
            admit_us: 0,
            memo_us: 0,
            cm_size: 0,
            definite: 0,
            to_verify: 0,
            survivors: 0,
            answer: 0,
            probe_tests: 0,
            verify_steps: 0,
            slow,
        }
    });
    assert_eq!(telemetry.slow_count(), 1);
    assert_eq!(telemetry.recent_slow(5).len(), 1);
}
