//! Live dataset mutation + answer memo: the dynamic-dataset contract.
//!
//! Covers:
//!
//! * any interleaving of insert/remove/query yields, at every step, the
//!   answers Method M alone would compute on the dataset *as mutated so
//!   far*, and a cold cache rebuilt on the final dataset agrees with the
//!   mutated-in-place cache (property test over random interleavings);
//! * sequential and sharded runtimes answer identically under the same
//!   mutation script;
//! * a memo hit performs **zero** probe/verify work and the memo is
//!   invalidated wholesale by any dataset mutation (generation bump);
//! * mutations racing a snapshot neither deadlock nor lose their delta —
//!   every journaled delta is recoverable (warm restart replays it);
//! * warm restarts replay dataset deltas from the journal on top of the
//!   pristine base dataset and repair restored answer sets.

mod common;

use common::assert_consistent;
use gc_core::persist::CacheStore;
use gc_core::{CacheConfig, GraphCache, PolicyKind, SharedGraphCache};
use gc_method::{execute_base, Dataset, Engine, QueryKind, SiMethod};
use gc_workload::{extract_query, molecule_dataset};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gc_dynamic_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dataset(n: usize, seed: u64) -> Arc<Dataset> {
    Arc::new(Dataset::new(molecule_dataset(n, seed)))
}

fn config() -> CacheConfig {
    CacheConfig { capacity: 16, window_size: 2, ..CacheConfig::default() }
}

/// One step of an interleaved mutation/query script.
#[derive(Debug, Clone)]
enum Step {
    Insert,
    Remove,
    Query(QueryKind),
}

/// Deterministic script of `n` steps: ~1/6 inserts, ~1/6 removes, the rest
/// queries alternating kinds.
fn script(n: usize, seed: u64) -> Vec<Step> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| match rng.gen_range(0..6) {
            0 => Step::Insert,
            1 => Step::Remove,
            k => Step::Query(if k % 2 == 0 { QueryKind::Subgraph } else { QueryKind::Supergraph }),
        })
        .collect()
}

/// A query graph extracted from a random *live* dataset graph, so the
/// stream keeps producing non-trivial answers as the dataset churns.
fn live_query(ds: &Dataset, rng: &mut StdRng) -> gc_graph::Graph {
    let live: Vec<_> = ds.live_mask().iter().collect();
    let gid = live[rng.gen_range(0..live.len())];
    let size = rng.gen_range(3..8);
    extract_query(ds.graph(gid as u32), size, rng).expect("molecule graphs are non-empty")
}

/// Fresh molecule graphs to insert, distinct from the base pool.
fn insert_pool(n: usize, seed: u64) -> Vec<gc_graph::Graph> {
    molecule_dataset(n, seed)
}

/// Run `steps` against a sequential cache, checking every query against
/// Method M alone on the *current* dataset. Returns the (graph, kind)
/// queries issued for replay against a cold rebuild.
fn drive_sequential(
    gc: &mut GraphCache,
    steps: &[Step],
    seed: u64,
) -> Vec<(gc_graph::Graph, QueryKind)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool = insert_pool(steps.len(), seed ^ 0xfeed).into_iter();
    let mut issued = Vec::new();
    for step in steps {
        match step {
            Step::Insert => {
                let gid = gc.insert_graph(pool.next().unwrap());
                assert!(gc.dataset().live_mask().contains(gid as usize));
            }
            Step::Remove => {
                // Keep at least 4 live graphs so queries stay meaningful.
                if gc.dataset().live_count() > 4 {
                    let live: Vec<_> = gc.dataset().live_mask().iter().collect();
                    let victim = live[rng.gen_range(0..live.len())] as u32;
                    assert!(gc.remove_graph(victim));
                    assert!(!gc.remove_graph(victim), "double remove must be a no-op");
                }
            }
            Step::Query(kind) => {
                let q = live_query(gc.dataset(), &mut rng);
                let r = gc.query(&q, *kind);
                let want = execute_base(gc.dataset(), &SiMethod, Engine::Vf2, &q, *kind);
                assert_eq!(r.answer, want.answer, "answer must match Method M on current dataset");
                if r.memo_hit {
                    assert_eq!(r.sub_iso_tests, 0, "memo hit must run zero sub-iso tests");
                    assert_eq!(r.probe_tests, 0, "memo hit must run zero probes");
                    assert_eq!(r.verify_steps, 0, "memo hit must run zero verifier steps");
                }
                issued.push((q, *kind));
            }
        }
    }
    issued
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any interleaving of insert/remove/query matches Method M per step,
    /// and a cold cache rebuilt on the final dataset answers identically
    /// to the mutated-in-place cache.
    #[test]
    fn interleavings_match_cold_rebuild(seed in 0u64..1000) {
        let ds = dataset(18, 40 + seed);
        let mut gc =
            GraphCache::with_policy(ds, Box::new(SiMethod), PolicyKind::Hd, config()).unwrap();
        let steps = script(60, seed);
        let issued = drive_sequential(&mut gc, &steps, seed);
        prop_assert!(gc.dataset().generation() > 0, "script must mutate");
        assert_consistent(gc.cache());

        // Cold rebuild on the final dataset: same answers for every query.
        let final_ds = Arc::new(gc.dataset().clone());
        let mut cold =
            GraphCache::with_policy(final_ds, Box::new(SiMethod), PolicyKind::Hd, config())
                .unwrap();
        for (q, kind) in issued {
            let warm = gc.query(&q, kind);
            let want = cold.query(&q, kind);
            prop_assert_eq!(warm.answer, want.answer, "mutated cache must equal cold rebuild");
        }
    }
}

#[test]
fn sequential_and_sharded_answer_identically_under_mutation() {
    let ds = dataset(16, 77);
    let cfg = CacheConfig { shards: 4, ..config() };
    let mut seq =
        GraphCache::with_policy(ds.clone(), Box::new(SiMethod), PolicyKind::Hd, cfg.clone())
            .unwrap();
    let shared =
        SharedGraphCache::new(ds, Arc::new(SiMethod), || PolicyKind::Hd.make(), cfg).unwrap();

    let steps = script(80, 99);
    let mut rng_a = StdRng::seed_from_u64(7);
    let mut rng_b = StdRng::seed_from_u64(7);
    let mut pool_a = insert_pool(steps.len(), 0xabc).into_iter();
    let mut pool_b = insert_pool(steps.len(), 0xabc).into_iter();
    for step in &steps {
        match step {
            Step::Insert => {
                let a = seq.insert_graph(pool_a.next().unwrap());
                let b = shared.insert_graph(pool_b.next().unwrap());
                assert_eq!(a, b, "both runtimes must assign the same graph id");
            }
            Step::Remove => {
                if seq.dataset().live_count() > 4 {
                    let live: Vec<_> = seq.dataset().live_mask().iter().collect();
                    let victim = live[rng_a.gen_range(0..live.len())] as u32;
                    let _ = rng_b.gen_range(0..live.len());
                    assert!(seq.remove_graph(victim));
                    assert!(shared.remove_graph(victim));
                }
            }
            Step::Query(kind) => {
                let q = live_query(seq.dataset(), &mut rng_a);
                let _ = live_query(&shared.dataset(), &mut rng_b);
                let ra = seq.query(&q, *kind);
                let rb = shared.query(&q, *kind);
                assert_eq!(ra.answer, rb.answer, "runtimes disagree under mutation");
            }
        }
    }
    assert_eq!(seq.dataset().generation(), shared.dataset().generation());
    assert_eq!(seq.dataset().content_fingerprint(), shared.dataset().content_fingerprint());
}

#[test]
fn memo_hit_is_zero_work_and_generation_invalidated() {
    let ds = dataset(20, 123);
    // Tiny cache: entries evict fast, so repeats miss the exact-match table
    // and fall through to the memo.
    let cfg = CacheConfig { capacity: 2, window_size: 1, ..CacheConfig::default() };
    let mut gc =
        GraphCache::with_policy(ds.clone(), Box::new(SiMethod), PolicyKind::Lru, cfg).unwrap();

    let mut rng = StdRng::seed_from_u64(9);
    let q = extract_query(ds.graph(1), 6, &mut rng).unwrap();
    let first = gc.query(&q, QueryKind::Subgraph);
    assert!(!first.memo_hit);

    // Evict q's entry with a stream of distinct queries (capacity 2).
    for gid in 4..14u32 {
        let filler = extract_query(ds.graph(gid), 5, &mut rng).unwrap();
        gc.query(&filler, QueryKind::Subgraph);
    }
    assert!(gc.memo_len() > 0, "executed queries must land in the memo");

    let repeat = gc.query(&q, QueryKind::Subgraph);
    assert!(!repeat.exact_hit, "entry must have been evicted");
    assert!(repeat.memo_hit, "evicted repeat must be served by the answer memo");
    assert_eq!(repeat.sub_iso_tests, 0);
    assert_eq!(repeat.probe_tests, 0);
    assert_eq!(repeat.verify_steps, 0);
    assert_eq!(repeat.answer, first.answer);
    assert_eq!(gc.stats().memo_hits, 1);

    // A mutation bumps the generation: the whole memo is invalid at once.
    let inserted = gc.insert_graph(ds.graph(1).clone());
    let after = gc.query(&q, QueryKind::Subgraph);
    assert!(!after.memo_hit, "mutation must invalidate the memo");
    assert!(
        after.answer.contains(inserted as usize),
        "the re-executed answer must see the inserted duplicate graph"
    );
    let want = execute_base(gc.dataset(), &SiMethod, Engine::Vf2, &q, QueryKind::Subgraph);
    assert_eq!(after.answer, want.answer);
}

#[test]
fn cached_entries_are_repaired_in_place_by_mutation() {
    let ds = dataset(20, 321);
    let mut gc =
        GraphCache::with_policy(ds.clone(), Box::new(SiMethod), PolicyKind::Hd, config()).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let q = extract_query(ds.graph(2), 5, &mut rng).unwrap();
    let first = gc.query(&q, QueryKind::Subgraph);
    assert!(first.admitted.is_some(), "first execution must admit the entry");

    // Insert a duplicate of a known container: the cached entry's answer
    // set must now include it — served as an exact hit, no re-execution.
    let gid = gc.insert_graph(ds.graph(2).clone());
    let hit = gc.query(&q, QueryKind::Subgraph);
    assert!(hit.exact_hit, "repair must keep the entry servable");
    assert!(hit.answer.contains(gid as usize), "repaired answer must include the inserted graph");

    // Remove that graph again: the bit must drop out of the cached answer.
    assert!(gc.remove_graph(gid));
    let hit2 = gc.query(&q, QueryKind::Subgraph);
    assert!(hit2.exact_hit);
    assert!(!hit2.answer.contains(gid as usize), "removal must clear the cached bit");
    let want = execute_base(gc.dataset(), &SiMethod, Engine::Vf2, &q, QueryKind::Subgraph);
    assert_eq!(hit2.answer, want.answer);
}

#[test]
fn warm_restart_replays_journaled_dataset_deltas() {
    let base = dataset(18, 555);
    let dir = tmpdir("deltas");
    let cfg = config();

    // Session A: snapshot first (pristine dataset), then mutate — the
    // mutations live only in the journal as dataset deltas.
    let store = Arc::new(CacheStore::open(&dir).unwrap());
    let (mut a, _) = GraphCache::restore_from(
        base.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd.make(),
        cfg.clone(),
        store,
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(12);
    let q = extract_query(base.graph(3), 5, &mut rng).unwrap();
    a.query(&q, QueryKind::Subgraph);
    a.snapshot_now().unwrap();

    let extra = molecule_dataset(3, 999);
    for g in extra {
        a.insert_graph(g);
    }
    assert!(a.remove_graph(0), "graph 0 must be removable");
    let final_gen = a.dataset().generation();
    let final_fp = a.dataset().content_fingerprint();
    let want = execute_base(a.dataset(), &SiMethod, Engine::Vf2, &q, QueryKind::Subgraph);
    let final_answer = a.query(&q, QueryKind::Subgraph).answer;
    assert_eq!(final_answer, want.answer);
    a.attached_store().unwrap().sync().unwrap();
    drop(a);

    // Session B: restore from the *pristine* base — the deltas must be
    // replayed from the journal, and restored entries repaired to the
    // final universe.
    let store = Arc::new(CacheStore::open(&dir).unwrap());
    let (mut b, report) =
        GraphCache::restore_from(base, Box::new(SiMethod), PolicyKind::Hd.make(), cfg, store)
            .unwrap();
    assert!(report.warm, "delta-bearing store must restore warm: {:?}", report.cold_reason);
    assert!(report.journal_deltas >= 4, "all four mutations must replay as journal deltas");
    assert_eq!(b.dataset().generation(), final_gen);
    assert_eq!(b.dataset().content_fingerprint(), final_fp);

    let r = b.query(&q, QueryKind::Subgraph);
    assert!(r.exact_hit, "restored entry must serve an exact hit");
    assert_eq!(r.answer, final_answer, "restored answer must be repaired to the final dataset");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restore_accepts_already_mutated_base_dataset() {
    let base = dataset(14, 777);
    let dir = tmpdir("mutated_base");
    let store = Arc::new(CacheStore::open(&dir).unwrap());
    let (mut a, _) = GraphCache::restore_from(
        base.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd.make(),
        config(),
        store,
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let q = extract_query(base.graph(1), 5, &mut rng).unwrap();
    a.query(&q, QueryKind::Subgraph);
    for g in molecule_dataset(2, 31) {
        a.insert_graph(g);
    }
    a.snapshot_now().unwrap();
    let mutated = Arc::new(a.dataset().clone());
    let answer = a.query(&q, QueryKind::Subgraph).answer;
    drop(a);

    // Restoring with the already-mutated dataset (e.g. the caller replayed
    // its own op log) must also work — no double-application of ops.
    let store = Arc::new(CacheStore::open(&dir).unwrap());
    let (mut b, report) = GraphCache::restore_from(
        mutated.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd.make(),
        config(),
        store,
    )
    .unwrap();
    assert!(report.warm, "mutated base matching the snapshot must restore warm");
    assert_eq!(b.dataset().content_fingerprint(), mutated.content_fingerprint());
    assert_eq!(b.query(&q, QueryKind::Subgraph).answer, answer);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 3: a mutation racing `snapshot_now` must neither deadlock nor
/// have its delta dropped between the rotated-away journal and the new one.
/// Every mutation that returned must be recoverable from the store.
#[test]
fn mutations_racing_snapshots_are_never_dropped() {
    let base = dataset(16, 888);
    let dir = tmpdir("race");
    let cfg = CacheConfig { shards: 4, ..config() };
    let store = Arc::new(CacheStore::open(&dir).unwrap());
    let mut gc = SharedGraphCache::new(
        base.clone(),
        Arc::new(SiMethod),
        || PolicyKind::Hd.make(),
        cfg.clone(),
    )
    .unwrap();
    gc.attach_store(store).unwrap();
    let gc = Arc::new(gc);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let snapper = {
        let gc = Arc::clone(&gc);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rotations = 0u32;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                gc.snapshot_now().unwrap();
                rotations += 1;
            }
            rotations
        })
    };
    let querier = {
        let gc = Arc::clone(&gc);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(3);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let ds = gc.dataset();
                let q = live_query(&ds, &mut rng);
                gc.query(&q, QueryKind::Subgraph);
            }
        })
    };

    // Main thread: a burst of mutations interleaved with the snapshots.
    let extra = molecule_dataset(24, 444);
    let mut inserted = Vec::new();
    for (i, g) in extra.into_iter().enumerate() {
        inserted.push(gc.insert_graph(g));
        if i % 3 == 2 {
            let victim = inserted.remove(0);
            assert!(gc.remove_graph(victim));
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let rotations = snapper.join().unwrap();
    querier.join().unwrap();
    assert!(rotations > 0, "the snapshot thread must have rotated at least once");

    let final_gen = gc.dataset().generation();
    let final_fp = gc.dataset().content_fingerprint();
    assert_eq!(final_gen, 24 + 8, "every mutation must have applied");
    drop(gc);

    // Recovery sees every mutation: none fell between snapshot and journal.
    let store = Arc::new(CacheStore::open(&dir).unwrap());
    let (b, report) = SharedGraphCache::restore_from(
        base,
        Arc::new(SiMethod),
        || PolicyKind::Hd.make(),
        cfg,
        store,
    )
    .unwrap();
    assert!(report.warm, "store must restore warm: {:?}", report.cold_reason);
    assert_eq!(b.dataset().generation(), final_gen, "no mutation may be dropped");
    assert_eq!(b.dataset().content_fingerprint(), final_fp);
    let _ = std::fs::remove_dir_all(&dir);
}
