//! Churn stress: eviction-heavy Zipf workloads must keep every lookup
//! structure — fingerprint buckets, the tombstoned containment index, the
//! slab — exactly in sync with the live entry set, sequentially and across
//! `SharedGraphCache` shards under concurrent clients.
//!
//! Extends the `cache_sync.rs` invariants to the regime this PR targets:
//! tiny capacities with window 1 force an admission + eviction on almost
//! every query, so the index directory is driven through tombstoning, tail
//! merges and compaction sweeps at traffic rate.

use gc_core::{CacheConfig, CacheManager, GraphCache, PolicyKind, SharedGraphCache};
use gc_index::IndexTuning;
use gc_method::{Dataset, SiMethod};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use std::sync::Arc;

mod common;

/// The shared `cache_sync` invariant, plus directory-health bounds.
fn assert_consistent(cm: &CacheManager) {
    common::assert_consistent(cm);

    // Tombstones are bounded by the compaction trigger (percentage
    // threshold with a floor of a few slots on tiny directories): lazy,
    // not leaky.
    let tombstones = cm.index().tombstoned_slots();
    let total = cm.index().distinct_features() + tombstones;
    assert!(
        tombstones < IndexTuning::COMPACT_MIN
            || tombstones * 100 < cm.index().tuning().compact_tombstone_pct * total,
        "tombstones exceeded the compaction trigger ({tombstones} of {total} slots)"
    );
}

#[test]
fn zipf_eviction_churn_keeps_sequential_cache_consistent() {
    let dataset = Arc::new(Dataset::new(molecule_dataset(18, 4242)));
    let spec = WorkloadSpec {
        n_queries: 180,
        pool_size: 90,
        kind: WorkloadKind::Zipf { skew: 1.1 },
        seed: 21,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    // Window 1 + capacity 3: nearly every query admits and evicts; an
    // aggressive compaction threshold maximizes directory rebuilds.
    let config = CacheConfig {
        capacity: 3,
        window_size: 1,
        index_tuning: IndexTuning { compact_tombstone_pct: 25, ..IndexTuning::default() },
        ..CacheConfig::default()
    };
    for policy in [PolicyKind::Lru, PolicyKind::Hd] {
        let mut gc =
            GraphCache::with_policy(dataset.clone(), Box::new(SiMethod), policy, config.clone())
                .unwrap();
        for wq in &workload.queries {
            gc.query(&wq.graph, wq.kind);
            assert_consistent(gc.cache());
        }
        let stats = gc.stats();
        assert!(stats.evicted > 0, "policy {policy} must have evicted");
        assert!(stats.admitted > stats.evicted, "admissions outnumber evictions");
    }
}

#[test]
fn zipf_eviction_churn_keeps_shared_shards_consistent() {
    let dataset = Arc::new(Dataset::new(molecule_dataset(16, 777)));
    let spec = WorkloadSpec {
        n_queries: 60,
        pool_size: 60,
        kind: WorkloadKind::Zipf { skew: 1.2 },
        seed: 5,
        supergraph_fraction: 0.25,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    let gc = Arc::new(
        SharedGraphCache::with_policy(
            dataset,
            Box::new(SiMethod),
            PolicyKind::Hd,
            CacheConfig { capacity: 8, window_size: 1, shards: 4, ..CacheConfig::default() },
        )
        .unwrap(),
    );

    // 4 client threads drain the workload concurrently while the main
    // thread repeatedly sweeps the shard invariants under read locks.
    let n_threads = 4;
    std::thread::scope(|scope| {
        for t in 0..n_threads {
            let gc = Arc::clone(&gc);
            let queries = &workload.queries;
            scope.spawn(move || {
                for wq in queries.iter().skip(t).step_by(n_threads) {
                    gc.query(&wq.graph, wq.kind);
                }
            });
        }
        for _ in 0..20 {
            gc.for_each_shard(|_, cm| assert_consistent(cm));
            std::thread::yield_now();
        }
    });

    // Final full sweep after all clients finished.
    let mut total_entries = 0usize;
    gc.for_each_shard(|_, cm| {
        assert_consistent(cm);
        total_entries += cm.len();
    });
    assert_eq!(total_entries, gc.len(), "shard sizes must sum to the cache size");
    assert!(gc.stats().evicted > 0, "the workload must have forced evictions");
}

#[test]
fn repeat_heavy_churn_recycles_slots_without_desync() {
    // Interleave repeated (exact-hit) queries with fresh ones under window
    // 1 so admissions constantly recycle slab slots whose ids are still in
    // the directory's tombstoned region.
    let dataset = Arc::new(Dataset::new(molecule_dataset(12, 31)));
    let spec = WorkloadSpec {
        n_queries: 140,
        pool_size: 10, // tiny pool: heavy repeats + heavy slab reuse
        kind: WorkloadKind::Zipf { skew: 1.5 },
        seed: 77,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    let mut gc = GraphCache::with_policy(
        dataset,
        Box::new(SiMethod),
        PolicyKind::Lru,
        CacheConfig { capacity: 4, window_size: 1, ..CacheConfig::default() },
    )
    .unwrap();
    for (i, wq) in workload.queries.iter().enumerate() {
        gc.query(&wq.graph, wq.kind);
        if i % 10 == 0 {
            assert_consistent(gc.cache());
        }
    }
    assert_consistent(gc.cache());
    let stats = gc.stats();
    assert!(stats.exact_hits > 0, "tiny pool must produce exact hits");
    assert!(stats.evicted > 0, "tiny capacity must produce evictions");
}
