//! Regression tests: `CacheManager::insert`/`remove` must keep the
//! fingerprint table and the containment `QueryIndex` exactly in sync with
//! the live entry set, across slab reuse, duplicate fingerprints and
//! eviction sweeps.
//!
//! A stale `EntryId` left in a fingerprint bucket would make
//! `find_exact` panic ("bucket holds live entries") or serve a wrong
//! exact-match; a stale id in the query index would make probe candidates
//! point at dead or reused slots. These tests hammer the mutation paths and
//! then assert full structural consistency.

use gc_core::{CacheConfig, CacheManager, EntryId, GraphCache, PolicyKind};
use gc_index::FeatureConfig;
use gc_method::{Dataset, QueryKind, SiMethod};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use std::sync::Arc;

mod common;
use common::assert_consistent;

/// Deterministic splitmix-style counter so the stress is reproducible.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

#[test]
fn interleaved_insert_remove_keeps_structures_in_sync() {
    let graphs = molecule_dataset(12, 99);
    let mut cm = CacheManager::new(FeatureConfig::with_max_len(2));
    let mut live: Vec<EntryId> = Vec::new();
    let mut rng = Lcg(7);
    for step in 0..400 {
        let remove = !live.is_empty() && rng.next().is_multiple_of(3);
        if remove {
            let idx = (rng.next() as usize) % live.len();
            let id = live.swap_remove(idx);
            assert!(cm.remove(id).is_some(), "live id {id} must remove");
            assert!(cm.remove(id).is_none(), "double-remove of {id} must be a no-op");
        } else {
            // Insert graphs cyclically: repeats produce identical
            // fingerprints, packing multiple ids into one bucket, and slab
            // reuse recycles freed ids into fresh buckets.
            let g = graphs[(step as usize) % graphs.len()].clone();
            let answer = gc_graph::BitSet::new(4);
            let id = cm.insert(g, QueryKind::Subgraph, answer, 4, 10, step);
            live.push(id);
        }
        if step % 25 == 0 {
            assert_consistent(&cm);
        }
    }
    assert_consistent(&cm);
    // Drain completely: every structure must end empty.
    for id in live {
        cm.remove(id);
    }
    assert!(cm.is_empty());
    assert_eq!(cm.ids().len(), 0);
    assert_consistent(&cm);
}

#[test]
fn eviction_sweeps_leave_no_stale_bucket_ids() {
    // Tiny capacity + window 1 under a wide workload: every query triggers
    // a sweep, maximizing (admit, evict, slab-reuse) interleavings through
    // the full runtime path.
    let dataset = Arc::new(Dataset::new(molecule_dataset(20, 123)));
    let spec = WorkloadSpec {
        n_queries: 120,
        pool_size: 120,
        kind: WorkloadKind::Uniform,
        seed: 5,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    for policy in PolicyKind::all() {
        let mut gc = GraphCache::with_policy(
            dataset.clone(),
            Box::new(SiMethod),
            policy,
            CacheConfig { capacity: 4, window_size: 1, ..CacheConfig::default() },
        )
        .unwrap();
        for wq in &workload.queries {
            gc.query(&wq.graph, wq.kind);
            assert_consistent(gc.cache());
        }
        assert!(gc.stats().evicted > 0, "policy {policy} must have evicted");
    }
}

#[test]
fn byte_budget_eviction_loop_stays_consistent() {
    let dataset = Arc::new(Dataset::new(molecule_dataset(15, 321)));
    let spec = WorkloadSpec {
        n_queries: 60,
        pool_size: 60,
        kind: WorkloadKind::Uniform,
        seed: 9,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    let mut gc = GraphCache::with_policy(
        dataset.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd,
        CacheConfig {
            capacity: 1000,
            window_size: 2,
            max_bytes: Some(8 * 1024),
            ..CacheConfig::default()
        },
    )
    .unwrap();
    for wq in &workload.queries {
        gc.query(&wq.graph, wq.kind);
        assert_consistent(gc.cache());
    }
    assert!(gc.stats().evicted > 0);
}
