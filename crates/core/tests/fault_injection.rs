//! Fault-injected integration tests: the cache under deterministic I/O
//! errors, torn writes, and injected worker-task panics.
//!
//! The invariant under test is GraphCache's central one — answers are
//! *exactly* those of Method M alone — extended with the durability
//! contract of this PR: under any injected fault the cache may get slower
//! or colder (degraded persistence, inline re-verification), but never
//! wrong, and persistence re-arms itself once the fault clears.
//!
//! The tests share the process-wide verify pool (`gc_core::global_pool`)
//! and its fault hook, so they serialize on a static mutex.

use gc_core::persist::{Failpoint, FaultPlan, FaultSite};
use gc_core::{CacheConfig, GraphCache, PersistHealth, PolicyKind, SharedGraphCache};
use gc_method::{execute_base, Dataset, Engine, SiMethod};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Serializes the tests in this file: they share the global verify pool's
/// fault hook (and injected panics are whole-process noise).
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    // A previous test's assert failure poisons the lock but leaves the
    // pool usable; each test starts by clearing the fault hook anyway.
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    gc_core::global_pool().set_fault_plan(None);
    guard
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gc_faults_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dataset() -> Arc<Dataset> {
    Arc::new(Dataset::new(molecule_dataset(26, 7)))
}

fn workload(ds: &Arc<Dataset>, n: usize, seed: u64) -> Workload {
    let spec = WorkloadSpec {
        n_queries: n,
        pool_size: 16,
        kind: WorkloadKind::Zipf { skew: 1.1 },
        seed,
        ..WorkloadSpec::default()
    };
    Workload::generate(ds.graphs(), &spec)
}

/// Run `w` through `gc`, asserting every answer equals Method M alone.
fn assert_exact_shared(gc: &SharedGraphCache, ds: &Arc<Dataset>, w: &Workload) {
    for wq in &w.queries {
        let got = gc.query(&wq.graph, wq.kind);
        let want = execute_base(ds, &SiMethod, Engine::Vf2, &wq.graph, wq.kind);
        assert_eq!(got.answer, want.answer, "answer diverged under injected faults");
    }
}

#[test]
fn injected_task_panics_never_change_answers() {
    let _guard = serial();
    let ds = dataset();
    let w = workload(&ds, 40, 3);

    // threads > 1 routes candidate verification and shard probes through
    // the global pool; parallel_threshold 1 forces dispatch even for tiny
    // candidate sets so the injection actually lands on pool tasks.
    let cfg = CacheConfig {
        capacity: 16,
        window_size: 2,
        threads: 4,
        shards: 4,
        parallel_threshold: 1,
        min_admit_tests: 0,
        ..CacheConfig::default()
    };
    let gc =
        SharedGraphCache::with_policy(ds.clone(), Box::new(SiMethod), PolicyKind::Hd, cfg).unwrap();

    // Every pool task panics: all shard probes and verify chunks are lost
    // and redone inline by the submitting thread.
    let plan = Arc::new(FaultPlan::seeded(11));
    plan.arm(FaultSite::Task, Failpoint::ErrAfter { n: 0 });
    gc_core::global_pool().set_fault_plan(Some(plan.clone()));
    assert_exact_shared(&gc, &ds, &w);
    assert!(plan.fired() > 0, "the task injection never fired — test is vacuous");

    // Intermittent panics: only some tasks die.
    let plan = Arc::new(FaultPlan::seeded(12));
    for _ in 0..8 {
        plan.arm(FaultSite::Task, Failpoint::PanicAt { n: 5 });
    }
    gc_core::global_pool().set_fault_plan(Some(plan.clone()));
    assert_exact_shared(&gc, &ds, &workload(&ds, 40, 4));
    assert!(plan.fired() > 0, "the intermittent injection never fired");

    gc_core::global_pool().set_fault_plan(None);
    assert_exact_shared(&gc, &ds, &workload(&ds, 10, 5));
}

#[test]
fn persistent_append_failure_degrades_then_recovers() {
    let _guard = serial();
    let ds = dataset();
    let dir = tmpdir("degrade");
    let cfg = CacheConfig {
        capacity: 16,
        window_size: 2,
        min_admit_tests: 0,
        persist_retries: 1,
        ..CacheConfig::default()
    };
    let store = Arc::new(gc_core::CacheStore::open(&dir).unwrap());
    let mut gc =
        GraphCache::with_policy(ds.clone(), Box::new(SiMethod), PolicyKind::Hd, cfg).unwrap();
    gc.attach_store(Arc::clone(&store)).unwrap();
    assert_eq!(gc.persist_health(), Some(PersistHealth::Healthy));
    let healthy_generation = store.generation();

    // Every journal append fails from now on: the breaker must trip.
    let plan = Arc::new(FaultPlan::seeded(21));
    plan.arm(FaultSite::JournalAppend, Failpoint::ErrAfter { n: 0 });
    store.set_fault_plan(Some(plan.clone()));

    let w = workload(&ds, 30, 9);
    for wq in &w.queries {
        let got = gc.query(&wq.graph, wq.kind);
        let want = execute_base(&ds, &SiMethod, Engine::Vf2, &wq.graph, wq.kind);
        assert_eq!(got.answer, want.answer, "degraded cache must stay exact");
    }
    assert_eq!(
        gc.persist_health(),
        Some(PersistHealth::Degraded),
        "persistent append failure must trip the circuit breaker"
    );
    let stats = gc.stats();
    assert_eq!(stats.persist_health, "degraded");
    assert!(stats.persist_errors > 0, "errors gauge must count the failed appends");
    assert!(stats.journal_records_buffered > 0, "degraded mutations are counted, not lost");

    // Fault clears: a recovery probe cuts a fresh snapshot and re-arms
    // durability. Probes are deadline-scheduled (capped backoff), so keep
    // querying until one fires.
    store.set_fault_plan(None);
    let deadline = Instant::now() + Duration::from_secs(10);
    let probe_queries = workload(&ds, 4, 10);
    while gc.persist_health() != Some(PersistHealth::Healthy) {
        assert!(Instant::now() < deadline, "recovery probe never re-armed persistence");
        for wq in &probe_queries.queries {
            gc.query(&wq.graph, wq.kind);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        store.generation() > healthy_generation,
        "recovery must have cut a fresh snapshot generation"
    );
    let stats = gc.stats();
    assert_eq!(stats.persist_health, "healthy");
    assert_eq!(stats.journal_records_buffered, 0, "a full snapshot subsumes buffered records");

    // The recovered directory restores warm.
    drop(gc);
    let (gc2, report) = GraphCache::restore_from(
        ds.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd.make(),
        CacheConfig { capacity: 16, window_size: 2, ..CacheConfig::default() },
        Arc::new(gc_core::CacheStore::open(&dir).unwrap()),
    )
    .unwrap();
    assert!(report.warm, "post-recovery directory must restore warm: {}", report.describe());
    assert!(!gc2.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_probe_budget_disables_persistence() {
    let _guard = serial();
    let ds = dataset();
    let dir = tmpdir("disable");
    let cfg = CacheConfig {
        capacity: 16,
        window_size: 2,
        min_admit_tests: 0,
        persist_retries: 0,
        persist_max_probes: 2,
        ..CacheConfig::default()
    };
    let store = Arc::new(gc_core::CacheStore::open(&dir).unwrap());
    let mut gc =
        GraphCache::with_policy(ds.clone(), Box::new(SiMethod), PolicyKind::Hd, cfg).unwrap();
    gc.attach_store(Arc::clone(&store)).unwrap();

    // Appends AND snapshots fail persistently: the breaker trips, then
    // every recovery probe fails until the probe budget is exhausted.
    let plan = Arc::new(FaultPlan::seeded(31));
    plan.arm(FaultSite::JournalAppend, Failpoint::ErrAfter { n: 0 });
    plan.arm(FaultSite::SnapshotWrite, Failpoint::ErrAfter { n: 0 });
    store.set_fault_plan(Some(plan));

    let w = workload(&ds, 8, 13);
    let deadline = Instant::now() + Duration::from_secs(10);
    while gc.persist_health() != Some(PersistHealth::Disabled) {
        assert!(Instant::now() < deadline, "probe budget never exhausted");
        for wq in &w.queries {
            let got = gc.query(&wq.graph, wq.kind);
            let want = execute_base(&ds, &SiMethod, Engine::Vf2, &wq.graph, wq.kind);
            assert_eq!(got.answer, want.answer, "disabled-persistence cache must stay exact");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(gc.stats().persist_health, "disabled");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shared_cache_degrades_and_recovers() {
    let _guard = serial();
    let ds = dataset();
    let dir = tmpdir("shared_degrade");
    let cfg = CacheConfig {
        capacity: 16,
        window_size: 2,
        shards: 4,
        min_admit_tests: 0,
        persist_retries: 1,
        ..CacheConfig::default()
    };
    let store = Arc::new(gc_core::CacheStore::open(&dir).unwrap());
    let mut gc =
        SharedGraphCache::with_policy(ds.clone(), Box::new(SiMethod), PolicyKind::Hd, cfg).unwrap();
    gc.attach_store(Arc::clone(&store)).unwrap();

    let plan = Arc::new(FaultPlan::seeded(41));
    plan.arm(FaultSite::JournalAppend, Failpoint::ErrAfter { n: 0 });
    store.set_fault_plan(Some(plan));
    assert_exact_shared(&gc, &ds, &workload(&ds, 30, 17));
    assert_eq!(gc.persist_health(), Some(PersistHealth::Degraded));

    store.set_fault_plan(None);
    let deadline = Instant::now() + Duration::from_secs(10);
    let probe_queries = workload(&ds, 4, 18);
    while gc.persist_health() != Some(PersistHealth::Healthy) {
        assert!(Instant::now() < deadline, "shared recovery probe never re-armed persistence");
        assert_exact_shared(&gc, &ds, &probe_queries);
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
