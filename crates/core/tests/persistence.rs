//! Cache persistence: export entries, reload them in a new session, and keep
//! serving exact answers with immediate hits.

use gc_core::{CacheConfig, CacheEntry, GraphCache, PolicyKind};
use gc_method::{Dataset, SiMethod};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use std::sync::Arc;

fn session(dataset: &Arc<Dataset>) -> GraphCache {
    GraphCache::with_policy(
        dataset.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd,
        CacheConfig { capacity: 20, window_size: 2, ..CacheConfig::default() },
    )
    .unwrap()
}

fn workload(dataset: &Arc<Dataset>) -> Workload {
    let spec = WorkloadSpec {
        n_queries: 40,
        pool_size: 15,
        kind: WorkloadKind::Zipf { skew: 1.0 },
        seed: 17,
        ..WorkloadSpec::default()
    };
    Workload::generate(dataset.graphs(), &spec)
}

#[test]
fn export_import_roundtrip_preserves_hits() {
    let dataset = Arc::new(Dataset::new(molecule_dataset(25, 404)));
    let w = workload(&dataset);

    let mut first = session(&dataset);
    for wq in &w.queries {
        first.query(&wq.graph, wq.kind);
    }
    let exported = first.export_entries();
    assert!(!exported.is_empty());

    // Serialize through JSON like an application persisting to disk.
    let json = serde_json::to_string(&exported).unwrap();
    let reloaded: Vec<CacheEntry> = serde_json::from_str(&json).unwrap();

    let mut second = session(&dataset);
    let imported = second.import_entries(reloaded).unwrap();
    assert_eq!(imported, exported.len());
    assert_eq!(second.len(), exported.len());

    // The very first queries of the new session are already exact hits.
    let mut exact_hits = 0;
    for wq in w.queries.iter().take(10) {
        let r1 = second.query(&wq.graph, wq.kind);
        let r2 = first.query(&wq.graph, wq.kind);
        assert_eq!(r1.answer, r2.answer, "warm-start answers must match");
        exact_hits += u64::from(r1.exact_hit);
    }
    assert!(exact_hits > 0, "warm-started cache must hit immediately");
}

#[test]
fn import_rejects_foreign_universe() {
    let dataset_a = Arc::new(Dataset::new(molecule_dataset(25, 1)));
    let dataset_b = Arc::new(Dataset::new(molecule_dataset(10, 2)));
    let w = workload(&dataset_a);
    let mut a = session(&dataset_a);
    for wq in &w.queries {
        a.query(&wq.graph, wq.kind);
    }
    let mut b = session(&dataset_b);
    assert!(b.import_entries(a.export_entries()).is_err());
    assert!(b.is_empty());
}

#[test]
fn import_dedups_and_respects_capacity() {
    let dataset = Arc::new(Dataset::new(molecule_dataset(25, 3)));
    let w = workload(&dataset);
    let mut a = session(&dataset);
    for wq in &w.queries {
        a.query(&wq.graph, wq.kind);
    }
    let exported = a.export_entries();

    let mut b = session(&dataset);
    b.import_entries(exported.clone()).unwrap();
    // Importing again adds nothing (exact duplicates skipped).
    let second_round = b.import_entries(exported.clone()).unwrap();
    assert_eq!(second_round, 0);
    assert!(b.len() <= 20, "capacity respected after import");

    // Importing into a tiny cache trims to capacity.
    let mut tiny = GraphCache::with_policy(
        dataset.clone(),
        Box::new(SiMethod),
        PolicyKind::Lru,
        CacheConfig { capacity: 3, window_size: 1, ..CacheConfig::default() },
    )
    .unwrap();
    tiny.import_entries(exported).unwrap();
    assert!(tiny.len() <= 3);
}
