//! Durable cache state: snapshot + journal persistence with warm restarts.
//!
//! Covers the recovery contract end to end:
//!
//! * `restore(snapshot(cache)) ≡ cache` — answers and warmth — under
//!   randomized workloads (property test);
//! * journal replay reconstructs the exact live entry set (snapshot +
//!   journaled admissions/evictions), with **zero recomputed admissions**;
//! * bit-flipped, truncated and mid-record-torn snapshot/journal files are
//!   rejected and fall back to a *cold but correct* start;
//! * cross-runtime restores (sequential ⇄ sharded) work, because the
//!   on-disk format is decoupled from the in-memory layout.

use gc_core::persist::CacheStore;
use gc_core::{CacheConfig, GraphCache, PolicyKind, SharedGraphCache};
use gc_method::{execute_base, Dataset, Engine, QueryKind, SiMethod};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gc_warm_restart_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dataset(n: usize, seed: u64) -> Arc<Dataset> {
    Arc::new(Dataset::new(molecule_dataset(n, seed)))
}

fn workload(ds: &Arc<Dataset>, n_queries: usize, seed: u64) -> Workload {
    let spec = WorkloadSpec {
        n_queries,
        pool_size: 18,
        kind: WorkloadKind::Zipf { skew: 1.1 },
        seed,
        ..WorkloadSpec::default()
    };
    Workload::generate(ds.graphs(), &spec)
}

fn config() -> CacheConfig {
    CacheConfig { capacity: 24, window_size: 3, ..CacheConfig::default() }
}

fn session(ds: &Arc<Dataset>, cfg: CacheConfig) -> GraphCache {
    GraphCache::with_policy(ds.clone(), Box::new(SiMethod), PolicyKind::Hd, cfg).unwrap()
}

/// Multiset of (fingerprint, kind) over a sequential cache's live entries —
/// the state signature restores are checked against.
fn entry_signature(gc: &GraphCache) -> Vec<(u64, QueryKind)> {
    let mut sig: Vec<_> = gc.cache().iter().map(|e| (e.fingerprint, e.kind)).collect();
    sig.sort_unstable_by_key(|&(fp, k)| (fp, k as u8));
    sig
}

fn shared_signature(gc: &SharedGraphCache) -> Vec<(u64, QueryKind)> {
    let mut sig = Vec::new();
    gc.for_each_shard(|_, cm| {
        sig.extend(cm.iter().map(|e| (e.fingerprint, e.kind)));
    });
    sig.sort_unstable_by_key(|&(fp, k)| (fp, k as u8));
    sig
}

#[test]
fn snapshot_plus_journal_reconstructs_exact_state() {
    let ds = dataset(30, 11);
    let w = workload(&ds, 120, 5);
    let dir = tmpdir("reconstruct");

    // Session A: persistence attached from the start, auto-snapshot every 16
    // admissions so the final state is snapshot + a journal tail.
    let cfg = CacheConfig { snapshot_interval: Some(16), ..config() };
    let store = Arc::new(CacheStore::open(&dir).unwrap());
    let (mut a, first) = GraphCache::restore_from(
        ds.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd.make(),
        cfg.clone(),
        store,
    )
    .unwrap();
    assert!(!first.warm, "fresh directory must start cold");
    for wq in &w.queries {
        a.query(&wq.graph, wq.kind);
    }
    let a_sig = entry_signature(&a);
    let a_stats = a.stats();
    assert!(a.attached_store().unwrap().journal_records() > 0, "journal tail must be non-empty");
    // Simulate a crash: drop A without a final snapshot. The OS buffers are
    // per-process, so flush the journal file first (a real deployment
    // fsyncs on its own cadence).
    a.attached_store().unwrap().sync().unwrap();
    drop(a);

    // Session B: warm restart.
    let store = Arc::new(CacheStore::open(&dir).unwrap());
    let (mut b, report) =
        GraphCache::restore_from(ds.clone(), Box::new(SiMethod), PolicyKind::Hd.make(), cfg, store)
            .unwrap();
    assert!(report.warm, "valid store must restore warm: {:?}", report.cold_reason);
    assert!(report.journal_admits > 0, "the journal tail must have been replayed");
    assert_eq!(entry_signature(&b), a_sig, "restored entry set must match the crashed session");

    // Warm statistics carried over (as of the last auto-snapshot — the
    // journal carries state, not per-query counters).
    let b_stats = b.stats();
    assert!(b_stats.queries > 0, "restored statistics must be warm");
    assert!(b_stats.queries <= a_stats.queries);

    // Zero recomputed admissions: every entry that was live at the crash is
    // an exact hit now, served without re-execution or re-admission.
    let cached: Vec<_> = b.cache().iter().map(|e| (e.graph.clone(), e.kind)).collect();
    for (graph, kind) in cached {
        let r = b.query(&graph, kind);
        assert!(r.exact_hit, "restored entry must serve an exact hit");
        assert!(r.admitted.is_none(), "exact hits must not re-admit");
        assert_eq!(r.answer, execute_base(&ds, &SiMethod, Engine::Vf2, &graph, kind).answer);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_and_cold_answers_are_identical() {
    let ds = dataset(26, 21);
    let warmup = workload(&ds, 80, 9);
    let probe = workload(&ds, 40, 77);
    let dir = tmpdir("equivalence");

    let store = Arc::new(CacheStore::open(&dir).unwrap());
    let mut a = session(&ds, config());
    for wq in &warmup.queries {
        a.query(&wq.graph, wq.kind);
    }
    a.snapshot_to(&store).unwrap();
    drop(a);

    let (mut warm, report) = GraphCache::restore_from(
        ds.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd.make(),
        config(),
        Arc::new(CacheStore::open(&dir).unwrap()),
    )
    .unwrap();
    assert!(report.warm);
    let mut cold = session(&ds, config());

    let mut warm_hits = 0u64;
    for wq in &probe.queries {
        let rw = warm.query(&wq.graph, wq.kind);
        let rc = cold.query(&wq.graph, wq.kind);
        assert_eq!(rw.answer, rc.answer, "warm and cold answers must be identical");
        warm_hits += u64::from(rw.any_hit());
    }
    assert!(warm_hits > 0, "a warm restart must actually hit");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- corruption injection ----------------------------------------------------

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.gcs")
}

fn journal_path(dir: &Path) -> PathBuf {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "gcj"))
        .expect("journal file present")
}

/// Build a store directory with a snapshot and a non-empty journal tail.
fn persisted_dir(tag: &str, ds: &Arc<Dataset>) -> PathBuf {
    let dir = tmpdir(tag);
    let store = Arc::new(CacheStore::open(&dir).unwrap());
    let mut gc = session(ds, config());
    let w = workload(ds, 60, 3);
    for wq in w.queries.iter().take(30) {
        gc.query(&wq.graph, wq.kind);
    }
    gc.attach_store(store).unwrap(); // snapshot of the first 30 queries
    for wq in w.queries.iter().skip(30) {
        gc.query(&wq.graph, wq.kind); // journaled tail
    }
    assert!(gc.attached_store().unwrap().journal_records() > 0);
    gc.attached_store().unwrap().sync().unwrap();
    dir
}

/// Restore from `dir` and assert a cold-but-correct start.
fn assert_cold_but_correct(dir: &Path, ds: &Arc<Dataset>, what: &str) {
    let (mut gc, report) = GraphCache::restore_from(
        ds.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd.make(),
        config(),
        Arc::new(CacheStore::open(dir).unwrap()),
    )
    .unwrap();
    assert!(!report.warm, "{what}: corruption must fail closed to a cold start");
    assert!(report.cold_reason.is_some(), "{what}: reason must be reported");
    assert!(gc.is_empty(), "{what}: cold cache must be empty");
    // Correctness is unaffected: the cold cache answers exactly.
    let q = &workload(ds, 5, 1).queries[0];
    let r = gc.query(&q.graph, q.kind);
    assert_eq!(
        r.answer,
        execute_base(ds, &SiMethod, Engine::Vf2, &q.graph, q.kind).answer,
        "{what}"
    );
}

#[test]
fn corrupted_files_fall_back_to_cold_start() {
    let ds = dataset(22, 31);

    // Baseline: the directory restores warm before corruption.
    {
        let dir = persisted_dir("baseline", &ds);
        let (_, report) = GraphCache::restore_from(
            ds.clone(),
            Box::new(SiMethod),
            PolicyKind::Hd.make(),
            config(),
            Arc::new(CacheStore::open(&dir).unwrap()),
        )
        .unwrap();
        assert!(report.warm, "sanity: uncorrupted dir restores warm");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Bit flips at several positions in the snapshot.
    for pos_frac in [0.1, 0.5, 0.9] {
        let dir = persisted_dir("snap_flip", &ds);
        let path = snapshot_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 0x20;
        std::fs::write(&path, bytes).unwrap();
        assert_cold_but_correct(&dir, &ds, "snapshot bit flip");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Truncated snapshot (torn write).
    let dir = persisted_dir("snap_trunc", &ds);
    let path = snapshot_path(&dir);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert_cold_but_correct(&dir, &ds, "truncated snapshot");
    let _ = std::fs::remove_dir_all(&dir);

    // Missing journal for the snapshot's generation.
    let dir = persisted_dir("jrnl_missing", &ds);
    std::fs::remove_file(journal_path(&dir)).unwrap();
    assert_cold_but_correct(&dir, &ds, "missing journal");
    let _ = std::fs::remove_dir_all(&dir);

    // Bit flip inside the journal.
    let dir = persisted_dir("jrnl_flip", &ds);
    let path = journal_path(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&path, bytes).unwrap();
    assert_cold_but_correct(&dir, &ds, "journal bit flip");
    let _ = std::fs::remove_dir_all(&dir);

    // Mid-record tear: cut the journal a few bytes into its last record.
    // A torn *tail* is the signature of a crash mid-append, not of
    // corruption — recovery keeps the intact prefix (warm) and reports
    // the dropped bytes, instead of failing closed to cold.
    let dir = persisted_dir("jrnl_tear", &ds);
    let path = journal_path(&dir);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
    let (mut gc, report) = GraphCache::restore_from(
        ds.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd.make(),
        config(),
        Arc::new(CacheStore::open(&dir).unwrap()),
    )
    .unwrap();
    assert!(report.warm, "a torn tail keeps the intact journal prefix");
    assert!(report.journal_torn_bytes > 0, "the dropped tail is reported");
    let q = &workload(&ds, 5, 1).queries[0];
    let r = gc.query(&q.graph, q.kind);
    assert_eq!(
        r.answer,
        execute_base(&ds, &SiMethod, Engine::Vf2, &q.graph, q.kind).answer,
        "mid-record journal tear: answers stay exact"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_from_different_dataset_is_rejected() {
    let ds_a = dataset(20, 1);
    let ds_b = dataset(20, 2); // same size, different graphs
    let dir = persisted_dir("foreign", &ds_a);
    assert_cold_but_correct(&dir, &ds_b, "foreign dataset");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- sharded front-end -------------------------------------------------------

#[test]
fn shared_cache_snapshots_and_restores() {
    let ds = dataset(28, 41);
    let w = workload(&ds, 90, 13);
    let dir = tmpdir("shared");
    let cfg = CacheConfig { shards: 4, ..config() };

    let store = Arc::new(CacheStore::open(&dir).unwrap());
    let mut a =
        SharedGraphCache::with_policy(ds.clone(), Box::new(SiMethod), PolicyKind::Hd, cfg.clone())
            .unwrap();
    a.attach_store(Arc::clone(&store)).unwrap();
    let a = Arc::new(a);
    // Hammer from several threads while journaling.
    std::thread::scope(|scope| {
        for t in 0..4 {
            let a = Arc::clone(&a);
            let queries = &w.queries;
            scope.spawn(move || {
                for wq in queries.iter().skip(t).step_by(4) {
                    a.query(&wq.graph, wq.kind);
                }
            });
        }
    });
    let a_sig = shared_signature(&a);
    store.sync().unwrap();
    drop(a);

    // Restore into a new shared cache (crash semantics: snapshot + journal).
    let (b, report) = SharedGraphCache::restore_from(
        ds.clone(),
        Arc::new(SiMethod),
        || PolicyKind::Hd.make(),
        cfg.clone(),
        Arc::new(CacheStore::open(&dir).unwrap()),
    )
    .unwrap();
    assert!(report.warm, "shared restore must be warm: {:?}", report.cold_reason);
    assert_eq!(shared_signature(&b), a_sig, "restored shard union must match");

    // Restored entries serve exact hits with exact answers.
    let mut checked = 0;
    let mut to_check = Vec::new();
    b.for_each_shard(|_, cm| {
        to_check.extend(cm.iter().take(3).map(|e| (e.graph.clone(), e.kind)));
    });
    for (graph, kind) in to_check {
        let r = b.query(&graph, kind);
        assert!(r.exact_hit);
        assert_eq!(r.answer, execute_base(&ds, &SiMethod, Engine::Vf2, &graph, kind).answer);
        checked += 1;
    }
    assert!(checked > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cross_runtime_restore_shared_to_sequential() {
    // The on-disk format is runtime-agnostic: a store written by the
    // sharded front-end restores into the sequential runtime (and keeps
    // its entries), because replay goes through the normal insert paths.
    let ds = dataset(24, 51);
    let w = workload(&ds, 60, 23);
    let dir = tmpdir("cross");
    let cfg = CacheConfig { shards: 4, ..config() };

    let store = Arc::new(CacheStore::open(&dir).unwrap());
    let mut shared =
        SharedGraphCache::with_policy(ds.clone(), Box::new(SiMethod), PolicyKind::Hd, cfg).unwrap();
    for wq in &w.queries {
        shared.query(&wq.graph, wq.kind);
    }
    shared.attach_store(store).unwrap();
    let shared_sig = shared_signature(&shared);
    drop(shared);

    let (seq, report) = GraphCache::restore_from(
        ds.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd.make(),
        config(),
        Arc::new(CacheStore::open(&dir).unwrap()),
    )
    .unwrap();
    assert!(report.warm);
    assert_eq!(entry_signature(&seq), shared_sig);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- property: restore(snapshot(cache)) ≡ cache ------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn restore_of_snapshot_preserves_state_and_answers(
        ds_seed in 0u64..1000,
        w_seed in 0u64..1000,
        n_queries in 20usize..70,
        capacity in 4usize..32,
    ) {
        let ds = dataset(20, ds_seed);
        let w = workload(&ds, n_queries, w_seed);
        let cfg = CacheConfig { capacity, window_size: 2, ..CacheConfig::default() };
        let dir = tmpdir(&format!("prop_{ds_seed}_{w_seed}_{n_queries}_{capacity}"));

        let mut a = session(&ds, cfg.clone());
        for wq in &w.queries {
            a.query(&wq.graph, wq.kind);
        }
        let store = Arc::new(CacheStore::open(&dir).unwrap());
        a.snapshot_to(&store).unwrap();

        let (mut b, report) = GraphCache::restore_from(
            ds.clone(),
            Box::new(SiMethod),
            PolicyKind::Hd.make(),
            cfg,
            store,
        ).unwrap();
        prop_assert!(report.warm);
        prop_assert_eq!(report.entries_restored, a.len());
        prop_assert_eq!(entry_signature(&b), entry_signature(&a));

        // Every cached entry answers exactly, as an exact hit, without
        // re-admission — and identically to the pre-restart cache.
        let cached: Vec<_> = a.cache().iter().map(|e| (e.graph.clone(), e.kind)).collect();
        for (graph, kind) in cached {
            let ra = a.query(&graph, kind);
            let rb = b.query(&graph, kind);
            prop_assert!(rb.exact_hit);
            prop_assert_eq!(&ra.answer, &rb.answer);
            prop_assert_eq!(&rb.answer, &execute_base(&ds, &SiMethod, Engine::Vf2, &graph, kind).answer);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
