//! Shared invariant helpers for the cache-sync and churn-stress test
//! binaries (Cargo's `tests/common/mod.rs` pattern — not a test target).

use gc_core::{CacheManager, EntryId};
use std::collections::HashSet;

/// Assert every lookup structure agrees with the live entry set: the
/// fingerprint table, the containment query index (both probe directions)
/// and the slab must neither drop live entries nor surface dead ids.
pub fn assert_consistent(cm: &CacheManager) {
    let live: HashSet<EntryId> = cm.ids().into_iter().collect();
    assert_eq!(live.len(), cm.len(), "ids() must enumerate exactly len() entries");

    // Every live entry must be findable through its own fingerprint bucket,
    // and every bucket id must be live with a matching fingerprint.
    for e in cm.iter() {
        let bucket = cm.fingerprint_bucket(e.fingerprint);
        assert!(bucket.contains(&e.id), "live entry {} missing from its fingerprint bucket", e.id);
        for &id in bucket {
            let b = cm.get(id).unwrap_or_else(|| panic!("stale id {id} in fingerprint bucket"));
            assert_eq!(b.fingerprint, e.fingerprint, "bucket id {id} has foreign fingerprint");
        }
    }

    // Every live entry must be a sub- and super-case candidate of its own
    // feature vector, and the index must never surface dead ids.
    for e in cm.iter() {
        let qf = cm.index().features_of(&e.graph);
        let sub = cm.index().sub_case_candidates(&qf);
        let super_ = cm.index().super_case_candidates(&qf);
        assert!(sub.contains(&e.id), "entry {} not a sub-case candidate of itself", e.id);
        assert!(super_.contains(&e.id), "entry {} not a super-case candidate of itself", e.id);
        for id in sub.iter().chain(&super_) {
            assert!(live.contains(id), "stale id {id} in query index candidates");
        }
    }
}
