//! End-to-end correctness: GraphCache never changes an answer.
//!
//! The paper's central correctness claim (§1 Problem (2)): GC produces no
//! false positives and no false negatives. These tests run full workloads
//! through the cache and compare every answer bit-for-bit against Method M
//! executed without a cache.

use gc_core::{CacheConfig, GraphCache, PolicyKind};
use gc_method::{execute_base, Dataset, Engine, FtvMethod, Method, SiMethod};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use std::sync::Arc;

fn check_workload(
    dataset: Arc<Dataset>,
    method_for_cache: Box<dyn Method>,
    reference: &dyn Method,
    policy: PolicyKind,
    config: CacheConfig,
    spec: &WorkloadSpec,
) {
    let workload = Workload::generate(dataset.graphs(), spec);
    let mut gc = GraphCache::new(dataset.clone(), method_for_cache, policy.make(), config).unwrap();
    for (i, wq) in workload.queries.iter().enumerate() {
        let cached = gc.query(&wq.graph, wq.kind);
        let base = execute_base(&dataset, reference, Engine::Vf2, &wq.graph, wq.kind);
        assert_eq!(
            cached.answer.to_vec(),
            base.answer.to_vec(),
            "answer mismatch at query {i} (kind {:?}, policy {policy})",
            wq.kind
        );
        // The cache may never *increase* the dataset sub-iso tests beyond
        // |C_M| (probing overhead is tracked separately).
        assert!(
            cached.sub_iso_tests as usize <= base.sub_iso_tests || cached.exact_hit,
            "query {i}: cache executed {} tests, base {}",
            cached.sub_iso_tests,
            base.sub_iso_tests
        );
    }
}

#[test]
fn correctness_si_zipf_all_policies() {
    let dataset = Arc::new(Dataset::new(molecule_dataset(30, 101)));
    let spec = WorkloadSpec {
        n_queries: 60,
        pool_size: 15,
        kind: WorkloadKind::Zipf { skew: 1.2 },
        seed: 7,
        ..WorkloadSpec::default()
    };
    for policy in PolicyKind::all() {
        check_workload(
            dataset.clone(),
            Box::new(SiMethod),
            &SiMethod,
            policy,
            CacheConfig { capacity: 10, window_size: 3, ..CacheConfig::default() },
            &spec,
        );
    }
}

#[test]
fn correctness_ftv_drift() {
    let dataset = Arc::new(Dataset::new(molecule_dataset(25, 202)));
    let ftv_cache = Box::new(FtvMethod::build(&dataset, 3));
    let ftv_ref = FtvMethod::build(&dataset, 3);
    let spec = WorkloadSpec {
        n_queries: 50,
        kind: WorkloadKind::Drift { chain_len: 4, repeat_prob: 0.25 },
        seed: 11,
        ..WorkloadSpec::default()
    };
    check_workload(
        dataset.clone(),
        ftv_cache,
        &ftv_ref,
        PolicyKind::Hd,
        CacheConfig { capacity: 12, window_size: 4, ..CacheConfig::default() },
        &spec,
    );
}

#[test]
fn correctness_supergraph_queries() {
    let dataset = Arc::new(Dataset::new(molecule_dataset(20, 303)));
    let spec = WorkloadSpec {
        n_queries: 40,
        pool_size: 10,
        kind: WorkloadKind::Zipf { skew: 1.0 },
        supergraph_fraction: 0.5,
        seed: 13,
        ..WorkloadSpec::default()
    };
    check_workload(
        dataset.clone(),
        Box::new(SiMethod),
        &SiMethod,
        PolicyKind::Pin,
        CacheConfig { capacity: 8, window_size: 2, ..CacheConfig::default() },
        &spec,
    );
}

#[test]
fn correctness_parallel_verification() {
    let dataset = Arc::new(Dataset::new(molecule_dataset(30, 404)));
    let spec = WorkloadSpec {
        n_queries: 30,
        pool_size: 12,
        kind: WorkloadKind::Uniform,
        seed: 17,
        ..WorkloadSpec::default()
    };
    check_workload(
        dataset.clone(),
        Box::new(SiMethod),
        &SiMethod,
        PolicyKind::Lru,
        CacheConfig { threads: 4, capacity: 10, window_size: 3, ..CacheConfig::default() },
        &spec,
    );
}

#[test]
fn exact_hits_on_repeats() {
    let dataset = Arc::new(Dataset::new(molecule_dataset(20, 505)));
    let spec = WorkloadSpec {
        n_queries: 30,
        pool_size: 3, // tiny pool: heavy repetition
        kind: WorkloadKind::Uniform,
        seed: 19,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    let mut gc = GraphCache::with_policy(
        dataset.clone(),
        Box::new(SiMethod),
        PolicyKind::Lru,
        CacheConfig { capacity: 10, window_size: 1, ..CacheConfig::default() },
    )
    .unwrap();
    for wq in &workload.queries {
        gc.query(&wq.graph, wq.kind);
    }
    let stats = gc.stats();
    assert!(stats.exact_hits > 0, "repeated queries must produce exact hits");
    assert!(stats.hit_ratio() > 0.3, "hit ratio {}", stats.hit_ratio());
    assert!(stats.tests_saved > 0);
}

#[test]
fn cache_respects_capacity() {
    let dataset = Arc::new(Dataset::new(molecule_dataset(20, 606)));
    let spec = WorkloadSpec {
        n_queries: 60,
        pool_size: 60,
        kind: WorkloadKind::Uniform,
        seed: 23,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    let mut gc = GraphCache::with_policy(
        dataset.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd,
        CacheConfig { capacity: 7, window_size: 3, ..CacheConfig::default() },
    )
    .unwrap();
    let mut evictions = 0usize;
    for wq in &workload.queries {
        let r = gc.query(&wq.graph, wq.kind);
        evictions += r.evicted.len();
        assert!(gc.len() <= 7 + 3, "cache size {} exceeds capacity + window slack", gc.len());
    }
    assert!(evictions > 0, "a small cache under a wide workload must evict");
    assert!(gc.len() <= 7 + 3);
    let stats = gc.stats();
    assert_eq!(stats.evicted as usize, evictions);
    assert!(stats.admitted > stats.evicted);
}

#[test]
fn byte_budget_caps_memory() {
    let dataset = Arc::new(Dataset::new(molecule_dataset(25, 808)));
    let spec = WorkloadSpec {
        n_queries: 80,
        pool_size: 80,
        kind: WorkloadKind::Uniform,
        seed: 31,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    let budget = 16 * 1024; // 16 KiB — far below an unbounded run
    let mut gc = GraphCache::with_policy(
        dataset.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd,
        CacheConfig {
            capacity: 1000,
            window_size: 4,
            max_bytes: Some(budget),
            ..CacheConfig::default()
        },
    )
    .unwrap();
    for wq in &workload.queries {
        let got = gc.query(&wq.graph, wq.kind);
        let want = execute_base(&dataset, &SiMethod, Engine::Vf2, &wq.graph, wq.kind);
        assert_eq!(got.answer, want.answer, "byte budget must not affect answers");
    }
    // Footprint can only exceed the budget by at most one open window of
    // admissions between sweeps.
    assert!(
        gc.memory_bytes() <= budget * 2,
        "memory {} should hover near budget {}",
        gc.memory_bytes(),
        budget
    );
    assert!(gc.stats().evicted > 0, "budget pressure must evict");
}

#[test]
fn zero_byte_budget_is_rejected() {
    let dataset = Arc::new(Dataset::new(molecule_dataset(3, 1)));
    let cfg = CacheConfig { max_bytes: Some(0), ..CacheConfig::default() };
    assert!(GraphCache::with_policy(dataset, Box::new(SiMethod), PolicyKind::Lru, cfg).is_err());
}

#[test]
fn tiny_probe_budget_keeps_answers_correct() {
    // With a 1-step probe budget every hit check returns Unknown: the cache
    // finds no hits but answers must stay exact.
    let dataset = Arc::new(Dataset::new(molecule_dataset(20, 909)));
    let spec = WorkloadSpec {
        n_queries: 40,
        pool_size: 12,
        kind: WorkloadKind::Drift { chain_len: 3, repeat_prob: 0.3 },
        seed: 41,
        ..WorkloadSpec::default()
    };
    let workload = Workload::generate(dataset.graphs(), &spec);
    let mut gc = GraphCache::with_policy(
        dataset.clone(),
        Box::new(SiMethod),
        PolicyKind::Hd,
        CacheConfig { probe_budget: 1, window_size: 2, ..CacheConfig::default() },
    )
    .unwrap();
    for wq in &workload.queries {
        let got = gc.query(&wq.graph, wq.kind);
        let want = execute_base(&dataset, &SiMethod, Engine::Vf2, &wq.graph, wq.kind);
        assert_eq!(got.answer, want.answer);
        assert!(
            got.sub_hits.is_empty() && got.super_hits.is_empty(),
            "1-step probes cannot confirm hits"
        );
    }
}
