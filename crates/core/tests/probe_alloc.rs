//! Alloc-count assertion for the probe stage (ROADMAP item "probe-stage
//! candidate ordering still allocates"): with a warm
//! [`gc_core::pipeline::probe::ProbeScratch`], a full
//! [`gc_core::pipeline::probe::probe_cases`] pass — containment-index
//! probes, kind filtering, utility-sort ordering and the budgeted
//! confirmation tests — performs **zero heap allocations** when it finds
//! candidates but no hits (verified hits append to the returned
//! `CacheHits`, which is a per-query product, not scratch).
//!
//! Same counting-allocator harness as `crates/index/tests/alloc_free.rs`;
//! its own binary so the `#[global_allocator]` stays out of the other
//! integration tests.

use gc_core::pipeline::probe::{probe_cases, ProbeScratch};
use gc_core::{CacheConfig, CacheManager};
use gc_graph::{graph_from_parts, BitSet, Graph, Label};
use gc_index::FeatureConfig;
use gc_iso::GraphProfile;
use gc_method::QueryKind;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the only addition is a
// thread-local counter bump (Cell<u64> is const-initialized and has no
// destructor, so touching it from the allocator cannot recurse or allocate).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
    let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
    graph_from_parts(&ls, edges).unwrap()
}

#[test]
fn steady_state_probe_stage_is_allocation_free() {
    // Feature size 1 (vertex + edge features): a triangle query's features
    // are dominated by label-chains that contain all three edge labels but
    // no cycle, so the entries are *candidates* in the sub direction yet
    // every confirmation test fails — the pass exercises candidate
    // selection, utility ordering and verification without producing hits.
    let cfg =
        CacheConfig { feature_config: FeatureConfig::with_max_len(1), ..CacheConfig::default() };
    let mut cache = CacheManager::with_tuning(cfg.feature_config, cfg.index_tuning);
    for (i, chain) in [
        g(&[0, 1, 2, 0, 2], &[(0, 1), (1, 2), (2, 3), (3, 4)]),
        g(&[2, 0, 1, 2, 0], &[(0, 1), (1, 2), (2, 3), (3, 4)]),
        g(&[1, 2, 0, 2, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]),
    ]
    .into_iter()
    .enumerate()
    {
        let universe = 4;
        cache.insert(
            chain,
            QueryKind::Subgraph,
            BitSet::from_indices(universe, [i]),
            4,
            100,
            i as u64,
        );
    }
    let query = g(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
    let qf = cache.index().features_of(&query);
    let q_profile = GraphProfile::new(&query, None);
    let mut scratch = ProbeScratch::new();

    // Warm-up grows every buffer (candidate lists, verifier scratch).
    let warm = probe_cases(
        &cache,
        &cfg,
        &query,
        QueryKind::Subgraph,
        &qf,
        q_profile.as_ref(),
        &mut scratch,
    );
    assert!(warm.probe_tests > 0, "the fixture must produce probe candidates");
    assert_eq!(warm.count(), 0, "the fixture must not produce verified hits");

    let before = allocations_on_this_thread();
    let hits = probe_cases(
        &cache,
        &cfg,
        &query,
        QueryKind::Subgraph,
        &qf,
        q_profile.as_ref(),
        &mut scratch,
    );
    let after = allocations_on_this_thread();
    assert_eq!(after - before, 0, "probe stage allocated on the steady-state path");
    assert_eq!(hits.probe_tests, warm.probe_tests, "reused scratch changed the probe");
}

#[test]
fn probe_ordering_is_deterministic_across_scratch_reuse() {
    // Same fixture, but with verifiable hits: repeated probes through one
    // scratch must return identical hit lists (ordering buffers are fully
    // reset per pass).
    let cfg = CacheConfig::default();
    let mut cache = CacheManager::with_tuning(cfg.feature_config, cfg.index_tuning);
    let edge = g(&[0, 1], &[(0, 1)]);
    let square = g(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    cache.insert(edge, QueryKind::Subgraph, BitSet::from_indices(8, [1usize]), 8, 100, 0);
    cache.insert(square, QueryKind::Subgraph, BitSet::from_indices(8, [2usize]), 8, 100, 1);
    let query = g(&[0, 1, 0], &[(0, 1), (1, 2)]);
    let qf = cache.index().features_of(&query);
    let q_profile = GraphProfile::new(&query, None);
    let mut scratch = ProbeScratch::new();
    let first = probe_cases(
        &cache,
        &cfg,
        &query,
        QueryKind::Subgraph,
        &qf,
        q_profile.as_ref(),
        &mut scratch,
    );
    assert_eq!(first.sub, vec![1], "query sits inside the square");
    assert_eq!(first.super_, vec![0], "the edge sits inside the query");
    for _ in 0..3 {
        let again = probe_cases(
            &cache,
            &cfg,
            &query,
            QueryKind::Subgraph,
            &qf,
            q_profile.as_ref(),
            &mut scratch,
        );
        assert_eq!(again.sub, first.sub);
        assert_eq!(again.super_, first.super_);
    }
}
