//! Cache configuration.

use gc_index::{FeatureConfig, IndexTuning};
use gc_method::Engine;
use gc_store::FsyncPolicy;

/// Tunables of a [`crate::GraphCache`] instance.
///
/// Defaults follow the demo deployment (paper §3: cache of 50 executed
/// queries, window batches of 10) with budgets sized so cache probing can
/// never dominate query time.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Maximum number of cached queries.
    pub capacity: usize,
    /// Admission window size: executed queries are buffered and admitted in
    /// batches of this many (Window Manager).
    pub window_size: usize,
    /// Maximum sub-case hit candidates to *verify* per query (budget knob of
    /// DESIGN.md §6).
    pub max_sub_checks: usize,
    /// Maximum super-case hit candidates to verify per query.
    pub max_super_checks: usize,
    /// Step budget per hit-candidate verification; exceeding it counts as
    /// "no hit" (sound — only savings are lost).
    pub probe_budget: u64,
    /// Feature configuration of the query index (containment probes).
    pub feature_config: FeatureConfig,
    /// Maintenance/merge tuning of the containment index: the galloping
    /// cutoff of the k-way sub-case merge and the tombstone-compaction
    /// threshold of the posting directory (see [`gc_index::IndexTuning`]).
    pub index_tuning: IndexTuning,
    /// Verifier engine.
    pub engine: Engine,
    /// Worker threads for candidate verification (1 = sequential).
    pub threads: usize,
    /// Admission filter: only cache queries whose execution performed at
    /// least this many sub-iso tests (cheap queries cannot repay their cache
    /// slot).
    pub min_admit_tests: usize,
    /// Minimum candidate-set size to dispatch verification to the worker
    /// pool; smaller sets run inline (channel round-trips would outweigh
    /// the work). Only relevant when `threads > 1`.
    pub parallel_threshold: usize,
    /// Optional byte budget for the cache (entries + index). When set,
    /// replacement sweeps also evict until the footprint fits — the memory
    /// side of the kernel's "resource management (memory and threads)". The
    /// entry-count `capacity` still applies independently.
    pub max_bytes: Option<usize>,
    /// Shard count of the concurrent front-end
    /// ([`crate::SharedGraphCache`]): cache state is split into this many
    /// independently-locked shards (queries are routed by graph
    /// fingerprint). More shards → less write contention, slightly more
    /// probe fan-out. Ignored by the sequential [`crate::GraphCache`].
    /// Must be in `1..=256`.
    pub shards: usize,
    /// Persistence: automatically write a snapshot (and rotate the
    /// journal) after this many admissions, when a
    /// [`gc_store::CacheStore`] is attached. `None` disables the
    /// admission-count trigger (snapshots then happen only on explicit
    /// [`crate::GraphCache::snapshot_to`] calls, the journal-size trigger,
    /// or a [`crate::persist::Snapshotter`]). Must be > 0 when set.
    pub snapshot_interval: Option<u64>,
    /// Persistence: automatically snapshot once the append-only journal
    /// exceeds this many bytes, bounding both journal replay time and the
    /// disk footprint between snapshots. `None` disables the size trigger.
    /// Must be > 0 when set.
    pub journal_max_bytes: Option<u64>,
    /// Persistence: group-commit fsync policy applied to journal appends
    /// when a store is attached (see [`FsyncPolicy`] for the bounded-loss
    /// guarantee of each variant). `EveryN`/`IntervalMs` arguments must
    /// be > 0.
    pub fsync_policy: FsyncPolicy,
    /// Persistence: how many times a failed journal append is retried
    /// (with capped exponential backoff) before the persistence circuit
    /// breaker trips to [`crate::persist::PersistHealth::Degraded`].
    /// 0 means "no retries: degrade on the first failure".
    pub persist_retries: u32,
    /// Persistence: how many consecutive failed recovery probes (each one
    /// an attempt to cut a fresh snapshot while degraded) are allowed
    /// before persistence gives up and goes
    /// [`crate::persist::PersistHealth::Disabled`]. Must be > 0.
    pub persist_max_probes: u32,
    /// Exact answer memo capacity: complete answer sets of this many
    /// recently executed queries are retained (keyed by canonical query
    /// hash, versioned by the dataset generation) and served without
    /// touching the filter/probe/verify pipeline. 0 disables the memo.
    pub memo_capacity: usize,
    /// Telemetry: fraction of queries whose full [`crate::QueryTrace`] is
    /// captured into the trace ring (rounded to an every-Nth-query
    /// sampler). 0 disables sampling entirely — the query path then does
    /// no trace allocation at all. Must be in `0.0..=1.0` and finite.
    pub trace_sample_rate: f64,
    /// Telemetry: queries at least this slow are *always* traced into the
    /// separate slow-query ring, regardless of `trace_sample_rate`.
    pub slow_query_threshold: std::time::Duration,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 50,
            window_size: 10,
            max_sub_checks: 64,
            max_super_checks: 64,
            probe_budget: 100_000,
            feature_config: FeatureConfig::default(),
            index_tuning: IndexTuning::default(),
            engine: Engine::Vf2,
            threads: 1,
            min_admit_tests: 1,
            parallel_threshold: 8,
            max_bytes: None,
            shards: 8,
            snapshot_interval: None,
            journal_max_bytes: None,
            fsync_policy: FsyncPolicy::Never,
            persist_retries: 3,
            persist_max_probes: 16,
            memo_capacity: 1024,
            trace_sample_rate: 0.01,
            slow_query_threshold: std::time::Duration::from_millis(100),
        }
    }
}

impl CacheConfig {
    /// Config with the given entry capacity, other knobs at defaults.
    pub fn with_capacity(capacity: usize) -> Self {
        CacheConfig { capacity, ..Default::default() }
    }

    /// Validate invariants (positive capacity and window, nonzero budgets).
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity == 0 {
            return Err("capacity must be > 0".into());
        }
        if self.window_size == 0 {
            return Err("window_size must be > 0".into());
        }
        if self.probe_budget == 0 {
            return Err("probe_budget must be > 0".into());
        }
        if self.threads == 0 {
            return Err("threads must be > 0".into());
        }
        if self.max_bytes == Some(0) {
            return Err("max_bytes must be > 0 when set".into());
        }
        if self.shards == 0 || self.shards > 256 {
            return Err("shards must be in 1..=256".into());
        }
        if self.snapshot_interval == Some(0) {
            return Err("snapshot_interval must be > 0 when set".into());
        }
        if self.journal_max_bytes == Some(0) {
            return Err("journal_max_bytes must be > 0 when set".into());
        }
        match self.fsync_policy {
            FsyncPolicy::EveryN(0) => return Err("fsync_policy EveryN(n) needs n > 0".into()),
            FsyncPolicy::IntervalMs(0) => {
                return Err("fsync_policy IntervalMs(ms) needs ms > 0".into())
            }
            _ => {}
        }
        if self.persist_max_probes == 0 {
            return Err("persist_max_probes must be > 0".into());
        }
        if !self.trace_sample_rate.is_finite() || !(0.0..=1.0).contains(&self.trace_sample_rate) {
            return Err("trace_sample_rate must be finite and in 0.0..=1.0".into());
        }
        self.index_tuning.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(CacheConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(CacheConfig { capacity: 0, ..CacheConfig::default() }.validate().is_err());
        assert!(CacheConfig { window_size: 0, ..CacheConfig::default() }.validate().is_err());
        assert!(CacheConfig { threads: 0, ..CacheConfig::default() }.validate().is_err());
        assert!(CacheConfig { probe_budget: 0, ..CacheConfig::default() }.validate().is_err());
        assert!(CacheConfig { shards: 0, ..CacheConfig::default() }.validate().is_err());
        assert!(CacheConfig { shards: 257, ..CacheConfig::default() }.validate().is_err());
        assert!(CacheConfig { shards: 256, ..CacheConfig::default() }.validate().is_ok());
        assert!(CacheConfig { snapshot_interval: Some(0), ..CacheConfig::default() }
            .validate()
            .is_err());
        assert!(CacheConfig { snapshot_interval: Some(100), ..CacheConfig::default() }
            .validate()
            .is_ok());
        assert!(CacheConfig { journal_max_bytes: Some(0), ..CacheConfig::default() }
            .validate()
            .is_err());
        assert!(CacheConfig { journal_max_bytes: Some(1 << 20), ..CacheConfig::default() }
            .validate()
            .is_ok());
        assert!(CacheConfig { fsync_policy: FsyncPolicy::EveryN(0), ..CacheConfig::default() }
            .validate()
            .is_err());
        assert!(CacheConfig { fsync_policy: FsyncPolicy::IntervalMs(0), ..CacheConfig::default() }
            .validate()
            .is_err());
        assert!(CacheConfig { fsync_policy: FsyncPolicy::EveryN(8), ..CacheConfig::default() }
            .validate()
            .is_ok());
        assert!(CacheConfig { persist_max_probes: 0, ..CacheConfig::default() }
            .validate()
            .is_err());
        assert!(CacheConfig { trace_sample_rate: -0.1, ..CacheConfig::default() }
            .validate()
            .is_err());
        assert!(CacheConfig { trace_sample_rate: 1.5, ..CacheConfig::default() }
            .validate()
            .is_err());
        assert!(CacheConfig { trace_sample_rate: f64::NAN, ..CacheConfig::default() }
            .validate()
            .is_err());
        assert!(CacheConfig { trace_sample_rate: 0.0, ..CacheConfig::default() }
            .validate()
            .is_ok());
        assert!(CacheConfig { trace_sample_rate: 1.0, ..CacheConfig::default() }
            .validate()
            .is_ok());
        let bad_tuning = IndexTuning { gallop_cutoff: 0, ..IndexTuning::default() };
        assert!(CacheConfig { index_tuning: bad_tuning, ..CacheConfig::default() }
            .validate()
            .is_err());
    }

    #[test]
    fn with_capacity_sets_capacity() {
        let c = CacheConfig::with_capacity(123);
        assert_eq!(c.capacity, 123);
        assert_eq!(c.window_size, CacheConfig::default().window_size);
    }
}
