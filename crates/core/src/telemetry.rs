//! Pipeline telemetry: the shared log2-microsecond [`Histogram`],
//! per-stage span timers, and sampled per-query [`QueryTrace`] records.
//!
//! Everything on the hot path is a relaxed atomic operation — observing a
//! latency or bumping the trace sequence never takes a lock and never
//! serializes concurrent queries. Trace capture itself (the only part
//! that allocates) runs only for sampled or slow queries, and writes into
//! a fixed-capacity ring whose slots are guarded by `try_lock`: under
//! contention a trace is dropped rather than ever blocking the query.
//!
//! The histogram here is the one implementation shared by the cache
//! pipeline, the server's request-stage metrics, and the load generator's
//! latency reports — one set of bucket math, property-tested once.

use crate::config::CacheConfig;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of finite histogram buckets: bucket `i` counts observations
/// `< 2^i` µs, so the finite range spans 1 µs .. ~1 s (2^20 µs); larger
/// observations land in the implicit `+Inf` bucket.
pub const BUCKETS: usize = 21;

/// A log2-microsecond latency histogram with atomic buckets.
///
/// Observations are bucketed by `floor(log2(us)) + 1` (0 µs → bucket 0),
/// so any percentile estimated from the buckets is exact to within one
/// power-of-two bucket — the reported bound is never more than 2× the
/// true value's bucket floor. The exact maximum is tracked separately.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    inf: AtomicU64,
    sum_us: AtomicU64,
    count: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn observe(&self, d: Duration) {
        self.observe_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Record one observation given directly in microseconds.
    pub fn observe_us(&self, us: u64) {
        // Index of the first bucket whose bound 2^i exceeds `us`:
        // us == 0 → bucket 0 (< 1 µs); us in [2^(i-1), 2^i) → bucket i.
        let idx = (u64::BITS - us.leading_zeros()) as usize;
        if idx < BUCKETS {
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        } else {
            self.inf.fetch_add(1, Ordering::Relaxed);
        }
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Largest observation seen, microseconds (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the counts, for merging and percentile
    /// estimation.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            inf: self.inf.load(Ordering::Relaxed),
            sum_us: self.sum_us(),
            count: self.count(),
            max_us: self.max_us(),
        }
    }

    /// Estimated percentile (0..=100) in microseconds; see
    /// [`HistogramSnapshot::percentile_us`] for the error bound.
    pub fn percentile_us(&self, p: f64) -> u64 {
        self.snapshot().percentile_us(p)
    }

    /// Render Prometheus `_bucket`/`_sum`/`_count` lines for this
    /// histogram under `name`. `labels` is a pre-formatted label list
    /// (e.g. `stage="probe"`) inserted verbatim before the `le` label;
    /// pass `""` for an unlabelled histogram.
    pub fn render_prometheus(&self, out: &mut String, name: &str, labels: &str) {
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            let bound = 1u64 << i;
            out.push_str(&format!("{name}_bucket{{{labels}{sep}le=\"{bound}\"}} {cumulative}\n"));
        }
        cumulative += self.inf.load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!("{name}_sum{{{labels}}} {}\n", self.sum_us()));
        out.push_str(&format!("{name}_count{{{labels}}} {}\n", self.count()));
    }
}

/// A point-in-time copy of a [`Histogram`]'s counts. Snapshots merge
/// (for combining per-thread histograms) and answer percentile queries.
#[derive(Debug, Clone, Copy, Default)]
pub struct HistogramSnapshot {
    /// Finite bucket counts (bucket `i` counts observations `< 2^i` µs).
    pub buckets: [u64; BUCKETS],
    /// Observations ≥ 2^20 µs.
    pub inf: u64,
    /// Sum of all observations, microseconds.
    pub sum_us: u64,
    /// Total observations.
    pub count: u64,
    /// Largest observation, microseconds.
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// Fold another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.inf += other.inf;
        self.sum_us += other.sum_us;
        self.count += other.count;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Estimated percentile (0..=100), microseconds.
    ///
    /// Uses nearest-rank over the log2 buckets and reports the *upper
    /// bound* of the rank's bucket (bucket 0 → 0 µs, bucket `i` → 2^i µs,
    /// +Inf → the exact tracked maximum). Because bucket `i` spans
    /// `[2^(i-1), 2^i)`, the estimate is never below the true value and
    /// never more than 2× above it — one bucket of error, by
    /// construction.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen > rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max_us
    }

    /// Mean observation, microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// The pipeline stages the cache times individually, in execution order,
/// plus the answer-memo tier (timed on memo-hit fast paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineStage {
    /// Method M filtering: build the candidate set CM.
    Filter,
    /// Cache probe: find exact/sub/super hits in the index.
    Probe,
    /// Prune: intersect hit answers into definite/to-verify sets.
    Prune,
    /// Verification of surviving candidates (sub-iso tests).
    Verify,
    /// Hit crediting, window admission, and memo store.
    Admit,
    /// Answer-memo lookup (the pre-pipeline fast path).
    Memo,
}

impl PipelineStage {
    /// All stages, in pipeline order.
    pub const ALL: [PipelineStage; 6] = [
        PipelineStage::Filter,
        PipelineStage::Probe,
        PipelineStage::Prune,
        PipelineStage::Verify,
        PipelineStage::Admit,
        PipelineStage::Memo,
    ];

    /// Prometheus / display label.
    pub fn label(self) -> &'static str {
        match self {
            PipelineStage::Filter => "filter",
            PipelineStage::Probe => "probe",
            PipelineStage::Prune => "prune",
            PipelineStage::Verify => "verify",
            PipelineStage::Admit => "admit",
            PipelineStage::Memo => "memo",
        }
    }
}

/// Per-query local stage timings, filled in by [`Span`] timers and folded
/// into a [`QueryTrace`] when the query is sampled. Plain `u64`s — no
/// atomics, no allocation.
#[derive(Debug, Default, Clone, Copy)]
pub struct QueryTiming {
    /// Microseconds spent per stage, indexed by [`PipelineStage::ALL`].
    pub stage_us: [u64; 6],
}

/// RAII span timer: created via [`Telemetry::span`], records its elapsed
/// time into both the stage histogram and the query-local timing slot on
/// drop.
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    slot: &'a mut u64,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let us = self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.hist.observe_us(us);
        *self.slot += us;
    }
}

/// One sampled (or slow) query, with enough context to answer "where did
/// this query's time go?" after the fact.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct QueryTrace {
    /// Query sequence number (monotonic per cache instance).
    pub seq: u64,
    /// Request id propagated from the serving edge (`X-Request-Id`), when
    /// the query arrived over HTTP.
    pub request_id: Option<String>,
    /// Query kind: `"sub"` or `"super"`.
    pub kind: String,
    /// How the answer was produced: `"exact"`, `"memo"`, or `"pipeline"`.
    pub outcome: String,
    /// Home shard (0 for the sequential cache).
    pub shard: u32,
    /// Dataset generation the query executed against.
    pub generation: u64,
    /// End-to-end latency, microseconds.
    pub total_us: u64,
    /// Filter-stage time, microseconds.
    pub filter_us: u64,
    /// Probe-stage time, microseconds.
    pub probe_us: u64,
    /// Prune-stage time, microseconds.
    pub prune_us: u64,
    /// Verify-stage time, microseconds.
    pub verify_us: u64,
    /// Admit-stage time (crediting + window admission + memo store),
    /// microseconds.
    pub admit_us: u64,
    /// Memo-lookup time, microseconds.
    pub memo_us: u64,
    /// Candidate-set size out of the filter stage.
    pub cm_size: u64,
    /// Candidates answered definitively by cache hits (no test needed).
    pub definite: u64,
    /// Candidates sent to verification after pruning.
    pub to_verify: u64,
    /// Candidates that survived verification.
    pub survivors: u64,
    /// Final answer size (`definite + survivors` for pipeline queries).
    pub answer: u64,
    /// Sub-iso tests spent probing hit candidates.
    pub probe_tests: u64,
    /// Verifier search steps spent on candidate verification.
    pub verify_steps: u64,
    /// Whether this query exceeded the slow-query threshold.
    pub slow: bool,
}

impl QueryTrace {
    /// Sum of the per-stage durations — compare against [`total_us`] to
    /// check the spans cover the pipeline (they undercount total by
    /// per-stage µs truncation plus untimed glue, never overcount).
    ///
    /// [`total_us`]: QueryTrace::total_us
    pub fn stage_sum_us(&self) -> u64 {
        self.filter_us
            + self.probe_us
            + self.prune_us
            + self.verify_us
            + self.admit_us
            + self.memo_us
    }
}

/// Fixed-capacity trace ring. Slots are individually locked; writers use
/// `try_lock` and drop the trace on contention, so pushing never blocks
/// the query path. Readers (debug endpoints) skim the most recent slots.
#[derive(Debug)]
struct TraceRing {
    slots: Vec<Mutex<Option<QueryTrace>>>,
    cursor: AtomicU64,
}

impl TraceRing {
    fn new(capacity: usize) -> Self {
        TraceRing {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    fn push(&self, trace: QueryTrace) {
        let at = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        if let Some(mut slot) = self.slots[at].try_lock() {
            *slot = Some(trace);
        }
        // Contended slot: drop the trace. Telemetry never blocks serving.
    }

    /// Most recent `n` traces, newest first.
    fn recent(&self, n: usize) -> Vec<QueryTrace> {
        let len = self.slots.len();
        let head = self.cursor.load(Ordering::Relaxed) as usize;
        let filled = head.min(len);
        let mut out = Vec::with_capacity(n.min(filled));
        // head is the *next* write position, so head-1 holds the newest.
        for back in 1..=filled {
            if out.len() == n {
                break;
            }
            let at = (head - back) % len;
            if let Some(slot) = self.slots[at].try_lock() {
                if let Some(t) = slot.as_ref() {
                    out.push(t.clone());
                }
            }
        }
        out
    }
}

/// The per-cache telemetry hub: stage histograms, the total-latency
/// histogram, the trace sampler, and the slow-query ring.
#[derive(Debug)]
pub struct Telemetry {
    stages: [Histogram; 6],
    total: Histogram,
    /// Sample every `period`-th query (0 = sampling disabled).
    sample_period: u64,
    slow_threshold: Duration,
    seq: AtomicU64,
    sampled_count: AtomicU64,
    slow_count: AtomicU64,
    traces: TraceRing,
    slow: TraceRing,
}

/// Capacity of the sampled-trace ring.
const TRACE_RING_CAPACITY: usize = 256;
/// Capacity of the always-on slow-query ring.
const SLOW_RING_CAPACITY: usize = 64;

impl Telemetry {
    /// Build telemetry from the cache config's sampling knobs.
    pub fn from_config(config: &CacheConfig) -> Self {
        let rate = config.trace_sample_rate;
        let sample_period = if rate > 0.0 { (1.0 / rate).round().max(1.0) as u64 } else { 0 };
        Telemetry {
            stages: Default::default(),
            total: Histogram::default(),
            sample_period,
            slow_threshold: config.slow_query_threshold,
            seq: AtomicU64::new(0),
            sampled_count: AtomicU64::new(0),
            slow_count: AtomicU64::new(0),
            traces: TraceRing::new(TRACE_RING_CAPACITY),
            slow: TraceRing::new(SLOW_RING_CAPACITY),
        }
    }

    /// The histogram for one pipeline stage.
    pub fn stage(&self, stage: PipelineStage) -> &Histogram {
        &self.stages[PipelineStage::ALL.iter().position(|s| *s == stage).expect("stage in ALL")]
    }

    /// The end-to-end query-latency histogram (every query, all paths).
    pub fn total(&self) -> &Histogram {
        &self.total
    }

    /// Start an RAII span for `stage`: on drop, the elapsed time lands in
    /// the stage histogram and the query-local `timing` slot.
    pub fn span<'a>(&'a self, stage: PipelineStage, timing: &'a mut QueryTiming) -> Span<'a> {
        let idx = PipelineStage::ALL.iter().position(|s| *s == stage).expect("stage in ALL");
        Span { hist: &self.stages[idx], slot: &mut timing.stage_us[idx], start: Instant::now() }
    }

    /// Claim the next query sequence number (one relaxed `fetch_add`).
    pub fn begin_query(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Finish a query: observe the total latency and, when the query is
    /// sampled or slow, materialize a trace via `build` (which is *not*
    /// called otherwise — the disabled path is pure atomics, zero
    /// allocation). `build` receives whether the query was slow.
    pub fn finish_query(
        &self,
        seq: u64,
        elapsed: Duration,
        build: impl FnOnce(bool) -> QueryTrace,
    ) {
        self.total.observe(elapsed);
        let slow = elapsed >= self.slow_threshold;
        let sampled = self.sample_period != 0 && seq.is_multiple_of(self.sample_period);
        if !slow && !sampled {
            return;
        }
        let trace = build(slow);
        if slow {
            self.slow_count.fetch_add(1, Ordering::Relaxed);
            self.slow.push(trace.clone());
        }
        if sampled {
            self.sampled_count.fetch_add(1, Ordering::Relaxed);
            self.traces.push(trace);
        } else {
            drop(trace);
        }
    }

    /// Number of traces captured by the sampler.
    pub fn sampled_count(&self) -> u64 {
        self.sampled_count.load(Ordering::Relaxed)
    }

    /// Number of queries that exceeded the slow-query threshold.
    pub fn slow_count(&self) -> u64 {
        self.slow_count.load(Ordering::Relaxed)
    }

    /// Most recent `n` sampled traces, newest first.
    pub fn recent_traces(&self, n: usize) -> Vec<QueryTrace> {
        self.traces.recent(n)
    }

    /// Most recent `n` slow-query traces, newest first.
    pub fn recent_slow(&self, n: usize) -> Vec<QueryTrace> {
        self.slow.recent(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn trace(seq: u64) -> QueryTrace {
        QueryTrace {
            seq,
            request_id: None,
            kind: "sub".into(),
            outcome: "pipeline".into(),
            shard: 0,
            generation: 0,
            total_us: 10,
            filter_us: 1,
            probe_us: 2,
            prune_us: 3,
            verify_us: 4,
            admit_us: 0,
            memo_us: 0,
            cm_size: 5,
            definite: 1,
            to_verify: 3,
            survivors: 2,
            answer: 3,
            probe_tests: 0,
            verify_steps: 7,
            slow: false,
        }
    }

    #[test]
    fn histogram_buckets_observations_by_log2_us() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(0)); // bucket 0 (< 1 µs)
        h.observe(Duration::from_micros(1)); // bucket 1 (< 2 µs)
        h.observe(Duration::from_micros(3)); // bucket 2 (< 4 µs)
        h.observe(Duration::from_secs(10)); // +Inf (> 2^20 µs)
        assert_eq!(h.count(), 4);
        assert_eq!(h.max_us(), 10_000_000);
        let mut out = String::new();
        h.render_prometheus(&mut out, "m", "stage=\"s\"");
        assert!(out.contains("m_bucket{stage=\"s\",le=\"1\"} 1\n"));
        assert!(out.contains("m_bucket{stage=\"s\",le=\"2\"} 2\n"));
        assert!(out.contains("m_bucket{stage=\"s\",le=\"4\"} 3\n"));
        assert!(out.contains("m_bucket{stage=\"s\",le=\"+Inf\"} 4\n"));
        assert!(out.contains("m_count{stage=\"s\"} 4\n"));
    }

    #[test]
    fn unlabelled_render_has_no_stray_comma() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(1));
        let mut out = String::new();
        h.render_prometheus(&mut out, "m", "");
        assert!(out.contains("m_bucket{le=\"2\"} 1\n"));
        assert!(out.contains("m_sum{} 1\n"));
    }

    #[test]
    fn percentiles_are_bucket_upper_bounds() {
        let h = Histogram::default();
        for _ in 0..100 {
            h.observe(Duration::from_micros(100)); // bucket 7 (< 128)
        }
        h.observe(Duration::from_micros(5000)); // bucket 13 (< 8192)
        assert_eq!(h.percentile_us(50.0), 128);
        assert_eq!(h.percentile_us(100.0), 8192);
        // +Inf rank reports the exact max.
        h.observe(Duration::from_secs(30));
        assert_eq!(h.percentile_us(100.0), 30_000_000);
        // Empty histogram → 0.
        assert_eq!(Histogram::default().percentile_us(50.0), 0);
    }

    #[test]
    fn snapshots_merge_bucketwise() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.observe(Duration::from_micros(3));
        b.observe(Duration::from_micros(3));
        b.observe(Duration::from_micros(900));
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum_us, 906);
        assert_eq!(m.max_us, 900);
        assert_eq!(m.buckets[2], 2); // two 3 µs observations
    }

    #[test]
    fn stage_labels_cover_all() {
        let labels: Vec<&str> = PipelineStage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["filter", "probe", "prune", "verify", "admit", "memo"]);
    }

    #[test]
    fn span_records_into_histogram_and_timing() {
        let config = CacheConfig::default();
        let t = Telemetry::from_config(&config);
        let mut timing = QueryTiming::default();
        {
            let _span = t.span(PipelineStage::Probe, &mut timing);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(t.stage(PipelineStage::Probe).count(), 1);
        assert!(timing.stage_us[1] >= 1_000, "probe slot holds the span time");
        assert_eq!(t.stage(PipelineStage::Filter).count(), 0);
    }

    #[test]
    fn sampler_period_derives_from_rate() {
        for (rate, period) in [(0.0, 0), (0.01, 100), (1.0, 1)] {
            let config = CacheConfig { trace_sample_rate: rate, ..CacheConfig::default() };
            assert_eq!(Telemetry::from_config(&config).sample_period, period);
        }
    }

    #[test]
    fn slow_queries_always_captured_even_when_sampling_disabled() {
        let config = CacheConfig {
            trace_sample_rate: 0.0,
            slow_query_threshold: Duration::from_micros(50),
            ..CacheConfig::default()
        };
        let t = Telemetry::from_config(&config);
        let seq = t.begin_query();
        t.finish_query(seq, Duration::from_micros(200), |slow| {
            assert!(slow);
            QueryTrace { slow, ..trace(seq) }
        });
        assert_eq!(t.slow_count(), 1);
        assert_eq!(t.sampled_count(), 0);
        assert_eq!(t.recent_slow(10).len(), 1);
        assert!(t.recent_slow(10)[0].slow);
        assert!(t.recent_traces(10).is_empty());
    }

    #[test]
    fn fast_queries_below_threshold_not_captured_when_disabled() {
        let config = CacheConfig { trace_sample_rate: 0.0, ..CacheConfig::default() };
        let t = Telemetry::from_config(&config);
        for _ in 0..100 {
            let seq = t.begin_query();
            t.finish_query(seq, Duration::from_micros(5), |_| {
                panic!("build must not run for unsampled fast queries")
            });
        }
        assert_eq!(t.total().count(), 100);
        assert_eq!(t.slow_count(), 0);
        assert_eq!(t.sampled_count(), 0);
    }

    #[test]
    fn always_on_sampler_captures_every_query() {
        let config = CacheConfig { trace_sample_rate: 1.0, ..CacheConfig::default() };
        let t = Telemetry::from_config(&config);
        for _ in 0..10 {
            let seq = t.begin_query();
            t.finish_query(seq, Duration::from_micros(5), |slow| QueryTrace { slow, ..trace(seq) });
        }
        assert_eq!(t.sampled_count(), 10);
        let recent = t.recent_traces(100);
        assert_eq!(recent.len(), 10);
        // Newest first.
        assert_eq!(recent[0].seq, 9);
        assert_eq!(recent[9].seq, 0);
    }

    #[test]
    fn trace_ring_overwrites_oldest() {
        let ring = TraceRing::new(4);
        for seq in 0..10 {
            ring.push(trace(seq));
        }
        let recent = ring.recent(10);
        assert_eq!(recent.len(), 4);
        assert_eq!(recent[0].seq, 9);
        assert_eq!(recent[3].seq, 6);
    }

    #[test]
    fn trace_ring_recent_respects_n_and_partial_fill() {
        let ring = TraceRing::new(8);
        for seq in 0..3 {
            ring.push(trace(seq));
        }
        let recent = ring.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].seq, 2);
        assert_eq!(recent[1].seq, 1);
        assert_eq!(ring.recent(10).len(), 3);
    }

    #[test]
    fn stage_sum_is_sum_of_stage_fields() {
        let t = trace(0);
        assert_eq!(t.stage_sum_us(), 1 + 2 + 3 + 4);
    }

    #[test]
    fn query_trace_roundtrips_through_json() {
        let t = QueryTrace { request_id: Some("req-1".into()), ..trace(42) };
        let json = serde_json::to_string(&t).unwrap();
        let back: QueryTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn concurrent_observers_conserve_count_and_sum() {
        let h = Arc::new(Histogram::default());
        let threads = 4;
        let per_thread = 1000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.observe_us(t * per_thread + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), threads * per_thread);
        let expected_sum: u64 = (0..threads * per_thread).sum();
        assert_eq!(h.sum_us(), expected_sum);
        assert_eq!(h.max_us(), threads * per_thread - 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Exact powers of two land in the bucket *above* (bucket i spans
        /// [2^(i-1), 2^i), so 2^k goes to bucket k+1).
        #[test]
        fn bucket_index_at_powers_of_two(k in 0u32..20) {
            let h = Histogram::default();
            let us = 1u64 << k;
            h.observe_us(us);
            let snap = h.snapshot();
            let expected = (k + 1) as usize;
            prop_assert_eq!(snap.buckets[expected], 1);
            let total: u64 = snap.buckets.iter().sum();
            prop_assert_eq!(total + snap.inf, 1);
            // One below the power stays in bucket k (for k ≥ 1).
            if k >= 1 {
                let h2 = Histogram::default();
                h2.observe_us(us - 1);
                prop_assert_eq!(h2.snapshot().buckets[k as usize], 1);
            }
        }

        /// Count/sum conservation under parallel writers, and percentile
        /// bounds: estimate ∈ [true_value, 2 × true_value] for single-value
        /// histograms.
        #[test]
        fn concurrent_observe_conserves(values in proptest::collection::vec(0u64..2_000_000, 1..200)) {
            let h = Arc::new(Histogram::default());
            let mid = values.len() / 2;
            let (left, right) = (values[..mid].to_vec(), values[mid..].to_vec());
            let hl = Arc::clone(&h);
            let tl = std::thread::spawn(move || for &v in &left { hl.observe_us(v); });
            for &v in &right { h.observe_us(v); }
            tl.join().unwrap();
            prop_assert_eq!(h.count(), values.len() as u64);
            prop_assert_eq!(h.sum_us(), values.iter().sum::<u64>());
            prop_assert_eq!(h.max_us(), *values.iter().max().unwrap());
            let snap = h.snapshot();
            let bucket_total: u64 = snap.buckets.iter().sum();
            prop_assert_eq!(bucket_total + snap.inf, snap.count);
        }

        /// Percentile estimates stay within one log2 bucket of the true
        /// value: true ≤ estimate ≤ max(2 × true, 1).
        #[test]
        fn percentile_within_one_bucket(v in 0u64..1_000_000) {
            let h = Histogram::default();
            h.observe_us(v);
            let est = h.percentile_us(50.0);
            prop_assert!(est >= v, "estimate {} below true {}", est, v);
            prop_assert!(est <= (2 * v).max(1), "estimate {} above 2x true {}", est, v);
        }
    }
}
