//! Graph-cache replacement policies.
//!
//! The paper bundles five policies (§3.1, Experiment I):
//!
//! * **LRU** — classic recency;
//! * **POP** — popularity (number of hits served);
//! * **PIN** — utility measured in *number of sub-iso tests saved*;
//! * **PINC** — utility measured in *sub-iso testing cost saved* (verifier
//!   steps, weighting savings by how expensive the skipped graphs are);
//! * **HD** — "coalesces both PIN and PINC". The paper gives no formula; we
//!   use a rank-sum blend: each entry's eviction score is the sum of its
//!   rank under PIN and its rank under PINC (ties broken by recency). This
//!   is scale-free, workload-adaptive, and reproduces the paper's takeaway
//!   ("HD is best or on par") in Experiment I; see DESIGN.md §6 for the
//!   ablation.
//!
//! The [`ReplacementPolicy`] trait mirrors the developer API of the paper's
//! Fig. 2(d): `on_hit` is `updateCacheStaInfo`, `victims` is
//! `getReplacedContent`, and the runtime's eviction step plays the role of
//! `updateCacheItems`. Custom policies plug in by implementing the trait
//! (see `examples/custom_policy.rs`).

use crate::entry::{EntryId, EntryStats};
use std::collections::HashMap;

/// How a cached entry contributed to a new query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitKind {
    /// The new query was isomorphic to the cached one.
    Exact,
    /// The new query is a subgraph of the cached one (the demo's "sub case").
    QueryInCached,
    /// The cached query is a subgraph of the new one ("super case").
    CachedInQuery,
}

/// Utility credited to an entry for one hit (Statistics Manager record).
#[derive(Debug, Clone, Copy)]
pub struct HitCredit {
    /// The containment relation of the hit.
    pub kind: HitKind,
    /// Sub-iso tests this entry saved for the new query.
    pub tests_saved: u64,
    /// Estimated verifier steps saved (per-graph cost model).
    pub cost_saved: f64,
}

/// Replacement policy interface (the paper's `Cache` extension class).
///
/// Implementations keep their own per-entry score state, fed by the runtime:
/// `on_insert` at admission, `on_hit` whenever the entry contributes to a
/// query (the paper's `updateCacheStaInfo`), `on_evict` at removal. When the
/// cache overflows, the runtime calls `victims` (the paper's
/// `getReplacedContent`) for the `x` entries with least utility.
pub trait ReplacementPolicy: Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// An entry was admitted at logical time `now`.
    fn on_insert(&mut self, entry: EntryId, now: u64);

    /// Size-aware admission hook: like [`ReplacementPolicy::on_insert`] but
    /// with the entry's memory footprint, for size-sensitive policies (e.g.
    /// GreedyDual-Size). Defaults to delegating to `on_insert`.
    fn on_insert_sized(&mut self, entry: EntryId, now: u64, bytes: usize) {
        let _ = bytes;
        self.on_insert(entry, now);
    }

    /// An entry was restored from a persistence snapshot with its
    /// accumulated statistics. Policies that can reconstruct their utility
    /// state from `stats` should do so, so a warm-restarted cache ranks
    /// eviction candidates like the original would have; the default
    /// treats the entry as a fresh admission at its recorded `last_used`
    /// time (sound for any policy, loses utility history).
    fn on_restore(&mut self, entry: EntryId, stats: &EntryStats, bytes: usize, now: u64) {
        let _ = now;
        self.on_insert_sized(entry, stats.last_used, bytes);
    }

    /// An entry contributed a hit at logical time `now`.
    fn on_hit(&mut self, entry: EntryId, credit: &HitCredit, now: u64);

    /// An entry was evicted; forget its state.
    fn on_evict(&mut self, entry: EntryId);

    /// Return (up to) the `x` entries with least utility, best victim first.
    /// Must not mutate state; the runtime follows up with `on_evict`.
    fn victims(&mut self, x: usize) -> Vec<EntryId>;
}

/// Bundled policy kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least-recently-used.
    Lru,
    /// Least popular (fewest hits).
    Pop,
    /// Least sub-iso tests saved.
    Pin,
    /// Least sub-iso testing cost saved.
    Pinc,
    /// Hybrid rank-sum of PIN and PINC.
    Hd,
}

impl PolicyKind {
    /// All bundled policies, in the paper's presentation order.
    pub fn all() -> [PolicyKind; 5] {
        [PolicyKind::Lru, PolicyKind::Pop, PolicyKind::Pin, PolicyKind::Pinc, PolicyKind::Hd]
    }

    /// Display name.
    pub fn as_str(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Pop => "POP",
            PolicyKind::Pin => "PIN",
            PolicyKind::Pinc => "PINC",
            PolicyKind::Hd => "HD",
        }
    }

    /// Instantiate the bundled implementation.
    pub fn make(self) -> Box<dyn ReplacementPolicy> {
        Box::new(Policy::new(self))
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "LRU" => Ok(PolicyKind::Lru),
            "POP" => Ok(PolicyKind::Pop),
            "PIN" => Ok(PolicyKind::Pin),
            "PINC" => Ok(PolicyKind::Pinc),
            "HD" => Ok(PolicyKind::Hd),
            other => Err(format!("unknown policy {other:?} (expected LRU/POP/PIN/PINC/HD)")),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Score {
    last_used: u64,
    hits: u64,
    tests_saved: u64,
    cost_saved: f64,
}

/// The bundled implementation of all five policy kinds over shared
/// bookkeeping.
#[derive(Debug)]
pub struct Policy {
    kind: PolicyKind,
    scores: HashMap<EntryId, Score>,
}

impl Policy {
    /// New policy of the given kind.
    pub fn new(kind: PolicyKind) -> Self {
        Policy { kind, scores: HashMap::new() }
    }

    /// The kind this policy ranks by.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    fn rank_simple<K: Ord>(&self, key: impl Fn(&Score) -> K, x: usize) -> Vec<EntryId> {
        let mut entries: Vec<(&EntryId, &Score)> = self.scores.iter().collect();
        // Deterministic: tie-break by last_used then id.
        entries.sort_by(|(ia, sa), (ib, sb)| {
            key(sa).cmp(&key(sb)).then(sa.last_used.cmp(&sb.last_used)).then(ia.cmp(ib))
        });
        entries.into_iter().take(x).map(|(&e, _)| e).collect()
    }

    fn rank_hd(&self, x: usize) -> Vec<EntryId> {
        // Rank-sum of PIN and PINC orderings; smallest combined rank evicted.
        let mut ids: Vec<EntryId> = self.scores.keys().copied().collect();
        let mut by_pin = ids.clone();
        by_pin.sort_by(|a, b| {
            let (sa, sb) = (&self.scores[a], &self.scores[b]);
            sa.tests_saved.cmp(&sb.tests_saved).then(sa.last_used.cmp(&sb.last_used)).then(a.cmp(b))
        });
        let mut by_pinc = ids.clone();
        by_pinc.sort_by(|a, b| {
            let (sa, sb) = (&self.scores[a], &self.scores[b]);
            sa.cost_saved
                .partial_cmp(&sb.cost_saved)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(sa.last_used.cmp(&sb.last_used))
                .then(a.cmp(b))
        });
        let mut rank: HashMap<EntryId, u64> = HashMap::with_capacity(ids.len());
        for (r, &e) in by_pin.iter().enumerate() {
            *rank.entry(e).or_insert(0) += r as u64;
        }
        for (r, &e) in by_pinc.iter().enumerate() {
            *rank.entry(e).or_insert(0) += r as u64;
        }
        ids.sort_by(|a, b| {
            rank[a]
                .cmp(&rank[b])
                .then(self.scores[a].last_used.cmp(&self.scores[b].last_used))
                .then(a.cmp(b))
        });
        ids.truncate(x);
        ids
    }
}

impl ReplacementPolicy for Policy {
    fn name(&self) -> &'static str {
        self.kind.as_str()
    }

    fn on_insert(&mut self, entry: EntryId, now: u64) {
        self.scores.insert(entry, Score { last_used: now, ..Score::default() });
    }

    fn on_restore(&mut self, entry: EntryId, stats: &EntryStats, _bytes: usize, _now: u64) {
        // Exact reconstruction: every signal the five bundled kinds rank by
        // is derivable from the entry's persisted statistics.
        self.scores.insert(
            entry,
            Score {
                last_used: stats.last_used,
                hits: stats.total_hits(),
                tests_saved: stats.tests_saved,
                cost_saved: stats.cost_saved,
            },
        );
    }

    fn on_hit(&mut self, entry: EntryId, credit: &HitCredit, now: u64) {
        let s = self.scores.entry(entry).or_default();
        s.last_used = now;
        s.hits += 1;
        s.tests_saved += credit.tests_saved;
        s.cost_saved += credit.cost_saved;
    }

    fn on_evict(&mut self, entry: EntryId) {
        self.scores.remove(&entry);
    }

    fn victims(&mut self, x: usize) -> Vec<EntryId> {
        match self.kind {
            PolicyKind::Lru => self.rank_simple(|s| s.last_used, x),
            PolicyKind::Pop => self.rank_simple(|s| s.hits, x),
            PolicyKind::Pin => self.rank_simple(|s| s.tests_saved, x),
            // f64 keys: order by bit pattern of the non-negative cost.
            PolicyKind::Pinc => self.rank_simple(|s| s.cost_saved.max(0.0).to_bits(), x),
            PolicyKind::Hd => self.rank_hd(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn credit(tests: u64, cost: f64) -> HitCredit {
        HitCredit { kind: HitKind::CachedInQuery, tests_saved: tests, cost_saved: cost }
    }

    #[test]
    fn lru_evicts_oldest_use() {
        let mut p = Policy::new(PolicyKind::Lru);
        p.on_insert(1, 1);
        p.on_insert(2, 2);
        p.on_insert(3, 3);
        p.on_hit(1, &credit(0, 0.0), 10); // refresh entry 1
        assert_eq!(p.victims(2), vec![2, 3]);
    }

    #[test]
    fn pop_evicts_least_hit() {
        let mut p = Policy::new(PolicyKind::Pop);
        for e in 1..=3 {
            p.on_insert(e, e as u64);
        }
        p.on_hit(1, &credit(1, 1.0), 4);
        p.on_hit(1, &credit(1, 1.0), 5);
        p.on_hit(3, &credit(1, 1.0), 6);
        assert_eq!(p.victims(1), vec![2]);
        assert_eq!(p.victims(3), vec![2, 3, 1]);
    }

    #[test]
    fn pin_uses_tests_saved() {
        let mut p = Policy::new(PolicyKind::Pin);
        for e in 1..=3 {
            p.on_insert(e, e as u64);
        }
        p.on_hit(1, &credit(100, 1.0), 4);
        p.on_hit(2, &credit(5, 500.0), 5);
        p.on_hit(3, &credit(50, 50.0), 6);
        // PIN ignores cost: evict 2 (5 tests) first.
        assert_eq!(p.victims(2), vec![2, 3]);
    }

    #[test]
    fn pinc_uses_cost_saved() {
        let mut p = Policy::new(PolicyKind::Pinc);
        for e in 1..=3 {
            p.on_insert(e, e as u64);
        }
        p.on_hit(1, &credit(100, 1.0), 4);
        p.on_hit(2, &credit(5, 500.0), 5);
        p.on_hit(3, &credit(50, 50.0), 6);
        // PINC ignores test counts: evict 1 (cost 1.0) first.
        assert_eq!(p.victims(2), vec![1, 3]);
    }

    #[test]
    fn hd_blends_pin_and_pinc() {
        let mut p = Policy::new(PolicyKind::Hd);
        for e in 1..=3 {
            p.on_insert(e, e as u64);
        }
        // Entry 1: great on PIN, terrible on PINC. Entry 2: the reverse.
        // Entry 3: mediocre on both -> HD should protect neither extreme
        // unduly; entry 3's rank-sum (1+1=2) beats 1 (2+0=2 tie) ...
        p.on_hit(1, &credit(100, 1.0), 4);
        p.on_hit(2, &credit(5, 500.0), 5);
        p.on_hit(3, &credit(50, 50.0), 6);
        let v = p.victims(3);
        assert_eq!(v.len(), 3);
        // rank_PIN: 2(0) 3(1) 1(2); rank_PINC: 1(0) 3(1) 2(2)
        // rank-sum: 1 -> 2, 2 -> 2, 3 -> 2; tie-broken by last_used: 1,2,3.
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn eviction_forgets_state() {
        let mut p = Policy::new(PolicyKind::Pop);
        p.on_insert(1, 1);
        p.on_insert(2, 2);
        p.on_evict(1);
        assert_eq!(p.victims(5), vec![2]);
    }

    #[test]
    fn never_used_entries_evicted_before_used_pin() {
        let mut p = Policy::new(PolicyKind::Pin);
        p.on_insert(1, 1);
        p.on_insert(2, 2);
        p.on_hit(2, &credit(10, 10.0), 3);
        assert_eq!(p.victims(1), vec![1]);
    }

    #[test]
    fn kind_parsing() {
        assert_eq!("hd".parse::<PolicyKind>().unwrap(), PolicyKind::Hd);
        assert_eq!("LRU".parse::<PolicyKind>().unwrap(), PolicyKind::Lru);
        assert!("nope".parse::<PolicyKind>().is_err());
        assert_eq!(PolicyKind::all().len(), 5);
    }

    #[test]
    fn victims_is_stable_and_bounded() {
        let mut p = Policy::new(PolicyKind::Lru);
        for e in 0..10 {
            p.on_insert(e, e as u64);
        }
        assert_eq!(p.victims(0), Vec::<EntryId>::new());
        assert_eq!(p.victims(100).len(), 10);
        // Calling victims twice without evictions yields the same answer.
        assert_eq!(p.victims(4), p.victims(4));
    }
}
