//! # gc-core — the GraphCache kernel
//!
//! This crate implements the paper's Kernel subsystem (Fig. 1):
//!
//! * [`GraphCache`] — the Query Processing Runtime: for each incoming query
//!   it runs Method M's filter, probes the cache for exact / sub-case /
//!   super-case hits, prunes the candidate set with cached answers, verifies
//!   the remainder, and maintains the cache;
//! * [`CacheManager`] — storage of cached queries, their answer bitsets, the
//!   fingerprint table for exact-match detection, and the
//!   [`gc_index::QueryIndex`] for containment probes;
//! * [`ReplacementPolicy`] + [`Policy`] — the paper's replacement policies
//!   LRU, POP, PIN, PINC and HD behind the extension trait of Fig. 2(d);
//! * [`WindowManager`](window::WindowManager) — batched admission control;
//! * [`StatsMonitor`] — the Statistics Monitor/Manager pair: global counters
//!   and per-query [`QueryReport`]s for the Demonstrator.
//!
//! ## Correctness
//!
//! GraphCache returns *exactly* the answer set Method M alone would return
//! (no false positives/negatives — paper §1, "Problem (2)"). This invariant
//! is enforced by integration tests and a property test comparing against
//! [`gc_method::execute_base`] on randomized workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod cost;
mod entry;
mod hits;
pub mod parallel;
mod policy;
pub mod policy_ext;
mod pruner;
mod report;
mod stats;
pub mod window;

pub use cost::CostModel;
pub use parallel::{verify_candidates, VerifyPool};

pub use cache::CacheManager;
pub use config::CacheConfig;
pub use entry::{CacheEntry, EntryId, EntryStats};
pub use hits::{CacheHits, Hit, Relation};
pub use policy::{HitCredit, HitKind, Policy, PolicyKind, ReplacementPolicy};
pub use pruner::{prune, Pruned};
pub use report::QueryReport;
pub use stats::{GlobalStats, StatsMonitor};

mod runtime;
pub use runtime::GraphCache;
