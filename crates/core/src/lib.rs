//! # gc-core — the GraphCache kernel
//!
//! This crate implements the paper's Kernel subsystem (Fig. 1) as a
//! **staged query pipeline** with two front-ends:
//!
//! * [`pipeline`] — the five explicit stages every query passes through
//!   (Fig. 3): [`pipeline::filter`] computes Method M's candidate set
//!   `C_M`; [`pipeline::probe`] finds exact / sub-case / super-case cache
//!   hits; [`pipeline::prune`] turns hit answers into definite answers and
//!   a reduced candidate set; [`pipeline::verify`] runs exact sub-iso
//!   testing (inline or pooled); [`pipeline::admit`] credits hits, admits
//!   the query and runs the batched replacement sweep. A
//!   [`pipeline::PipelineCtx`] carries one query through the stages;
//! * [`GraphCache`] — the sequential Query Processing Runtime: a thin
//!   `&mut self` composition of the stages over directly-owned state;
//! * [`SharedGraphCache`] — the concurrent front-end: the same stages over
//!   *sharded* state behind `parking_lot::RwLock`s, `&self` queries from
//!   any number of threads, lock-free statistics, and verification batched
//!   onto the process-wide [`parallel::global_pool`].
//!
//! Supporting components:
//!
//! * [`CacheManager`] — storage of cached queries, their answer bitsets, the
//!   fingerprint table for exact-match detection, and the
//!   [`gc_index::QueryIndex`] for containment probes;
//! * [`ReplacementPolicy`] + [`Policy`] — the paper's replacement policies
//!   LRU, POP, PIN, PINC and HD behind the extension trait of Fig. 2(d)
//!   (plus [`policy_ext`]'s GDS / arithmetic-HD / Random);
//! * [`WindowManager`](window::WindowManager) — batched admission control;
//! * [`StatsMonitor`] — the Statistics Monitor/Manager pair: atomic global
//!   counters (no lock on the query path) and per-query [`QueryReport`]s
//!   for the Demonstrator;
//! * [`CostModel`] — atomic per-graph verification-cost EWMA feeding the
//!   cost-aware policies;
//! * [`persist`] — durable cache state: snapshot + journal persistence
//!   over [`gc_store`] ([`GraphCache::snapshot_to`] /
//!   [`GraphCache::restore_from`], journal hooks in the admit stage, a
//!   periodic [`Snapshotter`] for [`SharedGraphCache`]), so warm hit
//!   ratios survive restarts and deploys.
//!
//! ## Correctness
//!
//! GraphCache returns *exactly* the answer set Method M alone would return
//! (no false positives/negatives — paper §1, "Problem (2)"). This invariant
//! is enforced by integration tests and property tests comparing against
//! [`gc_method::execute_base`] on randomized workloads — including
//! [`SharedGraphCache`] under multi-threaded interleavings (`tests/prop.rs`
//! at the workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod cost;
mod entry;
mod memo;
pub mod parallel;
pub mod persist;
pub mod pipeline;
mod policy;
pub mod policy_ext;
mod report;
mod shared;
mod stats;
pub mod telemetry;
pub mod window;

pub use cost::CostModel;
pub use parallel::{global_pool, verify_candidates, VerifyOutcome, VerifyPool};

pub use cache::CacheManager;
pub use config::CacheConfig;
pub use entry::{CacheEntry, EntryId, EntryStats};
pub use persist::{
    CacheStore, FsyncPolicy, LoadOutcome, PersistHealth, RecoveryReport, SnapshotInfo, Snapshotter,
};
pub use pipeline::probe::{find_exact, probe, CacheHits, Hit, Relation};
pub use pipeline::prune::{prune, Pruned};
pub use pipeline::PipelineCtx;
pub use policy::{HitCredit, HitKind, Policy, PolicyKind, ReplacementPolicy};
pub use report::{IndexHealth, QueryReport};
pub use shared::SharedGraphCache;
pub use stats::{GlobalStats, StatsMonitor};
pub use telemetry::{
    Histogram, HistogramSnapshot, PipelineStage, QueryTiming, QueryTrace, Telemetry,
};

mod runtime;
pub use runtime::GraphCache;

/// Backwards-compatible alias of the probe stage's hit-detection module
/// (pre-pipeline layout); prefer [`pipeline::probe`].
pub mod hits {
    pub use crate::pipeline::probe::{find_exact, probe, CacheHits, Hit, Relation};
}

/// Backwards-compatible alias of the prune stage (pre-pipeline layout);
/// prefer [`pipeline::prune`].
pub mod pruner {
    pub use crate::pipeline::prune::{prune, Pruned};
}
