//! Window Manager: batched cache replacement scheduling.
//!
//! Executed queries are admitted into the cache *immediately* — a
//! resubmission right after execution must already be an exact hit (the
//! paper's motivating flaw of FTV: "when a query is resubmitted to the
//! system, it shall be processed from scratch"). What is batched is
//! *replacement*: evictions run once per admission window, so the cache may
//! transiently grow to `capacity + window_size` and is then cut back to
//! `capacity` by the policy in one sweep. This is exactly what the demo's
//! Workload Run visualises: "each graph cache is full of 50 previously
//! executed queries, 10 of which are replaced by the newly coming queries
//! in the workload" (paper §3.2).
//!
//! Batching amortises eviction work and lets the policy compare incumbents
//! against a whole window of newcomers rather than thrashing entry-by-entry.

/// Tracks admissions and signals when a replacement sweep is due.
#[derive(Debug)]
pub struct WindowManager {
    size: usize,
    since_close: usize,
}

impl WindowManager {
    /// New window closing after every `size` admissions.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "window size must be positive");
        WindowManager { size, since_close: 0 }
    }

    /// The window length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Admissions since the last window close.
    pub fn pending(&self) -> usize {
        self.since_close
    }

    /// Restore the pending-admission count from a persistence snapshot
    /// (reduced modulo the window size, so a snapshot taken under a
    /// different window configuration still restores sanely).
    pub fn restore_pending(&mut self, pending: usize) {
        self.since_close = pending % self.size;
    }

    /// Record one admission; returns `true` when the window just closed
    /// (the caller must then run the replacement sweep).
    pub fn on_admit(&mut self) -> bool {
        self.since_close += 1;
        if self.since_close >= self.size {
            self.since_close = 0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closes_every_size_admissions() {
        let mut w = WindowManager::new(3);
        assert_eq!(w.size(), 3);
        assert!(!w.on_admit());
        assert!(!w.on_admit());
        assert_eq!(w.pending(), 2);
        assert!(w.on_admit());
        assert_eq!(w.pending(), 0);
        assert!(!w.on_admit());
    }

    #[test]
    fn window_of_one_closes_every_time() {
        let mut w = WindowManager::new(1);
        assert!(w.on_admit());
        assert!(w.on_admit());
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_panics() {
        WindowManager::new(0);
    }
}
