//! Generation-versioned exact answer memo.
//!
//! A bounded map from canonical query hash (WL fingerprint mixed with the
//! query kind) to a complete, verified answer set, stamped with the
//! [`gc_method::Dataset`] generation it was computed against. Sitting in
//! front of the containment probe, it serves repeat queries that the
//! fingerprint table cannot: queries the admission filter rejected, queries
//! evicted by replacement, and queries whose entries never existed — the
//! memo remembers *answers*, not cache entries, so it costs no index slots
//! and never competes with the replacement policy.
//!
//! ## Correctness
//!
//! A memo answer is only served when its recorded dataset generation equals
//! the live dataset's — any insert or remove bumps the generation, which
//! invalidates the **entire** memo in O(1) (stale slots are dropped lazily
//! on the next lookup/store). A hit is confirmed with exact isomorphism, so
//! fingerprint collisions cannot leak a wrong answer. Within a generation
//! the dataset is immutable, hence a memoized answer set is exactly the
//! answer Method M alone would produce: the memo is sound by construction.

use gc_graph::{BitSet, Graph};
use gc_method::QueryKind;
use std::collections::HashMap;

/// One memoized answer.
#[derive(Debug, Clone)]
pub(crate) struct MemoHit {
    /// The complete answer set (current-universe bitset).
    pub answer: BitSet,
    /// `|C_M|` of the original execution (tests an exact repeat saves).
    pub base_tests: u64,
}

#[derive(Debug)]
struct MemoSlot {
    graph: Graph,
    kind: QueryKind,
    answer: BitSet,
    base_tests: u64,
}

/// Bounded, generation-versioned answer memo (see module docs).
#[derive(Debug)]
pub(crate) struct AnswerMemo {
    /// Keyed by `mix(fingerprint, kind)`; collisions resolved by exact
    /// isomorphism on the stored graph.
    map: HashMap<u64, Vec<MemoSlot>>,
    /// Insertion order for FIFO bounding (keys may repeat across
    /// generations; eviction tolerates misses).
    order: std::collections::VecDeque<u64>,
    /// Dataset generation the stored answers are valid for.
    generation: u64,
    /// Maximum stored answers (0 = memo disabled).
    capacity: usize,
    /// Live slot count (order may hold stale keys).
    len: usize,
}

fn memo_key(query: &Graph, kind: QueryKind) -> u64 {
    let tag = match kind {
        QueryKind::Subgraph => 0x5355_4251,   // "SUBQ"
        QueryKind::Supergraph => 0x5355_5051, // "SUPQ"
    };
    gc_graph::hash::mix(gc_graph::hash::fingerprint(query), tag)
}

impl AnswerMemo {
    pub(crate) fn new(capacity: usize) -> Self {
        AnswerMemo {
            map: HashMap::new(),
            order: std::collections::VecDeque::new(),
            generation: 0,
            capacity,
            len: 0,
        }
    }

    /// Drop everything if the memo was computed against an older dataset
    /// generation — the O(1)-invalidation contract (one comparison per
    /// lookup; the actual clear is amortized over the stale entries).
    fn sync_generation(&mut self, generation: u64) {
        if self.generation != generation {
            self.map.clear();
            self.order.clear();
            self.len = 0;
            self.generation = generation;
        }
    }

    /// Look up the exact answer for `query` at dataset `generation`.
    pub(crate) fn lookup(
        &mut self,
        query: &Graph,
        kind: QueryKind,
        generation: u64,
    ) -> Option<MemoHit> {
        if self.capacity == 0 {
            return None;
        }
        self.sync_generation(generation);
        let slots = self.map.get(&memo_key(query, kind))?;
        slots
            .iter()
            .find(|s| s.kind == kind && gc_iso::iso::are_isomorphic(&s.graph, query))
            .map(|s| MemoHit { answer: s.answer.clone(), base_tests: s.base_tests })
    }

    /// Store a freshly executed query's exact answer at `generation`.
    pub(crate) fn store(
        &mut self,
        query: &Graph,
        kind: QueryKind,
        answer: &BitSet,
        base_tests: u64,
        generation: u64,
    ) {
        if self.capacity == 0 {
            return;
        }
        self.sync_generation(generation);
        let key = memo_key(query, kind);
        if let Some(slots) = self.map.get(&key) {
            if slots.iter().any(|s| s.kind == kind && gc_iso::iso::are_isomorphic(&s.graph, query))
            {
                return; // already memoized this generation
            }
        }
        while self.len >= self.capacity {
            let Some(old_key) = self.order.pop_front() else { break };
            if let Some(slots) = self.map.get_mut(&old_key) {
                if !slots.is_empty() {
                    slots.remove(0);
                    self.len -= 1;
                }
                if slots.is_empty() {
                    self.map.remove(&old_key);
                }
            }
        }
        self.map.entry(key).or_default().push(MemoSlot {
            graph: query.clone(),
            kind,
            answer: answer.clone(),
            base_tests,
        });
        self.order.push_back(key);
        self.len += 1;
    }

    /// Live memoized answers (diagnostics).
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    #[test]
    fn memoizes_and_confirms_isomorphism() {
        let mut memo = AnswerMemo::new(4);
        let q = g(&[0, 1], &[(0, 1)]);
        let answer = BitSet::from_indices(4, [1usize, 3]);
        assert!(memo.lookup(&q, QueryKind::Subgraph, 0).is_none());
        memo.store(&q, QueryKind::Subgraph, &answer, 7, 0);
        // Isomorphic relabeling of the same query hits.
        let q_iso = g(&[1, 0], &[(0, 1)]);
        let hit = memo.lookup(&q_iso, QueryKind::Subgraph, 0).expect("memo hit");
        assert_eq!(hit.answer, answer);
        assert_eq!(hit.base_tests, 7);
        // Other kind misses.
        assert!(memo.lookup(&q, QueryKind::Supergraph, 0).is_none());
    }

    #[test]
    fn generation_bump_invalidates_everything() {
        let mut memo = AnswerMemo::new(4);
        let q = g(&[0], &[]);
        memo.store(&q, QueryKind::Subgraph, &BitSet::from_indices(2, [0usize]), 2, 0);
        assert!(memo.lookup(&q, QueryKind::Subgraph, 0).is_some());
        assert!(memo.lookup(&q, QueryKind::Subgraph, 1).is_none(), "new generation misses");
        assert_eq!(memo.len(), 0, "stale slots dropped");
    }

    #[test]
    fn capacity_bounds_and_zero_disables() {
        let mut memo = AnswerMemo::new(2);
        for i in 0..5u32 {
            memo.store(&g(&[i], &[]), QueryKind::Subgraph, &BitSet::new(1), 1, 0);
        }
        assert!(memo.len() <= 2);
        // The newest entries survive FIFO eviction.
        assert!(memo.lookup(&g(&[4], &[]), QueryKind::Subgraph, 0).is_some());
        assert!(memo.lookup(&g(&[0], &[]), QueryKind::Subgraph, 0).is_none());

        let mut off = AnswerMemo::new(0);
        off.store(&g(&[0], &[]), QueryKind::Subgraph, &BitSet::new(1), 1, 0);
        assert!(off.lookup(&g(&[0], &[]), QueryKind::Subgraph, 0).is_none());
        assert_eq!(off.len(), 0);
    }

    #[test]
    fn duplicate_store_is_idempotent() {
        let mut memo = AnswerMemo::new(4);
        let q = g(&[0, 1], &[(0, 1)]);
        memo.store(&q, QueryKind::Subgraph, &BitSet::new(2), 1, 0);
        memo.store(&g(&[1, 0], &[(0, 1)]), QueryKind::Subgraph, &BitSet::new(2), 1, 0);
        assert_eq!(memo.len(), 1, "isomorphic duplicate not stored twice");
    }
}
