//! Parallel candidate verification.
//!
//! The paper's kernel discusses resource management over memory *and
//! threads*; verification of the reduced candidate set `C` is embarrassingly
//! parallel (read-only dataset, read-only query). Two execution modes:
//!
//! * [`verify_candidates`] — scoped threads spawned per call; zero standing
//!   resources, fine for occasional heavyweight queries;
//! * [`VerifyPool`] — a persistent worker pool fed over channels; the
//!   runtime uses this when `threads > 1` so the per-query spawn cost
//!   (hundreds of microseconds) cannot eat the savings on cheap queries.
//!
//! Results merge deterministically regardless of scheduling.

use crossbeam::channel::{unbounded, Sender};
use gc_graph::{BitSet, Graph};
use gc_method::{Dataset, Engine, QueryKind};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Verify every graph in `to_verify`, returning the survivors `R` and the
/// total verifier steps.
///
/// With `threads == 1` runs inline (no spawn overhead); otherwise splits the
/// candidate list into contiguous chunks, one per worker.
pub fn verify_candidates(
    dataset: &Dataset,
    engine: Engine,
    query: &Graph,
    kind: QueryKind,
    to_verify: &BitSet,
    threads: usize,
) -> (BitSet, u64) {
    let ids: Vec<usize> = to_verify.to_vec();
    let mut answer = dataset.empty_set();
    let mut steps = 0u64;

    if threads <= 1 || ids.len() < 2 {
        for &gid in &ids {
            let (ok, s) = verify_one(dataset, engine, query, kind, gid);
            steps += s;
            if ok {
                answer.insert(gid);
            }
        }
        return (answer, steps);
    }

    let workers = threads.min(ids.len());
    let chunk = ids.len().div_ceil(workers);
    let results: Vec<(Vec<usize>, u64)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = ids
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move |_| {
                    let mut local = Vec::new();
                    let mut local_steps = 0u64;
                    for &gid in slice {
                        let (ok, s) = verify_one(dataset, engine, query, kind, gid);
                        local_steps += s;
                        if ok {
                            local.push(gid);
                        }
                    }
                    (local, local_steps)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("verifier worker panicked")).collect()
    })
    .expect("crossbeam scope failed");

    for (local, local_steps) in results {
        steps += local_steps;
        for gid in local {
            answer.insert(gid);
        }
    }
    (answer, steps)
}

#[inline]
fn verify_one(
    dataset: &Dataset,
    engine: Engine,
    query: &Graph,
    kind: QueryKind,
    gid: usize,
) -> (bool, u64) {
    let target = dataset.graph(gid as u32);
    match kind {
        QueryKind::Subgraph => engine.verify(query, target),
        QueryKind::Supergraph => engine.verify(target, query),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    fn dataset() -> Dataset {
        Dataset::new(vec![
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]),
            g(&[3, 3], &[(0, 1)]),
            g(&[0, 1], &[(0, 1)]),
            g(&[1, 0, 1], &[(0, 1), (1, 2)]),
        ])
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let ds = dataset();
        let q = g(&[0, 1], &[(0, 1)]);
        let all = ds.all_graphs();
        let (seq, seq_steps) =
            verify_candidates(&ds, Engine::Vf2, &q, QueryKind::Subgraph, &all, 1);
        for t in [2, 3, 8] {
            let (par, par_steps) =
                verify_candidates(&ds, Engine::Vf2, &q, QueryKind::Subgraph, &all, t);
            assert_eq!(seq, par, "threads={t}");
            assert_eq!(seq_steps, par_steps, "steps must be deterministic, threads={t}");
        }
        assert_eq!(seq.to_vec(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn respects_candidate_subset() {
        let ds = dataset();
        let q = g(&[0, 1], &[(0, 1)]);
        let only = BitSet::from_indices(ds.len(), [2usize, 3]);
        let (ans, _) = verify_candidates(&ds, Engine::Vf2, &q, QueryKind::Subgraph, &only, 2);
        assert_eq!(ans.to_vec(), vec![3]);
    }

    #[test]
    fn empty_candidates() {
        let ds = dataset();
        let q = g(&[0], &[]);
        let none = ds.empty_set();
        let (ans, steps) = verify_candidates(&ds, Engine::Vf2, &q, QueryKind::Subgraph, &none, 4);
        assert!(ans.is_empty());
        assert_eq!(steps, 0);
    }

    #[test]
    fn supergraph_direction() {
        let ds = dataset();
        let q = g(&[0, 1, 2, 0], &[(0, 1), (1, 2), (0, 3)]);
        let all = ds.all_graphs();
        let (ans, _) = verify_candidates(&ds, Engine::Vf2, &q, QueryKind::Supergraph, &all, 2);
        assert_eq!(ans.to_vec(), vec![0, 3]);
    }
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

struct Job {
    dataset: Arc<Dataset>,
    query: Arc<Graph>,
    kind: QueryKind,
    engine: Engine,
    ids: Vec<usize>,
    reply: Sender<(Vec<usize>, u64)>,
}

/// A persistent pool of verification workers.
///
/// Workers live for the pool's lifetime; each job carries its inputs by
/// `Arc`, so no per-call thread spawning or scoping is needed. Dropping the
/// pool closes the job channel and joins the workers.
pub struct VerifyPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl VerifyPool {
    /// Spawn `size` workers (at least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (tx, rx) = unbounded::<Job>();
        let workers = (0..size)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("gc-verify-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            let mut local = Vec::new();
                            let mut steps = 0u64;
                            for gid in job.ids {
                                let target = job.dataset.graph(gid as u32);
                                let (ok, s) = match job.kind {
                                    QueryKind::Subgraph => job.engine.verify(&job.query, target),
                                    QueryKind::Supergraph => job.engine.verify(target, &job.query),
                                };
                                steps += s;
                                if ok {
                                    local.push(gid);
                                }
                            }
                            // Receiver may have given up; ignore send errors.
                            let _ = job.reply.send((local, steps));
                        }
                    })
                    .expect("spawn verification worker")
            })
            .collect();
        VerifyPool { tx: Some(tx), workers, size }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Verify `to_verify` against the dataset, returning survivors and total
    /// verifier steps. Deterministic: the result is independent of worker
    /// scheduling.
    pub fn verify(
        &self,
        dataset: &Arc<Dataset>,
        engine: Engine,
        query: &Graph,
        kind: QueryKind,
        to_verify: &BitSet,
    ) -> (BitSet, u64) {
        let ids: Vec<usize> = to_verify.to_vec();
        let mut answer = dataset.empty_set();
        let mut steps = 0u64;
        if ids.len() < 2 {
            for &gid in &ids {
                let (ok, s) = verify_one(dataset, engine, query, kind, gid);
                steps += s;
                if ok {
                    answer.insert(gid);
                }
            }
            return (answer, steps);
        }
        let tx = self.tx.as_ref().expect("pool is live");
        let query = Arc::new(query.clone());
        let (reply_tx, reply_rx) = unbounded();
        // Oversplit ~2x for load balance under skewed verify costs.
        let chunks = (2 * self.size).min(ids.len());
        let chunk_len = ids.len().div_ceil(chunks);
        let mut sent = 0usize;
        for slice in ids.chunks(chunk_len) {
            tx.send(Job {
                dataset: dataset.clone(),
                query: query.clone(),
                kind,
                engine,
                ids: slice.to_vec(),
                reply: reply_tx.clone(),
            })
            .expect("workers are alive while the pool exists");
            sent += 1;
        }
        drop(reply_tx);
        for _ in 0..sent {
            let (local, local_steps) = reply_rx.recv().expect("worker replies");
            steps += local_steps;
            for gid in local {
                answer.insert(gid);
            }
        }
        (answer, steps)
    }
}

impl Drop for VerifyPool {
    fn drop(&mut self) {
        self.tx.take(); // close the channel; workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for VerifyPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifyPool").field("size", &self.size).finish()
    }
}

#[cfg(test)]
mod pool_tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    fn dataset() -> Arc<Dataset> {
        Arc::new(Dataset::new(vec![
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]),
            g(&[3, 3], &[(0, 1)]),
            g(&[0, 1], &[(0, 1)]),
            g(&[1, 0, 1], &[(0, 1), (1, 2)]),
        ]))
    }

    #[test]
    fn pool_matches_sequential() {
        let ds = dataset();
        let q = g(&[0, 1], &[(0, 1)]);
        let all = ds.all_graphs();
        let (seq, seq_steps) =
            verify_candidates(&ds, Engine::Vf2, &q, QueryKind::Subgraph, &all, 1);
        for size in [1usize, 2, 4] {
            let pool = VerifyPool::new(size);
            let (par, par_steps) = pool.verify(&ds, Engine::Vf2, &q, QueryKind::Subgraph, &all);
            assert_eq!(seq, par, "pool size {size}");
            assert_eq!(seq_steps, par_steps);
        }
    }

    #[test]
    fn pool_survives_many_calls() {
        let ds = dataset();
        let pool = VerifyPool::new(3);
        let q1 = g(&[0, 1], &[(0, 1)]);
        let q2 = g(&[3], &[]);
        let all = ds.all_graphs();
        for _ in 0..50 {
            let (a, _) = pool.verify(&ds, Engine::Vf2, &q1, QueryKind::Subgraph, &all);
            assert_eq!(a.to_vec(), vec![0, 1, 3, 4]);
            let (b, _) = pool.verify(&ds, Engine::Vf2, &q2, QueryKind::Subgraph, &all);
            assert_eq!(b.to_vec(), vec![2]);
        }
    }

    #[test]
    fn pool_empty_and_singleton_candidates() {
        let ds = dataset();
        let pool = VerifyPool::new(2);
        let q = g(&[0, 1], &[(0, 1)]);
        let none = ds.empty_set();
        let (a, s) = pool.verify(&ds, Engine::Vf2, &q, QueryKind::Subgraph, &none);
        assert!(a.is_empty());
        assert_eq!(s, 0);
        let one = BitSet::from_indices(ds.len(), [3usize]);
        let (b, _) = pool.verify(&ds, Engine::Vf2, &q, QueryKind::Subgraph, &one);
        assert_eq!(b.to_vec(), vec![3]);
    }

    #[test]
    fn dropping_pool_joins_workers() {
        let pool = VerifyPool::new(4);
        assert_eq!(pool.size(), 4);
        drop(pool); // must not hang
    }
}
