//! Parallel candidate verification.
//!
//! The paper's kernel discusses resource management over memory *and
//! threads*; verification of the reduced candidate set `C` is embarrassingly
//! parallel (read-only dataset, read-only query). Three execution modes:
//!
//! * [`verify_candidates`] — scoped threads spawned per call; zero standing
//!   resources, fine for occasional heavyweight queries;
//! * [`VerifyPool`] — a persistent worker pool fed over an MPMC job queue;
//!   per-instance pools are used by the sequential runtime when
//!   `threads > 1` so the per-query spawn cost (hundreds of microseconds)
//!   cannot eat the savings on cheap queries;
//! * [`global_pool`] — the **process-wide** pool shared by every
//!   [`crate::SharedGraphCache`]: concurrent queries from many client
//!   threads batch their verification work onto one fixed set of workers
//!   sized to the machine, so `N clients × M workers` cannot oversubscribe
//!   the CPU.
//!
//! Every mode runs the **profiled hot path**: the caller passes one
//! [`QueryProfile`] (computed once per query, shared by all workers), the
//! dataset side comes from the load-time [`gc_method::DatasetProfiles`], and
//! each worker reuses one [`VfScratch`] across all its candidates — the
//! per-candidate loop performs no setup and no heap allocation. Results
//! merge deterministically regardless of scheduling, including the
//! per-graph step counts that feed the [`crate::cost::CostModel`].

use gc_graph::{BitSet, Graph};
use gc_method::{Dataset, Engine, QueryProfile, VfScratch};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Merged result of verifying a candidate set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// The survivors `R` (graphs the query embeds into / that embed into
    /// the query, per the profile's kind).
    pub survivors: BitSet,
    /// Total verifier steps across all candidates.
    pub steps: u64,
    /// Observed per-candidate cost `(gid, steps)`, ascending by gid —
    /// exactly one entry per verified candidate (feeds PINC/HD's cost
    /// model without mean-smearing).
    pub costs: Vec<(usize, u64)>,
}

impl VerifyOutcome {
    fn empty(universe: usize) -> Self {
        VerifyOutcome { survivors: BitSet::new(universe), steps: 0, costs: Vec::new() }
    }
}

/// Verify every graph in `to_verify`, returning the survivors `R`, the
/// total verifier steps and the per-graph step counts.
///
/// With `threads == 1` runs inline (no spawn overhead); otherwise splits the
/// candidate list into contiguous chunks, one per scoped worker thread, each
/// with its own [`VfScratch`].
pub fn verify_candidates(
    dataset: &Dataset,
    engine: Engine,
    profile: &QueryProfile,
    query: &Graph,
    to_verify: &BitSet,
    threads: usize,
) -> VerifyOutcome {
    let mut out = VerifyOutcome::empty(dataset.len());
    let n = to_verify.count();

    if threads <= 1 || n < 2 {
        // Inline: walk the survivors straight off the bitset words
        // (`ones()`), no candidate-id vector materialized.
        let mut scratch = VfScratch::new();
        for gid in to_verify.ones() {
            let (ok, s) =
                engine.verify_candidate(dataset, profile, query, gid as u32, &mut scratch);
            out.steps += s;
            out.costs.push((gid, s));
            if ok {
                out.survivors.insert(gid);
            }
        }
        return out;
    }

    // Parallel path: the id vector is the unit of work distribution.
    let ids: Vec<usize> = to_verify.ones().collect();
    let workers = threads.min(ids.len());
    let chunk = ids.len().div_ceil(workers);
    let results: Vec<Vec<(usize, bool, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    let mut scratch = VfScratch::new();
                    slice
                        .iter()
                        .map(|&gid| {
                            let (ok, s) = engine.verify_candidate(
                                dataset,
                                profile,
                                query,
                                gid as u32,
                                &mut scratch,
                            );
                            (gid, ok, s)
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("verifier worker panicked")).collect()
    });

    // Chunks are contiguous ascending slices of `ids`, so concatenating in
    // spawn order keeps `costs` sorted by gid.
    for local in results {
        for (gid, ok, s) in local {
            out.steps += s;
            out.costs.push((gid, s));
            if ok {
                out.survivors.insert(gid);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};
    use gc_method::QueryKind;

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    fn dataset() -> Dataset {
        Dataset::new(vec![
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]),
            g(&[3, 3], &[(0, 1)]),
            g(&[0, 1], &[(0, 1)]),
            g(&[1, 0, 1], &[(0, 1), (1, 2)]),
        ])
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let ds = dataset();
        let q = g(&[0, 1], &[(0, 1)]);
        let qp = QueryProfile::new(&ds, &q, QueryKind::Subgraph);
        let all = ds.all_graphs();
        let seq = verify_candidates(&ds, Engine::Vf2, &qp, &q, &all, 1);
        for t in [2, 3, 8] {
            let par = verify_candidates(&ds, Engine::Vf2, &qp, &q, &all, t);
            assert_eq!(seq, par, "results must be deterministic, threads={t}");
        }
        assert_eq!(seq.survivors.to_vec(), vec![0, 1, 3, 4]);
        assert_eq!(seq.costs.len(), 5, "one cost entry per verified candidate");
        assert_eq!(seq.costs.iter().map(|&(_, s)| s).sum::<u64>(), seq.steps);
        assert!(seq.costs.windows(2).all(|w| w[0].0 < w[1].0), "costs sorted by gid");
    }

    #[test]
    fn respects_candidate_subset() {
        let ds = dataset();
        let q = g(&[0, 1], &[(0, 1)]);
        let qp = QueryProfile::new(&ds, &q, QueryKind::Subgraph);
        let only = BitSet::from_indices(ds.len(), [2usize, 3]);
        let out = verify_candidates(&ds, Engine::Vf2, &qp, &q, &only, 2);
        assert_eq!(out.survivors.to_vec(), vec![3]);
        assert_eq!(out.costs.iter().map(|&(gid, _)| gid).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn empty_candidates() {
        let ds = dataset();
        let q = g(&[0], &[]);
        let qp = QueryProfile::new(&ds, &q, QueryKind::Subgraph);
        let none = ds.empty_set();
        let out = verify_candidates(&ds, Engine::Vf2, &qp, &q, &none, 4);
        assert!(out.survivors.is_empty());
        assert_eq!(out.steps, 0);
        assert!(out.costs.is_empty());
    }

    #[test]
    fn supergraph_direction() {
        let ds = dataset();
        let q = g(&[0, 1, 2, 0], &[(0, 1), (1, 2), (0, 3)]);
        let qp = QueryProfile::new(&ds, &q, QueryKind::Supergraph);
        let all = ds.all_graphs();
        let out = verify_candidates(&ds, Engine::Vf2, &qp, &q, &all, 2);
        assert_eq!(out.survivors.to_vec(), vec![0, 3]);
    }
}

// ---------------------------------------------------------------------------
// MPMC job queue (std-only): many query threads enqueue, pool workers drain.
// ---------------------------------------------------------------------------

struct JobQueue<T> {
    queue: Mutex<Option<VecDeque<T>>>,
    ready: Condvar,
}

impl<T> JobQueue<T> {
    fn new() -> Self {
        JobQueue { queue: Mutex::new(Some(VecDeque::new())), ready: Condvar::new() }
    }

    /// Push a job; returns `false` if the queue is closed.
    fn push(&self, job: T) -> bool {
        let mut guard = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        match guard.as_mut() {
            Some(q) => {
                q.push_back(job);
                drop(guard);
                self.ready.notify_one();
                true
            }
            None => false,
        }
    }

    /// Pop a job, blocking; `None` once closed and drained.
    fn pop(&self) -> Option<T> {
        let mut guard = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match guard.as_mut() {
                Some(q) => {
                    if let Some(job) = q.pop_front() {
                        return Some(job);
                    }
                }
                None => return None,
            }
            guard = self.ready.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Close the queue: wake all workers; outstanding jobs are dropped.
    fn close(&self) {
        let mut guard = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        *guard = None;
        drop(guard);
        self.ready.notify_all();
    }
}

/// One chunk's verification verdicts: `(graph id, embeds, steps)`.
type ChunkVerdicts = Vec<(usize, bool, u64)>;

struct Job {
    dataset: Arc<Dataset>,
    query: Arc<Graph>,
    profile: Arc<QueryProfile>,
    engine: Engine,
    ids: Vec<usize>,
    /// Index of this chunk within its `verify()` call, echoed in the
    /// reply so the caller knows exactly which chunks went missing (a
    /// panicked worker never replies) and can re-verify them inline.
    chunk: usize,
    reply: mpsc::Sender<(usize, ChunkVerdicts)>,
}

/// Fault-plan slot shared by a pool and its workers (chaos testing: armed
/// [`gc_store::FaultSite::Task`] points fire inside the workers'
/// `catch_unwind`, exercising the lost-task fallbacks).
type TaskFaults = Arc<Mutex<Option<Arc<gc_store::FaultPlan>>>>;

/// Consult the pool's fault plan before running a task body. Injected
/// errors and panics both panic here — inside the worker's
/// `catch_unwind` — so the task dies exactly like a genuine panic would.
fn inject_task_fault(faults: &TaskFaults) {
    let plan = faults.lock().unwrap_or_else(|e| e.into_inner()).clone();
    if let Some(plan) = plan {
        match plan.on_op(gc_store::FaultSite::Task) {
            gc_store::FaultAction::Proceed => {}
            action => panic!("injected pool-task fault: {action:?}"),
        }
    }
}

/// One unit of pool work: a verification chunk, or an arbitrary one-shot
/// closure (how [`crate::SharedGraphCache`] fans per-shard probe read
/// sections out; see [`VerifyPool::submit`]).
enum Task {
    Verify(Job),
    Run(Box<dyn FnOnce() + Send + 'static>),
}

/// A persistent pool of verification workers.
///
/// Workers live for the pool's lifetime; each job carries its inputs by
/// `Arc` (dataset, query graph, query profile), so no per-call thread
/// spawning or scoping is needed, and each worker keeps one [`VfScratch`]
/// alive across **all** jobs it ever serves — the per-candidate search loop
/// allocates nothing. The job queue is multi-producer: any number of threads
/// may call [`VerifyPool::verify`] concurrently and their chunks interleave
/// on the same workers (how [`crate::SharedGraphCache`] batches verification
/// work across concurrent queries). Dropping the pool closes the queue and
/// joins the workers.
pub struct VerifyPool {
    jobs: Arc<JobQueue<Task>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
    faults: TaskFaults,
}

impl VerifyPool {
    /// Spawn `size` workers (at least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let jobs: Arc<JobQueue<Task>> = Arc::new(JobQueue::new());
        let faults: TaskFaults = Arc::new(Mutex::new(None));
        let workers = (0..size)
            .map(|i| {
                let jobs = Arc::clone(&jobs);
                let faults = Arc::clone(&faults);
                std::thread::Builder::new()
                    .name(format!("gc-verify-{i}"))
                    .spawn(move || {
                        // One scratch per worker, reused across every job
                        // this worker ever serves (thread-local by
                        // construction: nothing else touches it).
                        let mut scratch = VfScratch::new();
                        while let Some(task) = jobs.pop() {
                            // Confine a panicking task to itself: its reply
                            // sender is dropped without a send, so only the
                            // requesting caller is affected — and it
                            // recovers by redoing the lost chunk inline
                            // (verify()'s fallback, probe_shards_parallel's
                            // re-probe). The worker lives on to serve other
                            // queries. Without this, one poisoned graph
                            // would silently kill global_pool() workers
                            // until every query in the process hung on
                            // recv().
                            match task {
                                Task::Verify(job) => {
                                    let result = std::panic::catch_unwind(
                                        std::panic::AssertUnwindSafe(|| {
                                            inject_task_fault(&faults);
                                            job.ids
                                                .iter()
                                                .map(|&gid| {
                                                    let (ok, s) = job.engine.verify_candidate(
                                                        &job.dataset,
                                                        &job.profile,
                                                        &job.query,
                                                        gid as u32,
                                                        &mut scratch,
                                                    );
                                                    (gid, ok, s)
                                                })
                                                .collect::<Vec<_>>()
                                        }),
                                    );
                                    if let Ok(outcome) = result {
                                        // Receiver may have given up;
                                        // ignore send errors.
                                        let _ = job.reply.send((job.chunk, outcome));
                                    }
                                }
                                Task::Run(f) => {
                                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                        || {
                                            inject_task_fault(&faults);
                                            f();
                                        },
                                    ));
                                }
                            }
                        }
                    })
                    .expect("spawn verification worker")
            })
            .collect();
        VerifyPool { jobs, workers, size, faults }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Install (or with `None`, remove) a fault plan consulted by every
    /// worker before each task ([`gc_store::FaultSite::Task`]) — the
    /// chaos harness's way of injecting worker panics to exercise the
    /// lost-task fallbacks. No plan (the default) costs one uncontended
    /// lock per task.
    pub fn set_fault_plan(&self, plan: Option<Arc<gc_store::FaultPlan>>) {
        *self.faults.lock().unwrap_or_else(|e| e.into_inner()) = plan;
    }

    /// Run an arbitrary one-shot task on the pool's workers — the batched
    /// shard-probe path of [`crate::SharedGraphCache`] fans one such task
    /// per shard so shard read sections overlap. Returns `false` if the
    /// pool is shutting down (the caller runs the work inline instead). A
    /// panic inside the task is confined to it: the task's reply channel,
    /// if any, is dropped unsent and the worker lives on.
    pub fn submit(&self, task: Box<dyn FnOnce() + Send + 'static>) -> bool {
        self.jobs.push(Task::Run(task))
    }

    /// Verify `to_verify` against the dataset, returning survivors, total
    /// verifier steps and per-graph costs. Deterministic: the result is
    /// independent of worker scheduling.
    ///
    /// Resilient to worker panics: a chunk whose task dies (its reply
    /// never arrives) is re-verified inline by this caller, so a poisoned
    /// task costs latency, never an answer — the same guarantee as the
    /// shard-probe fallback in [`crate::SharedGraphCache`].
    pub fn verify(
        &self,
        dataset: &Arc<Dataset>,
        engine: Engine,
        profile: &QueryProfile,
        query: &Graph,
        to_verify: &BitSet,
    ) -> VerifyOutcome {
        let mut out = VerifyOutcome::empty(dataset.len());
        if to_verify.count() < 2 {
            let mut scratch = VfScratch::new();
            for gid in to_verify.ones() {
                let (ok, s) =
                    engine.verify_candidate(dataset, profile, query, gid as u32, &mut scratch);
                out.steps += s;
                out.costs.push((gid, s));
                if ok {
                    out.survivors.insert(gid);
                }
            }
            return out;
        }
        let ids: Vec<usize> = to_verify.ones().collect();
        let query = Arc::new(query.clone());
        let profile = Arc::new(profile.clone());
        let (reply_tx, reply_rx) = mpsc::channel();
        // Oversplit ~2x for load balance under skewed verify costs.
        let chunks = (2 * self.size).min(ids.len());
        let chunk_len = ids.len().div_ceil(chunks);
        let slices: Vec<&[usize]> = ids.chunks(chunk_len).collect();
        for (chunk, slice) in slices.iter().enumerate() {
            let pushed = self.jobs.push(Task::Verify(Job {
                dataset: dataset.clone(),
                query: query.clone(),
                profile: profile.clone(),
                engine,
                ids: slice.to_vec(),
                chunk,
                reply: reply_tx.clone(),
            }));
            assert!(pushed, "workers are alive while the pool exists");
        }
        drop(reply_tx);
        let mut received = vec![false; slices.len()];
        let mut got = 0usize;
        while got < slices.len() {
            // The channel closes once every job has replied or died (each
            // job owns one sender clone, dropped either way): a recv error
            // here means some chunks are lost, never that more are coming.
            let Ok((chunk, local)) = reply_rx.recv() else { break };
            received[chunk] = true;
            got += 1;
            for (gid, ok, s) in local {
                out.steps += s;
                out.costs.push((gid, s));
                if ok {
                    out.survivors.insert(gid);
                }
            }
        }
        if got < slices.len() {
            // A worker panicked mid-chunk: redo the lost chunks inline.
            let mut scratch = VfScratch::new();
            for (chunk, slice) in slices.iter().enumerate() {
                if received[chunk] {
                    continue;
                }
                for &gid in *slice {
                    let (ok, s) = engine.verify_candidate(
                        dataset,
                        &profile,
                        &query,
                        gid as u32,
                        &mut scratch,
                    );
                    out.steps += s;
                    out.costs.push((gid, s));
                    if ok {
                        out.survivors.insert(gid);
                    }
                }
            }
        }
        // Replies arrive in scheduling order; restore the deterministic
        // ascending-gid order the inline path produces.
        out.costs.sort_unstable_by_key(|&(gid, _)| gid);
        out
    }
}

impl Drop for VerifyPool {
    fn drop(&mut self) {
        self.jobs.close(); // wake the workers; they drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for VerifyPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifyPool").field("size", &self.size).finish()
    }
}

/// The process-wide verification pool, shared by every
/// [`crate::SharedGraphCache`] (and available to applications).
///
/// Lazily spawned on first use, sized to the machine's available
/// parallelism, and alive for the rest of the process. Centralizing the
/// workers means any number of concurrent caches and client threads share
/// one CPU-sized verification backend instead of multiplying pools.
pub fn global_pool() -> &'static VerifyPool {
    static POOL: OnceLock<VerifyPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let size = std::thread::available_parallelism().map_or(2, |n| n.get());
        VerifyPool::new(size)
    })
}

#[cfg(test)]
mod pool_tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};
    use gc_method::QueryKind;

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    fn dataset() -> Arc<Dataset> {
        Arc::new(Dataset::new(vec![
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]),
            g(&[3, 3], &[(0, 1)]),
            g(&[0, 1], &[(0, 1)]),
            g(&[1, 0, 1], &[(0, 1), (1, 2)]),
        ]))
    }

    #[test]
    fn pool_matches_sequential() {
        let ds = dataset();
        let q = g(&[0, 1], &[(0, 1)]);
        let qp = QueryProfile::new(&ds, &q, QueryKind::Subgraph);
        let all = ds.all_graphs();
        let seq = verify_candidates(&ds, Engine::Vf2, &qp, &q, &all, 1);
        for size in [1usize, 2, 4] {
            let pool = VerifyPool::new(size);
            let par = pool.verify(&ds, Engine::Vf2, &qp, &q, &all);
            assert_eq!(seq, par, "pool size {size}");
        }
    }

    #[test]
    fn pool_survives_many_calls() {
        let ds = dataset();
        let pool = VerifyPool::new(3);
        let q1 = g(&[0, 1], &[(0, 1)]);
        let q2 = g(&[3], &[]);
        let p1 = QueryProfile::new(&ds, &q1, QueryKind::Subgraph);
        let p2 = QueryProfile::new(&ds, &q2, QueryKind::Subgraph);
        let all = ds.all_graphs();
        for _ in 0..50 {
            let a = pool.verify(&ds, Engine::Vf2, &p1, &q1, &all);
            assert_eq!(a.survivors.to_vec(), vec![0, 1, 3, 4]);
            let b = pool.verify(&ds, Engine::Vf2, &p2, &q2, &all);
            assert_eq!(b.survivors.to_vec(), vec![2]);
        }
    }

    #[test]
    fn pool_empty_and_singleton_candidates() {
        let ds = dataset();
        let pool = VerifyPool::new(2);
        let q = g(&[0, 1], &[(0, 1)]);
        let qp = QueryProfile::new(&ds, &q, QueryKind::Subgraph);
        let none = ds.empty_set();
        let a = pool.verify(&ds, Engine::Vf2, &qp, &q, &none);
        assert!(a.survivors.is_empty());
        assert_eq!(a.steps, 0);
        let one = BitSet::from_indices(ds.len(), [3usize]);
        let b = pool.verify(&ds, Engine::Vf2, &qp, &q, &one);
        assert_eq!(b.survivors.to_vec(), vec![3]);
        assert_eq!(b.costs.len(), 1);
    }

    #[test]
    fn verify_survives_injected_worker_panics() {
        use gc_store::{Failpoint, FaultPlan, FaultSite};
        let ds = dataset();
        let q = g(&[0, 1], &[(0, 1)]);
        let qp = QueryProfile::new(&ds, &q, QueryKind::Subgraph);
        let all = ds.all_graphs();
        let expect = verify_candidates(&ds, Engine::Vf2, &qp, &q, &all, 1);

        let pool = VerifyPool::new(2);
        // Every task panics: every chunk is lost and redone inline.
        let all_die = Arc::new(FaultPlan::seeded(1));
        all_die.arm(FaultSite::Task, Failpoint::ErrAfter { n: 0 });
        pool.set_fault_plan(Some(all_die.clone()));
        let got = pool.verify(&ds, Engine::Vf2, &qp, &q, &all);
        assert_eq!(got, expect, "all chunks lost, all recovered inline");
        assert!(all_die.fired() > 0, "the injection actually fired");

        // One task panics: the one lost chunk is redone, the rest arrive
        // from the workers.
        let one_dies = Arc::new(FaultPlan::seeded(2));
        one_dies.arm(FaultSite::Task, Failpoint::PanicAt { n: 0 });
        pool.set_fault_plan(Some(one_dies));
        let got = pool.verify(&ds, Engine::Vf2, &qp, &q, &all);
        assert_eq!(got, expect, "one lost chunk recovered inline");

        // Plan removed: back to the pure pool path.
        pool.set_fault_plan(None);
        let got = pool.verify(&ds, Engine::Vf2, &qp, &q, &all);
        assert_eq!(got, expect);
    }

    #[test]
    fn dropping_pool_joins_workers() {
        let pool = VerifyPool::new(4);
        assert_eq!(pool.size(), 4);
        drop(pool); // must not hang
    }

    #[test]
    fn concurrent_producers_share_the_pool() {
        let ds = dataset();
        let pool = VerifyPool::new(2);
        let q = g(&[0, 1], &[(0, 1)]);
        let qp = QueryProfile::new(&ds, &q, QueryKind::Subgraph);
        let all = ds.all_graphs();
        let expect = verify_candidates(&ds, Engine::Vf2, &qp, &q, &all, 1);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (pool, ds, q, qp, all, expect) = (&pool, &ds, &q, &qp, &all, &expect);
                scope.spawn(move || {
                    for _ in 0..20 {
                        let got = pool.verify(ds, Engine::Vf2, qp, q, all);
                        assert_eq!(&got, expect);
                    }
                });
            }
        });
    }

    #[test]
    fn global_pool_is_shared_and_works() {
        let ds = dataset();
        let q = g(&[0, 1], &[(0, 1)]);
        let qp = QueryProfile::new(&ds, &q, QueryKind::Subgraph);
        let all = ds.all_graphs();
        let p1 = global_pool() as *const VerifyPool;
        let p2 = global_pool() as *const VerifyPool;
        assert_eq!(p1, p2, "global pool must be a singleton");
        let got = global_pool().verify(&ds, Engine::Vf2, &qp, &q, &all);
        assert_eq!(got.survivors.to_vec(), vec![0, 1, 3, 4]);
    }
}
