//! Stage 4 — **Verify**: exact sub-iso testing of the reduced candidate set
//! `C` (Fig. 3(g)).
//!
//! The expensive stage. Builds the query's [`QueryProfile`] **once**, then
//! dispatches to a [`VerifyPool`] when the candidate set is big enough to
//! amortize the hand-off (the sequential runtime uses its per-instance pool;
//! [`crate::SharedGraphCache`] passes the process-wide
//! [`crate::parallel::global_pool`], batching verification work from all
//! concurrent queries onto one CPU-sized worker set), and runs inline
//! otherwise. Either way each worker reuses a thread-local
//! [`gc_method::VfScratch`], so the per-candidate loop is allocation-free.
//! Also feeds the observed per-graph verification costs into the
//! [`CostModel`] that PINC/HD rank by.

use crate::config::CacheConfig;
use crate::cost::CostModel;
use crate::parallel::{self, VerifyPool};
use crate::pipeline::PipelineCtx;
use gc_method::{Dataset, QueryProfile};
use std::sync::Arc;

/// Run verification for the reduced set in `ctx`, storing survivors `R`,
/// the verifier step count, and the per-graph step counts.
///
/// `pool`: worker pool to consider; the stage still runs inline when the
/// candidate count is below `cfg.parallel_threshold` (channel round-trips
/// would outweigh the work).
pub fn run(
    ctx: &mut PipelineCtx<'_>,
    dataset: &Arc<Dataset>,
    cfg: &CacheConfig,
    pool: Option<&VerifyPool>,
) {
    if ctx.pruned.to_verify.is_empty() {
        // Fully answered by hits/pruning (the cache's best case): skip the
        // per-query profile construction entirely.
        return;
    }
    let profile = QueryProfile::new(dataset, ctx.query, ctx.kind);
    let use_pool = pool.filter(|_| ctx.pruned.to_verify.count() >= cfg.parallel_threshold);
    let outcome = match use_pool {
        Some(pool) => pool.verify(dataset, cfg.engine, &profile, ctx.query, &ctx.pruned.to_verify),
        None => parallel::verify_candidates(
            dataset,
            cfg.engine,
            &profile,
            ctx.query,
            &ctx.pruned.to_verify,
            1,
        ),
    };
    ctx.survivors = outcome.survivors;
    ctx.verify_steps = outcome.steps;
    ctx.verify_costs = outcome.costs;
}

/// Feed the cost model with this query's observations: each verified graph
/// is charged its **own** measured step count (the scratch-based verifiers
/// report per-graph costs; the former mean-based accounting truncated
/// `steps / verified` to 0 for cheap queries, starving PINC/HD of signal).
pub fn observe_costs(ctx: &PipelineCtx<'_>, cost: &CostModel) {
    for &(gid, steps) in &ctx.verify_costs {
        cost.observe(gid, steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::prune::Pruned;
    use gc_graph::{graph_from_parts, BitSet, Label};
    use gc_method::QueryKind;

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> gc_graph::Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    fn dataset() -> Arc<Dataset> {
        Arc::new(Dataset::new(vec![
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]),
            g(&[3, 3], &[(0, 1)]),
            g(&[0, 1], &[(0, 1)]),
        ]))
    }

    #[test]
    fn inline_and_pooled_agree() {
        let ds = dataset();
        let q = g(&[0, 1], &[(0, 1)]);
        let cfg = CacheConfig { parallel_threshold: 0, ..CacheConfig::default() };
        let pool = VerifyPool::new(2);

        let mut inline_ctx = PipelineCtx::new(&q, QueryKind::Subgraph, 1, ds.len());
        inline_ctx.pruned = Pruned {
            to_verify: ds.all_graphs(),
            definite: BitSet::new(ds.len()),
            cm_size: ds.len(),
            saved: 0,
        };
        let mut pooled_ctx = PipelineCtx::new(&q, QueryKind::Subgraph, 1, ds.len());
        pooled_ctx.pruned = inline_ctx.pruned.clone();

        run(&mut inline_ctx, &ds, &cfg, None);
        run(&mut pooled_ctx, &ds, &cfg, Some(&pool));
        assert_eq!(inline_ctx.survivors, pooled_ctx.survivors);
        assert_eq!(inline_ctx.verify_steps, pooled_ctx.verify_steps);
        assert_eq!(inline_ctx.verify_costs, pooled_ctx.verify_costs);
        assert_eq!(inline_ctx.survivors.to_vec(), vec![0, 1, 3]);
    }

    #[test]
    fn costs_observed_per_graph() {
        let ds = dataset();
        let q = g(&[0, 1], &[(0, 1)]);
        let cfg = CacheConfig::default();
        let mut ctx = PipelineCtx::new(&q, QueryKind::Subgraph, 1, ds.len());
        ctx.pruned = Pruned {
            to_verify: BitSet::from_indices(ds.len(), [0usize, 1]),
            definite: BitSet::new(ds.len()),
            cm_size: 2,
            saved: 0,
        };
        run(&mut ctx, &ds, &cfg, None);
        assert!(ctx.verify_steps > 0);
        assert_eq!(ctx.verify_costs.len(), 2);
        let cost = CostModel::new(&ds);
        let before = cost.estimate(0);
        observe_costs(&ctx, &cost);
        // Each verified graph's estimate moved to its own observed steps —
        // no mean-smearing across the batch.
        assert_ne!(cost.estimate(0), before);
        for &(gid, steps) in &ctx.verify_costs {
            assert!(
                (cost.estimate(gid) - steps as f64).abs() < 1e-9,
                "estimate for graph {gid} should equal its observed steps"
            );
        }
    }

    #[test]
    fn cheap_queries_still_produce_cost_signal() {
        // Regression for the integer-division truncation bug: a query whose
        // total steps are fewer than the candidate count must still observe
        // non-zero costs for the graphs that did cost something.
        let ds = dataset();
        let q = g(&[3], &[]); // single vertex: trivially cheap tests
        let cfg = CacheConfig::default();
        let mut ctx = PipelineCtx::new(&q, QueryKind::Subgraph, 1, ds.len());
        ctx.pruned = Pruned {
            to_verify: ds.all_graphs(),
            definite: BitSet::new(ds.len()),
            cm_size: ds.len(),
            saved: 0,
        };
        run(&mut ctx, &ds, &cfg, None);
        let cost = CostModel::new(&ds);
        observe_costs(&ctx, &cost);
        // Graph 2 ([3,3]) matches label 3 and costs at least one step.
        let observed_g2 = ctx.verify_costs.iter().find(|&&(gid, _)| gid == 2).unwrap().1;
        assert!(observed_g2 > 0);
        assert!((cost.estimate(2) - observed_g2 as f64).abs() < 1e-9);
    }
}
