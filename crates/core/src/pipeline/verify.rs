//! Stage 4 — **Verify**: exact sub-iso testing of the reduced candidate set
//! `C` (Fig. 3(g)).
//!
//! The expensive stage. Dispatches to a [`VerifyPool`] when the candidate
//! set is big enough to amortize the hand-off (the sequential runtime uses
//! its per-instance pool; [`crate::SharedGraphCache`] passes the
//! process-wide [`crate::parallel::global_pool`], batching verification work
//! from all concurrent queries onto one CPU-sized worker set), and runs
//! inline otherwise. Also feeds the observed per-graph verification costs
//! into the [`CostModel`] that PINC/HD rank by.

use crate::config::CacheConfig;
use crate::cost::CostModel;
use crate::parallel::{self, VerifyPool};
use crate::pipeline::PipelineCtx;
use gc_method::Dataset;
use std::sync::Arc;

/// Run verification for the reduced set in `ctx`, storing survivors `R` and
/// the verifier step count.
///
/// `pool`: worker pool to consider; the stage still runs inline when the
/// candidate count is below `cfg.parallel_threshold` (channel round-trips
/// would outweigh the work).
pub fn run(
    ctx: &mut PipelineCtx<'_>,
    dataset: &Arc<Dataset>,
    cfg: &CacheConfig,
    pool: Option<&VerifyPool>,
) {
    let use_pool = pool.filter(|_| ctx.pruned.to_verify.count() >= cfg.parallel_threshold);
    let (survivors, verify_steps) = match use_pool {
        Some(pool) => pool.verify(dataset, cfg.engine, ctx.query, ctx.kind, &ctx.pruned.to_verify),
        None => parallel::verify_candidates(
            dataset,
            cfg.engine,
            ctx.query,
            ctx.kind,
            &ctx.pruned.to_verify,
            1,
        ),
    };
    ctx.survivors = survivors;
    ctx.verify_steps = verify_steps;
}

/// Feed the cost model with this query's observations: each verified graph
/// is charged the query's mean per-test step count (individual per-graph
/// timings are not available from the batched verifiers).
pub fn observe_costs(ctx: &PipelineCtx<'_>, cost: &CostModel) {
    let verified = ctx.pruned.to_verify.count() as u64;
    if verified == 0 {
        return;
    }
    let per_test = ctx.verify_steps / verified;
    for gid in ctx.pruned.to_verify.iter() {
        cost.observe(gid, per_test);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::prune::Pruned;
    use gc_graph::{graph_from_parts, BitSet, Label};
    use gc_method::QueryKind;

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> gc_graph::Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    fn dataset() -> Arc<Dataset> {
        Arc::new(Dataset::new(vec![
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]),
            g(&[3, 3], &[(0, 1)]),
            g(&[0, 1], &[(0, 1)]),
        ]))
    }

    #[test]
    fn inline_and_pooled_agree() {
        let ds = dataset();
        let q = g(&[0, 1], &[(0, 1)]);
        let cfg = CacheConfig { parallel_threshold: 0, ..CacheConfig::default() };
        let pool = VerifyPool::new(2);

        let mut inline_ctx = PipelineCtx::new(&q, QueryKind::Subgraph, 1, ds.len());
        inline_ctx.pruned = Pruned {
            to_verify: ds.all_graphs(),
            definite: BitSet::new(ds.len()),
            cm_size: ds.len(),
            saved: 0,
        };
        let mut pooled_ctx = PipelineCtx::new(&q, QueryKind::Subgraph, 1, ds.len());
        pooled_ctx.pruned = inline_ctx.pruned.clone();

        run(&mut inline_ctx, &ds, &cfg, None);
        run(&mut pooled_ctx, &ds, &cfg, Some(&pool));
        assert_eq!(inline_ctx.survivors, pooled_ctx.survivors);
        assert_eq!(inline_ctx.verify_steps, pooled_ctx.verify_steps);
        assert_eq!(inline_ctx.survivors.to_vec(), vec![0, 1, 3]);
    }

    #[test]
    fn costs_observed_for_verified_graphs() {
        let ds = dataset();
        let q = g(&[0, 1], &[(0, 1)]);
        let cfg = CacheConfig::default();
        let mut ctx = PipelineCtx::new(&q, QueryKind::Subgraph, 1, ds.len());
        ctx.pruned = Pruned {
            to_verify: BitSet::from_indices(ds.len(), [0usize, 1]),
            definite: BitSet::new(ds.len()),
            cm_size: 2,
            saved: 0,
        };
        run(&mut ctx, &ds, &cfg, None);
        assert!(ctx.verify_steps > 0);
        let cost = CostModel::new(&ds);
        let before = cost.estimate(0);
        observe_costs(&ctx, &cost);
        // Estimates for the verified graphs moved to the observed mean.
        assert_ne!(cost.estimate(0), before);
        assert!((cost.estimate(0) - cost.estimate(1)).abs() < 1e-9);
    }
}
