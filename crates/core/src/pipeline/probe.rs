//! Stage 2 — **Probe**: the Sub/Super Case Processors (Fig. 3(a), 3(e)).
//!
//! Detects cache hits for a new query. Terminology (fixed by the demo's
//! Fig. 3, stated for *subgraph* queries):
//!
//! * **sub case** — the new query `g` is a subgraph of a cached query `h`
//!   (`g ⊑ h`, [`Relation::QueryInCached`]);
//! * **super case** — a cached query `h` is a subgraph of `g` (`h ⊑ g`,
//!   [`Relation::CachedInQuery`]).
//!
//! Which relation yields definite answers and which yields pruning depends
//! on the query kind; that mapping lives in [`crate::pipeline::prune`]. This
//! stage only *finds and verifies* the relationships, under budgets so that
//! cache probing can never dominate query time.
//!
//! The stage snapshots (clones) each hit's answer set while the cache is
//! borrowed, so everything downstream of probing works on owned data — this
//! is what lets [`crate::SharedGraphCache`] drop its shard read locks before
//! the (expensive) verify stage runs.

use crate::cache::CacheManager;
use crate::config::CacheConfig;
use crate::entry::EntryId;
use crate::pipeline::PipelineCtx;
use gc_graph::{BitSet, Graph};
use gc_index::CandScratch;
use gc_iso::{Found, GraphProfile, ProfileRef, VerifyCtx, VfScratch};
use gc_method::QueryKind;

/// Reusable probe-stage state: the containment-index probe buffers, the
/// filtered + utility-ordered candidate lists, and the verifier scratch for
/// the budgeted confirmation tests. Lives in [`PipelineCtx::probe_scratch`]
/// but is *owned* by the runtime (the sequential cache keeps one, the
/// concurrent front-end one per thread) and swapped into each query's
/// context, so the steady-state candidate-selection path allocates nothing
/// (pinned by `tests/probe_alloc.rs`).
#[derive(Debug, Default)]
pub struct ProbeScratch {
    /// Sub/super containment probe state (shared with `gc_index`).
    cand: CandScratch,
    /// Kind-filtered, utility-sorted sub-case candidates.
    sub_ids: Vec<EntryId>,
    /// Kind-filtered, utility-sorted super-case candidates.
    super_ids: Vec<EntryId>,
    /// Verifier search state reused across all confirmation tests.
    vf: VfScratch,
}

impl ProbeScratch {
    /// Fresh scratch (buffers grow to their high-water mark on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Structural relation of a verified hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `query ⊑ cached` — the demo's *sub case* (`H` in Fig. 3).
    QueryInCached,
    /// `cached ⊑ query` — the demo's *super case* (`H'` in Fig. 3).
    CachedInQuery,
}

/// One verified cache hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// The cached entry.
    pub entry: EntryId,
    /// How it relates to the new query.
    pub relation: Relation,
}

/// All hits found for one query, plus probing costs.
#[derive(Debug, Clone, Default)]
pub struct CacheHits {
    /// Exact-match entry, if any.
    pub exact: Option<EntryId>,
    /// Verified sub-case hits (`query ⊑ cached`).
    pub sub: Vec<EntryId>,
    /// Verified super-case hits (`cached ⊑ query`).
    pub super_: Vec<EntryId>,
    /// Sub-iso tests spent probing (cache overhead, counted into the
    /// speedup denominator).
    pub probe_tests: u64,
    /// Verifier steps spent probing.
    pub probe_steps: u64,
}

impl CacheHits {
    /// All non-exact hits with their relations (subs first, then supers).
    pub fn iter(&self) -> impl Iterator<Item = Hit> + '_ {
        self.sub
            .iter()
            .map(|&e| Hit { entry: e, relation: Relation::QueryInCached })
            .chain(self.super_.iter().map(|&e| Hit { entry: e, relation: Relation::CachedInQuery }))
    }

    /// Total number of verified (non-exact) hits.
    pub fn count(&self) -> usize {
        self.sub.len() + self.super_.len()
    }

    /// Absorb another probe result (used by the sharded front-end to merge
    /// per-shard hits; entry-id namespaces are the caller's concern).
    pub fn merge(&mut self, other: CacheHits) {
        self.exact = self.exact.or(other.exact);
        self.sub.extend(other.sub);
        self.super_.extend(other.super_);
        self.probe_tests += other.probe_tests;
        self.probe_steps += other.probe_steps;
    }
}

/// Find the exact-match entry for `query`, if cached (same kind).
pub fn find_exact(cache: &CacheManager, query: &Graph, kind: QueryKind) -> Option<EntryId> {
    let fp = gc_graph::hash::fingerprint(query);
    cache.fingerprint_bucket(fp).iter().copied().find(|&id| {
        let e = cache.get(id).expect("bucket holds live entries");
        e.kind == kind && gc_iso::iso::are_isomorphic(&e.graph, query)
    })
}

/// Probe the cache for sub-case and super-case hits of `query`, exact-match
/// check included (the sequential entry point; kept for tests and
/// dashboards). Extracts the query features and builds the query profile
/// itself; pipeline callers use [`probe_cases`] with the context's shared
/// extraction and scratch.
pub fn probe(cache: &CacheManager, cfg: &CacheConfig, query: &Graph, kind: QueryKind) -> CacheHits {
    if let Some(exact) = find_exact(cache, query, kind) {
        return CacheHits { exact: Some(exact), ..CacheHits::default() };
    }
    let qf = cache.index().features_of(query);
    let q_profile = GraphProfile::new(query, None);
    let mut scratch = ProbeScratch::new();
    probe_cases(cache, cfg, query, kind, &qf, q_profile.as_ref(), &mut scratch)
}

/// Probe for sub/super-case hits only (no exact-match check).
///
/// Candidates come from the containment [`gc_index::QueryIndex`]; each is
/// confirmed with a budgeted sub-iso test. Verification order favours the
/// most *useful* entries first (largest answer sets for sub-case hits —
/// they yield more definite answers for subgraph queries; smallest answer
/// sets for super-case hits — they prune more), so the per-query check caps
/// (`max_sub_checks` / `max_super_checks`) spend their budget where it pays.
/// For supergraph queries the utility direction flips with the semantics;
/// ordering is adjusted accordingly.
///
/// The sharded front-end calls this per shard (exact hits can only live in
/// the query's fingerprint home shard, which is checked separately), passing
/// the **same** query feature vector `qf`, query profile and scratch to
/// every shard — features and the verification profile are computed once
/// per query, not once per shard. `qf` must come from
/// [`gc_index::QueryIndex::features_of`] under the cache's feature config;
/// `q_profile` from [`GraphProfile::new`] on the same query.
///
/// With a warm `scratch`, candidate selection and utility ordering perform
/// zero heap allocations (only verified hits append to the returned
/// [`CacheHits`]).
pub fn probe_cases(
    cache: &CacheManager,
    cfg: &CacheConfig,
    query: &Graph,
    kind: QueryKind,
    qf: &gc_index::FeatureVec,
    q_profile: ProfileRef<'_>,
    scratch: &mut ProbeScratch,
) -> CacheHits {
    let mut hits = CacheHits::default();

    // --- sub case: query ⊑ cached ---------------------------------------
    cache.index().sub_case_candidates_into(qf.as_features(), &mut scratch.cand);
    scratch.sub_ids.clear();
    scratch.sub_ids.extend(
        scratch
            .cand
            .candidates()
            .iter()
            .copied()
            .filter(|&id| cache.get(id).is_some_and(|e| e.kind == kind)),
    );
    // Utility ordering (see doc comment): for subgraph queries a sub-case
    // hit contributes `answer` as definite answers -> prefer large answers.
    // For supergraph queries it contributes pruning -> prefer small answers.
    match kind {
        QueryKind::Subgraph => scratch.sub_ids.sort_unstable_by_key(|&id| {
            std::cmp::Reverse(cache.get(id).map_or(0, |e| e.answer.count()))
        }),
        QueryKind::Supergraph => scratch
            .sub_ids
            .sort_unstable_by_key(|&id| cache.get(id).map_or(usize::MAX, |e| e.answer.count())),
    }
    for &id in scratch.sub_ids.iter().take(cfg.max_sub_checks) {
        let e = cache.get(id).expect("candidate ids are live");
        hits.probe_tests += 1;
        let ctx = VerifyCtx::new(query, q_profile, &e.graph, e.profile.as_ref());
        let (found, stats) = cfg.engine.verify_ctx(&ctx, Some(cfg.probe_budget), &mut scratch.vf);
        hits.probe_steps += stats.steps;
        if found == Found::Yes {
            hits.sub.push(id);
        }
    }

    // --- super case: cached ⊑ query --------------------------------------
    cache.index().super_case_candidates_into(qf.as_features(), &mut scratch.cand);
    scratch.super_ids.clear();
    scratch.super_ids.extend(
        scratch
            .cand
            .candidates()
            .iter()
            .copied()
            .filter(|&id| cache.get(id).is_some_and(|e| e.kind == kind)),
    );
    match kind {
        QueryKind::Subgraph => scratch
            .super_ids
            .sort_unstable_by_key(|&id| cache.get(id).map_or(usize::MAX, |e| e.answer.count())),
        QueryKind::Supergraph => scratch.super_ids.sort_unstable_by_key(|&id| {
            std::cmp::Reverse(cache.get(id).map_or(0, |e| e.answer.count()))
        }),
    }
    for &id in scratch.super_ids.iter().take(cfg.max_super_checks) {
        let e = cache.get(id).expect("candidate ids are live");
        hits.probe_tests += 1;
        // The entry is the pattern here; its admission-time profile carries
        // the search order.
        let ctx = VerifyCtx::new(&e.graph, e.profile.as_ref(), query, q_profile);
        let (found, stats) = cfg.engine.verify_ctx(&ctx, Some(cfg.probe_budget), &mut scratch.vf);
        hits.probe_steps += stats.steps;
        if found == Found::Yes {
            hits.super_.push(id);
        }
    }
    hits
}

/// Snapshot the answer sets of `hits` (in [`CacheHits::iter`] order) while
/// the cache is still borrowed.
pub fn snapshot_answers(cache: &CacheManager, hits: &CacheHits) -> Vec<(Relation, BitSet)> {
    hits.iter()
        .map(|h| {
            let e = cache.get(h.entry).expect("hit ids are live under the borrow");
            (h.relation, e.answer.clone())
        })
        .collect()
}

/// Run the probe stage over a single (unsharded) cache manager: extract the
/// query's features **once** into the context (admission reuses them),
/// build the query profile once, find hits through the context's reusable
/// [`ProbeScratch`] and snapshot their answers into `ctx`.
pub fn run(ctx: &mut PipelineCtx<'_>, cache: &CacheManager, cfg: &CacheConfig) {
    debug_assert_eq!(
        cache.index().config(),
        &cfg.feature_config,
        "cache index and config must agree on feature extraction"
    );
    if ctx.features.is_none() {
        ctx.features = Some(cache.index().features_of(ctx.query));
    }
    let q_profile = GraphProfile::new(ctx.query, None);
    let PipelineCtx { query, kind, features, probe_scratch, .. } = ctx;
    let qf = features.as_ref().expect("just set");
    let hits = probe_cases(cache, cfg, query, *kind, qf, q_profile.as_ref(), probe_scratch);
    ctx.hit_answers = snapshot_answers(cache, &hits);
    ctx.hits = hits;
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, BitSet, Label};
    use gc_index::FeatureConfig;

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    fn cache_with(entries: &[(Graph, QueryKind)]) -> CacheManager {
        let mut cm = CacheManager::new(FeatureConfig::with_max_len(2));
        for (graph, kind) in entries {
            cm.insert(graph.clone(), *kind, BitSet::new(8), 8, 100, 0);
        }
        cm
    }

    #[test]
    fn exact_match_found_and_kind_respected() {
        let q = g(&[0, 1], &[(0, 1)]);
        let cm = cache_with(&[(q.clone(), QueryKind::Subgraph)]);
        assert!(find_exact(&cm, &q, QueryKind::Subgraph).is_some());
        assert!(find_exact(&cm, &q, QueryKind::Supergraph).is_none());
        // A permuted isomorphic presentation still matches.
        let q2 = g(&[1, 0], &[(0, 1)]);
        assert!(find_exact(&cm, &q2, QueryKind::Subgraph).is_some());
    }

    #[test]
    fn probe_finds_both_cases() {
        // cached: edge 0-1 (will be h ⊑ g) and 4-cycle containing the path
        // (will be g ⊑ h).
        let edge = g(&[0, 1], &[(0, 1)]);
        let square = g(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let cm = cache_with(&[(edge, QueryKind::Subgraph), (square, QueryKind::Subgraph)]);
        let q = g(&[0, 1, 0], &[(0, 1), (1, 2)]); // path 0-1-0
        let hits = probe(&cm, &CacheConfig::default(), &q, QueryKind::Subgraph);
        assert!(hits.exact.is_none());
        assert_eq!(hits.sub, vec![1], "q is inside the square");
        assert_eq!(hits.super_, vec![0], "edge is inside q");
        assert!(hits.probe_tests >= 2);
        assert_eq!(hits.count(), 2);
    }

    #[test]
    fn exact_hit_short_circuits_probing() {
        let q = g(&[0, 1], &[(0, 1)]);
        let cm = cache_with(&[(q.clone(), QueryKind::Subgraph)]);
        let hits = probe(&cm, &CacheConfig::default(), &q, QueryKind::Subgraph);
        assert!(hits.exact.is_some());
        assert_eq!(hits.probe_tests, 0);
        assert!(hits.sub.is_empty() && hits.super_.is_empty());
    }

    #[test]
    fn kind_mismatch_is_not_a_hit() {
        let edge = g(&[0, 1], &[(0, 1)]);
        let cm = cache_with(&[(edge, QueryKind::Supergraph)]);
        let q = g(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let hits = probe(&cm, &CacheConfig::default(), &q, QueryKind::Subgraph);
        assert_eq!(hits.count(), 0);
    }

    #[test]
    fn check_caps_limit_probing() {
        let mut entries = Vec::new();
        for _ in 0..10 {
            entries.push((g(&[0, 1], &[(0, 1)]), QueryKind::Subgraph));
        }
        // 10 identical cached edges; cap super checks at 3.
        let cm = {
            let mut cm = CacheManager::new(FeatureConfig::with_max_len(2));
            for (graph, kind) in &entries {
                cm.insert(graph.clone(), *kind, BitSet::new(8), 8, 100, 0);
            }
            cm
        };
        let q = g(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let cfg = CacheConfig { max_super_checks: 3, max_sub_checks: 2, ..CacheConfig::default() };
        let hits = probe(&cm, &cfg, &q, QueryKind::Subgraph);
        assert!(hits.super_.len() <= 3);
        assert!(hits.probe_tests <= 5);
    }

    #[test]
    fn snapshots_align_with_iter_order() {
        let edge = g(&[0, 1], &[(0, 1)]);
        let square = g(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut cm = CacheManager::new(FeatureConfig::with_max_len(2));
        cm.insert(edge, QueryKind::Subgraph, BitSet::from_indices(8, [1usize]), 8, 100, 0);
        cm.insert(square, QueryKind::Subgraph, BitSet::from_indices(8, [2usize]), 8, 100, 0);
        let q = g(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let hits = probe(&cm, &CacheConfig::default(), &q, QueryKind::Subgraph);
        let snaps = snapshot_answers(&cm, &hits);
        assert_eq!(snaps.len(), hits.count());
        for (hit, (rel, answer)) in hits.iter().zip(&snaps) {
            assert_eq!(hit.relation, *rel);
            assert_eq!(&cm.get(hit.entry).unwrap().answer, answer);
        }
    }

    #[test]
    fn merge_combines_shard_results() {
        let mut a = CacheHits {
            sub: vec![1],
            super_: vec![2],
            probe_tests: 3,
            probe_steps: 10,
            ..CacheHits::default()
        };
        let b = CacheHits {
            sub: vec![7],
            super_: vec![],
            probe_tests: 1,
            probe_steps: 5,
            ..CacheHits::default()
        };
        a.merge(b);
        assert_eq!(a.sub, vec![1, 7]);
        assert_eq!(a.super_, vec![2]);
        assert_eq!(a.probe_tests, 4);
        assert_eq!(a.probe_steps, 15);
        assert_eq!(a.count(), 3);
    }
}
