//! Stage 3 — **Prune**: turn cache hits into savings (Fig. 3(c), 3(d),
//! 3(f)).
//!
//! Implements the demo's Fig. 3 pipeline as bitset algebra. For a query `g`
//! of kind `k` with Method-M candidate set `C_M` and verified hits:
//!
//! * hits whose cached answer is a **subset** of `A(g)` contribute definite
//!   answers `S` (skip verification, Fig. 3(c));
//! * hits whose cached answer is a **superset** of `A(g)` restrict the
//!   candidate set (their complements are the definite non-answers `S'`,
//!   Fig. 3(d));
//! * the reduced verification set is `C = (C_M ∩ ⋂ supersets) \ S`
//!   (Fig. 3(f)).
//!
//! The relation → role mapping depends on the query kind:
//!
//! | relation                  | subgraph query        | supergraph query      |
//! |---------------------------|-----------------------|-----------------------|
//! | `query ⊑ cached` (sub)    | `A(h) ⊆ A(g)`: S      | `A(g) ⊆ A(h)`: prune  |
//! | `cached ⊑ query` (super)  | `A(g) ⊆ A(h)`: prune  | `A(h) ⊆ A(g)`: S      |
//!
//! This stage is pure bitset algebra over the answer snapshots the probe
//! stage collected — no cache access, no locks.

use crate::pipeline::probe::Relation;
use crate::pipeline::PipelineCtx;
use gc_graph::BitSet;
use gc_method::QueryKind;

/// Result of pruning `C_M` with cache hits.
#[derive(Debug, Clone)]
pub struct Pruned {
    /// `S` — definite answers (never verified).
    pub definite: BitSet,
    /// `C` — the reduced set that still needs verification.
    pub to_verify: BitSet,
    /// `|C_M|` for reporting.
    pub cm_size: usize,
    /// Number of candidates removed (`|C_M| − |C|`), the per-query savings
    /// in sub-iso tests.
    pub saved: usize,
}

impl Pruned {
    /// Identity pruning over an empty candidate set (ctx initial state).
    pub fn empty(universe: usize) -> Self {
        Pruned {
            definite: BitSet::new(universe),
            to_verify: BitSet::new(universe),
            cm_size: 0,
            saved: 0,
        }
    }
}

/// Does a hit of `rel` contribute definite answers (vs pruning) for queries
/// of `kind`? (The table in the module docs.)
pub fn gives_definite(kind: QueryKind, rel: Relation) -> bool {
    matches!(
        (kind, rel),
        (QueryKind::Subgraph, Relation::QueryInCached)
            | (QueryKind::Supergraph, Relation::CachedInQuery)
    )
}

/// Apply hit answers to the Method-M candidate set.
///
/// `hits` pairs each verified hit's relation with the cached answer bitset.
/// Takes any iterator so callers can feed their snapshots directly — the
/// pipeline's [`run`] streams `PipelineCtx::hit_answers` without building a
/// per-query reference vector.
pub fn prune<'a>(
    cm: &BitSet,
    hits: impl IntoIterator<Item = (Relation, &'a BitSet)>,
    kind: QueryKind,
) -> Pruned {
    let cm_size = cm.count();
    let mut definite = BitSet::new(cm.universe());
    let mut keep = cm.clone();

    for (rel, answer) in hits {
        if gives_definite(kind, rel) {
            definite.union_with(answer);
        } else {
            keep.intersect_with(answer);
        }
    }

    // Definite answers are answers regardless of C_M; but anything the
    // pruning hits exclude cannot be an answer, and S is always a subset of
    // the true answer set, which is a subset of every pruning superset —
    // so S ∩ keep == S whenever the cached answers are consistent.
    let mut to_verify = keep;
    to_verify.difference_with(&definite);
    let saved = cm_size - to_verify.count();
    Pruned { definite, to_verify, cm_size, saved }
}

/// Run the prune stage over the snapshots in `ctx` (streamed; no per-query
/// reference vector is materialized).
pub fn run(ctx: &mut PipelineCtx<'_>) {
    ctx.pruned =
        prune(&ctx.cm, ctx.hit_answers.iter().map(|(rel, answer)| (*rel, answer)), ctx.kind);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(universe: usize, idx: &[usize]) -> BitSet {
        BitSet::from_indices(universe, idx.iter().copied())
    }

    #[test]
    fn subgraph_query_sub_case_gives_definite() {
        let cm = bs(10, &[0, 1, 2, 3, 4]);
        let cached_answer = bs(10, &[2, 3]);
        let p = prune(&cm, [(Relation::QueryInCached, &cached_answer)], QueryKind::Subgraph);
        assert_eq!(p.definite.to_vec(), vec![2, 3]);
        assert_eq!(p.to_verify.to_vec(), vec![0, 1, 4]);
        assert_eq!(p.cm_size, 5);
        assert_eq!(p.saved, 2);
    }

    #[test]
    fn subgraph_query_super_case_prunes() {
        let cm = bs(10, &[0, 1, 2, 3, 4]);
        let cached_answer = bs(10, &[1, 2, 7]);
        let p = prune(&cm, [(Relation::CachedInQuery, &cached_answer)], QueryKind::Subgraph);
        assert!(p.definite.is_empty());
        assert_eq!(p.to_verify.to_vec(), vec![1, 2]);
        assert_eq!(p.saved, 3);
    }

    #[test]
    fn combined_hits_match_fig3_pipeline() {
        // Mimic the Query Journey: C_M of 5, one sub hit delivering {4},
        // one super hit keeping {0, 1, 4}.
        let cm = bs(8, &[0, 1, 2, 3, 4]);
        let sub_answer = bs(8, &[4]);
        let super_answer = bs(8, &[0, 1, 4, 6]);
        let p = prune(
            &cm,
            [(Relation::QueryInCached, &sub_answer), (Relation::CachedInQuery, &super_answer)],
            QueryKind::Subgraph,
        );
        assert_eq!(p.definite.to_vec(), vec![4]);
        assert_eq!(p.to_verify.to_vec(), vec![0, 1]);
        assert_eq!(p.saved, 3);
    }

    #[test]
    fn supergraph_query_roles_flip() {
        let cm = bs(10, &[0, 1, 2, 3]);
        let ans = bs(10, &[1, 2]);
        // cached ⊑ query gives definite answers for supergraph queries.
        let p = prune(&cm, [(Relation::CachedInQuery, &ans)], QueryKind::Supergraph);
        assert_eq!(p.definite.to_vec(), vec![1, 2]);
        // query ⊑ cached prunes.
        let p2 = prune(&cm, [(Relation::QueryInCached, &ans)], QueryKind::Supergraph);
        assert!(p2.definite.is_empty());
        assert_eq!(p2.to_verify.to_vec(), vec![1, 2]);
    }

    #[test]
    fn no_hits_is_identity() {
        let cm = bs(6, &[0, 3, 5]);
        let p = prune(&cm, [], QueryKind::Subgraph);
        assert_eq!(p.to_verify, cm);
        assert!(p.definite.is_empty());
        assert_eq!(p.saved, 0);
    }

    #[test]
    fn multiple_pruning_hits_intersect() {
        let cm = bs(10, &[0, 1, 2, 3, 4, 5]);
        let a1 = bs(10, &[0, 1, 2, 3]);
        let a2 = bs(10, &[2, 3, 4]);
        let p = prune(
            &cm,
            [(Relation::CachedInQuery, &a1), (Relation::CachedInQuery, &a2)],
            QueryKind::Subgraph,
        );
        assert_eq!(p.to_verify.to_vec(), vec![2, 3]);
        assert_eq!(p.saved, 4);
    }

    #[test]
    fn multiple_definite_hits_union() {
        let cm = bs(10, &[0, 1, 2, 3, 4, 5]);
        let a1 = bs(10, &[0]);
        let a2 = bs(10, &[4, 5]);
        let p = prune(
            &cm,
            [(Relation::QueryInCached, &a1), (Relation::QueryInCached, &a2)],
            QueryKind::Subgraph,
        );
        assert_eq!(p.definite.to_vec(), vec![0, 4, 5]);
        assert_eq!(p.to_verify.to_vec(), vec![1, 2, 3]);
    }
}
