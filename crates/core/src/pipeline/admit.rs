//! Stage 5 — **Admit**: hit crediting, admission and the batched
//! replacement sweep (Statistics Manager + Window Manager).
//!
//! The only stage that *mutates* cache state, so it is where the sharded
//! front-end takes its short write sections. Everything here operates on an
//! explicit `(CacheManager, ReplacementPolicy, WindowManager)` triple rather
//! than on `GraphCache` fields: the sequential runtime passes its own, the
//! sharded front-end passes one shard's, under that shard's write lock.
//!
//! Unlike the pre-pipeline runtime, crediting tolerates hit entries that
//! died between probing and crediting (a concurrent eviction): the credit is
//! simply dropped. Sequentially this cannot happen; concurrently it is the
//! correct degradation (the hit's *answers* were already snapshotted, so
//! correctness is unaffected — only a utility update is lost).

use crate::cache::CacheManager;
use crate::config::CacheConfig;
use crate::cost::CostModel;
use crate::entry::EntryId;
use crate::pipeline::probe::{CacheHits, Relation};
use crate::pipeline::prune::gives_definite;
use crate::policy::{HitCredit, HitKind, ReplacementPolicy};
use crate::window::WindowManager;
use gc_graph::{BitSet, Graph};
use gc_method::QueryKind;

/// Capacity limits for one admission target (whole cache, or one shard).
#[derive(Debug, Clone, Copy)]
pub struct AdmitLimits {
    /// Maximum entries.
    pub capacity: usize,
    /// Optional byte budget (entries + index).
    pub max_bytes: Option<usize>,
}

impl AdmitLimits {
    /// Limits of an unsharded cache, straight from its config.
    pub fn from_config(cfg: &CacheConfig) -> Self {
        AdmitLimits { capacity: cfg.capacity, max_bytes: cfg.max_bytes }
    }
}

/// Outcome of the admit stage.
#[derive(Debug, Clone, Default)]
pub struct AdmitOutcome {
    /// Entry admitted for this query, if any.
    pub admitted: Option<EntryId>,
    /// Entries evicted by this query's replacement sweep.
    pub evicted: Vec<EntryId>,
    /// `true` when the admission filter rejected the query.
    pub rejected: bool,
}

/// Attribute per-hit savings to entries (paper: "each cache hit shall evoke
/// various numbers of savings in sub-iso testing").
///
/// `answers[i]` must be the answer snapshot of `hits.iter()`'s `i`-th hit
/// (the probe stage guarantees this alignment). Entries that no longer
/// exist are skipped, see module docs.
#[allow(clippy::too_many_arguments)] // explicit state triple + query facts; a struct would just rename them
pub fn credit_hits(
    cache: &mut CacheManager,
    policy: &mut dyn ReplacementPolicy,
    cost: &CostModel,
    cm: &BitSet,
    kind: QueryKind,
    now: u64,
    hits: &CacheHits,
    answers: &[(Relation, BitSet)],
) {
    debug_assert_eq!(answers.len(), hits.count(), "answers must align with hits");
    for (h, (rel, answer)) in hits.iter().zip(answers) {
        debug_assert_eq!(h.relation, *rel);
        // Tests this hit alone would have saved, and their estimated cost —
        // cardinality via the dispatched popcount kernels and the cost sum
        // over the lazy pair iterators; no temporary bitset is cloned.
        let (tests_saved, cost_saved) = if gives_definite(kind, h.relation) {
            (answer.intersect_count(cm) as u64, cost.sum_over_ids(answer.intersection_ones(cm)))
        } else {
            (cm.difference_count(answer) as u64, cost.sum_over_ids(cm.difference_ones(answer)))
        };
        let hit_kind = match h.relation {
            Relation::QueryInCached => HitKind::QueryInCached,
            Relation::CachedInQuery => HitKind::CachedInQuery,
        };
        let credit = HitCredit { kind: hit_kind, tests_saved, cost_saved };
        let Some(e) = cache.get_mut(h.entry) else {
            continue; // concurrently evicted: drop the credit
        };
        e.stats.last_used = now;
        e.stats.tests_saved += credit.tests_saved;
        e.stats.cost_saved += credit.cost_saved;
        match credit.kind {
            HitKind::Exact => e.stats.exact_hits += 1,
            HitKind::QueryInCached => e.stats.sub_hits += 1,
            HitKind::CachedInQuery => e.stats.super_hits += 1,
        }
        policy.on_hit(h.entry, &credit, now);
    }
}

/// Serve an exact-match hit: bump the entry's statistics, credit the policy,
/// and return `(answer, base_tests, base_cost)`.
///
/// Returns `None` if the entry no longer exists (concurrent eviction
/// between lookup and service) — the caller falls back to the full
/// pipeline.
pub fn serve_exact(
    cache: &mut CacheManager,
    policy: &mut dyn ReplacementPolicy,
    id: EntryId,
    now: u64,
) -> Option<(BitSet, u64, u64)> {
    let e = cache.get_mut(id)?;
    e.stats.exact_hits += 1;
    e.stats.last_used = now;
    e.stats.tests_saved += e.base_tests;
    e.stats.cost_saved += e.base_cost as f64;
    let (answer, base_tests, base_cost) = (e.answer.clone(), e.base_tests, e.base_cost);
    policy.on_hit(
        id,
        &HitCredit { kind: HitKind::Exact, tests_saved: base_tests, cost_saved: base_cost as f64 },
        now,
    );
    Some((answer, base_tests, base_cost))
}

/// Admit the executed query immediately; run the batched replacement sweep
/// when the admission window closes.
///
/// `features` is the query's feature vector the probe stage already
/// extracted (`PipelineCtx::features`, taken by the caller) — admission
/// reuses it instead of re-enumerating the query's paths, so features are
/// extracted exactly once per query. `None` falls back to extraction (warm
/// starts, tests).
#[allow(clippy::too_many_arguments)] // explicit state triple + query facts; a struct would just rename them
pub fn run(
    cache: &mut CacheManager,
    policy: &mut dyn ReplacementPolicy,
    window: &mut WindowManager,
    cfg: &CacheConfig,
    limits: AdmitLimits,
    query: &Graph,
    kind: QueryKind,
    features: Option<gc_index::FeatureVec>,
    answer: &BitSet,
    base_tests: u64,
    base_cost: u64,
    now: u64,
) -> AdmitOutcome {
    if (base_tests as usize) < cfg.min_admit_tests {
        return AdmitOutcome { rejected: true, ..AdmitOutcome::default() };
    }
    let id = match features {
        Some(fv) => cache.insert_with_features(
            query.clone(),
            kind,
            answer.clone(),
            base_tests,
            base_cost,
            now,
            fv,
        ),
        None => cache.insert(query.clone(), kind, answer.clone(), base_tests, base_cost, now),
    };
    let bytes = cache.get(id).expect("just inserted").memory_bytes();
    policy.on_insert_sized(id, now, bytes);
    let mut evicted = Vec::new();
    if window.on_admit() {
        let excess = cache.len().saturating_sub(limits.capacity);
        if excess > 0 {
            for victim in policy.victims(excess) {
                if cache.remove(victim).is_some() {
                    policy.on_evict(victim);
                    evicted.push(victim);
                }
            }
        }
        // Byte budget: keep evicting least-useful entries until the
        // footprint fits (never evicting the just-admitted entry's whole
        // cache away: stop at one entry).
        if let Some(max_bytes) = limits.max_bytes {
            while cache.len() > 1 && cache.memory_bytes() > max_bytes {
                let Some(victim) = policy.victims(1).first().copied() else { break };
                if cache.remove(victim).is_some() {
                    policy.on_evict(victim);
                    evicted.push(victim);
                } else {
                    break;
                }
            }
        }
    }
    AdmitOutcome { admitted: Some(id), evicted, rejected: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Policy, PolicyKind};
    use gc_graph::{graph_from_parts, Label};
    use gc_index::FeatureConfig;
    use gc_method::Dataset;

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    fn setup() -> (CacheManager, Policy, WindowManager, CacheConfig, CostModel) {
        let cache = CacheManager::new(FeatureConfig::default());
        let policy = Policy::new(PolicyKind::Lru);
        let window = WindowManager::new(1);
        let cfg = CacheConfig { capacity: 2, window_size: 1, ..CacheConfig::default() };
        let ds = Dataset::new(vec![g(&[0], &[]), g(&[1], &[])]);
        (cache, policy, window, cfg, CostModel::new(&ds))
    }

    fn admit_one(
        cache: &mut CacheManager,
        policy: &mut Policy,
        window: &mut WindowManager,
        cfg: &CacheConfig,
        labels: &[u32],
        now: u64,
    ) -> AdmitOutcome {
        run(
            cache,
            policy,
            window,
            cfg,
            AdmitLimits::from_config(cfg),
            &g(labels, &[]),
            QueryKind::Subgraph,
            None,
            &BitSet::new(2),
            5,
            10,
            now,
        )
    }

    #[test]
    fn admission_inserts_then_sweeps_at_capacity() {
        let (mut cache, mut policy, mut window, cfg, _) = setup();
        for now in 1..=2 {
            let out = admit_one(&mut cache, &mut policy, &mut window, &cfg, &[now as u32], now);
            assert!(out.admitted.is_some());
            assert!(out.evicted.is_empty());
        }
        // Third admission overflows capacity 2 -> LRU evicts the oldest.
        let out = admit_one(&mut cache, &mut policy, &mut window, &cfg, &[9], 3);
        assert!(out.admitted.is_some());
        assert_eq!(out.evicted.len(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn admission_filter_rejects_cheap_queries() {
        let (mut cache, mut policy, mut window, cfg, _) = setup();
        let cfg = CacheConfig { min_admit_tests: 100, ..cfg };
        let out = run(
            &mut cache,
            &mut policy,
            &mut window,
            &cfg,
            AdmitLimits::from_config(&cfg),
            &g(&[0], &[]),
            QueryKind::Subgraph,
            None,
            &BitSet::new(2),
            5,
            10,
            1,
        );
        assert!(out.rejected);
        assert!(out.admitted.is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn exact_service_updates_stats_and_tolerates_dead_entries() {
        let (mut cache, mut policy, _, _, _) = setup();
        let id = cache.insert(
            g(&[3], &[]),
            QueryKind::Subgraph,
            BitSet::from_indices(2, [1usize]),
            7,
            70,
            1,
        );
        policy.on_insert(id, 1);
        let (answer, base_tests, base_cost) =
            serve_exact(&mut cache, &mut policy, id, 5).expect("entry is live");
        assert_eq!(answer.to_vec(), vec![1]);
        assert_eq!((base_tests, base_cost), (7, 70));
        let e = cache.get(id).unwrap();
        assert_eq!(e.stats.exact_hits, 1);
        assert_eq!(e.stats.last_used, 5);
        assert_eq!(e.stats.tests_saved, 7);
        cache.remove(id);
        assert!(serve_exact(&mut cache, &mut policy, id, 6).is_none());
    }

    #[test]
    fn crediting_skips_dead_entries() {
        let (mut cache, mut policy, _, _, cost) = setup();
        let live = cache.insert(g(&[0], &[]), QueryKind::Subgraph, BitSet::new(2), 1, 1, 1);
        let dead = cache.insert(g(&[1], &[]), QueryKind::Subgraph, BitSet::new(2), 1, 1, 1);
        policy.on_insert(live, 1);
        policy.on_insert(dead, 1);
        cache.remove(dead);
        let hits = CacheHits { sub: vec![live, dead], ..CacheHits::default() };
        let answers = vec![
            (Relation::QueryInCached, BitSet::from_indices(2, [0usize])),
            (Relation::QueryInCached, BitSet::from_indices(2, [1usize])),
        ];
        let cm = BitSet::from_indices(2, [0usize, 1]);
        credit_hits(&mut cache, &mut policy, &cost, &cm, QueryKind::Subgraph, 9, &hits, &answers);
        let e = cache.get(live).unwrap();
        assert_eq!(e.stats.sub_hits, 1);
        assert_eq!(e.stats.last_used, 9);
        assert_eq!(e.stats.tests_saved, 1, "definite sub hit saves |answer ∩ cm|");
    }
}
