//! The staged query pipeline — the paper's kernel (Fig. 1/Fig. 3) as five
//! explicit stages:
//!
//! ```text
//!  query ──▶ filter ──▶ probe ──▶ prune ──▶ verify ──▶ admit ──▶ report
//!            (C_M)      (H,H')    (S,C)      (R)      (window)
//! ```
//!
//! * [`filter`] — Method M's candidate set `C_M` (lock-free);
//! * [`probe`] — Sub/Super Case Processors: find cache hits, snapshot their
//!   answers (read access to cache state);
//! * [`prune`] — bitset algebra turning hits into definite answers `S` and
//!   the reduced verification set `C` (pure);
//! * [`verify`] — exact sub-iso testing of `C`, inline or on a worker pool
//!   (lock-free);
//! * [`admit`] — hit crediting, admission, batched replacement (write
//!   access to cache state).
//!
//! A [`PipelineCtx`] carries one query through the stages, accumulating each
//! stage's product. The stages take their dependencies (cache manager,
//! policy, pools) as explicit arguments rather than through `GraphCache`, so
//! the same stage code serves both front-ends:
//!
//! * [`crate::GraphCache`] — sequential composition, `&mut self`, state
//!   borrowed directly;
//! * [`crate::SharedGraphCache`] — concurrent composition, `&self`, cache
//!   state sharded behind `parking_lot::RwLock` with probes under read
//!   locks and admission under short write sections.

pub mod admit;
pub mod filter;
pub mod probe;
pub mod prune;
pub mod verify;

use crate::pipeline::admit::AdmitOutcome;
use crate::pipeline::probe::{CacheHits, ProbeScratch, Relation};
use crate::pipeline::prune::Pruned;
use crate::report::QueryReport;
use crate::stats::GlobalStats;
use gc_graph::{BitSet, Graph};
use gc_index::FeatureVec;
use gc_method::QueryKind;
use std::time::{Duration, Instant};

/// Carries one query through the pipeline stages.
///
/// Constructed at query entry; each stage reads its inputs from and writes
/// its product into the context. After the last stage,
/// [`PipelineCtx::stats_delta`] and [`PipelineCtx::into_report`] turn the
/// accumulated products into the Statistics Monitor delta and the
/// Demonstrator's [`QueryReport`].
#[derive(Debug)]
pub struct PipelineCtx<'q> {
    /// The query graph.
    pub query: &'q Graph,
    /// Subgraph or supergraph semantics.
    pub kind: QueryKind,
    /// Logical admission time (query sequence number).
    pub now: u64,
    /// Wall-clock entry time.
    pub start: Instant,
    /// Stage 1 product: Method M's candidate set `C_M`.
    pub cm: BitSet,
    /// The query's feature vector under the cache's feature config,
    /// extracted **once per query** at the start of the probe stage and
    /// shared by the sub-probe, the super-probe (on every shard) and
    /// admission (`None` until probed; taken by the admit stage).
    pub features: Option<FeatureVec>,
    /// Reusable probe-stage buffers (candidate selection, utility
    /// ordering, verifier search state). Owned by the runtime — the
    /// sequential cache keeps one instance and the concurrent front-end
    /// one per thread — and swapped into the context for the query's
    /// lifetime, so the probe stage allocates nothing in steady state.
    pub probe_scratch: ProbeScratch,
    /// Stage 2 product: verified cache hits.
    pub hits: CacheHits,
    /// Stage 2 product: answer snapshots aligned with `hits.iter()` order
    /// in the sequential runtime (the sharded front-end stores them in
    /// probe-discovery order; only [`prune`], which is order-insensitive,
    /// consumes them from the context).
    pub hit_answers: Vec<(Relation, BitSet)>,
    /// Stage 3 product: definite answers `S` and reduced set `C`.
    pub pruned: Pruned,
    /// Stage 4 product: verification survivors `R`.
    pub survivors: BitSet,
    /// Stage 4 product: verifier steps spent on dataset graphs.
    pub verify_steps: u64,
    /// Stage 4 product: observed per-graph verification cost
    /// `(gid, steps)`, one entry per verified candidate (feeds the
    /// [`crate::cost::CostModel`]).
    pub verify_costs: Vec<(usize, u64)>,
}

impl<'q> PipelineCtx<'q> {
    /// Fresh context for one query over a dataset of `universe` graphs.
    pub fn new(query: &'q Graph, kind: QueryKind, now: u64, universe: usize) -> Self {
        PipelineCtx {
            query,
            kind,
            now,
            start: Instant::now(),
            cm: BitSet::new(universe),
            features: None,
            probe_scratch: ProbeScratch::default(),
            hits: CacheHits::default(),
            hit_answers: Vec::new(),
            pruned: Pruned::empty(universe),
            survivors: BitSet::new(universe),
            verify_steps: 0,
            verify_costs: Vec::new(),
        }
    }

    /// The final answer `A = R ∪ S` (Fig. 3(h)).
    pub fn answer(&self) -> BitSet {
        let mut answer = self.survivors.clone();
        answer.union_with(&self.pruned.definite);
        answer
    }

    /// The Statistics Monitor delta for this (non-exact) query.
    pub fn stats_delta(&self, outcome: &AdmitOutcome, elapsed: Duration) -> GlobalStats {
        GlobalStats {
            queries: 1,
            hit_queries: u64::from(self.hits.exact.is_some() || self.hits.count() > 0),
            queries_with_sub_hits: u64::from(!self.hits.sub.is_empty()),
            queries_with_super_hits: u64::from(!self.hits.super_.is_empty()),
            sub_hits: self.hits.sub.len() as u64,
            super_hits: self.hits.super_.len() as u64,
            tests_executed: self.pruned.to_verify.count() as u64,
            probe_tests: self.hits.probe_tests,
            tests_saved: self.pruned.saved as u64,
            verify_steps: self.verify_steps,
            probe_steps: self.hits.probe_steps,
            admitted: u64::from(outcome.admitted.is_some()),
            evicted: outcome.evicted.len() as u64,
            admission_rejected: u64::from(outcome.rejected),
            total_time: elapsed,
            ..GlobalStats::default()
        }
    }

    /// Assemble the per-query report (Fig. 3 anatomy) after the last stage.
    ///
    /// `answer` is the [`PipelineCtx::answer`] value the caller already
    /// materialized for the admit stage — passed in so the full-universe
    /// union is computed exactly once per query.
    pub fn into_report(
        self,
        answer: BitSet,
        outcome: AdmitOutcome,
        elapsed: Duration,
    ) -> QueryReport {
        let verified_count = self.pruned.to_verify.count();
        let survivors_count = self.survivors.count();
        debug_assert_eq!(answer, self.answer(), "caller must pass this ctx's own answer");
        QueryReport {
            answer,
            cm_set: self.cm,
            definite_set: self.pruned.definite.clone(),
            verified_set: self.pruned.to_verify.clone(),
            survivors_set: self.survivors,
            kind: self.kind,
            exact_hit: false,
            memo_hit: false,
            sub_hits: self.hits.sub,
            super_hits: self.hits.super_,
            cm_size: self.pruned.cm_size,
            definite: self.pruned.definite.count(),
            verified: verified_count,
            survivors: survivors_count,
            sub_iso_tests: verified_count as u64,
            probe_tests: self.hits.probe_tests,
            verify_steps: self.verify_steps,
            probe_steps: self.hits.probe_steps,
            admitted: outcome.admitted,
            evicted: outcome.evicted,
            elapsed,
        }
    }
}

/// Build the report for an exact-match hit (the fast path skips the
/// pipeline entirely, Fig. 3's "traditional cache hit").
pub fn exact_report(
    answer: BitSet,
    kind: QueryKind,
    base_tests: u64,
    elapsed: Duration,
) -> QueryReport {
    let universe = answer.universe();
    QueryReport {
        answer,
        cm_set: BitSet::new(universe),
        definite_set: BitSet::new(universe),
        verified_set: BitSet::new(universe),
        survivors_set: BitSet::new(universe),
        kind,
        exact_hit: true,
        memo_hit: false,
        sub_hits: Vec::new(),
        super_hits: Vec::new(),
        cm_size: base_tests as usize,
        definite: 0,
        verified: 0,
        survivors: 0,
        sub_iso_tests: 0,
        probe_tests: 0,
        verify_steps: 0,
        probe_steps: 0,
        admitted: None,
        evicted: Vec::new(),
        elapsed,
    }
}

/// The Statistics Monitor delta for an exact-match hit.
pub fn exact_stats_delta(base_tests: u64, elapsed: Duration) -> GlobalStats {
    GlobalStats {
        queries: 1,
        hit_queries: 1,
        exact_hits: 1,
        tests_saved: base_tests,
        total_time: elapsed,
        ..GlobalStats::default()
    }
}

/// Build the report for an answer-memo hit: like [`exact_report`] the whole
/// pipeline is skipped, but the answer came from the generation-versioned
/// memo rather than a live cache entry.
pub fn memo_report(
    answer: BitSet,
    kind: QueryKind,
    base_tests: u64,
    elapsed: Duration,
) -> QueryReport {
    let mut r = exact_report(answer, kind, base_tests, elapsed);
    r.exact_hit = false;
    r.memo_hit = true;
    r
}

/// The Statistics Monitor delta for an answer-memo hit.
pub fn memo_stats_delta(base_tests: u64, elapsed: Duration) -> GlobalStats {
    GlobalStats {
        queries: 1,
        hit_queries: 1,
        memo_hits: 1,
        tests_saved: base_tests,
        total_time: elapsed,
        ..GlobalStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    #[test]
    fn ctx_report_algebra() {
        let q = graph_from_parts(&[Label(0)], &[]).unwrap();
        let mut ctx = PipelineCtx::new(&q, QueryKind::Subgraph, 1, 8);
        ctx.cm = BitSet::from_indices(8, [0usize, 1, 2, 3]);
        ctx.pruned = Pruned {
            definite: BitSet::from_indices(8, [3usize]),
            to_verify: BitSet::from_indices(8, [0usize, 1]),
            cm_size: 4,
            saved: 2,
        };
        ctx.survivors = BitSet::from_indices(8, [1usize]);
        ctx.verify_steps = 42;
        assert_eq!(ctx.answer().to_vec(), vec![1, 3]);
        let delta = ctx.stats_delta(&AdmitOutcome::default(), Duration::from_millis(1));
        assert_eq!(delta.queries, 1);
        assert_eq!(delta.tests_executed, 2);
        assert_eq!(delta.tests_saved, 2);
        assert_eq!(delta.verify_steps, 42);
        let answer = ctx.answer();
        let report = ctx.into_report(
            answer,
            AdmitOutcome { admitted: Some(7), evicted: vec![1, 2], rejected: false },
            Duration::from_millis(1),
        );
        assert_eq!(report.answer.to_vec(), vec![1, 3]);
        assert_eq!(report.verified, 2);
        assert_eq!(report.survivors, 1);
        assert_eq!(report.admitted, Some(7));
        assert_eq!(report.evicted, vec![1, 2]);
        assert!(!report.exact_hit);
    }

    #[test]
    fn exact_report_shape() {
        let answer = BitSet::from_indices(5, [2usize]);
        let r = exact_report(answer, QueryKind::Subgraph, 9, Duration::ZERO);
        assert!(r.exact_hit);
        assert_eq!(r.cm_size, 9);
        assert_eq!(r.sub_iso_tests, 0);
        assert_eq!(r.answer.to_vec(), vec![2]);
        let d = exact_stats_delta(9, Duration::ZERO);
        assert_eq!(d.exact_hits, 1);
        assert_eq!(d.tests_saved, 9);
    }

    #[test]
    fn memo_report_shape() {
        let answer = BitSet::from_indices(5, [2usize]);
        let r = memo_report(answer, QueryKind::Supergraph, 9, Duration::ZERO);
        assert!(r.memo_hit);
        assert!(!r.exact_hit);
        assert!(r.any_hit());
        assert_eq!(r.cm_size, 9);
        assert_eq!(r.sub_iso_tests, 0);
        assert_eq!(r.probe_tests, 0);
        assert_eq!(r.verify_steps, 0);
        let d = memo_stats_delta(9, Duration::ZERO);
        assert_eq!(d.memo_hits, 1);
        assert_eq!(d.exact_hits, 0);
        assert_eq!(d.tests_saved, 9);
    }
}
