//! Stage 1 — **Filter**: Method M's candidate set `C_M` (Fig. 3(b)).
//!
//! The thinnest stage by design: GraphCache is a cache layered *over* an
//! existing filter-then-verify method, and this stage is exactly that
//! method's filter. It takes no cache locks and mutates no cache state, so
//! any number of concurrent queries can run it at once.

use crate::pipeline::PipelineCtx;
use gc_method::{Dataset, Method};

/// Run Method M's filter for the query in `ctx`, storing `C_M`.
pub fn run(ctx: &mut PipelineCtx<'_>, method: &dyn Method, dataset: &Dataset) {
    ctx.cm = method.filter(dataset, ctx.query, ctx.kind);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};
    use gc_method::{QueryKind, SiMethod};

    #[test]
    fn filter_fills_cm() {
        let g0 = graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap();
        let g1 = graph_from_parts(&[Label(2)], &[]).unwrap();
        let dataset = Dataset::new(vec![g0, g1]);
        let q = graph_from_parts(&[Label(0)], &[]).unwrap();
        let mut ctx = PipelineCtx::new(&q, QueryKind::Subgraph, 1, dataset.len());
        run(&mut ctx, &SiMethod, &dataset);
        // SI does no filtering: every dataset graph is a candidate.
        assert_eq!(ctx.cm.count(), dataset.len());
    }
}
