//! Stage 1 — **Filter**: Method M's candidate set `C_M` (Fig. 3(b)).
//!
//! The thinnest stage by design: GraphCache is a cache layered *over* an
//! existing filter-then-verify method, and this stage is exactly that
//! method's filter. It takes no cache locks and mutates no cache state, so
//! any number of concurrent queries can run it at once.
//!
//! With a **dynamic dataset** the stage also reconciles the method's view
//! with the live dataset: graphs inserted since the method's index was
//! built (`overlay` — methods whose [`gc_method::Method::on_insert_graph`]
//! returns `false`) are added to `C_M` unconditionally (sound: they go
//! through exact verification), and tombstoned graphs are masked out
//! (sound: a removed graph can never be an answer). On a pristine dataset
//! with an empty overlay this is a no-op.

use crate::pipeline::PipelineCtx;
use gc_graph::BitSet;
use gc_method::{Dataset, Method};

/// Run Method M's filter for the query in `ctx`, storing `C_M`.
///
/// `overlay` holds dataset graphs the method's own filter index does not
/// cover (inserted after an immutable index was built); they are unioned
/// into `C_M` so no live graph can be silently missed.
pub fn run(ctx: &mut PipelineCtx<'_>, method: &dyn Method, dataset: &Dataset, overlay: &BitSet) {
    let mut cm = method.filter(dataset, ctx.query, ctx.kind);
    if cm.universe() < dataset.len() {
        // Method index predates later inserts: widen to the live universe.
        cm.grow(dataset.len());
    }
    if overlay.count() > 0 {
        let mut patch = overlay.clone();
        if patch.universe() < cm.universe() {
            patch.grow(cm.universe());
        }
        cm.union_with(&patch);
    }
    if dataset.has_tombstones() {
        cm.intersect_with(dataset.live_mask());
    }
    ctx.cm = cm;
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};
    use gc_method::{QueryKind, SiMethod};

    #[test]
    fn filter_fills_cm() {
        let g0 = graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap();
        let g1 = graph_from_parts(&[Label(2)], &[]).unwrap();
        let dataset = Dataset::new(vec![g0, g1]);
        let q = graph_from_parts(&[Label(0)], &[]).unwrap();
        let mut ctx = PipelineCtx::new(&q, QueryKind::Subgraph, 1, dataset.len());
        run(&mut ctx, &SiMethod, &dataset, &BitSet::new(0));
        // SI does no filtering: every dataset graph is a candidate.
        assert_eq!(ctx.cm.count(), dataset.len());
    }

    #[test]
    fn tombstones_masked_and_overlay_unioned() {
        let g0 = graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap();
        let g1 = graph_from_parts(&[Label(2)], &[]).unwrap();
        let mut dataset = Dataset::new(vec![g0, g1]);
        assert!(dataset.remove_graph(1));
        let g2 = graph_from_parts(&[Label(0)], &[]).unwrap();
        let inserted = dataset.insert_graph(g2) as usize;
        let q = graph_from_parts(&[Label(0)], &[]).unwrap();
        let mut ctx = PipelineCtx::new(&q, QueryKind::Subgraph, 1, dataset.len());
        // Pretend the method missed the insert: pass it as overlay.
        let overlay = BitSet::from_indices(dataset.len(), [inserted]);
        run(&mut ctx, &SiMethod, &dataset, &overlay);
        assert!(ctx.cm.contains(0), "live base graph stays");
        assert!(!ctx.cm.contains(1), "tombstoned graph masked out");
        assert!(ctx.cm.contains(inserted), "overlay graph unioned in");
    }
}
