//! The concurrent, sharded front-end: [`SharedGraphCache`].
//!
//! [`crate::GraphCache`] is exclusively borrowed per query (`&mut self`),
//! which caps a deployment at one in-flight query per cache. This front-end
//! serves the same staged pipeline through `&self` so any number of client
//! threads can query one cache concurrently:
//!
//! * **sharding** — cache state is split into [`CacheConfig::shards`]
//!   independent shards, each `(CacheManager, WindowManager)` behind a
//!   `parking_lot::RwLock` plus its own replacement-policy instance behind a
//!   `Mutex`. A query graph's WL fingerprint picks its *home shard*
//!   (admission and exact-match lookups touch only that shard; fingerprints
//!   are isomorphism-invariant, so an exact duplicate always routes home);
//! * **read-mostly probing** — the filter / probe / prune / verify stages
//!   take only shard *read* locks (and hold them just long enough to
//!   snapshot hit answers); write locks are taken for the two short
//!   sections that mutate state: hit crediting and admission/eviction;
//! * **lock-free accounting** — [`StatsMonitor`] and [`CostModel`] are
//!   atomics-based, so statistics and cost observations never serialize
//!   queries;
//! * **shared verification** — heavyweight candidate verification is
//!   dispatched to the process-wide [`crate::parallel::global_pool`], which
//!   batches work from all concurrent queries onto one CPU-sized worker
//!   set.
//!
//! ## Correctness under concurrency
//!
//! GraphCache's central invariant — answers are *exactly* those of Method M
//! alone (paper §1, Problem (2)) — holds under any interleaving, because the
//! cache only ever (a) serves a previously-verified exact answer set, or
//! (b) prunes/augments the candidate set with answer snapshots taken under
//! a read lock, each of which is itself an exact answer set. Entries
//! evicted between probing and crediting merely lose a utility update
//! (credits are dropped for dead entries; see [`crate::pipeline::admit`]).
//! The answer-set equivalence with the sequential runtime is
//! property-tested in `tests/prop.rs` across all bundled policies.
//!
//! ## Entry-id namespaces
//!
//! Each shard numbers its entries independently. Ids in reports
//! ([`QueryReport::sub_hits`], evictions, …) are *encoded* as
//! `shard << 24 | local` so they stay unique cache-wide; use
//! [`SharedGraphCache::decode_entry_id`] to recover the shard and local id.

use crate::cache::CacheManager;
use crate::config::CacheConfig;
use crate::cost::CostModel;
use crate::entry::EntryId;
use crate::memo::AnswerMemo;
use crate::persist::{self, PersistHealth, RecoveryReport, RestoredEntry, StoreHealth};
use crate::pipeline::admit::{self, AdmitLimits, AdmitOutcome};
use crate::pipeline::probe::{CacheHits, ProbeScratch};
use crate::pipeline::{self, filter, probe, prune, verify, PipelineCtx};
use crate::policy::ReplacementPolicy;
use crate::report::{IndexHealth, QueryReport};
use crate::runtime::{finish_fast_path, pipeline_trace};
use crate::stats::{GlobalStats, StatsMonitor};
use crate::telemetry::{PipelineStage, QueryTiming, Telemetry};
use crate::window::WindowManager;
use crate::PolicyKind;
use gc_graph::{BitSet, Graph, GraphId};
use gc_method::{Dataset, Method, QueryKind};
use gc_store::{CacheStore, EntryRecord, LoadOutcome, SnapshotInfo};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    /// Per-thread probe-stage buffers: `query` is `&self` (any number of
    /// client threads), so the reusable candidate-selection and verifier
    /// scratch is swapped from here into each query's [`PipelineCtx`] and
    /// back, and every shard probe of one query shares it.
    static PROBE_SCRATCH: std::cell::RefCell<ProbeScratch> =
        std::cell::RefCell::new(ProbeScratch::new());
}

/// Bits of an encoded entry id that hold the shard-local id.
const LOCAL_BITS: u32 = 24;
/// Mask of the shard-local id.
const LOCAL_MASK: EntryId = (1 << LOCAL_BITS) - 1;

/// One shard's probe result: `(shard index, shard-local hits, range of the
/// hits' answer snapshots inside `PipelineCtx::hit_answers`)`.
type ShardProbe = (usize, CacheHits, std::ops::Range<usize>);

/// One shard's raw probe output: shard-local hits plus the answer
/// snapshots taken under the shard's read lock (not yet merged into a
/// query's context).
type ShardHits = (CacheHits, Vec<(probe::Relation, gc_graph::BitSet)>);

/// Everything a fanned-out shard-probe task needs, bundled once per query
/// behind an `Arc` so the per-shard closures are `'static` (the worker
/// pool outlives the query's borrows).
struct ProbeBatch {
    query: Graph,
    kind: QueryKind,
    config: CacheConfig,
    qf: gc_index::FeatureVec,
    profile: gc_iso::GraphProfile,
}

/// Probe one shard under its read lock using this thread's
/// [`PROBE_SCRATCH`], snapshotting hit answers while the lock is held.
/// Runs on pool workers (each has its own thread-local scratch) and as the
/// caller-side fallback when a task is lost.
fn probe_one_shard(shard: &Shard, batch: &ProbeBatch) -> ShardHits {
    let state = shard.state.read();
    let hits = PROBE_SCRATCH.with(|s| {
        probe::probe_cases(
            &state.cache,
            &batch.config,
            &batch.query,
            batch.kind,
            &batch.qf,
            batch.profile.as_ref(),
            &mut s.borrow_mut(),
        )
    });
    let answers =
        if hits.count() == 0 { Vec::new() } else { probe::snapshot_answers(&state.cache, &hits) };
    (hits, answers)
}

/// State a shard protects with one RwLock: entries + admission window.
struct ShardState {
    cache: CacheManager,
    window: WindowManager,
}

/// Dataset-side state behind one cache-wide RwLock: the live dataset plus
/// the filter overlay (graphs the method's index does not cover).
///
/// Queries hold the **read** lock for their full duration; a dataset
/// mutation takes the **write** lock, which quiesces all in-flight queries
/// and gives the mutation an exclusive window to repair every shard's
/// answer sets. Lock order is always `data` → shard locks (queries,
/// mutations and snapshots all acquire in that order), so the two lock
/// layers can never deadlock.
struct DataState {
    dataset: Arc<Dataset>,
    overlay: BitSet,
}

/// One shard: lockable state plus its replacement policy.
///
/// The policy sits in its own `Mutex` (instead of inside the `RwLock`)
/// because `ReplacementPolicy` implementations are `Send` but not required
/// to be `Sync`; the policy is only ever touched while also holding the
/// shard's write lock, so the extra mutex is uncontended.
struct Shard {
    state: RwLock<ShardState>,
    policy: Mutex<Box<dyn ReplacementPolicy>>,
}

/// A concurrently-usable GraphCache: same pipeline, `&self` queries,
/// byte-identical answers to the sequential runtime.
///
/// ```
/// use gc_core::{CacheConfig, PolicyKind, SharedGraphCache};
/// use gc_method::{Dataset, QueryKind, SiMethod};
/// use gc_graph::{graph_from_parts, Label};
/// use std::sync::Arc;
///
/// let dataset = Arc::new(Dataset::new(vec![
///     graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap(),
///     graph_from_parts(&[Label(2)], &[]).unwrap(),
/// ]));
/// let gc = SharedGraphCache::with_policy(
///     dataset,
///     Box::new(SiMethod),
///     PolicyKind::Hd,
///     CacheConfig::default(),
/// ).unwrap();
///
/// let q = graph_from_parts(&[Label(0)], &[]).unwrap();
/// // `&self` — clone handles into threads, or share behind an Arc.
/// let report = gc.query(&q, QueryKind::Subgraph);
/// assert_eq!(report.answer.to_vec(), vec![0]);
/// let again = gc.query(&q, QueryKind::Subgraph);
/// assert!(again.exact_hit);
/// ```
pub struct SharedGraphCache {
    /// Live dataset + filter overlay (see [`DataState`] for the locking
    /// protocol).
    data: RwLock<DataState>,
    /// Generation-versioned exact answer memo; the mutex is held only for
    /// the lookup/store instants (always under the `data` read lock, so a
    /// memoized generation can never race a mutation).
    memo: Mutex<AnswerMemo>,
    method: Arc<dyn Method>,
    config: CacheConfig,
    /// Shared with the per-shard probe tasks fanned onto the worker pool
    /// (`Arc` makes those closures `'static`); everything else reaches the
    /// shards through `&self` as before.
    shards: Arc<Vec<Shard>>,
    /// Per-shard admission limits; entry capacities sum to exactly
    /// `config.capacity` (base + 1 for the first `capacity % shards`
    /// shards), so the shared cache retains no more entries than the
    /// sequential runtime would. Shards with capacity 0 (when
    /// `capacity < shards`) still admit within a window but are emptied by
    /// every sweep.
    limits: Vec<AdmitLimits>,
    stats: StatsMonitor,
    cost: CostModel,
    clock: AtomicU64,
    policy_name: &'static str,
    /// Attached persistence store (admissions/evictions journaled,
    /// auto-snapshots per the config's persistence knobs).
    store: Option<Arc<CacheStore>>,
    /// Admissions since the last rotation (auto-snapshot trigger input).
    admits_since_snapshot: AtomicU64,
    /// Single-flight guard: only one thread builds a snapshot at a time;
    /// concurrent triggers become no-ops.
    snapshotting: AtomicBool,
    /// Persistence circuit breaker (degraded-mode state + gauges); only
    /// meaningful while a store is attached.
    health: Arc<StoreHealth>,
    /// Pipeline telemetry: stage histograms, the trace sampler, and the
    /// slow-query ring (all lock-free on the query path).
    telemetry: Telemetry,
}

impl SharedGraphCache {
    /// Create a shared cache; `make_policy` builds one replacement-policy
    /// instance per shard (each shard replaces independently over its own
    /// entries).
    pub fn new(
        dataset: Arc<Dataset>,
        method: Arc<dyn Method>,
        make_policy: impl Fn() -> Box<dyn ReplacementPolicy>,
        config: CacheConfig,
    ) -> Result<Self, String> {
        config.validate()?;
        let shards = (0..config.shards)
            .map(|_| {
                let policy = make_policy();
                Shard {
                    state: RwLock::new(ShardState {
                        cache: CacheManager::with_tuning(
                            config.feature_config,
                            config.index_tuning,
                        ),
                        window: WindowManager::new(config.window_size),
                    }),
                    policy: Mutex::new(policy),
                }
            })
            .collect::<Vec<_>>();
        let policy_name = shards[0].policy.lock().name();
        let (base, extra) = (config.capacity / config.shards, config.capacity % config.shards);
        let limits = (0..config.shards)
            .map(|si| AdmitLimits {
                capacity: base + usize::from(si < extra),
                max_bytes: config.max_bytes.map(|b| (b / config.shards).max(1)),
            })
            .collect();
        let telemetry = Telemetry::from_config(&config);
        Ok(SharedGraphCache {
            cost: CostModel::new(&dataset),
            stats: StatsMonitor::new(),
            clock: AtomicU64::new(0),
            memo: Mutex::new(AnswerMemo::new(config.memo_capacity)),
            data: RwLock::new(DataState { overlay: BitSet::new(dataset.len()), dataset }),
            method,
            config,
            telemetry,
            shards: Arc::new(shards),
            limits,
            policy_name,
            store: None,
            admits_since_snapshot: AtomicU64::new(0),
            snapshotting: AtomicBool::new(false),
            health: Arc::new(StoreHealth::new()),
        })
    }

    /// Convenience constructor with a bundled policy kind.
    pub fn with_policy(
        dataset: Arc<Dataset>,
        method: Box<dyn Method>,
        kind: PolicyKind,
        config: CacheConfig,
    ) -> Result<Self, String> {
        Self::new(dataset, Arc::from(method), move || kind.make(), config)
    }

    /// Process one query through the staged pipeline; callable from any
    /// number of threads concurrently. Returns the exact answer set plus
    /// the Query-Journey anatomy, like the sequential runtime.
    pub fn query(&self, query: &Graph, kind: QueryKind) -> QueryReport {
        self.query_traced(query, kind, None)
    }

    /// [`Self::query`] with an optional request id (propagated from the
    /// serving edge's `X-Request-Id` header) attached to any captured
    /// [`crate::QueryTrace`]. The id is only materialized when the query
    /// is actually sampled or slow.
    pub fn query_traced(
        &self,
        query: &Graph,
        kind: QueryKind,
        request_id: Option<&str>,
    ) -> QueryReport {
        let start = Instant::now();
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let fp = gc_graph::hash::fingerprint(query);
        let home = (fp % self.shards.len() as u64) as usize;
        let seq = self.telemetry.begin_query();
        let mut timing = QueryTiming::default();

        // Pin the dataset for the query's duration: mutations take this
        // lock exclusively, so everything below sees one generation. The
        // guard is dropped before any path that may snapshot (snapshots
        // re-acquire the read lock; parking_lot locks are not reentrant).
        let data = self.data.read();
        let generation = data.dataset.generation();

        // ---- exact-match fast path: home shard only -----------------------
        // Cheap read-locked check first; only a hit pays for the write lock
        // (where the entry is re-located — it may have been evicted, or its
        // slot reused, between the two locks).
        let maybe_exact =
            probe::find_exact(&self.shards[home].state.read().cache, query, kind).is_some();
        if maybe_exact {
            if let Some(report) = self.serve_exact(home, query, kind, now, start) {
                drop(data);
                finish_fast_path(
                    &self.telemetry,
                    seq,
                    start.elapsed(),
                    &timing,
                    request_id,
                    kind,
                    "exact",
                    home as u32,
                    generation,
                    report.answer.count() as u64,
                );
                // Exact hits skip the journal hooks (nothing mutated), so
                // an exact-hit-only workload must still drive recovery
                // probes.
                self.maybe_probe_persistence();
                return report;
            }
        }

        // ---- answer-memo fast path (generation-versioned) -----------------
        let memo_hit = {
            let _span = self.telemetry.span(PipelineStage::Memo, &mut timing);
            self.memo.lock().lookup(query, kind, generation)
        };
        if let Some(hit) = memo_hit {
            drop(data);
            let elapsed = start.elapsed();
            self.stats.add(&pipeline::memo_stats_delta(hit.base_tests, elapsed));
            let answer_count = hit.answer.count() as u64;
            finish_fast_path(
                &self.telemetry,
                seq,
                elapsed,
                &timing,
                request_id,
                kind,
                "memo",
                home as u32,
                generation,
                answer_count,
            );
            self.maybe_probe_persistence();
            return pipeline::memo_report(hit.answer, kind, hit.base_tests, elapsed);
        }

        // ---- staged pipeline ---------------------------------------------
        let mut ctx = PipelineCtx::new(query, kind, now, data.dataset.len());
        // Borrow this thread's warm probe buffers for the query's lifetime
        // (returned before the context is consumed below).
        PROBE_SCRATCH.with(|s| std::mem::swap(&mut ctx.probe_scratch, &mut s.borrow_mut()));
        {
            let _span = self.telemetry.span(PipelineStage::Filter, &mut timing);
            filter::run(&mut ctx, self.method.as_ref(), &data.dataset, &data.overlay);
        }

        // The query's features and verification profile are computed once
        // here — every shard's sub/super probe shares them (and admission
        // below reuses the features), instead of each of the N shards
        // re-deriving both.
        ctx.features = Some(gc_index::feature_vec(query, &self.config.feature_config));
        let q_profile = gc_iso::GraphProfile::new(query, None);

        // Probe every shard under its read lock; snapshot hit answers while
        // the lock is held (one clone per hit, straight into the context),
        // then merge shard-local hits into the context with encoded ids.
        // Per-shard hits are kept aside with their snapshot's range inside
        // `ctx.hit_answers` for the crediting write sections below. With
        // `threads > 1` and more than one shard, the probes fan out onto
        // the process-wide worker pool so the shard read sections overlap;
        // results are merged back *in shard order*, so the context — and
        // therefore the answer — is identical to the sequential walk.
        let mut per_shard: Vec<ShardProbe> = Vec::new();
        {
            let _span = self.telemetry.span(PipelineStage::Probe, &mut timing);
            if self.config.threads > 1 && self.shards.len() > 1 {
                self.probe_shards_parallel(query, kind, &q_profile, &mut ctx, &mut per_shard);
            } else {
                for (si, shard) in self.shards.iter().enumerate() {
                    let state = shard.state.read();
                    let qf = ctx.features.as_ref().expect("just set");
                    let hits = probe::probe_cases(
                        &state.cache,
                        &self.config,
                        query,
                        kind,
                        qf,
                        q_profile.as_ref(),
                        &mut ctx.probe_scratch,
                    );
                    if hits.count() == 0 {
                        ctx.hits.probe_tests += hits.probe_tests;
                        ctx.hits.probe_steps += hits.probe_steps;
                        continue;
                    }
                    let range_start = ctx.hit_answers.len();
                    ctx.hit_answers.extend(probe::snapshot_answers(&state.cache, &hits));
                    drop(state);
                    ctx.hits.merge(encode_hits(si, &hits));
                    per_shard.push((si, hits, range_start..ctx.hit_answers.len()));
                }
            }
        }

        {
            let _span = self.telemetry.span(PipelineStage::Prune, &mut timing);
            prune::run(&mut ctx);
        }
        let pool = (self.config.threads > 1).then(crate::parallel::global_pool);
        {
            let _span = self.telemetry.span(PipelineStage::Verify, &mut timing);
            verify::run(&mut ctx, &data.dataset, &self.config, pool);
        }
        verify::observe_costs(&ctx, &self.cost);

        let admit_span = self.telemetry.span(PipelineStage::Admit, &mut timing);
        // ---- crediting: short write section per shard with hits -----------
        for (si, hits, range) in &per_shard {
            let shard = &self.shards[*si];
            let mut state = shard.state.write();
            let mut policy = shard.policy.lock();
            admit::credit_hits(
                &mut state.cache,
                policy.as_mut(),
                &self.cost,
                &ctx.cm,
                kind,
                now,
                hits,
                &ctx.hit_answers[range.clone()],
            );
        }

        // ---- admission: short write section on the home shard --------------
        let answer = ctx.answer();
        let outcome = {
            let shard = &self.shards[home];
            let mut state = shard.state.write();
            // A concurrent query for an isomorphic graph may have admitted
            // it while we were verifying; don't store a duplicate.
            if probe::find_exact(&state.cache, query, kind).is_some() {
                AdmitOutcome::default()
            } else {
                let mut policy = shard.policy.lock();
                let ShardState { cache, window } = &mut *state;
                let mut outcome = admit::run(
                    cache,
                    policy.as_mut(),
                    window,
                    &self.config,
                    self.limits[home],
                    query,
                    kind,
                    ctx.features.take(), // the probe stage's extraction, reused
                    &answer,
                    ctx.pruned.cm_size as u64,
                    ctx.verify_steps,
                    now,
                );
                outcome.admitted = outcome.admitted.map(|id| encode_entry_id(home, id));
                for id in &mut outcome.evicted {
                    *id = encode_entry_id(home, *id);
                }
                outcome
            }
        };
        self.memo.lock().store(query, kind, &answer, ctx.pruned.cm_size as u64, generation);
        drop(admit_span);

        let elapsed = start.elapsed();
        self.stats.add(&ctx.stats_delta(&outcome, elapsed));
        self.telemetry.finish_query(seq, elapsed, |slow| {
            pipeline_trace(
                seq,
                elapsed,
                &timing,
                request_id,
                kind,
                home as u32,
                generation,
                &ctx,
                &answer,
                slow,
            )
        });
        // Release the dataset before journaling: a due rotation snapshots,
        // and snapshots re-acquire the data read lock.
        drop(data);

        // ---- journaling: outside every shard lock, after the latency
        // measurement (same boundary as the sequential runtime, so store
        // IO never skews sequential-vs-sharded timing comparisons).
        // Appends happen after the write sections release, so the store's
        // internal mutex can never participate in a lock-order inversion
        // with shard locks. Cross-query append reordering is tolerated by
        // replay (see `persist`).
        self.journal_outcome(
            query,
            kind,
            &answer,
            ctx.pruned.cm_size as u64,
            ctx.verify_steps,
            now,
            &outcome,
        );

        PROBE_SCRATCH.with(|s| std::mem::swap(&mut ctx.probe_scratch, &mut s.borrow_mut()));
        ctx.into_report(answer, outcome, elapsed)
    }

    /// Batched probe: fan one task per shard (minus shard 0) onto
    /// [`crate::parallel::global_pool`] so shard read sections overlap,
    /// probe shard 0 inline on the caller's thread (with the query's warm
    /// scratch) meanwhile, then merge all results into the context *in
    /// shard order* — the deterministic merge makes the hits, stats, and
    /// answer identical to the sequential shard walk. A shard whose task is
    /// lost (worker panic, pool shutdown) is re-probed inline, so no
    /// shard's hits are ever dropped. Deadlock-free by construction: probe
    /// tasks take only shard *read* locks and never wait on other pool
    /// work.
    fn probe_shards_parallel(
        &self,
        query: &Graph,
        kind: QueryKind,
        q_profile: &gc_iso::GraphProfile,
        ctx: &mut PipelineCtx,
        per_shard: &mut Vec<ShardProbe>,
    ) {
        let pool = crate::parallel::global_pool();
        let batch = Arc::new(ProbeBatch {
            query: query.clone(),
            kind,
            config: self.config.clone(),
            qf: ctx.features.clone().expect("just set"),
            profile: q_profile.clone(),
        });
        let (tx, rx) = std::sync::mpsc::channel::<(usize, ShardHits)>();
        let mut submitted = 0usize;
        for si in 1..self.shards.len() {
            let batch = Arc::clone(&batch);
            let shards = Arc::clone(&self.shards);
            let tx = tx.clone();
            submitted += usize::from(pool.submit(Box::new(move || {
                let _ = tx.send((si, probe_one_shard(&shards[si], &batch)));
            })));
        }
        drop(tx);

        let mut results: Vec<Option<ShardHits>> = (0..self.shards.len()).map(|_| None).collect();
        {
            let shard = &self.shards[0];
            let state = shard.state.read();
            let qf = ctx.features.as_ref().expect("just set");
            let hits = probe::probe_cases(
                &state.cache,
                &self.config,
                query,
                kind,
                qf,
                q_profile.as_ref(),
                &mut ctx.probe_scratch,
            );
            let answers = if hits.count() == 0 {
                Vec::new()
            } else {
                probe::snapshot_answers(&state.cache, &hits)
            };
            results[0] = Some((hits, answers));
        }
        for _ in 0..submitted {
            // A recv error means a task panicked and dropped its sender
            // without replying; the merge below re-probes whatever is
            // missing inline.
            let Ok((si, reply)) = rx.recv() else { break };
            results[si] = Some(reply);
        }

        for (si, slot) in results.into_iter().enumerate() {
            let (hits, answers) = slot.unwrap_or_else(|| probe_one_shard(&self.shards[si], &batch));
            if hits.count() == 0 {
                ctx.hits.probe_tests += hits.probe_tests;
                ctx.hits.probe_steps += hits.probe_steps;
                continue;
            }
            let range_start = ctx.hit_answers.len();
            ctx.hit_answers.extend(answers);
            ctx.hits.merge(encode_hits(si, &hits));
            per_shard.push((si, hits, range_start..ctx.hit_answers.len()));
        }
    }

    /// Append this query's admission/evictions to the attached journal and
    /// run the auto-snapshot triggers. Persistence failures are reported to
    /// stderr and never fail the query. Ids are journaled in their
    /// shard-encoded form; replay decodes them back to a shard + slot.
    #[allow(clippy::too_many_arguments)] // mirrors the admit stage's query facts
    fn journal_outcome(
        &self,
        query: &Graph,
        kind: QueryKind,
        answer: &gc_graph::BitSet,
        base_tests: u64,
        base_cost: u64,
        now: u64,
        outcome: &AdmitOutcome,
    ) {
        let Some(store) = self.store.as_ref() else { return };
        let admits_since = if outcome.admitted.is_some() {
            self.admits_since_snapshot.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            self.admits_since_snapshot.load(Ordering::Relaxed)
        };
        let directive = persist::journal_outcome(
            store,
            &self.health,
            &self.config,
            admits_since,
            query,
            kind,
            answer,
            base_tests,
            base_cost,
            now,
            outcome.admitted,
            &outcome.evicted,
        );
        self.dispatch_directive(directive);
    }

    /// Act on a journal append's follow-up. Must be called without holding
    /// the `data` lock or any shard lock: both snapshot paths re-acquire
    /// them.
    fn dispatch_directive(&self, directive: persist::PersistDirective) {
        match directive {
            persist::PersistDirective::Nothing => {}
            persist::PersistDirective::Rotate => {
                if let Err(e) = self.snapshot_now() {
                    eprintln!("graphcache: auto-snapshot failed ({e})");
                    self.health.note_error();
                    self.health.trip_degraded();
                }
            }
            persist::PersistDirective::Probe => self.maybe_probe_persistence(),
        }
    }

    // ---- dataset mutation ---------------------------------------------------

    /// Insert a data graph into the live dataset; returns its id. Callable
    /// from any thread (`&self`): the mutation takes the dataset write
    /// lock, which waits out every in-flight query and blocks new ones, so
    /// the repair below is atomic with respect to queries.
    ///
    /// Repairs mirror the sequential runtime: the method index is offered
    /// the graph (the filter overlay covers methods that decline), every
    /// cached answer set re-verifies the new graph where its summary
    /// prefilter admits it, the answer memo invalidates via the generation
    /// bump, and the delta is journaled — inside the write lock, so deltas
    /// always land in generation order.
    pub fn insert_graph(&self, g: Graph) -> GraphId {
        let mut data = self.data.write();
        let gid = Arc::make_mut(&mut data.dataset).insert_graph(g);
        let universe = data.dataset.len();
        if data.overlay.universe() < universe {
            data.overlay.grow(universe);
        }
        if !self.method.on_insert_graph(&data.dataset, gid) {
            data.overlay.insert(gid as usize);
        }
        let engine = self.config.engine;
        for shard in self.shards.iter() {
            let mut state = shard.state.write();
            for id in state.cache.ids() {
                let entry = state.cache.get_mut(id).expect("listed id is live");
                entry.answer.grow(universe);
                if entry.answers_inserted(&data.dataset, gid, engine) {
                    entry.answer.insert(gid as usize);
                }
            }
        }
        let directive = self.journal_dataset_delta(&data.dataset);
        drop(data);
        self.dispatch_directive(directive);
        gid
    }

    /// Tombstone a data graph; returns `false` if already removed. Same
    /// quiescing discipline as [`Self::insert_graph`]; the graph is cleared
    /// from every shard's cached answer sets.
    pub fn remove_graph(&self, gid: GraphId) -> bool {
        let mut data = self.data.write();
        if !Arc::make_mut(&mut data.dataset).remove_graph(gid) {
            return false;
        }
        self.method.on_remove_graph(&data.dataset, gid);
        if (gid as usize) < data.overlay.universe() {
            data.overlay.remove(gid as usize);
        }
        for shard in self.shards.iter() {
            let mut state = shard.state.write();
            for id in state.cache.ids() {
                let entry = state.cache.get_mut(id).expect("listed id is live");
                entry.answer.remove(gid as usize);
            }
        }
        let directive = self.journal_dataset_delta(&data.dataset);
        drop(data);
        self.dispatch_directive(directive);
        true
    }

    /// Append the dataset's latest mutation to the attached journal.
    /// Called while holding the `data` write lock (ordering the delta with
    /// its generation); the returned directive must be dispatched *after*
    /// the lock drops.
    fn journal_dataset_delta(&self, dataset: &Dataset) -> persist::PersistDirective {
        let Some(store) = self.store.as_ref() else {
            return persist::PersistDirective::Nothing;
        };
        persist::journal_dataset_delta(
            store,
            &self.health,
            &self.config,
            self.admits_since_snapshot.load(Ordering::Relaxed),
            dataset,
        )
    }

    /// While [`PersistHealth::Degraded`] and a recovery probe is due, try
    /// to cut a fresh full snapshot: success re-arms durability (the
    /// snapshot subsumes every buffered mutation), failure backs the probe
    /// off — until the probe budget disables persistence.
    fn maybe_probe_persistence(&self) {
        if self.store.is_none()
            || self.health.health() != PersistHealth::Degraded
            || !self.health.probe_due()
        {
            return;
        }
        match self.snapshot_now() {
            Ok(Some(info)) => {
                self.health.mark_recovered();
                eprintln!(
                    "graphcache: persistence recovered (fresh snapshot, generation {})",
                    info.generation
                );
            }
            // Another thread's snapshot is in flight; the probe deadline
            // stays due and the next query retries.
            Ok(None) => {}
            Err(_) => self.health.probe_failed(self.config.persist_max_probes),
        }
    }

    /// Serve an exact hit from `home`; `None` if the entry vanished between
    /// the read-locked check and this write section (caller falls back to
    /// the full pipeline).
    fn serve_exact(
        &self,
        home: usize,
        query: &Graph,
        kind: QueryKind,
        now: u64,
        start: Instant,
    ) -> Option<QueryReport> {
        let shard = &self.shards[home];
        let mut state = shard.state.write();
        let id = probe::find_exact(&state.cache, query, kind)?;
        let mut policy = shard.policy.lock();
        let (answer, base_tests, _base_cost) =
            admit::serve_exact(&mut state.cache, policy.as_mut(), id, now)?;
        drop(policy);
        drop(state);
        let elapsed = start.elapsed();
        self.stats.add(&pipeline::exact_stats_delta(base_tests, elapsed));
        Some(pipeline::exact_report(answer, kind, base_tests, elapsed))
    }

    // ---- durable state (snapshot + journal) -------------------------------

    /// Attach a persistence store: writes an initial snapshot of the
    /// current state (establishing the journal's base), then journals
    /// every admission/eviction and honours the config's
    /// `snapshot_interval` / `journal_max_bytes` auto-snapshot knobs.
    ///
    /// Takes `&mut self`, so attach before sharing the cache behind an
    /// `Arc` (construction-time wiring, like the policy).
    pub fn attach_store(&mut self, store: Arc<CacheStore>) -> Result<SnapshotInfo, String> {
        store.set_fsync_policy(self.config.fsync_policy);
        self.store = Some(store);
        self.health = Arc::new(StoreHealth::new());
        self.snapshot_now().map(|info| info.expect("store just attached"))
    }

    /// Snapshot the whole cache to the attached store, quiescing **one
    /// shard at a time**: each shard's entries are captured under its read
    /// lock while queries on every other shard proceed untouched.
    ///
    /// The union is a *fuzzy* cut, not a single instant's: an admission
    /// racing the rotation (mutated in its shard after that shard's
    /// capture, journal append discarded by the rotation) can be absent
    /// from both the snapshot and the surviving journal. This is
    /// warmth-only — every captured entry is a self-contained verified
    /// answer set, replay tolerates the overlaps, and a lost in-flight
    /// admission is simply re-executed after a restart. The sequential
    /// runtime's exact `restore(snapshot(cache)) ≡ cache` guarantee
    /// applies to the sharded front-end only when rotation does not race
    /// queries (shutdown snapshots, or a [`crate::Snapshotter`] tick in a
    /// quiet period); a linearizable concurrent cut is a ROADMAP item.
    ///
    /// Returns `Ok(None)` when no store is attached or another thread's
    /// snapshot is already in flight (single-flight).
    pub fn snapshot_now(&self) -> Result<Option<SnapshotInfo>, String> {
        let Some(store) = self.store.as_ref() else { return Ok(None) };
        if self.snapshotting.swap(true, Ordering::Acquire) {
            return Ok(None);
        }
        let result = {
            // Dataset read lock FIRST (the cache-wide lock order), held
            // across the rotation: a mutation arriving mid-snapshot waits
            // on the write lock, so its delta lands in the *new* journal —
            // never silently dropped by the rotation — and the captured
            // doc is one consistent dataset generation.
            let data = self.data.read();
            let mut entries: Vec<EntryRecord> = Vec::new();
            for (si, shard) in self.shards.iter().enumerate() {
                let state = shard.state.read();
                for e in state.cache.iter() {
                    let mut rec = persist::entry_to_record(e);
                    rec.orig_id = encode_entry_id(si, e.id);
                    entries.push(rec);
                }
            }
            let doc = persist::build_doc(
                &data.dataset,
                &self.stats.snapshot(),
                &self.cost,
                self.clock.load(Ordering::Relaxed),
                0, // per-shard window pending is not persisted (resets on restart)
                self.policy_name,
                entries.into_iter(),
            );
            store.rotate(&doc).map_err(|e| format!("snapshot failed: {e}"))
        };
        if result.is_ok() {
            // Reset only on success: after a failed rotation (e.g. disk
            // full) the next admission retries instead of waiting out a
            // whole fresh interval.
            self.admits_since_snapshot.store(0, Ordering::Relaxed);
        }
        self.snapshotting.store(false, Ordering::Release);
        result.map(Some)
    }

    /// The attached persistence store, if any.
    pub fn attached_store(&self) -> Option<&CacheStore> {
        self.store.as_deref()
    }

    /// Persistence health of the attached store (`None` when detached).
    /// `Degraded`/`Disabled` mean journaling is paused — the cache keeps
    /// serving exact answers memory-only; see [`crate::persist`].
    pub fn persist_health(&self) -> Option<PersistHealth> {
        self.store.as_ref().map(|_| self.health.health())
    }

    /// Build a shared cache and warm-restart it from `store`: replay
    /// snapshot then journal (each restored entry routed to its home shard
    /// by fingerprint and re-admitted through the normal insert path),
    /// attach the store, and write a fresh snapshot. Fail-closed like
    /// [`crate::GraphCache::restore_from`]: anything invalid yields a cold
    /// cache plus the reason in the [`RecoveryReport`].
    pub fn restore_from(
        dataset: Arc<Dataset>,
        method: Arc<dyn Method>,
        make_policy: impl Fn() -> Box<dyn ReplacementPolicy>,
        config: CacheConfig,
        store: Arc<CacheStore>,
    ) -> Result<(Self, RecoveryReport), String> {
        let mut gc = Self::new(dataset, method, make_policy, config)?;
        let report = gc.restore_state(&store);
        gc.attach_store(store)?;
        Ok((gc, report))
    }

    /// Replay `store`'s recovered state into this (fresh) cache.
    fn restore_state(&mut self, store: &CacheStore) -> RecoveryReport {
        let state = match store.load() {
            LoadOutcome::Cold { reason } => return RecoveryReport::cold(reason),
            LoadOutcome::Warm(state) => state,
        };
        // Resolve the dataset the persisted state describes *first* (see
        // the sequential runtime): snapshot ops + journal deltas, each
        // fingerprint-validated, then replay entries at the final universe.
        let base = Arc::clone(&self.data.get_mut().dataset);
        let resolved = match persist::resolve_dataset(&state, &base) {
            Ok(resolved) => resolved,
            Err(report) => return *report,
        };
        let persist::ResolvedDataset { dataset, journal_inserted, journal_deltas } = resolved;
        let dataset = Arc::new(dataset);
        self.cost = CostModel::new(&dataset);
        {
            let data = self.data.get_mut();
            data.overlay = persist::rebuild_method_overlay(self.method.as_ref(), &dataset);
            data.dataset = Arc::clone(&dataset);
        }

        struct ShardedTarget<'a> {
            shards: &'a [Shard],
            now_hint: u64,
        }
        impl persist::ReplayTarget for ShardedTarget<'_> {
            fn insert(&mut self, e: RestoredEntry) -> Option<u32> {
                let fp = gc_graph::hash::fingerprint(&e.graph);
                let home = (fp % self.shards.len() as u64) as usize;
                let shard = &self.shards[home];
                let mut state = shard.state.write();
                if probe::find_exact(&state.cache, &e.graph, e.kind).is_some() {
                    return None; // order-tolerant duplicate skip
                }
                let stats = e.stats.clone();
                let id = state.cache.insert(
                    e.graph,
                    e.kind,
                    e.answer,
                    e.base_tests,
                    e.base_cost,
                    stats.inserted_at,
                );
                let slot = state.cache.get_mut(id).expect("just inserted");
                slot.stats = e.stats;
                let bytes = state.cache.get(id).expect("just inserted").memory_bytes();
                shard.policy.lock().on_restore(id, &stats, bytes, self.now_hint);
                Some(encode_entry_id(home, id))
            }

            fn evict(&mut self, key: u32) {
                let (si, local) = SharedGraphCache::decode_entry_id(key);
                let shard = &self.shards[si];
                let mut state = shard.state.write();
                if state.cache.remove(local).is_some() {
                    shard.policy.lock().on_evict(local);
                }
            }
        }

        let snapshot_entries = state.doc.entries.len();
        let mut target = ShardedTarget { shards: &self.shards, now_hint: state.doc.clock };
        let counts = persist::replay(&state, dataset.len(), &mut target);
        self.clock.store(counts.max_now, Ordering::Relaxed);

        // Enforce each shard's capacity share, allowing the legitimate
        // in-window transient (`+ window_size - 1`) so a same-config
        // restore reproduces the snapshotted state; only smaller restoring
        // configs (or different shard routing) trigger a trim.
        for (si, shard) in self.shards.iter().enumerate() {
            let mut shard_state = shard.state.write();
            let mut policy = shard.policy.lock();
            let allowance = self.limits[si].capacity + self.config.window_size - 1;
            if shard_state.cache.len() > allowance {
                let excess = shard_state.cache.len() - self.limits[si].capacity;
                for victim in policy.victims(excess) {
                    if shard_state.cache.remove(victim).is_some() {
                        policy.on_evict(victim);
                    }
                }
            }
        }
        self.stats.add(&persist::stats_from_records(&state.doc.stats));
        for (gid, &(est, observed)) in state.doc.cost.iter().enumerate() {
            self.cost.restore_estimate(gid, est, observed);
        }

        // Repair replayed answers against mutations their records predate
        // (same post-pass as the sequential runtime, per shard).
        let engine = self.config.engine;
        for shard in self.shards.iter() {
            let mut shard_state = shard.state.write();
            for id in shard_state.cache.ids() {
                let entry = shard_state.cache.get_mut(id).expect("listed id is live");
                if dataset.has_tombstones() {
                    entry.answer.intersect_with(dataset.live_mask());
                }
                for &gid in &journal_inserted {
                    if !dataset.live_mask().contains(gid as usize) {
                        continue; // inserted then removed: stays masked out
                    }
                    if entry.answers_inserted(&dataset, gid, engine) {
                        entry.answer.insert(gid as usize);
                    } else {
                        entry.answer.remove(gid as usize);
                    }
                }
            }
        }

        RecoveryReport {
            warm: true,
            cold_reason: None,
            generation: state.generation,
            snapshot_entries,
            journal_admits: counts.journal_admits,
            journal_evicts: counts.journal_evicts,
            journal_deltas,
            journal_torn_bytes: state.torn_tail_bytes,
            entries_restored: self.len(),
            clock: counts.max_now,
        }
    }

    // ---- accessors --------------------------------------------------------

    /// Run `f` over every shard's cache manager under its read lock, in
    /// shard order (diagnostics and invariant checks; the lock is held only
    /// for the duration of each call).
    pub fn for_each_shard(&self, mut f: impl FnMut(usize, &CacheManager)) {
        for (si, shard) in self.shards.iter().enumerate() {
            let state = shard.state.read();
            f(si, &state.cache);
        }
    }

    /// Snapshot of the global statistics, with the index-health gauges
    /// populated by summing every shard's containment-index directory.
    pub fn stats(&self) -> GlobalStats {
        let mut s = self.stats.snapshot();
        let health = self.index_health();
        s.distinct_features = health.distinct_features as u64;
        s.tombstoned_slots = health.tombstoned_slots as u64;
        s.kernel_dispatch = gc_graph::simd::kernel_name();
        {
            let data = self.data.read();
            s.dataset_generation = data.dataset.generation();
            s.dataset_live_graphs = data.dataset.live_count() as u64;
        }
        if self.store.is_some() {
            s.persist_health = self.health.health().as_str();
            s.persist_errors = self.health.errors();
            s.journal_records_buffered = self.health.buffered();
        }
        s.pipeline_p50_us = self.telemetry.total().percentile_us(50.0);
        s.pipeline_p99_us = self.telemetry.total().percentile_us(99.0);
        s.traces_sampled = self.telemetry.sampled_count();
        s.slow_queries = self.telemetry.slow_count();
        s
    }

    /// The pipeline telemetry hub: stage histograms, sampled traces, and
    /// the slow-query ring.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Point-in-time index-health gauges, summed across shards (each shard
    /// read under its own lock, like [`SharedGraphCache::for_each_shard`]).
    pub fn index_health(&self) -> IndexHealth {
        let mut health = IndexHealth::default();
        self.for_each_shard(|_, cm| {
            health.distinct_features += cm.index().distinct_features();
            health.tombstoned_slots += cm.index().tombstoned_slots();
        });
        health
    }

    /// Shared handle to the Statistics Monitor (lock-free).
    pub fn monitor(&self) -> StatsMonitor {
        self.stats.clone()
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.state.read().cache.len()).sum()
    }

    /// `true` iff no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The active configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The replacement policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy_name
    }

    /// The base method's name.
    pub fn method_name(&self) -> String {
        self.method.name()
    }

    /// The dataset this cache serves (a point-in-time handle: mutations
    /// swap the shared `Arc`, so hold the clone only as long as a stale
    /// view is acceptable).
    pub fn dataset(&self) -> Arc<Dataset> {
        Arc::clone(&self.data.read().dataset)
    }

    /// Live answers in the generation-versioned memo (diagnostics).
    pub fn memo_len(&self) -> usize {
        self.memo.lock().len()
    }

    /// Cache memory footprint across shards (entries + per-shard index).
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.state.read().cache.memory_bytes()).sum()
    }

    /// Split an encoded entry id from a [`QueryReport`] into
    /// `(shard, local_id)`.
    pub fn decode_entry_id(id: EntryId) -> (usize, EntryId) {
        ((id >> LOCAL_BITS) as usize, id & LOCAL_MASK)
    }
}

fn encode_entry_id(shard: usize, local: EntryId) -> EntryId {
    debug_assert!(local <= LOCAL_MASK, "shard-local id overflows encoding");
    ((shard as EntryId) << LOCAL_BITS) | local
}

fn encode_hits(shard: usize, hits: &CacheHits) -> CacheHits {
    CacheHits {
        exact: hits.exact.map(|id| encode_entry_id(shard, id)),
        sub: hits.sub.iter().map(|&id| encode_entry_id(shard, id)).collect(),
        super_: hits.super_.iter().map(|&id| encode_entry_id(shard, id)).collect(),
        probe_tests: hits.probe_tests,
        probe_steps: hits.probe_steps,
    }
}

impl std::fmt::Debug for SharedGraphCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedGraphCache")
            .field("method", &self.method.name())
            .field("policy", &self.policy_name)
            .field("shards", &self.shards.len())
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_method::SiMethod;

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<gc_graph::Label> = labels.iter().map(|&l| gc_graph::Label(l)).collect();
        gc_graph::graph_from_parts(&ls, edges).unwrap()
    }

    fn dataset() -> Arc<Dataset> {
        Arc::new(Dataset::new(vec![
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]),
            g(&[3, 3], &[(0, 1)]),
            g(&[0, 1], &[(0, 1)]),
        ]))
    }

    fn shared(config: CacheConfig) -> SharedGraphCache {
        SharedGraphCache::with_policy(dataset(), Box::new(SiMethod), PolicyKind::Hd, config)
            .unwrap()
    }

    #[test]
    fn answers_match_sequential_and_repeats_hit_exactly() {
        let ds = dataset();
        let gc = shared(CacheConfig::default());
        let mut seq = crate::GraphCache::with_policy(
            ds,
            Box::new(SiMethod),
            PolicyKind::Hd,
            CacheConfig::default(),
        )
        .unwrap();
        let queries = [g(&[0, 1], &[(0, 1)]), g(&[0], &[]), g(&[3], &[]), g(&[0, 1], &[(0, 1)])];
        for q in &queries {
            let a = gc.query(q, QueryKind::Subgraph);
            let b = seq.query(q, QueryKind::Subgraph);
            assert_eq!(a.answer, b.answer);
            assert_eq!(a.exact_hit, b.exact_hit);
        }
        assert_eq!(gc.stats().exact_hits, 1, "the repeat is an exact hit");
        assert_eq!(gc.len(), seq.len());
    }

    #[test]
    fn concurrent_queries_are_exact() {
        let gc = Arc::new(shared(CacheConfig {
            capacity: 8,
            window_size: 2,
            shards: 4,
            ..CacheConfig::default()
        }));
        let queries =
            [g(&[0, 1], &[(0, 1)]), g(&[0], &[]), g(&[3], &[]), g(&[1, 0, 1], &[(0, 1), (1, 2)])];
        // Precompute expected answers sequentially (answers are
        // cache-state-independent).
        let expected: Vec<Vec<usize>> =
            queries.iter().map(|q| gc.query(q, QueryKind::Subgraph).answer.to_vec()).collect();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let gc = Arc::clone(&gc);
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    for round in 0..25 {
                        let i = (t + round) % queries.len();
                        let got = gc.query(&queries[i], QueryKind::Subgraph);
                        assert_eq!(got.answer.to_vec(), expected[i]);
                    }
                });
            }
        });
        let stats = gc.stats();
        assert_eq!(stats.queries, 4 + 8 * 25);
        assert!(stats.exact_hits > 0);
    }

    #[test]
    fn capacity_is_respected_across_shards() {
        let gc = shared(CacheConfig {
            capacity: 4,
            window_size: 1,
            shards: 2,
            min_admit_tests: 0,
            ..CacheConfig::default()
        });
        for i in 0..20u32 {
            // Distinct single-vertex queries with distinct labels.
            gc.query(&g(&[i], &[]), QueryKind::Subgraph);
        }
        // Per-shard capacity is 4/2 = 2; window 1 sweeps on every
        // admission, so the resting total never exceeds the configured
        // capacity — same bound as the sequential runtime.
        assert!(gc.len() <= 4, "len {} exceeds configured capacity", gc.len());
        assert!(gc.stats().evicted > 0);
    }

    #[test]
    fn total_capacity_not_inflated_by_many_shards() {
        // capacity < shards: the per-shard split is 1,1,1,0,0,0,0,0 —
        // the shared cache must not retain ~shards entries for a
        // capacity-3 config (the former div_ceil split retained one per
        // shard, inflating capacity by up to 8x).
        let gc = shared(CacheConfig {
            capacity: 3,
            window_size: 1,
            shards: 8,
            min_admit_tests: 0,
            ..CacheConfig::default()
        });
        for i in 0..40u32 {
            gc.query(&g(&[i], &[]), QueryKind::Subgraph);
        }
        assert!(gc.len() <= 3, "len {} exceeds configured capacity 3", gc.len());
    }

    #[test]
    fn entry_id_encoding_roundtrips() {
        for (shard, local) in [(0usize, 0u32), (3, 17), (255, LOCAL_MASK)] {
            let enc = encode_entry_id(shard, local);
            assert_eq!(SharedGraphCache::decode_entry_id(enc), (shard, local));
        }
    }

    #[test]
    fn single_shard_config_works() {
        let gc = shared(CacheConfig { shards: 1, ..CacheConfig::default() });
        let q = g(&[0, 1], &[(0, 1)]);
        let r1 = gc.query(&q, QueryKind::Subgraph);
        let r2 = gc.query(&q, QueryKind::Subgraph);
        assert!(!r1.exact_hit && r2.exact_hit);
        assert_eq!(r1.answer, r2.answer);
        assert_eq!(gc.shard_count(), 1);
    }

    #[test]
    fn invalid_config_rejected() {
        let err = SharedGraphCache::with_policy(
            dataset(),
            Box::new(SiMethod),
            PolicyKind::Lru,
            CacheConfig { shards: 0, ..CacheConfig::default() },
        );
        assert!(err.is_err());
    }
}
