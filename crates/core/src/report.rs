//! Per-query reports for the Demonstrator.

use crate::entry::EntryId;
use gc_graph::BitSet;
use gc_method::QueryKind;
use std::time::Duration;

/// Point-in-time health gauges of the containment index's posting
/// directory — the compaction signals of the tombstoned directory
/// maintenance (PR 4), surfaced here so dashboards and operators never
/// need to poke `gc_index` directly. Read via
/// [`crate::GraphCache::index_health`] /
/// [`crate::SharedGraphCache::index_health`]; also mirrored into the
/// gauge fields of [`crate::GlobalStats`] snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexHealth {
    /// Distinct live feature hashes in the directory.
    pub distinct_features: usize,
    /// Tombstoned (evicted, not yet compacted) directory slots.
    pub tombstoned_slots: usize,
}

impl IndexHealth {
    /// Tombstoned fraction of the directory (0.0 when empty). Lazy
    /// compaction keeps this below the configured
    /// `compact_tombstone_pct`; a persistently high value means the
    /// threshold is too permissive for the workload's churn.
    pub fn tombstone_ratio(&self) -> f64 {
        let total = self.distinct_features + self.tombstoned_slots;
        if total == 0 {
            0.0
        } else {
            self.tombstoned_slots as f64 / total as f64
        }
    }
}

/// Everything GraphCache can tell about one processed query — the data
/// behind the demo's Query Journey (Fig. 3) and the Demonstrator panels.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// The exact answer set `A` (Fig. 3(h)).
    pub answer: BitSet,
    /// `C_M` — Method M's candidate set (Fig. 3(b)). Empty for exact hits
    /// (the filter is skipped entirely on that fast path).
    pub cm_set: BitSet,
    /// `S` — definite answers contributed by hits (Fig. 3(c)).
    pub definite_set: BitSet,
    /// `C` — the reduced candidate set that was verified (Fig. 3(f)).
    pub verified_set: BitSet,
    /// `R` — candidates that survived verification (Fig. 3(g)).
    pub survivors_set: BitSet,
    /// Query kind.
    pub kind: QueryKind,
    /// `true` when an exact-match hit served the query outright.
    pub exact_hit: bool,
    /// `true` when the generation-versioned answer memo served the query
    /// (no cache entry involved; filter/probe/verify all skipped).
    pub memo_hit: bool,
    /// Sub-case hit entries (`H` in Fig. 3(a)).
    pub sub_hits: Vec<EntryId>,
    /// Super-case hit entries (`H'` in Fig. 3(e)).
    pub super_hits: Vec<EntryId>,
    /// `|C_M|` — Method M's candidate count (Fig. 3(b)); for exact hits this
    /// is the stored base count of the matching entry.
    pub cm_size: usize,
    /// `|S|` — definite answers from hits (Fig. 3(c)).
    pub definite: usize,
    /// `|C|` — candidates actually verified (Fig. 3(f)).
    pub verified: usize,
    /// `|R|` — candidates surviving verification (Fig. 3(g)).
    pub survivors: usize,
    /// Sub-iso tests against dataset graphs (= `verified`), plus cache
    /// probes in `probe_tests`.
    pub sub_iso_tests: u64,
    /// Sub-iso tests spent probing the cache for hits.
    pub probe_tests: u64,
    /// Verifier steps over dataset graphs.
    pub verify_steps: u64,
    /// Verifier steps spent probing the cache.
    pub probe_steps: u64,
    /// Entry admitted for this query, if any.
    pub admitted: Option<EntryId>,
    /// Entries evicted while admitting this query's window.
    pub evicted: Vec<EntryId>,
    /// Wall-clock time of the whole `query()` call.
    pub elapsed: Duration,
}

impl QueryReport {
    /// Per-query speedup in number of sub-iso tests relative to Method M
    /// alone: `|C_M| / (|C| + probes)` (the demo reports 75/43 = 1.74; we
    /// charge probe tests too, so the cache pays its own overhead).
    pub fn test_speedup(&self) -> f64 {
        let denom = self.sub_iso_tests + self.probe_tests;
        if denom == 0 {
            // Entire candidate set resolved from cache: infinite speedup is
            // reported as the base count (bounded for aggregation).
            return self.cm_size.max(1) as f64;
        }
        self.cm_size as f64 / denom as f64
    }

    /// Total savings in sub-iso tests versus Method M alone (can be negative
    /// when probing outweighs pruning).
    pub fn tests_saved(&self) -> i64 {
        self.cm_size as i64 - (self.sub_iso_tests + self.probe_tests) as i64
    }

    /// `true` if any hit (memo, exact, sub, super) occurred.
    pub fn any_hit(&self) -> bool {
        self.memo_hit || self.exact_hit || !self.sub_hits.is_empty() || !self.super_hits.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_report() -> QueryReport {
        QueryReport {
            answer: BitSet::new(10),
            cm_set: BitSet::new(10),
            definite_set: BitSet::new(10),
            verified_set: BitSet::new(10),
            survivors_set: BitSet::new(10),
            kind: QueryKind::Subgraph,
            exact_hit: false,
            memo_hit: false,
            sub_hits: vec![],
            super_hits: vec![],
            cm_size: 75,
            definite: 1,
            verified: 43,
            survivors: 14,
            sub_iso_tests: 43,
            probe_tests: 0,
            verify_steps: 0,
            probe_steps: 0,
            admitted: None,
            evicted: vec![],
            elapsed: Duration::ZERO,
        }
    }

    #[test]
    fn fig3_speedup() {
        // The demo's example: 75 -> 43 gives 1.74.
        let r = base_report();
        assert!((r.test_speedup() - 75.0 / 43.0).abs() < 1e-9);
        assert_eq!(r.tests_saved(), 32);
        assert!(!r.any_hit());
    }

    #[test]
    fn probes_charged() {
        let mut r = base_report();
        r.probe_tests = 7;
        assert!((r.test_speedup() - 75.0 / 50.0).abs() < 1e-9);
        assert_eq!(r.tests_saved(), 25);
    }

    #[test]
    fn index_health_ratio() {
        let h = IndexHealth { distinct_features: 6, tombstoned_slots: 2 };
        assert!((h.tombstone_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(IndexHealth::default().tombstone_ratio(), 0.0);
    }

    #[test]
    fn exact_hit_speedup_bounded() {
        let mut r = base_report();
        r.exact_hit = true;
        r.sub_iso_tests = 0;
        r.verified = 0;
        assert_eq!(r.test_speedup(), 75.0);
        assert!(r.any_hit());
    }
}
