//! Kernel-side persistence wiring: snapshot construction, fail-closed
//! recovery replay, and the periodic snapshotter.
//!
//! The on-disk formats live in [`gc_store`]; this module converts between
//! the kernel's live types ([`CacheEntry`], [`GlobalStats`],
//! [`crate::CostModel`]) and the store's portable records, and implements
//! the *replay* algorithm both runtimes share:
//!
//! 1. every snapshot entry is re-admitted through the cache's **normal
//!    insert path** (features, fingerprints, profiles and indexes are all
//!    recomputed — the on-disk format knows nothing about index layout),
//!    its accumulated statistics restored, and the replacement policy
//!    warmed via [`crate::ReplacementPolicy::on_restore`];
//! 2. journal records are applied in append order: admissions insert like
//!    snapshot entries (fresh statistics), evictions remove the entry the
//!    journal's originating id maps to. Replay is *order-tolerant*: an
//!    eviction whose target never appeared is skipped and a duplicate
//!    admission (exact match already cached) is skipped — both can occur
//!    under the sharded front-end's relaxed append ordering, and both are
//!    sound because every record carries a complete verified answer set;
//! 3. the caller enforces capacity with a final replacement sweep and
//!    immediately rotates the store, so the new process's journal is never
//!    entangled with the old process's entry-id namespace.
//!
//! Anything invalid — checksum or framing failures, a dataset mismatch —
//! degrades to a cold start ([`RecoveryReport::warm`] = false, reason
//! attached). Corruption costs warmth, never correctness.

use crate::entry::{CacheEntry, EntryStats};
use crate::stats::GlobalStats;
use gc_method::Dataset;
use gc_store::{EntryRecord, EntryStatsRecord, JournalRecord, RecoveredState, SnapshotDoc};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

pub use gc_store::{
    inspect_dir, CacheStore, DoctorReport, Failpoint, FaultPlan, FaultSite, FsyncPolicy,
    LoadOutcome, RestoreVerdict, SnapshotInfo,
};

/// What a restart recovered, for logs and dashboards.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// `true` when snapshot + journal were valid and replayed; `false` for
    /// a cold start.
    pub warm: bool,
    /// Why the start was cold (missing files on first boot, or the
    /// corruption/mismatch that was detected and failed closed).
    pub cold_reason: Option<String>,
    /// Generation of the restored snapshot (0 when cold).
    pub generation: u64,
    /// Entries in the snapshot.
    pub snapshot_entries: usize,
    /// Admissions replayed from the journal.
    pub journal_admits: usize,
    /// Evictions replayed from the journal.
    pub journal_evicts: usize,
    /// Dataset mutations (inserts/removes) replayed from the journal.
    pub journal_deltas: usize,
    /// Live entries after replay and the capacity sweep.
    pub entries_restored: usize,
    /// Restored logical clock.
    pub clock: u64,
    /// Bytes of a torn journal tail (a crash mid-append) dropped during
    /// recovery; 0 for a clean journal.
    pub journal_torn_bytes: usize,
}

impl RecoveryReport {
    /// A cold-start report with the given reason.
    pub fn cold(reason: impl Into<String>) -> Self {
        RecoveryReport { warm: false, cold_reason: Some(reason.into()), ..Default::default() }
    }

    /// One-line human-readable summary.
    pub fn describe(&self) -> String {
        if self.warm {
            let torn = if self.journal_torn_bytes > 0 {
                format!(", dropped a {}-byte torn journal tail", self.journal_torn_bytes)
            } else {
                String::new()
            };
            let deltas = if self.journal_deltas > 0 {
                format!(", {} dataset delta(s)", self.journal_deltas)
            } else {
                String::new()
            };
            format!(
                "warm restart: {} entries restored (snapshot {} + journal {} admits / {} \
                 evicts{deltas}), generation {}, clock {}{torn}",
                self.entries_restored,
                self.snapshot_entries,
                self.journal_admits,
                self.journal_evicts,
                self.generation,
                self.clock
            )
        } else {
            format!("cold start: {}", self.cold_reason.as_deref().unwrap_or("no persisted state"))
        }
    }
}

// ---- live type ⇄ portable record conversions --------------------------------

pub(crate) fn entry_to_record(e: &CacheEntry) -> EntryRecord {
    EntryRecord {
        orig_id: e.id,
        graph: e.graph.clone(),
        kind: e.kind,
        answer: e.answer.iter().map(|i| i as u32).collect(),
        base_tests: e.base_tests,
        base_cost: e.base_cost,
        stats: EntryStatsRecord {
            inserted_at: e.stats.inserted_at,
            last_used: e.stats.last_used,
            exact_hits: e.stats.exact_hits,
            sub_hits: e.stats.sub_hits,
            super_hits: e.stats.super_hits,
            tests_saved: e.stats.tests_saved,
            cost_saved: e.stats.cost_saved,
        },
    }
}

pub(crate) fn record_to_stats(r: &EntryStatsRecord) -> EntryStats {
    EntryStats {
        inserted_at: r.inserted_at,
        last_used: r.last_used,
        exact_hits: r.exact_hits,
        sub_hits: r.sub_hits,
        super_hits: r.super_hits,
        tests_saved: r.tests_saved,
        cost_saved: r.cost_saved,
    }
}

/// Counter names persisted in snapshots. Self-describing: a restore reads
/// known names and ignores unknown ones, so adding counters never
/// invalidates old snapshots. The index-health gauges are deliberately
/// absent — they are recomputed from the rebuilt index.
macro_rules! for_each_persisted_counter {
    ($cb:ident) => {
        $cb!(queries);
        $cb!(hit_queries);
        $cb!(exact_hits);
        $cb!(memo_hits);
        $cb!(queries_with_sub_hits);
        $cb!(queries_with_super_hits);
        $cb!(sub_hits);
        $cb!(super_hits);
        $cb!(tests_executed);
        $cb!(probe_tests);
        $cb!(tests_saved);
        $cb!(verify_steps);
        $cb!(probe_steps);
        $cb!(admitted);
        $cb!(evicted);
        $cb!(admission_rejected);
    };
}

pub(crate) fn stats_to_records(s: &GlobalStats) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    macro_rules! push_field {
        ($f:ident) => {
            out.push((stringify!($f).to_string(), s.$f));
        };
    }
    for_each_persisted_counter!(push_field);
    out.push(("total_time_nanos".to_string(), s.total_time.as_nanos() as u64));
    out
}

pub(crate) fn stats_from_records(records: &[(String, u64)]) -> GlobalStats {
    let mut s = GlobalStats::default();
    for (name, value) in records {
        macro_rules! match_field {
            ($f:ident) => {
                if name == stringify!($f) {
                    s.$f = *value;
                    continue;
                }
            };
        }
        for_each_persisted_counter!(match_field);
        if name == "total_time_nanos" {
            s.total_time = Duration::from_nanos(*value);
        }
        // Unknown names: ignored (forward compatibility).
    }
    s
}

// ---- snapshot assembly -------------------------------------------------------

/// Assemble a [`SnapshotDoc`] from runtime state. `entries` must yield every
/// live entry (the sharded front-end passes encoded ids via the entries it
/// clones under per-shard read locks).
pub(crate) fn build_doc<'a>(
    dataset: &Dataset,
    stats: &GlobalStats,
    cost: &crate::cost::CostModel,
    clock: u64,
    window_pending: u32,
    policy_name: &str,
    entries: impl Iterator<Item = EntryRecord> + 'a,
) -> SnapshotDoc {
    // Graphs inserted after the cost model was sized have no slot yet;
    // pad with the OOB default so the exported vector always spans the
    // dataset (the restore re-seeds from real sizes anyway).
    let mut cost = cost.export();
    cost.resize(dataset.len(), (1.0, false));
    SnapshotDoc {
        dataset_fingerprint: dataset.content_fingerprint(),
        base_fingerprint: dataset.base_fingerprint(),
        dataset_generation: dataset.generation(),
        dataset_ops: dataset.ops().to_vec(),
        universe: dataset.len() as u64,
        clock,
        window_pending,
        policy_name: policy_name.to_string(),
        stats: stats_to_records(stats),
        cost,
        entries: entries.collect(),
    }
}

// ---- replay ------------------------------------------------------------------

/// A restorable entry handed to the runtime's insert callback.
pub(crate) struct RestoredEntry {
    pub graph: gc_graph::Graph,
    pub kind: gc_method::QueryKind,
    pub answer: gc_graph::BitSet,
    pub base_tests: u64,
    pub base_cost: u64,
    pub stats: EntryStats,
}

/// Replay tallies the caller folds into its [`RecoveryReport`].
#[derive(Debug, Default)]
pub(crate) struct ReplayCounts {
    pub journal_admits: usize,
    pub journal_evicts: usize,
    /// Highest logical time seen anywhere in the recovered state.
    pub max_now: u64,
}

/// Where replayed records land: the sequential runtime's `(cache, policy)`
/// pair or one write-locked shard per entry of the concurrent front-end.
pub(crate) trait ReplayTarget {
    /// Re-admit one entry through the normal insert path; returns the key
    /// evictions reference it by (`None` = skipped, e.g. an exact
    /// duplicate).
    fn insert(&mut self, entry: RestoredEntry) -> Option<u32>;
    /// Remove a previously inserted key.
    fn evict(&mut self, key: u32);
}

/// Replay `state` into `target`.
///
/// The originating-id → key map lives here so both runtimes share the
/// order-tolerant semantics documented on the module.
pub(crate) fn replay(
    state: &RecoveredState,
    universe: usize,
    target: &mut dyn ReplayTarget,
) -> ReplayCounts {
    let mut counts = ReplayCounts { max_now: state.doc.clock, ..ReplayCounts::default() };
    let mut id_map: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let make_answer = |indices: &[u32]| {
        gc_graph::BitSet::from_indices(universe, indices.iter().map(|&i| i as usize))
    };
    for rec in &state.doc.entries {
        counts.max_now = counts.max_now.max(rec.stats.last_used).max(rec.stats.inserted_at);
        let restored = RestoredEntry {
            graph: rec.graph.clone(),
            kind: rec.kind,
            answer: make_answer(&rec.answer),
            base_tests: rec.base_tests,
            base_cost: rec.base_cost,
            stats: record_to_stats(&rec.stats),
        };
        if let Some(key) = target.insert(restored) {
            id_map.insert(rec.orig_id, key);
        }
    }
    for rec in &state.journal {
        match rec {
            JournalRecord::Admit { orig_id, now, kind, base_tests, base_cost, graph, answer } => {
                counts.max_now = counts.max_now.max(*now);
                counts.journal_admits += 1;
                let restored = RestoredEntry {
                    graph: graph.clone(),
                    kind: *kind,
                    answer: make_answer(answer),
                    base_tests: *base_tests,
                    base_cost: *base_cost,
                    stats: EntryStats { inserted_at: *now, last_used: *now, ..Default::default() },
                };
                if let Some(key) = target.insert(restored) {
                    id_map.insert(*orig_id, key);
                }
            }
            JournalRecord::Evict { orig_id, now } => {
                counts.max_now = counts.max_now.max(*now);
                counts.journal_evicts += 1;
                // Order tolerance: unknown targets are skipped (the entry
                // was never inserted, or its admission record trailed the
                // eviction under the sharded append ordering).
                if let Some(key) = id_map.remove(orig_id) {
                    target.evict(key);
                }
            }
            // Dataset deltas were already folded into the dataset by
            // [`resolve_dataset`] before entry replay began.
            JournalRecord::DatasetDelta { .. } => {}
        }
    }
    counts
}

// ---- persistence health (circuit breaker) ------------------------------------

/// Circuit-breaker state of an attached [`CacheStore`].
///
/// Store failures never fail a query — the cache's answers come from
/// memory and stay exact no matter what the disk does. The breaker only
/// governs *durability*:
///
/// - `Healthy` — appends and rotations flow normally.
/// - `Degraded` — the store is down (appends failed past their retry
///   budget, or a rotation failed). Mutations are counted but not
///   persisted; a recovery probe periodically tries to cut a fresh full
///   snapshot, which — because a snapshot captures the complete live
///   state — subsumes everything that went unjournaled and restores
///   durability in one step.
/// - `Disabled` — the configured probe budget
///   ([`crate::CacheConfig::persist_max_probes`]) was exhausted;
///   persistence stays off until a manual
///   [`crate::GraphCache::snapshot_now`] (or the shared equivalent)
///   succeeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistHealth {
    /// Durability active.
    Healthy,
    /// Store down; serving memory-only while probing for recovery.
    Degraded,
    /// Probe budget exhausted; manual re-arm required.
    Disabled,
}

impl PersistHealth {
    /// Stable lowercase name (for gauges and dashboards).
    pub fn as_str(self) -> &'static str {
        match self {
            PersistHealth::Healthy => "healthy",
            PersistHealth::Degraded => "degraded",
            PersistHealth::Disabled => "disabled",
        }
    }
}

const HEALTH_HEALTHY: u8 = 0;
const HEALTH_DEGRADED: u8 = 1;
const HEALTH_DISABLED: u8 = 2;

/// First retry delay for a failed append (doubles per attempt).
const RETRY_BASE: Duration = Duration::from_micros(500);
/// Retry delay cap — keeps the worst-case stall on the query path small.
const RETRY_CAP: Duration = Duration::from_millis(8);
/// First recovery-probe delay after tripping to degraded.
const PROBE_BASE: Duration = Duration::from_millis(25);
/// Probe delay cap.
const PROBE_CAP: Duration = Duration::from_secs(2);

struct ProbeState {
    /// Consecutive failed probes since the trip.
    failed: u32,
    /// When the next probe may run (None = not scheduled).
    next_at: Option<Instant>,
    /// Current backoff step.
    backoff: Duration,
}

/// Shared health bookkeeping both runtimes consult on their journal path.
/// Counters are atomics (read on every `stats()` call); probe scheduling
/// sits behind a mutex touched only while degraded.
pub(crate) struct StoreHealth {
    state: AtomicU8,
    errors: AtomicU64,
    buffered: AtomicU64,
    probe: Mutex<ProbeState>,
}

impl std::fmt::Debug for StoreHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreHealth")
            .field("health", &self.health().as_str())
            .field("errors", &self.errors())
            .field("buffered", &self.buffered())
            .finish()
    }
}

impl StoreHealth {
    pub(crate) fn new() -> Self {
        StoreHealth {
            state: AtomicU8::new(HEALTH_HEALTHY),
            errors: AtomicU64::new(0),
            buffered: AtomicU64::new(0),
            probe: Mutex::new(ProbeState { failed: 0, next_at: None, backoff: PROBE_BASE }),
        }
    }

    pub(crate) fn health(&self) -> PersistHealth {
        match self.state.load(Ordering::Acquire) {
            HEALTH_HEALTHY => PersistHealth::Healthy,
            HEALTH_DEGRADED => PersistHealth::Degraded,
            _ => PersistHealth::Disabled,
        }
    }

    /// Total failed store operations (appends, rotations, probes).
    pub(crate) fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Records accepted while degraded/disabled (not persisted; the
    /// recovery snapshot subsumes them).
    pub(crate) fn buffered(&self) -> u64 {
        self.buffered.load(Ordering::Relaxed)
    }

    pub(crate) fn note_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_buffered(&self, n: u64) {
        self.buffered.fetch_add(n, Ordering::Relaxed);
    }

    /// Trip to degraded (unless already disabled) and schedule the first
    /// recovery probe.
    pub(crate) fn trip_degraded(&self) {
        let _ = self.state.compare_exchange(
            HEALTH_HEALTHY,
            HEALTH_DEGRADED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        let mut probe = self.probe.lock().expect("probe lock");
        if probe.next_at.is_none() {
            probe.failed = 0;
            probe.backoff = PROBE_BASE;
            probe.next_at = Some(Instant::now() + PROBE_BASE);
        }
    }

    /// While degraded: is a recovery probe due? (Does not consume the
    /// deadline — the probe's outcome reschedules or clears it.)
    pub(crate) fn probe_due(&self) -> bool {
        if self.health() != PersistHealth::Degraded {
            return false;
        }
        let probe = self.probe.lock().expect("probe lock");
        probe.next_at.is_some_and(|at| Instant::now() >= at)
    }

    /// A probe failed: back off, and give up (disable) past `max_probes`.
    pub(crate) fn probe_failed(&self, max_probes: u32) {
        self.note_error();
        let mut probe = self.probe.lock().expect("probe lock");
        probe.failed += 1;
        if probe.failed >= max_probes {
            self.state.store(HEALTH_DISABLED, Ordering::Release);
            probe.next_at = None;
        } else {
            probe.backoff = (probe.backoff * 2).min(PROBE_CAP);
            probe.next_at = Some(Instant::now() + probe.backoff);
        }
    }

    /// Durability is re-established (a fresh full snapshot landed):
    /// everything unpersisted is subsumed, so the buffered count resets.
    pub(crate) fn mark_recovered(&self) {
        self.state.store(HEALTH_HEALTHY, Ordering::Release);
        self.buffered.store(0, Ordering::Relaxed);
        let mut probe = self.probe.lock().expect("probe lock");
        probe.failed = 0;
        probe.backoff = PROBE_BASE;
        probe.next_at = None;
    }
}

/// What the runtime must do after [`journal_outcome`]: nothing, cut the
/// scheduled auto-snapshot, or attempt a recovery snapshot (reporting the
/// result back via [`StoreHealth::mark_recovered`] /
/// [`StoreHealth::probe_failed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PersistDirective {
    /// No follow-up.
    Nothing,
    /// A healthy auto-snapshot rotation is due.
    Rotate,
    /// Degraded and the probe deadline passed: try a recovery snapshot.
    Probe,
}

/// `true` when an auto-snapshot should run: the admission-count interval
/// or the journal byte threshold was reached (whichever knob is set).
pub(crate) fn due_for_rotation(
    cfg: &crate::config::CacheConfig,
    admits_since: u64,
    journal_bytes: u64,
) -> bool {
    cfg.snapshot_interval.is_some_and(|n| admits_since >= n)
        || cfg.journal_max_bytes.is_some_and(|b| journal_bytes >= b)
}

/// Append one query's admission/evictions to `store` (shared by both
/// runtimes' journal hooks), tracking `health`, and report what follow-up
/// the runtime owes.
///
/// Persistence failures never fail the query — answers come from memory
/// and stay exact. A failed append retries up to
/// [`crate::CacheConfig::persist_retries`] times with capped exponential
/// backoff (the store truncates torn partial writes before each retry, so
/// retries are sound); past the budget the breaker trips to
/// [`PersistHealth::Degraded`] and subsequent mutations are only counted
/// ([`StoreHealth::buffered`]) until a recovery probe succeeds.
///
/// `admits_since_snapshot` is the caller's post-increment counter value;
/// entry ids are journaled exactly as the caller reports them
/// (shard-encoded for the concurrent front-end).
#[allow(clippy::too_many_arguments)] // mirrors the admit stage's query facts
pub(crate) fn journal_outcome(
    store: &CacheStore,
    health: &StoreHealth,
    cfg: &crate::config::CacheConfig,
    admits_since_snapshot: u64,
    query: &gc_graph::Graph,
    kind: gc_method::QueryKind,
    answer: &gc_graph::BitSet,
    base_tests: u64,
    base_cost: u64,
    now: u64,
    admitted: Option<u32>,
    evicted: &[u32],
) -> PersistDirective {
    let n_ops = admitted.is_some() as u64 + evicted.len() as u64;
    match health.health() {
        PersistHealth::Disabled => {
            if n_ops > 0 {
                health.note_buffered(n_ops);
            }
            return PersistDirective::Nothing;
        }
        PersistHealth::Degraded => {
            if n_ops > 0 {
                health.note_buffered(n_ops);
            }
            return if health.probe_due() {
                PersistDirective::Probe
            } else {
                PersistDirective::Nothing
            };
        }
        PersistHealth::Healthy => {}
    }
    if n_ops == 0 {
        return PersistDirective::Nothing;
    }
    let answer_idx: Option<Vec<u32>> = admitted.map(|_| answer.iter().map(|i| i as u32).collect());
    let mut ops: Vec<gc_store::JournalOp<'_>> = Vec::new();
    if let Some(id) = admitted {
        ops.push(gc_store::JournalOp::Admit {
            orig_id: id,
            now,
            kind,
            base_tests,
            base_cost,
            graph: query,
            answer: answer_idx.as_deref().expect("just built"),
        });
    }
    for &id in evicted {
        ops.push(gc_store::JournalOp::Evict { orig_id: id, now });
    }
    let mut delay = RETRY_BASE;
    let mut attempt: u32 = 0;
    loop {
        match store.append(&ops) {
            Ok(_) => {
                return if due_for_rotation(cfg, admits_since_snapshot, store.journal_bytes()) {
                    PersistDirective::Rotate
                } else {
                    PersistDirective::Nothing
                };
            }
            Err(e) => {
                health.note_error();
                if attempt >= cfg.persist_retries {
                    eprintln!(
                        "graphcache: journal append failed after {} attempt(s) ({e}); \
                         persistence degraded, serving memory-only while probing for recovery",
                        attempt + 1
                    );
                    health.trip_degraded();
                    health.note_buffered(n_ops);
                    return PersistDirective::Nothing;
                }
                attempt += 1;
                std::thread::sleep(delay);
                delay = (delay * 2).min(RETRY_CAP);
            }
        }
    }
}

/// The dataset state a warm restart must serve: the caller's base dataset
/// with the snapshot's recorded mutations and every journaled delta
/// re-applied, plus the repair targets the entry post-pass needs.
pub(crate) struct ResolvedDataset {
    /// The fully resolved dataset (snapshot ops + journal deltas applied).
    pub dataset: Dataset,
    /// Graph ids inserted by *journal* deltas — snapshot entries predate
    /// these, so their answer sets need a per-graph verification repair.
    pub journal_inserted: Vec<gc_graph::GraphId>,
    /// Journal deltas applied (for the recovery report).
    pub journal_deltas: usize,
}

/// Reconstruct the dataset a recovered snapshot + journal describe,
/// starting from the dataset the caller booted with (shared by both
/// runtimes' restores).
///
/// Accepts `base` in either of two states: *pristine* (generation 0) with
/// the snapshot's recorded base fingerprint — the snapshot's own op log is
/// re-applied on top — or *already mutated* to exactly the snapshot's
/// resulting state. Every journaled delta is then applied in order, each
/// validated against its recorded post-mutation fingerprint. Any mismatch
/// fails closed to a cold start: replaying cache entries against the wrong
/// dataset would serve wrong answers, which corruption must never do.
pub(crate) fn resolve_dataset(
    state: &RecoveredState,
    base: &Dataset,
) -> Result<ResolvedDataset, Box<RecoveryReport>> {
    let doc = &state.doc;
    let cold = |reason: String| Err(Box::new(RecoveryReport::cold(reason)));
    let mut dataset = if base.generation() == 0 {
        if base.base_fingerprint() != doc.base_fingerprint {
            return cold(format!(
                "snapshot belongs to a different dataset (base fingerprint {:#x} vs {:#x})",
                doc.base_fingerprint,
                base.base_fingerprint()
            ));
        }
        let mut ds = base.clone();
        for op in &doc.dataset_ops {
            ds.apply_op(op);
        }
        ds
    } else {
        base.clone()
    };
    if dataset.content_fingerprint() != doc.dataset_fingerprint
        || dataset.len() as u64 != doc.universe
    {
        return cold(format!(
            "snapshot dataset state mismatch (fingerprint {:#x}/universe {} vs {:#x}/{})",
            doc.dataset_fingerprint,
            doc.universe,
            dataset.content_fingerprint(),
            dataset.len()
        ));
    }
    let mut journal_inserted = Vec::new();
    let mut journal_deltas = 0usize;
    for rec in &state.journal {
        let JournalRecord::DatasetDelta { generation, resulting_fingerprint, op } = rec else {
            continue;
        };
        if *generation != dataset.generation() + 1 {
            return cold(format!(
                "journal dataset delta out of order (generation {} after {})",
                generation,
                dataset.generation()
            ));
        }
        let inserted = matches!(op, gc_method::DatasetOp::Insert(_));
        dataset.apply_op(op);
        if dataset.content_fingerprint() != *resulting_fingerprint {
            return cold(format!(
                "journal dataset delta fingerprint mismatch at generation {generation}"
            ));
        }
        if inserted {
            journal_inserted.push(dataset.len() as gc_graph::GraphId - 1);
        }
        journal_deltas += 1;
    }
    Ok(ResolvedDataset { dataset, journal_inserted, journal_deltas })
}

/// Re-offer every inserted graph in `dataset`'s op log to the method's
/// index hooks and collect the ids the method declined into the filter
/// overlay (see [`crate::pipeline::filter::run`]). Used after a restore:
/// the method built its index over the *base* dataset, so post-base
/// inserts must be re-announced exactly as the live mutation path did.
pub(crate) fn rebuild_method_overlay(
    method: &dyn gc_method::Method,
    dataset: &Dataset,
) -> gc_graph::BitSet {
    let mut overlay = gc_graph::BitSet::new(dataset.len());
    let inserts =
        dataset.ops().iter().filter(|op| matches!(op, gc_method::DatasetOp::Insert(_))).count();
    let mut next_gid = dataset.len() - inserts;
    for op in dataset.ops() {
        match op {
            gc_method::DatasetOp::Insert(_) => {
                let gid = next_gid;
                next_gid += 1;
                if !method.on_insert_graph(dataset, gid as gc_graph::GraphId) {
                    overlay.insert(gid);
                }
            }
            gc_method::DatasetOp::Remove(gid) => {
                method.on_remove_graph(dataset, *gid);
                overlay.remove(*gid as usize);
            }
        }
    }
    overlay
}

/// Append one dataset mutation (the last op in `dataset`'s log) to
/// `store`, with the same health/retry/backoff discipline as
/// [`journal_outcome`]. A delta lost while degraded is safe for the same
/// reason lost admissions are: the recovery snapshot captures the complete
/// mutated dataset, subsuming every unjournaled op.
pub(crate) fn journal_dataset_delta(
    store: &CacheStore,
    health: &StoreHealth,
    cfg: &crate::config::CacheConfig,
    admits_since_snapshot: u64,
    dataset: &Dataset,
) -> PersistDirective {
    match health.health() {
        PersistHealth::Disabled => {
            health.note_buffered(1);
            return PersistDirective::Nothing;
        }
        PersistHealth::Degraded => {
            health.note_buffered(1);
            return if health.probe_due() {
                PersistDirective::Probe
            } else {
                PersistDirective::Nothing
            };
        }
        PersistHealth::Healthy => {}
    }
    let Some(op) = dataset.ops().last() else {
        return PersistDirective::Nothing;
    };
    let ops = [gc_store::JournalOp::DatasetDelta {
        generation: dataset.generation(),
        resulting_fingerprint: dataset.content_fingerprint(),
        op,
    }];
    let mut delay = RETRY_BASE;
    let mut attempt: u32 = 0;
    loop {
        match store.append(&ops) {
            Ok(_) => {
                return if due_for_rotation(cfg, admits_since_snapshot, store.journal_bytes()) {
                    PersistDirective::Rotate
                } else {
                    PersistDirective::Nothing
                };
            }
            Err(e) => {
                health.note_error();
                if attempt >= cfg.persist_retries {
                    eprintln!(
                        "graphcache: dataset delta append failed after {} attempt(s) ({e}); \
                         persistence degraded, serving memory-only while probing for recovery",
                        attempt + 1
                    );
                    health.trip_degraded();
                    health.note_buffered(1);
                    return PersistDirective::Nothing;
                }
                attempt += 1;
                std::thread::sleep(delay);
                delay = (delay * 2).min(RETRY_CAP);
            }
        }
    }
}

// ---- periodic snapshotter ----------------------------------------------------

struct SnapshotterShared {
    stop: Mutex<bool>,
    wake: Condvar,
    /// Set by the worker as its last act; `shutdown` waits on it with a
    /// bounded timeout so a wedged tick can never hang process exit.
    done: Mutex<bool>,
    done_wake: Condvar,
}

/// How long `shutdown` waits for the worker's final tick before detaching
/// it (a tick stalled this long means pathologically slow I/O; blocking
/// exit on it helps nobody — the store's atomic rotation keeps whatever
/// state was last committed consistent).
const SNAPSHOTTER_JOIN_TIMEOUT: Duration = Duration::from_secs(5);

/// A background thread that periodically snapshots a
/// [`crate::SharedGraphCache`] to its attached store, quiescing one shard
/// at a time (each shard is captured under its read lock; queries on other
/// shards proceed untouched).
///
/// ```no_run
/// # use gc_core::{CacheConfig, PolicyKind, SharedGraphCache};
/// # use gc_core::persist::{CacheStore, Snapshotter};
/// # use gc_method::{Dataset, SiMethod};
/// # use std::sync::Arc;
/// # let dataset = Arc::new(Dataset::new(vec![]));
/// let store = Arc::new(CacheStore::open("/var/lib/graphcache").unwrap());
/// let mut gc = SharedGraphCache::with_policy(
///     dataset, Box::new(SiMethod), PolicyKind::Hd, CacheConfig::default()).unwrap();
/// gc.attach_store(Arc::clone(&store)).unwrap();
/// let gc = Arc::new(gc);
/// let snapshotter = Snapshotter::spawn(Arc::clone(&gc), std::time::Duration::from_secs(30));
/// // ... serve traffic ...
/// snapshotter.stop(); // final snapshot happens on the next rotation
/// ```
#[derive(Debug)]
pub struct Snapshotter {
    shared: Arc<SnapshotterShared>,
    handle: Option<std::thread::JoinHandle<()>>,
    /// Ticks that failed (IO errors); for tests and health checks.
    failures: Arc<AtomicBool>,
    /// Kept for the final best-effort journal sync at shutdown.
    cache: Arc<crate::SharedGraphCache>,
}

impl std::fmt::Debug for SnapshotterShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotterShared").finish()
    }
}

impl Snapshotter {
    /// Spawn a snapshotter ticking every `interval`. Each tick calls
    /// [`crate::SharedGraphCache::snapshot_now`]; ticks while no store is
    /// attached are no-ops.
    pub fn spawn(cache: Arc<crate::SharedGraphCache>, interval: Duration) -> Self {
        let shared = Arc::new(SnapshotterShared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
            done: Mutex::new(false),
            done_wake: Condvar::new(),
        });
        let failures = Arc::new(AtomicBool::new(false));
        let thread_shared = Arc::clone(&shared);
        let thread_failures = Arc::clone(&failures);
        let thread_cache = Arc::clone(&cache);
        let handle = std::thread::Builder::new()
            .name("gc-snapshotter".into())
            .spawn(move || {
                {
                    let mut stopped = thread_shared.stop.lock().expect("snapshotter lock");
                    loop {
                        if *stopped {
                            break;
                        }
                        let (guard, _timeout) = thread_shared
                            .wake
                            .wait_timeout(stopped, interval)
                            .expect("snapshotter lock");
                        stopped = guard;
                        if *stopped {
                            break;
                        }
                        // Tick outside the lock so a `stop()` issued
                        // mid-snapshot is observed the moment the tick
                        // ends, not an interval later.
                        drop(stopped);
                        if thread_cache.snapshot_now().is_err() {
                            thread_failures.store(true, Ordering::Relaxed);
                        }
                        stopped = thread_shared.stop.lock().expect("snapshotter lock");
                    }
                }
                *thread_shared.done.lock().expect("snapshotter done lock") = true;
                thread_shared.done_wake.notify_all();
            })
            .expect("spawn snapshotter thread");
        Snapshotter { shared, handle: Some(handle), failures, cache }
    }

    /// `true` if any tick failed with an IO error since spawn.
    pub fn had_failures(&self) -> bool {
        self.failures.load(Ordering::Relaxed)
    }

    /// Signal the thread and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Stop the worker with a bounded wait (a tick wedged longer than
    /// [`SNAPSHOTTER_JOIN_TIMEOUT`] is detached rather than hanging
    /// shutdown), then give the attached journal a final best-effort
    /// fsync so process exit can never race buffered appends.
    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            *self.shared.stop.lock().expect("snapshotter lock") = true;
            self.shared.wake.notify_all();
            let deadline = Instant::now() + SNAPSHOTTER_JOIN_TIMEOUT;
            let mut done = self.shared.done.lock().expect("snapshotter done lock");
            while !*done {
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    break;
                };
                let (guard, _timeout) = self
                    .shared
                    .done_wake
                    .wait_timeout(done, remaining)
                    .expect("snapshotter done lock");
                done = guard;
            }
            let finished = *done;
            drop(done);
            if finished {
                let _ = handle.join();
            } else {
                // Leaked on purpose: the worker is stuck inside a tick.
                self.failures.store(true, Ordering::Relaxed);
            }
        }
        if let Some(store) = self.cache.attached_store() {
            let _ = store.sync();
        }
    }
}

impl Drop for Snapshotter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_records_roundtrip() {
        let s = GlobalStats {
            queries: 10,
            hit_queries: 4,
            exact_hits: 2,
            memo_hits: 5,
            queries_with_sub_hits: 1,
            queries_with_super_hits: 1,
            sub_hits: 3,
            super_hits: 2,
            tests_executed: 100,
            probe_tests: 7,
            tests_saved: 50,
            verify_steps: 1000,
            probe_steps: 70,
            admitted: 8,
            evicted: 3,
            admission_rejected: 1,
            total_time: Duration::from_nanos(12345),
            distinct_features: 99, // gauge: must not be persisted
            tombstoned_slots: 9,
            kernel_dispatch: "avx2", // gauge: per-machine, must not be persisted
            persist_health: "degraded", // gauge: per-run, must not be persisted
            persist_errors: 2,
            journal_records_buffered: 4,
            requests_total: 11, // serving gauges: per-run, must not be persisted
            requests_shed: 1,
            requests_timed_out: 1,
            uptime_secs: 5,
            dataset_generation: 7, // dataset gauges: recomputed, must not be persisted
            dataset_live_graphs: 70,
            pipeline_p50_us: 64, // telemetry gauges: per-run, must not be persisted
            pipeline_p99_us: 512,
            traces_sampled: 3,
            slow_queries: 1,
        };
        let back = stats_from_records(&stats_to_records(&s));
        assert_eq!(back.queries, 10);
        assert_eq!(back.tests_executed, 100);
        assert_eq!(back.total_time, Duration::from_nanos(12345));
        assert_eq!(back.distinct_features, 0, "gauges are not persisted");
        assert_eq!(back.tombstoned_slots, 0);
        assert_eq!(back.kernel_dispatch, "", "gauges are not persisted");
        assert_eq!(back.persist_health, "", "gauges are not persisted");
        let expected = GlobalStats {
            distinct_features: 0,
            tombstoned_slots: 0,
            kernel_dispatch: "",
            persist_health: "",
            persist_errors: 0,
            journal_records_buffered: 0,
            requests_total: 0,
            requests_shed: 0,
            requests_timed_out: 0,
            uptime_secs: 0,
            dataset_generation: 0,
            dataset_live_graphs: 0,
            pipeline_p50_us: 0,
            pipeline_p99_us: 0,
            traces_sampled: 0,
            slow_queries: 0,
            ..s
        };
        assert_eq!(back, expected);
        assert_eq!(back.memo_hits, 5, "memo hits are persisted");
    }

    #[test]
    fn unknown_counters_ignored_missing_read_zero() {
        let records = vec![
            ("queries".to_string(), 5u64),
            ("a_counter_from_the_future".to_string(), 1_000_000),
        ];
        let s = stats_from_records(&records);
        assert_eq!(s.queries, 5);
        assert_eq!(s.tests_executed, 0);
    }

    #[test]
    fn cold_report_describes_reason() {
        let r = RecoveryReport::cold("checksum mismatch");
        assert!(!r.warm);
        assert!(r.describe().contains("checksum mismatch"));
    }
}
