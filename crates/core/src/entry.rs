//! Cached query entries.

use gc_graph::{BitSet, Graph};
use gc_iso::GraphProfile;
use gc_method::QueryKind;

/// Identifier of a cache entry. Stable for the entry's lifetime; ids are
/// reused after eviction (slab allocation) — dashboards show them as the
/// "graph ids" of Figures 2(c) and 3.
pub type EntryId = u32;

/// Per-entry bookkeeping the Statistics Manager maintains.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EntryStats {
    /// Logical time (query sequence number) the entry was admitted.
    pub inserted_at: u64,
    /// Logical time of the last hit this entry contributed to.
    pub last_used: u64,
    /// Exact-match hits served.
    pub exact_hits: u64,
    /// Hits where the new query was a subgraph of this entry.
    pub sub_hits: u64,
    /// Hits where this entry was a subgraph of the new query.
    pub super_hits: u64,
    /// Total sub-iso tests this entry saved other queries.
    pub tests_saved: u64,
    /// Total estimated verifier steps this entry saved other queries.
    pub cost_saved: f64,
}

impl EntryStats {
    /// Total hits of any kind.
    pub fn total_hits(&self) -> u64 {
        self.exact_hits + self.sub_hits + self.super_hits
    }
}

/// A cached query: the query graph, its kind, and its full answer set.
///
/// Serializable so cache contents can be exported and re-imported across
/// sessions (warm starts); see [`crate::GraphCache::export_entries`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CacheEntry {
    /// Entry id (slab slot).
    pub id: EntryId,
    /// The cached query graph.
    pub graph: Graph,
    /// Verification profile of `graph`, computed once at admission and
    /// reused by every hit-confirmation probe against this entry (the same
    /// precompute-once discipline [`gc_method::DatasetProfiles`] applies to
    /// dataset graphs). Order built with `label_freq = None` — probes face
    /// ever-changing query graphs, so only the entry's own statistics are
    /// meaningful.
    pub profile: GraphProfile,
    /// Query kind the answer set corresponds to.
    pub kind: QueryKind,
    /// The exact answer set over the dataset universe.
    pub answer: BitSet,
    /// WL fingerprint of `graph` (exact-match bucket key).
    pub fingerprint: u64,
    /// `|C_M|` when this query was first executed — the number of sub-iso
    /// tests an exact-match hit saves.
    pub base_tests: u64,
    /// Verifier steps spent when first executed (cost analogue).
    pub base_cost: u64,
    /// Statistics Manager data.
    pub stats: EntryStats,
}

impl CacheEntry {
    /// Does the (freshly inserted) dataset graph `gid` belong in this
    /// entry's answer set? Cheap summary prefilter, then the exact
    /// containment test in the direction the entry's kind dictates — the
    /// answer-repair primitive of live dataset mutation.
    pub(crate) fn answers_inserted(
        &self,
        dataset: &gc_method::Dataset,
        gid: gc_graph::GraphId,
        engine: gc_method::Engine,
    ) -> bool {
        match self.kind {
            QueryKind::Subgraph => {
                self.profile.summary.may_embed_into(dataset.summary(gid))
                    && engine.verify(&self.graph, dataset.graph(gid)).0
            }
            QueryKind::Supergraph => {
                dataset.summary(gid).may_embed_into(&self.profile.summary)
                    && engine.verify(dataset.graph(gid), &self.graph).0
            }
        }
    }

    /// Approximate heap bytes held by this entry (graph + profile + answer
    /// set), reported by the cache's memory accounting.
    pub fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
            + self.profile.memory_bytes()
            + self.answer.memory_bytes()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    #[test]
    fn stats_totals() {
        let s = EntryStats { exact_hits: 2, sub_hits: 3, super_hits: 5, ..EntryStats::default() };
        assert_eq!(s.total_hits(), 10);
    }

    #[test]
    fn memory_positive() {
        let g = graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap();
        let e = CacheEntry {
            id: 0,
            fingerprint: gc_graph::hash::fingerprint(&g),
            profile: GraphProfile::new(&g, None),
            graph: g,
            kind: QueryKind::Subgraph,
            answer: BitSet::new(10),
            base_tests: 4,
            base_cost: 100,
            stats: EntryStats::default(),
        };
        assert!(e.memory_bytes() > 0);
    }
}
