//! Per-graph verification cost model.
//!
//! PINC ranks cached entries by the *cost* of the sub-iso tests they save,
//! not just their number. That requires estimating what verifying each
//! dataset graph would have cost. The model keeps a per-graph exponential
//! moving average of observed verifier steps, seeded with a size heuristic
//! (`n + m`) before the first observation — larger graphs cost more to
//! verify, which is exactly the signal PINC exploits and PIN ignores.

use gc_graph::BitSet;
use gc_method::Dataset;

/// EWMA smoothing factor: responsive but stable.
const ALPHA: f64 = 0.3;

/// Per-dataset-graph verification cost estimates (verifier steps).
#[derive(Debug, Clone)]
pub struct CostModel {
    est: Vec<f64>,
    observed: Vec<bool>,
}

impl CostModel {
    /// Seed estimates from graph sizes.
    pub fn new(dataset: &Dataset) -> Self {
        let est = dataset
            .graphs()
            .iter()
            .map(|g| (g.vertex_count() + g.edge_count()) as f64)
            .collect();
        CostModel { observed: vec![false; dataset.len()], est }
    }

    /// Record the measured steps of verifying graph `gid`.
    pub fn observe(&mut self, gid: usize, steps: u64) {
        let s = steps as f64;
        if self.observed[gid] {
            self.est[gid] = ALPHA * s + (1.0 - ALPHA) * self.est[gid];
        } else {
            self.est[gid] = s;
            self.observed[gid] = true;
        }
    }

    /// Estimated cost of verifying graph `gid`.
    pub fn estimate(&self, gid: usize) -> f64 {
        self.est[gid]
    }

    /// Σ estimates over a set of graphs (the cost a hit saved).
    pub fn sum_over(&self, set: &BitSet) -> f64 {
        set.iter().map(|g| self.est[g]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn ds() -> Dataset {
        Dataset::new(vec![
            graph_from_parts(&[Label(0)], &[]).unwrap(),
            graph_from_parts(&[Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap(),
        ])
    }

    #[test]
    fn seeded_by_size() {
        let m = CostModel::new(&ds());
        assert!(m.estimate(1) > m.estimate(0));
    }

    #[test]
    fn observation_replaces_then_smooths() {
        let mut m = CostModel::new(&ds());
        m.observe(0, 100);
        assert!((m.estimate(0) - 100.0).abs() < 1e-9);
        m.observe(0, 0);
        assert!((m.estimate(0) - 70.0).abs() < 1e-9); // 0.3*0 + 0.7*100
    }

    #[test]
    fn sum_over_sets() {
        let mut m = CostModel::new(&ds());
        m.observe(0, 10);
        m.observe(1, 30);
        let all = BitSet::from_indices(2, [0usize, 1]);
        assert!((m.sum_over(&all) - 40.0).abs() < 1e-9);
        let none = BitSet::new(2);
        assert_eq!(m.sum_over(&none), 0.0);
    }
}
