//! Per-graph verification cost model.
//!
//! PINC ranks cached entries by the *cost* of the sub-iso tests they save,
//! not just their number. That requires estimating what verifying each
//! dataset graph would have cost. The model keeps a per-graph exponential
//! moving average of observed verifier steps, seeded with a size heuristic
//! (`n + m`) before the first observation — larger graphs cost more to
//! verify, which is exactly the signal PINC exploits and PIN ignores.
//!
//! Estimates live in atomics so observation needs only `&self`: the
//! sequential runtime and the concurrent [`crate::SharedGraphCache`] share
//! one implementation. Under concurrent observation the EWMA update is a
//! load/compute/store and two racing updates may drop one sample — benign
//! for a smoothed heuristic that only ranks eviction candidates, and worth
//! not paying a lock for on every verified candidate.

use gc_graph::BitSet;
use gc_method::Dataset;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// EWMA smoothing factor: responsive but stable.
const ALPHA: f64 = 0.3;

/// Per-dataset-graph verification cost estimates (verifier steps).
#[derive(Debug)]
pub struct CostModel {
    /// `f64` bit patterns, updated racily-but-benignly (see module docs).
    est: Vec<AtomicU64>,
    observed: Vec<AtomicBool>,
}

impl CostModel {
    /// Seed estimates from graph sizes.
    pub fn new(dataset: &Dataset) -> Self {
        let est = dataset
            .graphs()
            .iter()
            .map(|g| AtomicU64::new(((g.vertex_count() + g.edge_count()) as f64).to_bits()))
            .collect();
        CostModel { observed: (0..dataset.len()).map(|_| AtomicBool::new(false)).collect(), est }
    }

    /// Record the measured steps of verifying graph `gid`. Ids beyond the
    /// model's universe are ignored — with a dynamic dataset a query may
    /// verify a graph inserted after the model was sized (the next rebuild
    /// or restore re-seeds it).
    pub fn observe(&self, gid: usize, steps: u64) {
        let (Some(est), Some(observed)) = (self.est.get(gid), self.observed.get(gid)) else {
            return;
        };
        let s = steps as f64;
        let next = if observed.swap(true, Ordering::Relaxed) {
            let current = f64::from_bits(est.load(Ordering::Relaxed));
            ALPHA * s + (1.0 - ALPHA) * current
        } else {
            s
        };
        est.store(next.to_bits(), Ordering::Relaxed);
    }

    /// Estimated cost of verifying graph `gid` (1.0 — the cheapest
    /// possible test — for ids beyond the model's universe).
    pub fn estimate(&self, gid: usize) -> f64 {
        self.est.get(gid).map_or(1.0, |e| f64::from_bits(e.load(Ordering::Relaxed)))
    }

    /// Σ estimates over a set of graphs (the cost a hit saved).
    pub fn sum_over(&self, set: &BitSet) -> f64 {
        self.sum_over_ids(set.iter())
    }

    /// Σ estimates over an id stream — the allocation-free form of
    /// [`CostModel::sum_over`] for lazily-combined sets (e.g.
    /// [`gc_graph::BitSet::intersection_ones`]).
    pub fn sum_over_ids(&self, ids: impl Iterator<Item = usize>) -> f64 {
        ids.map(|g| self.estimate(g)).sum()
    }

    /// Export the per-graph `(estimate, observed)` state for persistence
    /// snapshots, in graph-id order.
    pub fn export(&self) -> Vec<(f64, bool)> {
        self.est
            .iter()
            .zip(&self.observed)
            .map(|(e, o)| (f64::from_bits(e.load(Ordering::Relaxed)), o.load(Ordering::Relaxed)))
            .collect()
    }

    /// Restore one graph's persisted estimate (warm restart). Out-of-range
    /// ids are ignored — the restore path validates the universe first, so
    /// this only guards against logic errors.
    pub fn restore_estimate(&self, gid: usize, est: f64, observed: bool) {
        if let (Some(e), Some(o)) = (self.est.get(gid), self.observed.get(gid)) {
            e.store(est.to_bits(), Ordering::Relaxed);
            o.store(observed, Ordering::Relaxed);
        }
    }
}

impl Clone for CostModel {
    fn clone(&self) -> Self {
        CostModel {
            est: self.est.iter().map(|a| AtomicU64::new(a.load(Ordering::Relaxed))).collect(),
            observed: self
                .observed
                .iter()
                .map(|a| AtomicBool::new(a.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn ds() -> Dataset {
        Dataset::new(vec![
            graph_from_parts(&[Label(0)], &[]).unwrap(),
            graph_from_parts(&[Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap(),
        ])
    }

    #[test]
    fn seeded_by_size() {
        let m = CostModel::new(&ds());
        assert!(m.estimate(1) > m.estimate(0));
    }

    #[test]
    fn observation_replaces_then_smooths() {
        let m = CostModel::new(&ds());
        m.observe(0, 100);
        assert!((m.estimate(0) - 100.0).abs() < 1e-9);
        m.observe(0, 0);
        assert!((m.estimate(0) - 70.0).abs() < 1e-9); // 0.3*0 + 0.7*100
    }

    #[test]
    fn sum_over_sets() {
        let m = CostModel::new(&ds());
        m.observe(0, 10);
        m.observe(1, 30);
        let all = BitSet::from_indices(2, [0usize, 1]);
        assert!((m.sum_over(&all) - 40.0).abs() < 1e-9);
        let none = BitSet::new(2);
        assert_eq!(m.sum_over(&none), 0.0);
    }

    #[test]
    fn out_of_range_ids_are_benign() {
        let m = CostModel::new(&ds());
        m.observe(99, 1000); // ignored, no panic
        assert!((m.estimate(99) - 1.0).abs() < 1e-12);
        let beyond = BitSet::from_indices(100, [0usize, 99]);
        assert!((m.sum_over(&beyond) - (m.estimate(0) + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn clone_is_a_snapshot() {
        let m = CostModel::new(&ds());
        m.observe(0, 10);
        let snap = m.clone();
        m.observe(0, 1000);
        assert!((snap.estimate(0) - 10.0).abs() < 1e-9);
        assert!(snap.estimate(0) < m.estimate(0));
    }
}
