//! Cache Manager: storage of cached queries and their lookup structures.

use crate::entry::{CacheEntry, EntryId, EntryStats};
use gc_graph::{BitSet, Graph};
use gc_index::{FeatureConfig, IndexTuning, QueryIndex};
use gc_method::QueryKind;
use std::collections::HashMap;

/// Owns the cached entries, the WL-fingerprint table (exact-match hits) and
/// the containment [`QueryIndex`] (sub/super-case hits).
///
/// Entry ids are slab slots: dense, reused after eviction.
#[derive(Debug)]
pub struct CacheManager {
    slots: Vec<Option<CacheEntry>>,
    free: Vec<EntryId>,
    by_fingerprint: HashMap<u64, Vec<EntryId>>,
    index: QueryIndex,
    live: usize,
}

impl CacheManager {
    /// New empty cache whose query index uses `cfg` (default maintenance
    /// tuning).
    pub fn new(cfg: FeatureConfig) -> Self {
        Self::with_tuning(cfg, IndexTuning::default())
    }

    /// New empty cache with explicit index maintenance tuning (see
    /// [`gc_index::IndexTuning`]); the runtimes pass
    /// [`crate::CacheConfig::index_tuning`] here.
    pub fn with_tuning(cfg: FeatureConfig, tuning: IndexTuning) -> Self {
        CacheManager {
            slots: Vec::new(),
            free: Vec::new(),
            by_fingerprint: HashMap::new(),
            index: QueryIndex::with_tuning(cfg, tuning),
            live: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` iff no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Access an entry; `None` for evicted/unknown ids.
    pub fn get(&self, id: EntryId) -> Option<&CacheEntry> {
        self.slots.get(id as usize).and_then(Option::as_ref)
    }

    /// Mutable access to an entry (Statistics Manager updates).
    pub fn get_mut(&mut self, id: EntryId) -> Option<&mut CacheEntry> {
        self.slots.get_mut(id as usize).and_then(Option::as_mut)
    }

    /// The containment index over cached queries.
    pub fn index(&self) -> &QueryIndex {
        &self.index
    }

    /// Iterate over live entries in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &CacheEntry> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Ids of live entries in slot order.
    pub fn ids(&self) -> Vec<EntryId> {
        self.iter().map(|e| e.id).collect()
    }

    /// Entries whose fingerprint equals `fp` (exact-match bucket; confirm
    /// with isomorphism).
    pub fn fingerprint_bucket(&self, fp: u64) -> &[EntryId] {
        self.by_fingerprint.get(&fp).map_or(&[], Vec::as_slice)
    }

    /// Insert a new entry; returns its id. Extracts the entry's features
    /// here — prefer [`CacheManager::insert_with_features`] when the
    /// pipeline already extracted them for the probe stage.
    pub fn insert(
        &mut self,
        graph: Graph,
        kind: QueryKind,
        answer: BitSet,
        base_tests: u64,
        base_cost: u64,
        now: u64,
    ) -> EntryId {
        let features = self.index.features_of(&graph);
        self.insert_with_features(graph, kind, answer, base_tests, base_cost, now, features)
    }

    /// Insert a new entry whose feature vector was already extracted (by
    /// [`gc_index::QueryIndex::features_of`] under this cache's config):
    /// the admit stage passes the probe stage's extraction, keeping the
    /// one-extraction-per-query invariant.
    #[allow(clippy::too_many_arguments)] // mirrors `insert` + the precomputed vector
    pub fn insert_with_features(
        &mut self,
        graph: Graph,
        kind: QueryKind,
        answer: BitSet,
        base_tests: u64,
        base_cost: u64,
        now: u64,
        features: gc_index::FeatureVec,
    ) -> EntryId {
        let fingerprint = gc_graph::hash::fingerprint(&graph);
        let profile = gc_iso::GraphProfile::new(&graph, None);
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as EntryId
            }
        };
        self.index.insert_features(id, features);
        self.by_fingerprint.entry(fingerprint).or_default().push(id);
        self.slots[id as usize] = Some(CacheEntry {
            id,
            graph,
            profile,
            kind,
            answer,
            fingerprint,
            base_tests,
            base_cost,
            stats: EntryStats { inserted_at: now, last_used: now, ..EntryStats::default() },
        });
        self.live += 1;
        id
    }

    /// Remove an entry; returns it if it was live.
    pub fn remove(&mut self, id: EntryId) -> Option<CacheEntry> {
        let entry = self.slots.get_mut(id as usize)?.take()?;
        self.live -= 1;
        self.free.push(id);
        self.index.remove(id);
        if let Some(bucket) = self.by_fingerprint.get_mut(&entry.fingerprint) {
            bucket.retain(|&e| e != id);
            if bucket.is_empty() {
                self.by_fingerprint.remove(&entry.fingerprint);
            }
        }
        Some(entry)
    }

    /// Approximate heap bytes of all cached entries plus lookup structures —
    /// the "GC memory" side of Experiment II.
    pub fn memory_bytes(&self) -> usize {
        let entries: usize = self.iter().map(CacheEntry::memory_bytes).sum();
        entries + self.index.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    fn insert_simple(cm: &mut CacheManager, labels: &[u32]) -> EntryId {
        let graph = g(labels, &[]);
        cm.insert(graph, QueryKind::Subgraph, BitSet::new(4), 4, 10, 0)
    }

    #[test]
    fn insert_get_remove() {
        let mut cm = CacheManager::new(FeatureConfig::default());
        let a = insert_simple(&mut cm, &[0]);
        let b = insert_simple(&mut cm, &[1]);
        assert_eq!(cm.len(), 2);
        assert_eq!(cm.get(a).unwrap().id, a);
        let removed = cm.remove(a).unwrap();
        assert_eq!(removed.id, a);
        assert!(cm.get(a).is_none());
        assert_eq!(cm.len(), 1);
        assert!(cm.remove(a).is_none());
        assert_eq!(cm.get(b).unwrap().graph.label(0), Label(1));
    }

    #[test]
    fn slot_reuse() {
        let mut cm = CacheManager::new(FeatureConfig::default());
        let a = insert_simple(&mut cm, &[0]);
        cm.remove(a);
        let c = insert_simple(&mut cm, &[2]);
        assert_eq!(c, a, "slab must reuse freed slot");
        assert_eq!(cm.len(), 1);
    }

    #[test]
    fn fingerprint_buckets_track_entries() {
        let mut cm = CacheManager::new(FeatureConfig::default());
        let graph = g(&[0, 1], &[(0, 1)]);
        let fp = gc_graph::hash::fingerprint(&graph);
        let id = cm.insert(graph, QueryKind::Subgraph, BitSet::new(2), 1, 1, 0);
        assert_eq!(cm.fingerprint_bucket(fp), &[id]);
        cm.remove(id);
        assert!(cm.fingerprint_bucket(fp).is_empty());
    }

    #[test]
    fn index_stays_in_sync() {
        let mut cm = CacheManager::new(FeatureConfig::default());
        let id = cm.insert(g(&[0, 1], &[(0, 1)]), QueryKind::Subgraph, BitSet::new(2), 1, 1, 0);
        let qf = cm.index().features_of(&g(&[0, 1], &[(0, 1)]));
        assert_eq!(cm.index().sub_case_candidates(&qf), vec![id]);
        cm.remove(id);
        assert!(cm.index().sub_case_candidates(&qf).is_empty());
    }

    #[test]
    fn insert_with_features_matches_insert() {
        // The admission path reuses the probe stage's extraction; the index
        // must end up identical to the self-extracting insert.
        let graph = g(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let mut a = CacheManager::new(FeatureConfig::default());
        let ida = a.insert(graph.clone(), QueryKind::Subgraph, BitSet::new(4), 4, 10, 0);
        let mut b = CacheManager::new(FeatureConfig::default());
        let fv = b.index().features_of(&graph);
        let idb = b.insert_with_features(
            graph.clone(),
            QueryKind::Subgraph,
            BitSet::new(4),
            4,
            10,
            0,
            fv,
        );
        assert_eq!(ida, idb);
        let qf = a.index().features_of(&g(&[0, 1], &[(0, 1)]));
        assert_eq!(a.index().sub_case_candidates(&qf), b.index().sub_case_candidates(&qf));
        assert_eq!(a.index().super_case_candidates(&qf), b.index().super_case_candidates(&qf));
        b.remove(idb);
        assert!(b.index().sub_case_candidates(&qf).is_empty());
    }

    #[test]
    fn iteration_and_memory() {
        let mut cm = CacheManager::new(FeatureConfig::default());
        insert_simple(&mut cm, &[0]);
        insert_simple(&mut cm, &[1]);
        assert_eq!(cm.iter().count(), 2);
        assert_eq!(cm.ids().len(), 2);
        assert!(cm.memory_bytes() > 0);
    }
}
