//! The Query Processing Runtime: GraphCache itself.

use crate::cache::CacheManager;
use crate::config::CacheConfig;
use crate::cost::CostModel;
use crate::entry::{CacheEntry, EntryId};
use crate::hits::{self, Relation};
use crate::policy::{HitCredit, HitKind, ReplacementPolicy};
use crate::pruner::prune;
use crate::report::QueryReport;
use crate::stats::{GlobalStats, StatsMonitor};
use crate::window::WindowManager;
use crate::{parallel, PolicyKind};
use gc_graph::{BitSet, Graph};
use gc_method::{Dataset, Method, QueryKind};
use std::sync::Arc;
use std::time::Instant;

/// The GraphCache kernel: a semantic cache layered over a base Method M.
///
/// ```
/// use gc_core::{CacheConfig, GraphCache, PolicyKind};
/// use gc_method::{Dataset, QueryKind, SiMethod};
/// use gc_graph::{graph_from_parts, Label};
/// use std::sync::Arc;
///
/// let dataset = Arc::new(Dataset::new(vec![
///     graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap(),
///     graph_from_parts(&[Label(2)], &[]).unwrap(),
/// ]));
/// let mut gc = GraphCache::new(
///     dataset,
///     Box::new(SiMethod),
///     PolicyKind::Hd.make(),
///     CacheConfig::default(),
/// ).unwrap();
///
/// let q = graph_from_parts(&[Label(0)], &[]).unwrap();
/// let report = gc.query(&q, QueryKind::Subgraph);
/// assert_eq!(report.answer.to_vec(), vec![0]);
/// ```
pub struct GraphCache {
    dataset: Arc<Dataset>,
    method: Box<dyn Method>,
    policy: Box<dyn ReplacementPolicy>,
    config: CacheConfig,
    cache: CacheManager,
    window: WindowManager,
    stats: StatsMonitor,
    cost: CostModel,
    pool: Option<crate::parallel::VerifyPool>,
    clock: u64,
}

impl GraphCache {
    /// Create a cache over `dataset` using `method` as Method M and `policy`
    /// for replacement.
    pub fn new(
        dataset: Arc<Dataset>,
        method: Box<dyn Method>,
        policy: Box<dyn ReplacementPolicy>,
        config: CacheConfig,
    ) -> Result<Self, String> {
        config.validate()?;
        let pool = (config.threads > 1).then(|| crate::parallel::VerifyPool::new(config.threads));
        Ok(GraphCache {
            cache: CacheManager::new(config.feature_config),
            window: WindowManager::new(config.window_size),
            stats: StatsMonitor::new(),
            cost: CostModel::new(&dataset),
            dataset,
            method,
            policy,
            config,
            pool,
            clock: 0,
        })
    }

    /// Convenience constructor with a bundled policy kind.
    pub fn with_policy(
        dataset: Arc<Dataset>,
        method: Box<dyn Method>,
        kind: PolicyKind,
        config: CacheConfig,
    ) -> Result<Self, String> {
        Self::new(dataset, method, kind.make(), config)
    }

    /// Process one query; returns the exact answer set plus the full
    /// Query-Journey anatomy (Fig. 3).
    pub fn query(&mut self, query: &Graph, kind: QueryKind) -> QueryReport {
        let start = Instant::now();
        self.clock += 1;
        let now = self.clock;

        // ---- exact-match fast path (traditional cache hit) ---------------
        if let Some(id) = hits::find_exact(&self.cache, query, kind) {
            return self.serve_exact(id, kind, now, start);
        }

        // ---- Method M filter: C_M (Fig. 3(b)) -----------------------------
        let cm = self.method.filter(&self.dataset, query, kind);

        // ---- Sub/Super Case Processors (Fig. 3(a), 3(e)) ------------------
        let found = hits::probe(&self.cache, &self.config, query, kind);

        // ---- Candidate Set Pruner (Fig. 3(c), 3(d), 3(f)) -----------------
        let pruned = {
            let hit_answers: Vec<(Relation, &BitSet)> = found
                .iter()
                .map(|h| {
                    let e = self.cache.get(h.entry).expect("hit ids are live");
                    (h.relation, &e.answer)
                })
                .collect();
            prune(&cm, &hit_answers, kind)
        };

        // ---- Verification of the reduced set C (Fig. 3(g)) ----------------
        let use_pool = self
            .pool
            .as_ref()
            .filter(|_| pruned.to_verify.count() >= self.config.parallel_threshold);
        let (survivors, verify_steps) = match use_pool {
            Some(pool) => pool.verify(&self.dataset, self.config.engine, query, kind, &pruned.to_verify),
            None => parallel::verify_candidates(
                &self.dataset,
                self.config.engine,
                query,
                kind,
                &pruned.to_verify,
                1,
            ),
        };
        let survivors_count = survivors.count();
        // Feed the cost model with this query's observations.
        if survivors_count > 0 || !pruned.to_verify.is_empty() {
            let verified = pruned.to_verify.count().max(1) as u64;
            let per_test = verify_steps / verified;
            for gid in pruned.to_verify.iter() {
                self.cost.observe(gid, per_test);
            }
        }

        // ---- Final answer A = R ∪ S (Fig. 3(h)) ---------------------------
        let survivors_set = survivors.clone();
        let mut answer = survivors;
        answer.union_with(&pruned.definite);

        // ---- Credit hits (Statistics Manager + policy) --------------------
        self.credit_hits(&found, &cm, kind, now);

        // ---- Admission (Window Manager) -----------------------------------
        let verified_count = pruned.to_verify.count();
        let (admitted_batch, evicted) = self.admit(
            query,
            kind,
            &answer,
            pruned.cm_size as u64,
            verify_steps,
            now,
        );

        // ---- Bookkeeping ---------------------------------------------------
        let elapsed = start.elapsed();
        let any_hit = found.exact.is_some() || found.count() > 0;
        self.stats.update(|s| {
            s.queries += 1;
            if any_hit {
                s.hit_queries += 1;
            }
            if !found.sub.is_empty() {
                s.queries_with_sub_hits += 1;
            }
            if !found.super_.is_empty() {
                s.queries_with_super_hits += 1;
            }
            s.sub_hits += found.sub.len() as u64;
            s.super_hits += found.super_.len() as u64;
            s.tests_executed += verified_count as u64;
            s.probe_tests += found.probe_tests;
            s.tests_saved += pruned.saved as u64;
            s.verify_steps += verify_steps;
            s.probe_steps += found.probe_steps;
            s.admitted += admitted_batch.len() as u64;
            s.evicted += evicted.len() as u64;
            s.total_time += elapsed;
        });

        QueryReport {
            answer,
            cm_set: cm.clone(),
            definite_set: pruned.definite.clone(),
            verified_set: pruned.to_verify.clone(),
            survivors_set,
            kind,
            exact_hit: false,
            sub_hits: found.sub,
            super_hits: found.super_,
            cm_size: pruned.cm_size,
            definite: pruned.definite.count(),
            verified: verified_count,
            survivors: survivors_count,
            sub_iso_tests: verified_count as u64,
            probe_tests: found.probe_tests,
            verify_steps,
            probe_steps: found.probe_steps,
            admitted: admitted_batch.last().copied(),
            evicted,
            elapsed,
        }
    }

    fn serve_exact(
        &mut self,
        id: EntryId,
        kind: QueryKind,
        now: u64,
        start: Instant,
    ) -> QueryReport {
        let (answer, base_tests, base_cost) = {
            let e = self.cache.get_mut(id).expect("exact hit is live");
            e.stats.exact_hits += 1;
            e.stats.last_used = now;
            e.stats.tests_saved += e.base_tests;
            e.stats.cost_saved += e.base_cost as f64;
            (e.answer.clone(), e.base_tests, e.base_cost)
        };
        self.policy.on_hit(
            id,
            &HitCredit {
                kind: HitKind::Exact,
                tests_saved: base_tests,
                cost_saved: base_cost as f64,
            },
            now,
        );
        let elapsed = start.elapsed();
        self.stats.update(|s| {
            s.queries += 1;
            s.hit_queries += 1;
            s.exact_hits += 1;
            s.tests_saved += base_tests;
            s.total_time += elapsed;
        });
        let universe = answer.universe();
        QueryReport {
            answer,
            cm_set: gc_graph::BitSet::new(universe),
            definite_set: gc_graph::BitSet::new(universe),
            verified_set: gc_graph::BitSet::new(universe),
            survivors_set: gc_graph::BitSet::new(universe),
            kind,
            exact_hit: true,
            sub_hits: Vec::new(),
            super_hits: Vec::new(),
            cm_size: base_tests as usize,
            definite: 0,
            verified: 0,
            survivors: 0,
            sub_iso_tests: 0,
            probe_tests: 0,
            verify_steps: 0,
            probe_steps: 0,
            admitted: None,
            evicted: Vec::new(),
            elapsed,
        }
    }

    /// Attribute per-hit savings to entries (paper: "each cache hit shall
    /// evoke various numbers of savings in sub-iso testing").
    fn credit_hits(
        &mut self,
        found: &crate::hits::CacheHits,
        cm: &BitSet,
        kind: QueryKind,
        now: u64,
    ) {
        let mut credits: Vec<(EntryId, HitCredit)> = Vec::with_capacity(found.count());
        for h in found.iter() {
            let e = self.cache.get(h.entry).expect("hit ids are live");
            let gives_definite = matches!(
                (kind, h.relation),
                (QueryKind::Subgraph, Relation::QueryInCached)
                    | (QueryKind::Supergraph, Relation::CachedInQuery)
            );
            // Tests this hit alone would have saved, and their estimated cost.
            let (tests_saved, cost_saved) = if gives_definite {
                let mut saved = e.answer.clone();
                saved.intersect_with(cm);
                (saved.count() as u64, self.cost.sum_over(&saved))
            } else {
                let mut removed = cm.clone();
                removed.difference_with(&e.answer);
                (removed.count() as u64, self.cost.sum_over(&removed))
            };
            let hit_kind = match h.relation {
                Relation::QueryInCached => HitKind::QueryInCached,
                Relation::CachedInQuery => HitKind::CachedInQuery,
            };
            credits.push((
                h.entry,
                HitCredit { kind: hit_kind, tests_saved, cost_saved },
            ));
        }
        for (id, credit) in credits {
            let e = self.cache.get_mut(id).expect("hit ids are live");
            e.stats.last_used = now;
            e.stats.tests_saved += credit.tests_saved;
            e.stats.cost_saved += credit.cost_saved;
            match credit.kind {
                HitKind::Exact => e.stats.exact_hits += 1,
                HitKind::QueryInCached => e.stats.sub_hits += 1,
                HitKind::CachedInQuery => e.stats.super_hits += 1,
            }
            self.policy.on_hit(id, &credit, now);
        }
    }

    /// Admit the executed query immediately; run the batched replacement
    /// sweep when the admission window closes.
    fn admit(
        &mut self,
        query: &Graph,
        kind: QueryKind,
        answer: &BitSet,
        base_tests: u64,
        base_cost: u64,
        now: u64,
    ) -> (Vec<EntryId>, Vec<EntryId>) {
        if (base_tests as usize) < self.config.min_admit_tests {
            self.stats.update(|s| s.admission_rejected += 1);
            return (Vec::new(), Vec::new());
        }
        let id = self.cache.insert(
            query.clone(),
            kind,
            answer.clone(),
            base_tests,
            base_cost,
            now,
        );
        let bytes = self.cache.get(id).expect("just inserted").memory_bytes();
        self.policy.on_insert_sized(id, now, bytes);
        let mut evicted = Vec::new();
        if self.window.on_admit() {
            let excess = self.cache.len().saturating_sub(self.config.capacity);
            if excess > 0 {
                for victim in self.policy.victims(excess) {
                    if self.cache.remove(victim).is_some() {
                        self.policy.on_evict(victim);
                        evicted.push(victim);
                    }
                }
            }
            // Byte budget: keep evicting least-useful entries until the
            // footprint fits (never evicting the just-admitted entry's whole
            // cache away: stop at one entry).
            if let Some(max_bytes) = self.config.max_bytes {
                while self.cache.len() > 1 && self.cache.memory_bytes() > max_bytes {
                    let Some(victim) = self.policy.victims(1).first().copied() else { break };
                    if self.cache.remove(victim).is_some() {
                        self.policy.on_evict(victim);
                        evicted.push(victim);
                    } else {
                        break;
                    }
                }
            }
        }
        (vec![id], evicted)
    }

    // ---- persistence --------------------------------------------------------

    /// Export a snapshot of all cached entries (for persistence / warm
    /// starts). Entries are self-contained: query graph, kind, answer set,
    /// base costs and accumulated statistics.
    pub fn export_entries(&self) -> Vec<CacheEntry> {
        self.cache.iter().cloned().collect()
    }

    /// Import previously exported entries into this cache (e.g. to warm-start
    /// a new session over the *same dataset*).
    ///
    /// Entries receive fresh ids; their accumulated statistics are preserved
    /// in the entry records, but the replacement policy sees them as fresh
    /// admissions (policy-internal utility state is not portable across
    /// policies). Exact-duplicate entries (same fingerprint + kind +
    /// isomorphic graph) are skipped. If the import exceeds capacity, a
    /// replacement sweep trims the cache.
    ///
    /// Returns the number of entries actually imported, or an error if any
    /// entry's answer universe does not match this dataset.
    pub fn import_entries(
        &mut self,
        entries: impl IntoIterator<Item = CacheEntry>,
    ) -> Result<usize, String> {
        let mut imported = 0usize;
        self.clock += 1;
        let now = self.clock;
        for e in entries {
            if e.answer.universe() != self.dataset.len() {
                return Err(format!(
                    "entry universe {} does not match dataset size {}",
                    e.answer.universe(),
                    self.dataset.len()
                ));
            }
            if hits::find_exact(&self.cache, &e.graph, e.kind).is_some() {
                continue;
            }
            let id = self.cache.insert(e.graph, e.kind, e.answer, e.base_tests, e.base_cost, now);
            if let Some(slot) = self.cache.get_mut(id) {
                slot.stats = e.stats;
            }
            let bytes = self.cache.get(id).expect("just inserted").memory_bytes();
            self.policy.on_insert_sized(id, now, bytes);
            imported += 1;
        }
        let excess = self.cache.len().saturating_sub(self.config.capacity);
        if excess > 0 {
            for victim in self.policy.victims(excess) {
                if self.cache.remove(victim).is_some() {
                    self.policy.on_evict(victim);
                }
            }
        }
        self.stats.update(|s| s.admitted += imported as u64);
        Ok(imported)
    }

    // ---- accessors --------------------------------------------------------

    /// Snapshot of the global statistics.
    pub fn stats(&self) -> GlobalStats {
        self.stats.snapshot()
    }

    /// Shared handle to the Statistics Monitor.
    pub fn monitor(&self) -> StatsMonitor {
        self.stats.clone()
    }

    /// The cache manager (entry inspection for dashboards).
    pub fn cache(&self) -> &CacheManager {
        &self.cache
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// `true` iff the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// The active configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The replacement policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The base method's name.
    pub fn method_name(&self) -> String {
        self.method.name()
    }

    /// The dataset this cache serves.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Cache memory footprint (entries + index), for Experiment II.
    pub fn memory_bytes(&self) -> usize {
        self.cache.memory_bytes()
    }

    /// Method M's index footprint, for Experiment II.
    pub fn method_index_bytes(&self) -> usize {
        self.method.index_memory_bytes()
    }
}

impl std::fmt::Debug for GraphCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphCache")
            .field("method", &self.method.name())
            .field("policy", &self.policy.name())
            .field("entries", &self.cache.len())
            .field("clock", &self.clock)
            .finish()
    }
}
