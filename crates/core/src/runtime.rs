//! The sequential Query Processing Runtime: GraphCache itself.
//!
//! Since the pipeline refactor this file is a *thin composition* over the
//! stage modules in [`crate::pipeline`] — each stage lives in its own module
//! (`filter`, `probe`, `prune`, `verify`, `admit`) and
//! [`GraphCache::query`] just wires them together over this instance's
//! state. The concurrent front-end ([`crate::SharedGraphCache`]) composes
//! the same stages over sharded, lock-protected state.

use crate::cache::CacheManager;
use crate::config::CacheConfig;
use crate::cost::CostModel;
use crate::entry::{CacheEntry, EntryId};
use crate::memo::AnswerMemo;
use crate::persist::{self, PersistHealth, RecoveryReport, RestoredEntry, StoreHealth};
use crate::pipeline::admit::{self, AdmitLimits};
use crate::pipeline::probe::ProbeScratch;
use crate::pipeline::{self, filter, probe, prune, verify, PipelineCtx};
use crate::policy::ReplacementPolicy;
use crate::report::{IndexHealth, QueryReport};
use crate::stats::{GlobalStats, StatsMonitor};
use crate::telemetry::{PipelineStage, QueryTiming, QueryTrace, Telemetry};
use crate::window::WindowManager;
use crate::PolicyKind;
use gc_graph::{BitSet, Graph, GraphId};
use gc_method::{Dataset, Method, QueryKind};
use gc_store::{CacheStore, LoadOutcome, SnapshotInfo};
use std::sync::Arc;
use std::time::Instant;

/// Journaling state of an attached [`CacheStore`].
struct StoreState {
    store: Arc<CacheStore>,
    /// Admissions since the last rotation (the `snapshot_interval` input).
    admits_since_snapshot: u64,
    /// Persistence circuit breaker (degraded-mode state + gauges).
    health: Arc<StoreHealth>,
}

/// The GraphCache kernel: a semantic cache layered over a base Method M.
///
/// ```
/// use gc_core::{CacheConfig, GraphCache, PolicyKind};
/// use gc_method::{Dataset, QueryKind, SiMethod};
/// use gc_graph::{graph_from_parts, Label};
/// use std::sync::Arc;
///
/// let dataset = Arc::new(Dataset::new(vec![
///     graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap(),
///     graph_from_parts(&[Label(2)], &[]).unwrap(),
/// ]));
/// let mut gc = GraphCache::new(
///     dataset,
///     Box::new(SiMethod),
///     PolicyKind::Hd.make(),
///     CacheConfig::default(),
/// ).unwrap();
///
/// let q = graph_from_parts(&[Label(0)], &[]).unwrap();
/// let report = gc.query(&q, QueryKind::Subgraph);
/// assert_eq!(report.answer.to_vec(), vec![0]);
/// ```
pub struct GraphCache {
    dataset: Arc<Dataset>,
    method: Box<dyn Method>,
    policy: Box<dyn ReplacementPolicy>,
    config: CacheConfig,
    cache: CacheManager,
    window: WindowManager,
    stats: StatsMonitor,
    cost: CostModel,
    /// Dataset graphs the method's filter index does not cover (inserted
    /// after an immutable index was built); unioned into `C_M` by the
    /// filter stage.
    overlay: BitSet,
    /// Generation-versioned exact answer memo: repeats of a query on an
    /// unmutated dataset skip filter/probe/verify entirely.
    memo: AnswerMemo,
    pool: Option<crate::parallel::VerifyPool>,
    /// Probe-stage buffers reused across queries (swapped into each
    /// query's [`PipelineCtx`]).
    probe_scratch: ProbeScratch,
    clock: u64,
    /// Attached persistence store (admissions/evictions journaled,
    /// auto-snapshots per the config's persistence knobs).
    store: Option<StoreState>,
    /// Pipeline telemetry: stage histograms, the trace sampler, and the
    /// slow-query ring.
    telemetry: Telemetry,
}

impl GraphCache {
    /// Create a cache over `dataset` using `method` as Method M and `policy`
    /// for replacement.
    pub fn new(
        dataset: Arc<Dataset>,
        method: Box<dyn Method>,
        policy: Box<dyn ReplacementPolicy>,
        config: CacheConfig,
    ) -> Result<Self, String> {
        config.validate()?;
        let pool = (config.threads > 1).then(|| crate::parallel::VerifyPool::new(config.threads));
        let telemetry = Telemetry::from_config(&config);
        Ok(GraphCache {
            cache: CacheManager::with_tuning(config.feature_config, config.index_tuning),
            window: WindowManager::new(config.window_size),
            stats: StatsMonitor::new(),
            cost: CostModel::new(&dataset),
            overlay: BitSet::new(dataset.len()),
            memo: AnswerMemo::new(config.memo_capacity),
            dataset,
            method,
            policy,
            config,
            pool,
            probe_scratch: ProbeScratch::new(),
            clock: 0,
            store: None,
            telemetry,
        })
    }

    /// Convenience constructor with a bundled policy kind.
    pub fn with_policy(
        dataset: Arc<Dataset>,
        method: Box<dyn Method>,
        kind: PolicyKind,
        config: CacheConfig,
    ) -> Result<Self, String> {
        Self::new(dataset, method, kind.make(), config)
    }

    /// Process one query; returns the exact answer set plus the full
    /// Query-Journey anatomy (Fig. 3).
    ///
    /// Thin sequential composition of the pipeline stages; see
    /// [`crate::pipeline`] for what each stage does.
    pub fn query(&mut self, query: &Graph, kind: QueryKind) -> QueryReport {
        self.query_traced(query, kind, None)
    }

    /// [`Self::query`] with an optional request id (propagated from the
    /// serving edge's `X-Request-Id` header) attached to any captured
    /// [`QueryTrace`]. The id is only materialized when the query is
    /// actually sampled or slow.
    pub fn query_traced(
        &mut self,
        query: &Graph,
        kind: QueryKind,
        request_id: Option<&str>,
    ) -> QueryReport {
        let start = Instant::now();
        self.clock += 1;
        let now = self.clock;
        let seq = self.telemetry.begin_query();
        let mut timing = QueryTiming::default();
        let generation = self.dataset.generation();

        // ---- exact-match fast path (traditional cache hit) ---------------
        if let Some(id) = probe::find_exact(&self.cache, query, kind) {
            let report = self.serve_exact(id, kind, now, start);
            finish_fast_path(
                &self.telemetry,
                seq,
                start.elapsed(),
                &timing,
                request_id,
                kind,
                "exact",
                0,
                generation,
                report.answer.count() as u64,
            );
            // Exact hits skip the journal hooks (nothing mutated), so an
            // exact-hit-only workload must still drive recovery probes.
            self.maybe_probe_persistence();
            return report;
        }

        // ---- answer-memo fast path (generation-versioned) -----------------
        let memo_hit = {
            let _span = self.telemetry.span(PipelineStage::Memo, &mut timing);
            self.memo.lookup(query, kind, generation)
        };
        if let Some(hit) = memo_hit {
            let elapsed = start.elapsed();
            self.stats.add(&pipeline::memo_stats_delta(hit.base_tests, elapsed));
            let answer_count = hit.answer.count() as u64;
            finish_fast_path(
                &self.telemetry,
                seq,
                elapsed,
                &timing,
                request_id,
                kind,
                "memo",
                0,
                generation,
                answer_count,
            );
            self.maybe_probe_persistence();
            return pipeline::memo_report(hit.answer, kind, hit.base_tests, elapsed);
        }

        let mut ctx = PipelineCtx::new(query, kind, now, self.dataset.len());
        // Lend the runtime's warm probe buffers to this query's context
        // (returned before the context is consumed below).
        std::mem::swap(&mut ctx.probe_scratch, &mut self.probe_scratch);
        {
            let _span = self.telemetry.span(PipelineStage::Filter, &mut timing);
            filter::run(&mut ctx, self.method.as_ref(), &self.dataset, &self.overlay);
        }
        {
            let _span = self.telemetry.span(PipelineStage::Probe, &mut timing);
            probe::run(&mut ctx, &self.cache, &self.config);
        }
        {
            let _span = self.telemetry.span(PipelineStage::Prune, &mut timing);
            prune::run(&mut ctx);
        }
        {
            let _span = self.telemetry.span(PipelineStage::Verify, &mut timing);
            verify::run(&mut ctx, &self.dataset, &self.config, self.pool.as_ref());
        }
        verify::observe_costs(&ctx, &self.cost);

        let admit_span = self.telemetry.span(PipelineStage::Admit, &mut timing);
        admit::credit_hits(
            &mut self.cache,
            self.policy.as_mut(),
            &self.cost,
            &ctx.cm,
            kind,
            now,
            &ctx.hits,
            &ctx.hit_answers,
        );
        let answer = ctx.answer();
        let outcome = admit::run(
            &mut self.cache,
            self.policy.as_mut(),
            &mut self.window,
            &self.config,
            AdmitLimits::from_config(&self.config),
            query,
            kind,
            ctx.features.take(), // the probe stage's extraction, reused
            &answer,
            ctx.pruned.cm_size as u64,
            ctx.verify_steps,
            now,
        );
        let (base_tests, base_cost) = (ctx.pruned.cm_size as u64, ctx.verify_steps);
        self.memo.store(query, kind, &answer, base_tests, generation);
        drop(admit_span);

        let elapsed = start.elapsed();
        self.stats.add(&ctx.stats_delta(&outcome, elapsed));
        std::mem::swap(&mut ctx.probe_scratch, &mut self.probe_scratch);
        self.telemetry.finish_query(seq, elapsed, |slow| {
            pipeline_trace(
                seq, elapsed, &timing, request_id, kind, 0, generation, &ctx, &answer, slow,
            )
        });
        let report = ctx.into_report(answer, outcome, elapsed);
        self.journal_mutations(query, kind, base_tests, base_cost, now, &report);
        report
    }

    /// Append this query's admission/evictions to the attached journal and
    /// run the auto-snapshot triggers. Persistence failures are reported to
    /// stderr and routed through the circuit breaker — they never fail the
    /// query: degraded, the cache keeps answering memory-only and at worst
    /// the next restart loses warmth.
    fn journal_mutations(
        &mut self,
        query: &Graph,
        kind: QueryKind,
        base_tests: u64,
        base_cost: u64,
        now: u64,
        report: &QueryReport,
    ) {
        let Some(st) = self.store.as_mut() else { return };
        if report.admitted.is_some() {
            st.admits_since_snapshot += 1;
        }
        let health = Arc::clone(&st.health);
        let directive = persist::journal_outcome(
            &st.store,
            &health,
            &self.config,
            st.admits_since_snapshot,
            query,
            kind,
            &report.answer,
            base_tests,
            base_cost,
            now,
            report.admitted,
            &report.evicted,
        );
        match directive {
            persist::PersistDirective::Nothing => {}
            persist::PersistDirective::Rotate => {
                if let Err(e) = self.snapshot_now() {
                    eprintln!("graphcache: auto-snapshot failed ({e})");
                    health.note_error();
                    health.trip_degraded();
                }
            }
            persist::PersistDirective::Probe => self.maybe_probe_persistence(),
        }
    }

    // ---- dataset mutation ---------------------------------------------------

    /// Insert a data graph into the live dataset; returns its id.
    ///
    /// Everything derived from the dataset is repaired in place: the
    /// method index is offered the graph (the filter overlay covers
    /// methods that decline — see [`gc_method::Method::on_insert_graph`]),
    /// every cached answer set re-verifies the new graph when its summary
    /// prefilter admits it, the answer memo is invalidated wholesale by
    /// the dataset generation bump, and the mutation is journaled to the
    /// attached store.
    pub fn insert_graph(&mut self, g: Graph) -> GraphId {
        let gid = Arc::make_mut(&mut self.dataset).insert_graph(g);
        let universe = self.dataset.len();
        if self.overlay.universe() < universe {
            self.overlay.grow(universe);
        }
        if !self.method.on_insert_graph(&self.dataset, gid) {
            self.overlay.insert(gid as usize);
        }
        let dataset = Arc::clone(&self.dataset);
        let engine = self.config.engine;
        for id in self.cache.ids() {
            let entry = self.cache.get_mut(id).expect("listed id is live");
            entry.answer.grow(universe);
            if entry.answers_inserted(&dataset, gid, engine) {
                entry.answer.insert(gid as usize);
            }
        }
        self.journal_dataset_delta();
        gid
    }

    /// Tombstone a data graph. Returns `false` if `gid` was already
    /// removed. The graph is cleared from every cached answer set, the
    /// method index is told ([`gc_method::Method::on_remove_graph`]), the
    /// memo invalidates via the generation bump, and the mutation is
    /// journaled.
    pub fn remove_graph(&mut self, gid: GraphId) -> bool {
        if !Arc::make_mut(&mut self.dataset).remove_graph(gid) {
            return false;
        }
        self.method.on_remove_graph(&self.dataset, gid);
        if (gid as usize) < self.overlay.universe() {
            self.overlay.remove(gid as usize);
        }
        for id in self.cache.ids() {
            let entry = self.cache.get_mut(id).expect("listed id is live");
            entry.answer.remove(gid as usize);
        }
        self.journal_dataset_delta();
        true
    }

    /// Append the dataset's latest mutation to the attached journal, with
    /// the same degraded-mode discipline as [`Self::journal_mutations`].
    fn journal_dataset_delta(&mut self) {
        let Some(st) = self.store.as_mut() else { return };
        let health = Arc::clone(&st.health);
        let directive = persist::journal_dataset_delta(
            &st.store,
            &health,
            &self.config,
            st.admits_since_snapshot,
            &self.dataset,
        );
        match directive {
            persist::PersistDirective::Nothing => {}
            persist::PersistDirective::Rotate => {
                if let Err(e) = self.snapshot_now() {
                    eprintln!("graphcache: auto-snapshot failed ({e})");
                    health.note_error();
                    health.trip_degraded();
                }
            }
            persist::PersistDirective::Probe => self.maybe_probe_persistence(),
        }
    }

    /// While [`PersistHealth::Degraded`] and a recovery probe is due, try
    /// to cut a fresh full snapshot: success re-arms durability (the
    /// snapshot subsumes every buffered mutation), failure backs the probe
    /// off — until the probe budget disables persistence.
    fn maybe_probe_persistence(&mut self) {
        let Some(st) = self.store.as_ref() else { return };
        let health = Arc::clone(&st.health);
        if health.health() != PersistHealth::Degraded || !health.probe_due() {
            return;
        }
        match self.snapshot_now() {
            Ok(info) => {
                health.mark_recovered();
                eprintln!(
                    "graphcache: persistence recovered (fresh snapshot, generation {})",
                    info.generation
                );
            }
            Err(_) => health.probe_failed(self.config.persist_max_probes),
        }
    }

    fn serve_exact(
        &mut self,
        id: EntryId,
        kind: QueryKind,
        now: u64,
        start: Instant,
    ) -> QueryReport {
        let (answer, base_tests, _base_cost) =
            admit::serve_exact(&mut self.cache, self.policy.as_mut(), id, now)
                .expect("exact hit is live in the sequential runtime");
        let elapsed = start.elapsed();
        self.stats.add(&pipeline::exact_stats_delta(base_tests, elapsed));
        pipeline::exact_report(answer, kind, base_tests, elapsed)
    }

    // ---- persistence --------------------------------------------------------

    /// Export a snapshot of all cached entries (for persistence / warm
    /// starts). Entries are self-contained: query graph, kind, answer set,
    /// base costs and accumulated statistics.
    pub fn export_entries(&self) -> Vec<CacheEntry> {
        self.cache.iter().cloned().collect()
    }

    /// Import previously exported entries into this cache (e.g. to warm-start
    /// a new session over the *same dataset*).
    ///
    /// Entries receive fresh ids; their accumulated statistics are preserved
    /// in the entry records, but the replacement policy sees them as fresh
    /// admissions (policy-internal utility state is not portable across
    /// policies). Exact-duplicate entries (same fingerprint + kind +
    /// isomorphic graph) are skipped. If the import exceeds capacity, a
    /// replacement sweep trims the cache.
    ///
    /// Returns the number of entries actually imported, or an error if any
    /// entry's answer universe does not match this dataset.
    ///
    /// With a store attached, the import ends with a snapshot rotation:
    /// bulk imports bypass the per-query journal hooks, so rotating is
    /// what keeps the persisted state in sync with the live cache (and
    /// keeps later journaled slot ids unambiguous).
    pub fn import_entries(
        &mut self,
        entries: impl IntoIterator<Item = CacheEntry>,
    ) -> Result<usize, String> {
        let mut imported = 0usize;
        self.clock += 1;
        let now = self.clock;
        for e in entries {
            if e.answer.universe() != self.dataset.len() {
                return Err(format!(
                    "entry universe {} does not match dataset size {}",
                    e.answer.universe(),
                    self.dataset.len()
                ));
            }
            if probe::find_exact(&self.cache, &e.graph, e.kind).is_some() {
                continue;
            }
            let id = self.cache.insert(e.graph, e.kind, e.answer, e.base_tests, e.base_cost, now);
            if let Some(slot) = self.cache.get_mut(id) {
                slot.stats = e.stats;
            }
            let bytes = self.cache.get(id).expect("just inserted").memory_bytes();
            self.policy.on_insert_sized(id, now, bytes);
            imported += 1;
        }
        let excess = self.cache.len().saturating_sub(self.config.capacity);
        if excess > 0 {
            for victim in self.policy.victims(excess) {
                if self.cache.remove(victim).is_some() {
                    self.policy.on_evict(victim);
                }
            }
        }
        self.stats.add(&GlobalStats { admitted: imported as u64, ..GlobalStats::default() });
        if let Some(health) = self.store.as_ref().map(|st| Arc::clone(&st.health)) {
            if let Err(e) = self.snapshot_now() {
                eprintln!("graphcache: post-import snapshot failed ({e})");
                health.note_error();
                health.trip_degraded();
            }
        }
        Ok(imported)
    }

    // ---- durable state (snapshot + journal) -------------------------------

    /// Write a full snapshot of this cache into `store` (rotating its
    /// journal). If `store` is the attached store, the auto-snapshot
    /// counters reset too.
    pub fn snapshot_to(&mut self, store: &CacheStore) -> Result<SnapshotInfo, String> {
        let doc = persist::build_doc(
            &self.dataset,
            &self.stats.snapshot(),
            &self.cost,
            self.clock,
            self.window.pending() as u32,
            self.policy.name(),
            self.cache.iter().map(persist::entry_to_record),
        );
        let info = store.rotate(&doc).map_err(|e| format!("snapshot failed: {e}"))?;
        if let Some(st) = self.store.as_mut() {
            if std::ptr::eq(store, st.store.as_ref()) {
                st.admits_since_snapshot = 0;
            }
        }
        Ok(info)
    }

    /// Snapshot to the attached store. Errors if none is attached.
    pub fn snapshot_now(&mut self) -> Result<SnapshotInfo, String> {
        let store = match self.store.as_ref() {
            Some(st) => Arc::clone(&st.store),
            None => return Err("no store attached".into()),
        };
        self.snapshot_to(&store)
    }

    /// Attach a persistence store: writes an initial snapshot of the
    /// current state (establishing the journal's base), then journals every
    /// admission/eviction and honours the config's
    /// `snapshot_interval` / `journal_max_bytes` auto-snapshot knobs.
    pub fn attach_store(&mut self, store: Arc<CacheStore>) -> Result<SnapshotInfo, String> {
        store.set_fsync_policy(self.config.fsync_policy);
        self.store = Some(StoreState {
            store,
            admits_since_snapshot: 0,
            health: Arc::new(StoreHealth::new()),
        });
        self.snapshot_now()
    }

    /// Detach the persistence store (journaling stops; on-disk state stays
    /// at the last snapshot + journal).
    pub fn detach_store(&mut self) -> Option<Arc<CacheStore>> {
        self.store.take().map(|st| st.store)
    }

    /// The attached persistence store, if any.
    pub fn attached_store(&self) -> Option<&CacheStore> {
        self.store.as_ref().map(|st| st.store.as_ref())
    }

    /// Persistence health of the attached store (`None` when detached).
    /// `Degraded`/`Disabled` mean journaling is paused — the cache keeps
    /// serving exact answers memory-only; see [`crate::persist`].
    pub fn persist_health(&self) -> Option<PersistHealth> {
        self.store.as_ref().map(|st| st.health.health())
    }

    /// Build a cache and warm-restart it from `store`: replay snapshot
    /// then journal, attach the store, and write a fresh snapshot so the
    /// new process journals against its own entry-id namespace.
    ///
    /// Recovery is **fail-closed**: corrupt, truncated or torn files — and
    /// a snapshot taken over a different dataset — yield a *cold* (empty
    /// but fully functional) cache with the reason in the
    /// [`RecoveryReport`]; answers are never wrong, restarts only lose
    /// warmth. `Err` is reserved for an invalid `config` or an IO failure
    /// writing the fresh snapshot.
    pub fn restore_from(
        dataset: Arc<Dataset>,
        method: Box<dyn Method>,
        policy: Box<dyn ReplacementPolicy>,
        config: CacheConfig,
        store: Arc<CacheStore>,
    ) -> Result<(Self, RecoveryReport), String> {
        let mut gc = Self::new(dataset, method, policy, config)?;
        let report = gc.restore_state(&store);
        gc.attach_store(store)?;
        Ok((gc, report))
    }

    /// Replay `store`'s recovered state into this (fresh) cache.
    fn restore_state(&mut self, store: &CacheStore) -> RecoveryReport {
        let state = match store.load() {
            LoadOutcome::Cold { reason } => return RecoveryReport::cold(reason),
            LoadOutcome::Warm(state) => state,
        };
        // Resolve the dataset the persisted state describes *first*: the
        // snapshot's recorded ops and every journaled delta are re-applied
        // (each validated by fingerprint), and all entry replay below runs
        // against the final universe.
        let resolved = match persist::resolve_dataset(&state, &self.dataset) {
            Ok(resolved) => resolved,
            Err(report) => return *report,
        };
        let persist::ResolvedDataset { dataset, journal_inserted, journal_deltas } = resolved;
        self.dataset = Arc::new(dataset);
        self.cost = CostModel::new(&self.dataset);
        self.overlay = persist::rebuild_method_overlay(self.method.as_ref(), &self.dataset);

        struct SeqTarget<'a> {
            cache: &'a mut CacheManager,
            policy: &'a mut dyn ReplacementPolicy,
            now_hint: u64,
        }
        impl persist::ReplayTarget for SeqTarget<'_> {
            fn insert(&mut self, e: RestoredEntry) -> Option<EntryId> {
                if probe::find_exact(self.cache, &e.graph, e.kind).is_some() {
                    return None; // order-tolerant duplicate skip
                }
                let stats = e.stats.clone();
                let id = self.cache.insert(
                    e.graph,
                    e.kind,
                    e.answer,
                    e.base_tests,
                    e.base_cost,
                    stats.inserted_at,
                );
                let slot = self.cache.get_mut(id).expect("just inserted");
                slot.stats = e.stats;
                let bytes = self.cache.get(id).expect("just inserted").memory_bytes();
                self.policy.on_restore(id, &stats, bytes, self.now_hint);
                Some(id)
            }

            fn evict(&mut self, key: EntryId) {
                if self.cache.remove(key).is_some() {
                    self.policy.on_evict(key);
                }
            }
        }

        let snapshot_entries = state.doc.entries.len();
        let mut target = SeqTarget {
            cache: &mut self.cache,
            policy: self.policy.as_mut(),
            now_hint: state.doc.clock,
        };
        let counts = persist::replay(&state, self.dataset.len(), &mut target);
        self.clock = counts.max_now;

        // Enforce this config's capacity. A cache legitimately rests at up
        // to `capacity + window_size - 1` entries between replacement
        // sweeps, so a same-config restore reproduces the snapshotted
        // state exactly; only a *smaller* restoring config triggers a
        // trim (down to `capacity`, like a window-close sweep would).
        let allowance = self.config.capacity + self.config.window_size - 1;
        if self.cache.len() > allowance {
            let excess = self.cache.len() - self.config.capacity;
            for victim in self.policy.victims(excess) {
                if self.cache.remove(victim).is_some() {
                    self.policy.on_evict(victim);
                }
            }
        }
        self.window.restore_pending(state.doc.window_pending as usize + counts.journal_admits);
        self.stats.add(&persist::stats_from_records(&state.doc.stats));
        for (gid, &(est, observed)) in state.doc.cost.iter().enumerate() {
            self.cost.restore_estimate(gid, est, observed);
        }

        // Repair replayed answers against mutations their records predate:
        // tombstoned graphs are masked out, and each journal-inserted graph
        // is re-verified per entry (idempotent — records written after the
        // delta already carry the right bit).
        let dataset = Arc::clone(&self.dataset);
        let engine = self.config.engine;
        for id in self.cache.ids() {
            let entry = self.cache.get_mut(id).expect("listed id is live");
            if dataset.has_tombstones() {
                entry.answer.intersect_with(dataset.live_mask());
            }
            for &gid in &journal_inserted {
                if !dataset.live_mask().contains(gid as usize) {
                    continue; // inserted then removed: stays masked out
                }
                if entry.answers_inserted(&dataset, gid, engine) {
                    entry.answer.insert(gid as usize);
                } else {
                    entry.answer.remove(gid as usize);
                }
            }
        }

        RecoveryReport {
            warm: true,
            cold_reason: None,
            generation: state.generation,
            snapshot_entries,
            journal_admits: counts.journal_admits,
            journal_evicts: counts.journal_evicts,
            journal_deltas,
            journal_torn_bytes: state.torn_tail_bytes,
            entries_restored: self.cache.len(),
            clock: self.clock,
        }
    }

    // ---- accessors --------------------------------------------------------

    /// Snapshot of the global statistics, with the index-health gauges
    /// ([`GlobalStats::distinct_features`], [`GlobalStats::tombstoned_slots`])
    /// populated from the live containment index and the kernel-dispatch
    /// gauge from the runtime detection.
    pub fn stats(&self) -> GlobalStats {
        let mut s = self.stats.snapshot();
        let health = self.index_health();
        s.distinct_features = health.distinct_features as u64;
        s.tombstoned_slots = health.tombstoned_slots as u64;
        s.kernel_dispatch = gc_graph::simd::kernel_name();
        s.dataset_generation = self.dataset.generation();
        s.dataset_live_graphs = self.dataset.live_count() as u64;
        if let Some(st) = self.store.as_ref() {
            s.persist_health = st.health.health().as_str();
            s.persist_errors = st.health.errors();
            s.journal_records_buffered = st.health.buffered();
        }
        s.pipeline_p50_us = self.telemetry.total().percentile_us(50.0);
        s.pipeline_p99_us = self.telemetry.total().percentile_us(99.0);
        s.traces_sampled = self.telemetry.sampled_count();
        s.slow_queries = self.telemetry.slow_count();
        s
    }

    /// The pipeline telemetry hub: stage histograms, sampled traces, and
    /// the slow-query ring.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Point-in-time health gauges of the containment index's posting
    /// directory (compaction debt of the tombstoned maintenance tier).
    pub fn index_health(&self) -> IndexHealth {
        let index = self.cache.index();
        IndexHealth {
            distinct_features: index.distinct_features(),
            tombstoned_slots: index.tombstoned_slots(),
        }
    }

    /// Shared handle to the Statistics Monitor.
    pub fn monitor(&self) -> StatsMonitor {
        self.stats.clone()
    }

    /// The cache manager (entry inspection for dashboards).
    pub fn cache(&self) -> &CacheManager {
        &self.cache
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// `true` iff the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// The active configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The replacement policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The base method's name.
    pub fn method_name(&self) -> String {
        self.method.name()
    }

    /// The dataset this cache serves.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Live answers in the generation-versioned memo (diagnostics).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Cache memory footprint (entries + index), for Experiment II.
    pub fn memory_bytes(&self) -> usize {
        self.cache.memory_bytes()
    }

    /// Method M's index footprint, for Experiment II.
    pub fn method_index_bytes(&self) -> usize {
        self.method.index_memory_bytes()
    }
}

/// `"sub"` / `"super"` trace label for a query kind.
pub(crate) fn kind_label(kind: QueryKind) -> &'static str {
    match kind {
        QueryKind::Subgraph => "sub",
        QueryKind::Supergraph => "super",
    }
}

/// Observe a fast-path (exact/memo) query into the telemetry hub; the
/// trace, when sampled or slow, carries the answer size and any memo-span
/// time but no pipeline-stage counts (those stages never ran).
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_fast_path(
    telemetry: &Telemetry,
    seq: u64,
    elapsed: std::time::Duration,
    timing: &QueryTiming,
    request_id: Option<&str>,
    kind: QueryKind,
    outcome: &'static str,
    shard: u32,
    generation: u64,
    answer: u64,
) {
    telemetry.finish_query(seq, elapsed, |slow| QueryTrace {
        seq,
        request_id: request_id.map(str::to_owned),
        kind: kind_label(kind).to_owned(),
        outcome: outcome.to_owned(),
        shard,
        generation,
        total_us: elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
        filter_us: timing.stage_us[0],
        probe_us: timing.stage_us[1],
        prune_us: timing.stage_us[2],
        verify_us: timing.stage_us[3],
        admit_us: timing.stage_us[4],
        memo_us: timing.stage_us[5],
        cm_size: 0,
        definite: 0,
        to_verify: 0,
        survivors: 0,
        answer,
        probe_tests: 0,
        verify_steps: 0,
        slow,
    });
}

/// Assemble a full-pipeline [`QueryTrace`] from the query's context.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pipeline_trace(
    seq: u64,
    elapsed: std::time::Duration,
    timing: &QueryTiming,
    request_id: Option<&str>,
    kind: QueryKind,
    shard: u32,
    generation: u64,
    ctx: &PipelineCtx<'_>,
    answer: &BitSet,
    slow: bool,
) -> QueryTrace {
    QueryTrace {
        seq,
        request_id: request_id.map(str::to_owned),
        kind: kind_label(kind).to_owned(),
        outcome: "pipeline".to_owned(),
        shard,
        generation,
        total_us: elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
        filter_us: timing.stage_us[0],
        probe_us: timing.stage_us[1],
        prune_us: timing.stage_us[2],
        verify_us: timing.stage_us[3],
        admit_us: timing.stage_us[4],
        memo_us: timing.stage_us[5],
        cm_size: ctx.pruned.cm_size as u64,
        definite: ctx.pruned.definite.count() as u64,
        to_verify: ctx.pruned.to_verify.count() as u64,
        survivors: ctx.survivors.count() as u64,
        answer: answer.count() as u64,
        probe_tests: ctx.hits.probe_tests,
        verify_steps: ctx.verify_steps,
        slow,
    }
}

impl std::fmt::Debug for GraphCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphCache")
            .field("method", &self.method.name())
            .field("policy", &self.policy.name())
            .field("entries", &self.cache.len())
            .field("clock", &self.clock)
            .finish()
    }
}
