//! The sequential Query Processing Runtime: GraphCache itself.
//!
//! Since the pipeline refactor this file is a *thin composition* over the
//! stage modules in [`crate::pipeline`] — each stage lives in its own module
//! (`filter`, `probe`, `prune`, `verify`, `admit`) and
//! [`GraphCache::query`] just wires them together over this instance's
//! state. The concurrent front-end ([`crate::SharedGraphCache`]) composes
//! the same stages over sharded, lock-protected state.

use crate::cache::CacheManager;
use crate::config::CacheConfig;
use crate::cost::CostModel;
use crate::entry::{CacheEntry, EntryId};
use crate::pipeline::admit::{self, AdmitLimits};
use crate::pipeline::probe::ProbeScratch;
use crate::pipeline::{self, filter, probe, prune, verify, PipelineCtx};
use crate::policy::ReplacementPolicy;
use crate::report::QueryReport;
use crate::stats::{GlobalStats, StatsMonitor};
use crate::window::WindowManager;
use crate::PolicyKind;
use gc_graph::Graph;
use gc_method::{Dataset, Method, QueryKind};
use std::sync::Arc;
use std::time::Instant;

/// The GraphCache kernel: a semantic cache layered over a base Method M.
///
/// ```
/// use gc_core::{CacheConfig, GraphCache, PolicyKind};
/// use gc_method::{Dataset, QueryKind, SiMethod};
/// use gc_graph::{graph_from_parts, Label};
/// use std::sync::Arc;
///
/// let dataset = Arc::new(Dataset::new(vec![
///     graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap(),
///     graph_from_parts(&[Label(2)], &[]).unwrap(),
/// ]));
/// let mut gc = GraphCache::new(
///     dataset,
///     Box::new(SiMethod),
///     PolicyKind::Hd.make(),
///     CacheConfig::default(),
/// ).unwrap();
///
/// let q = graph_from_parts(&[Label(0)], &[]).unwrap();
/// let report = gc.query(&q, QueryKind::Subgraph);
/// assert_eq!(report.answer.to_vec(), vec![0]);
/// ```
pub struct GraphCache {
    dataset: Arc<Dataset>,
    method: Box<dyn Method>,
    policy: Box<dyn ReplacementPolicy>,
    config: CacheConfig,
    cache: CacheManager,
    window: WindowManager,
    stats: StatsMonitor,
    cost: CostModel,
    pool: Option<crate::parallel::VerifyPool>,
    /// Probe-stage buffers reused across queries (swapped into each
    /// query's [`PipelineCtx`]).
    probe_scratch: ProbeScratch,
    clock: u64,
}

impl GraphCache {
    /// Create a cache over `dataset` using `method` as Method M and `policy`
    /// for replacement.
    pub fn new(
        dataset: Arc<Dataset>,
        method: Box<dyn Method>,
        policy: Box<dyn ReplacementPolicy>,
        config: CacheConfig,
    ) -> Result<Self, String> {
        config.validate()?;
        let pool = (config.threads > 1).then(|| crate::parallel::VerifyPool::new(config.threads));
        Ok(GraphCache {
            cache: CacheManager::with_tuning(config.feature_config, config.index_tuning),
            window: WindowManager::new(config.window_size),
            stats: StatsMonitor::new(),
            cost: CostModel::new(&dataset),
            dataset,
            method,
            policy,
            config,
            pool,
            probe_scratch: ProbeScratch::new(),
            clock: 0,
        })
    }

    /// Convenience constructor with a bundled policy kind.
    pub fn with_policy(
        dataset: Arc<Dataset>,
        method: Box<dyn Method>,
        kind: PolicyKind,
        config: CacheConfig,
    ) -> Result<Self, String> {
        Self::new(dataset, method, kind.make(), config)
    }

    /// Process one query; returns the exact answer set plus the full
    /// Query-Journey anatomy (Fig. 3).
    ///
    /// Thin sequential composition of the pipeline stages; see
    /// [`crate::pipeline`] for what each stage does.
    pub fn query(&mut self, query: &Graph, kind: QueryKind) -> QueryReport {
        let start = Instant::now();
        self.clock += 1;
        let now = self.clock;

        // ---- exact-match fast path (traditional cache hit) ---------------
        if let Some(id) = probe::find_exact(&self.cache, query, kind) {
            return self.serve_exact(id, kind, now, start);
        }

        let mut ctx = PipelineCtx::new(query, kind, now, self.dataset.len());
        // Lend the runtime's warm probe buffers to this query's context
        // (returned before the context is consumed below).
        std::mem::swap(&mut ctx.probe_scratch, &mut self.probe_scratch);
        filter::run(&mut ctx, self.method.as_ref(), &self.dataset);
        probe::run(&mut ctx, &self.cache, &self.config);
        prune::run(&mut ctx);
        verify::run(&mut ctx, &self.dataset, &self.config, self.pool.as_ref());
        verify::observe_costs(&ctx, &self.cost);

        admit::credit_hits(
            &mut self.cache,
            self.policy.as_mut(),
            &self.cost,
            &ctx.cm,
            kind,
            now,
            &ctx.hits,
            &ctx.hit_answers,
        );
        let answer = ctx.answer();
        let outcome = admit::run(
            &mut self.cache,
            self.policy.as_mut(),
            &mut self.window,
            &self.config,
            AdmitLimits::from_config(&self.config),
            query,
            kind,
            ctx.features.take(), // the probe stage's extraction, reused
            &answer,
            ctx.pruned.cm_size as u64,
            ctx.verify_steps,
            now,
        );

        let elapsed = start.elapsed();
        self.stats.add(&ctx.stats_delta(&outcome, elapsed));
        std::mem::swap(&mut ctx.probe_scratch, &mut self.probe_scratch);
        ctx.into_report(answer, outcome, elapsed)
    }

    fn serve_exact(
        &mut self,
        id: EntryId,
        kind: QueryKind,
        now: u64,
        start: Instant,
    ) -> QueryReport {
        let (answer, base_tests, _base_cost) =
            admit::serve_exact(&mut self.cache, self.policy.as_mut(), id, now)
                .expect("exact hit is live in the sequential runtime");
        let elapsed = start.elapsed();
        self.stats.add(&pipeline::exact_stats_delta(base_tests, elapsed));
        pipeline::exact_report(answer, kind, base_tests, elapsed)
    }

    // ---- persistence --------------------------------------------------------

    /// Export a snapshot of all cached entries (for persistence / warm
    /// starts). Entries are self-contained: query graph, kind, answer set,
    /// base costs and accumulated statistics.
    pub fn export_entries(&self) -> Vec<CacheEntry> {
        self.cache.iter().cloned().collect()
    }

    /// Import previously exported entries into this cache (e.g. to warm-start
    /// a new session over the *same dataset*).
    ///
    /// Entries receive fresh ids; their accumulated statistics are preserved
    /// in the entry records, but the replacement policy sees them as fresh
    /// admissions (policy-internal utility state is not portable across
    /// policies). Exact-duplicate entries (same fingerprint + kind +
    /// isomorphic graph) are skipped. If the import exceeds capacity, a
    /// replacement sweep trims the cache.
    ///
    /// Returns the number of entries actually imported, or an error if any
    /// entry's answer universe does not match this dataset.
    pub fn import_entries(
        &mut self,
        entries: impl IntoIterator<Item = CacheEntry>,
    ) -> Result<usize, String> {
        let mut imported = 0usize;
        self.clock += 1;
        let now = self.clock;
        for e in entries {
            if e.answer.universe() != self.dataset.len() {
                return Err(format!(
                    "entry universe {} does not match dataset size {}",
                    e.answer.universe(),
                    self.dataset.len()
                ));
            }
            if probe::find_exact(&self.cache, &e.graph, e.kind).is_some() {
                continue;
            }
            let id = self.cache.insert(e.graph, e.kind, e.answer, e.base_tests, e.base_cost, now);
            if let Some(slot) = self.cache.get_mut(id) {
                slot.stats = e.stats;
            }
            let bytes = self.cache.get(id).expect("just inserted").memory_bytes();
            self.policy.on_insert_sized(id, now, bytes);
            imported += 1;
        }
        let excess = self.cache.len().saturating_sub(self.config.capacity);
        if excess > 0 {
            for victim in self.policy.victims(excess) {
                if self.cache.remove(victim).is_some() {
                    self.policy.on_evict(victim);
                }
            }
        }
        self.stats.add(&GlobalStats { admitted: imported as u64, ..GlobalStats::default() });
        Ok(imported)
    }

    // ---- accessors --------------------------------------------------------

    /// Snapshot of the global statistics.
    pub fn stats(&self) -> GlobalStats {
        self.stats.snapshot()
    }

    /// Shared handle to the Statistics Monitor.
    pub fn monitor(&self) -> StatsMonitor {
        self.stats.clone()
    }

    /// The cache manager (entry inspection for dashboards).
    pub fn cache(&self) -> &CacheManager {
        &self.cache
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// `true` iff the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// The active configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The replacement policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The base method's name.
    pub fn method_name(&self) -> String {
        self.method.name()
    }

    /// The dataset this cache serves.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Cache memory footprint (entries + index), for Experiment II.
    pub fn memory_bytes(&self) -> usize {
        self.cache.memory_bytes()
    }

    /// Method M's index footprint, for Experiment II.
    pub fn method_index_bytes(&self) -> usize {
        self.method.index_memory_bytes()
    }
}

impl std::fmt::Debug for GraphCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphCache")
            .field("method", &self.method.name())
            .field("policy", &self.policy.name())
            .field("entries", &self.cache.len())
            .field("clock", &self.clock)
            .finish()
    }
}
