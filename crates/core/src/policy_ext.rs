//! Extension replacement policies beyond the paper's bundled five.
//!
//! GC is "designed as a pluggable cache, allowing any future component to be
//! incorporated (… replacement policies …)" (paper §1). This module
//! exercises that claim with three genuinely different policies used by the
//! ablation harness (`exp6_ablation`) and available to applications:
//!
//! * [`GdsPolicy`] — GreedyDual-Size (Cao & Irani), the classic cost/size
//!   web-cache policy adapted to graph caching: an entry's credit is the
//!   verification cost it saves per byte it occupies, with the usual
//!   inflation term so long-idle entries age out;
//! * [`HdArithPolicy`] — an arithmetic-mean variant of HD (normalised
//!   PIN + PINC), the main ablation against the bundled rank-sum HD
//!   (DESIGN.md §6);
//! * [`RandomPolicy`] — seeded random eviction, the control baseline every
//!   informed policy must beat.

use crate::entry::EntryId;
use crate::policy::{HitCredit, ReplacementPolicy};
use std::collections::HashMap;

/// GreedyDual-Size: score `H(e) = L + cost_saved(e) / size(e)`, evict the
/// minimum-`H` entry and raise the inflation level `L` to the evicted score.
#[derive(Debug, Default)]
pub struct GdsPolicy {
    inflation: f64,
    /// entry -> (score H, size bytes, cumulative cost credit)
    state: HashMap<EntryId, (f64, usize, f64)>,
}

impl GdsPolicy {
    /// New GDS policy with zero inflation.
    pub fn new() -> Self {
        Self::default()
    }

    fn rescore(&mut self, entry: EntryId) {
        if let Some((h, size, credit)) = self.state.get_mut(&entry) {
            *h = self.inflation + 1.0 + *credit / (*size).max(1) as f64;
        }
    }
}

impl ReplacementPolicy for GdsPolicy {
    fn name(&self) -> &'static str {
        "GDS"
    }

    fn on_insert(&mut self, entry: EntryId, _now: u64) {
        // Size unknown through the unsized hook; assume unit size.
        self.state.insert(entry, (self.inflation + 1.0, 1, 0.0));
    }

    fn on_insert_sized(&mut self, entry: EntryId, _now: u64, bytes: usize) {
        self.state.insert(entry, (0.0, bytes.max(1), 0.0));
        self.rescore(entry);
    }

    fn on_hit(&mut self, entry: EntryId, credit: &HitCredit, _now: u64) {
        if let Some((_, _, c)) = self.state.get_mut(&entry) {
            *c += credit.cost_saved.max(credit.tests_saved as f64);
        }
        self.rescore(entry);
    }

    fn on_evict(&mut self, entry: EntryId) {
        if let Some((h, _, _)) = self.state.remove(&entry) {
            // Inflation only rises.
            if h > self.inflation {
                self.inflation = h;
            }
        }
    }

    fn victims(&mut self, x: usize) -> Vec<EntryId> {
        let mut ids: Vec<(EntryId, f64)> =
            self.state.iter().map(|(&e, &(h, _, _))| (e, h)).collect();
        ids.sort_by(|a, b| {
            a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        ids.into_iter().take(x).map(|(e, _)| e).collect()
    }
}

/// Arithmetic HD: eviction score = `PIN(e)/max_PIN + PINC(e)/max_PINC`,
/// normalised at decision time (scale-dependent, unlike the bundled
/// rank-sum HD).
#[derive(Debug, Default)]
pub struct HdArithPolicy {
    /// entry -> (tests_saved, cost_saved, last_used)
    state: HashMap<EntryId, (u64, f64, u64)>,
}

impl HdArithPolicy {
    /// New arithmetic-HD policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for HdArithPolicy {
    fn name(&self) -> &'static str {
        "HD-arith"
    }

    fn on_insert(&mut self, entry: EntryId, now: u64) {
        self.state.insert(entry, (0, 0.0, now));
    }

    fn on_hit(&mut self, entry: EntryId, credit: &HitCredit, now: u64) {
        let e = self.state.entry(entry).or_insert((0, 0.0, now));
        e.0 += credit.tests_saved;
        e.1 += credit.cost_saved;
        e.2 = now;
    }

    fn on_evict(&mut self, entry: EntryId) {
        self.state.remove(&entry);
    }

    fn victims(&mut self, x: usize) -> Vec<EntryId> {
        let max_pin = self.state.values().map(|v| v.0).max().unwrap_or(0).max(1) as f64;
        let max_pinc = self.state.values().map(|v| v.1).fold(0.0f64, f64::max).max(1.0);
        let mut ids: Vec<(EntryId, f64, u64)> = self
            .state
            .iter()
            .map(|(&e, &(pin, pinc, last))| (e, pin as f64 / max_pin + pinc / max_pinc, last))
            .collect();
        ids.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.2.cmp(&b.2))
                .then(a.0.cmp(&b.0))
        });
        ids.into_iter().take(x).map(|(e, _, _)| e).collect()
    }
}

/// Seeded random eviction (control baseline). Deterministic per seed via a
/// splitmix-style counter, so experiments stay reproducible.
#[derive(Debug)]
pub struct RandomPolicy {
    entries: Vec<EntryId>,
    state: u64,
}

impl RandomPolicy {
    /// New random policy with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy { entries: Vec::new(), state: seed | 1 }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.state >> 11
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn on_insert(&mut self, entry: EntryId, _now: u64) {
        self.entries.push(entry);
    }

    fn on_hit(&mut self, _entry: EntryId, _credit: &HitCredit, _now: u64) {}

    fn on_evict(&mut self, entry: EntryId) {
        self.entries.retain(|&e| e != entry);
    }

    fn victims(&mut self, x: usize) -> Vec<EntryId> {
        let mut pool = self.entries.clone();
        let mut out = Vec::with_capacity(x.min(pool.len()));
        while out.len() < x && !pool.is_empty() {
            let i = (self.next() as usize) % pool.len();
            out.push(pool.swap_remove(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::HitKind;

    fn credit(tests: u64, cost: f64) -> HitCredit {
        HitCredit { kind: HitKind::CachedInQuery, tests_saved: tests, cost_saved: cost }
    }

    #[test]
    fn gds_prefers_cost_dense_entries() {
        let mut p = GdsPolicy::new();
        p.on_insert_sized(1, 1, 1000); // big, cheap
        p.on_insert_sized(2, 2, 100); // small, valuable
        p.on_hit(1, &credit(1, 10.0), 3);
        p.on_hit(2, &credit(1, 10.0), 4);
        // Entry 1: 10/1000; entry 2: 10/100 -> evict 1 first.
        assert_eq!(p.victims(1), vec![1]);
    }

    #[test]
    fn gds_inflation_ages_idle_entries() {
        let mut p = GdsPolicy::new();
        p.on_insert_sized(1, 1, 100);
        p.on_hit(1, &credit(0, 50.0), 2);
        p.on_insert_sized(2, 3, 100);
        // Evicting 2 (score 0) raises inflation to ~0; evict 1 next...
        let v = p.victims(1);
        assert_eq!(v, vec![2]);
        p.on_evict(2);
        // New entry after inflation gets a competitive base score.
        p.on_insert_sized(3, 4, 100);
        assert!(p.victims(1) == vec![3] || p.victims(1) == vec![1]);
    }

    #[test]
    fn hd_arith_blends_both_axes() {
        let mut p = HdArithPolicy::new();
        for e in 1..=3 {
            p.on_insert(e, e as u64);
        }
        p.on_hit(1, &credit(100, 0.0), 4); // all PIN
        p.on_hit(2, &credit(0, 100.0), 5); // all PINC
        p.on_hit(3, &credit(60, 60.0), 6); // balanced
                                           // Entry 3 scores 0.6 + 0.6 = 1.2 > entries 1, 2 at 1.0.
        let v = p.victims(3);
        assert_eq!(v[2], 3, "balanced entry is most protected");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut p = RandomPolicy::new(seed);
            for e in 0..20 {
                p.on_insert(e, e as u64);
            }
            p.victims(5)
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn random_victims_are_live_and_distinct() {
        let mut p = RandomPolicy::new(3);
        for e in 0..10 {
            p.on_insert(e, 0);
        }
        p.on_evict(4);
        let v = p.victims(20);
        assert_eq!(v.len(), 9);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 9);
        assert!(!v.contains(&4));
    }
}
