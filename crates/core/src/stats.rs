//! Statistics Monitor / Manager.
//!
//! [`GlobalStats`] is a plain snapshot/delta struct; [`StatsMonitor`] holds
//! the live counters as atomics so *no lock is taken on the query path* —
//! concurrent queries from [`crate::SharedGraphCache`] publish their deltas
//! with `fetch_add` and dashboards snapshot without stalling anyone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Aggregate operational metrics of a cache instance (paper Fig. 1:
/// Statistics Monitor feeding the Demonstrator's Sub-Iso Testing / Query
/// Time panels).
///
/// Doubles as the *delta* type: the query pipeline accumulates one
/// `GlobalStats` per query and publishes it via [`StatsMonitor::add`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GlobalStats {
    /// Queries processed.
    pub queries: u64,
    /// Queries with at least one hit of any kind.
    pub hit_queries: u64,
    /// Exact-match hits.
    pub exact_hits: u64,
    /// Answer-memo hits: repeat queries served from the
    /// generation-versioned exact answer memo, bypassing the
    /// filter/probe/verify pipeline entirely.
    pub memo_hits: u64,
    /// Queries with at least one sub-case hit (query ⊑ cached).
    pub queries_with_sub_hits: u64,
    /// Queries with at least one super-case hit (cached ⊑ query).
    pub queries_with_super_hits: u64,
    /// Individual sub-case hits across all queries.
    pub sub_hits: u64,
    /// Individual super-case hits across all queries.
    pub super_hits: u64,
    /// Sub-iso tests executed against *dataset graphs* (Σ |C| over queries).
    pub tests_executed: u64,
    /// Sub-iso tests executed against *cached queries* while probing for
    /// hits (cache overhead).
    pub probe_tests: u64,
    /// Sub-iso tests saved relative to Method M alone (Σ (|C_M| − |C|)).
    pub tests_saved: u64,
    /// Verifier steps spent on dataset-graph verification.
    pub verify_steps: u64,
    /// Verifier steps spent probing the cache.
    pub probe_steps: u64,
    /// Entries admitted.
    pub admitted: u64,
    /// Entries evicted.
    pub evicted: u64,
    /// Queries rejected by the admission filter.
    pub admission_rejected: u64,
    /// Total wall-clock time inside `query()`.
    pub total_time: Duration,
    /// Index-health *gauge* (not a counter): distinct live feature hashes
    /// in the containment index's posting directory. Populated at snapshot
    /// time by [`crate::GraphCache::stats`] / [`crate::SharedGraphCache::stats`];
    /// always 0 in per-query deltas and ignored by [`StatsMonitor::add`].
    pub distinct_features: u64,
    /// Index-health *gauge*: tombstoned (evicted, not yet compacted) slots
    /// in the posting directory — the compaction-debt signal of the lazy
    /// directory maintenance. Same snapshot-time semantics as
    /// [`GlobalStats::distinct_features`].
    pub tombstoned_slots: u64,
    /// Deployment *gauge*: the kernel tier the bitset/merge hot loops
    /// dispatched to on this machine (`"avx2"`, `"sse2"`, or `"scalar"`;
    /// see [`gc_graph::simd::kernel_name`]). Populated at snapshot time
    /// like the index-health gauges; empty in per-query deltas and ignored
    /// by [`StatsMonitor::add`].
    pub kernel_dispatch: &'static str,
    /// Persistence *gauge*: circuit-breaker state of the attached store
    /// (`"healthy"`, `"degraded"`, `"disabled"`; empty when no store is
    /// attached — see [`crate::persist::PersistHealth`]). Populated at
    /// snapshot time like the index-health gauges; empty in per-query
    /// deltas and ignored by [`StatsMonitor::add`].
    pub persist_health: &'static str,
    /// Persistence *gauge*: failed store operations (journal appends,
    /// snapshot rotations, recovery probes) since the store was attached.
    /// Snapshot-time semantics like [`GlobalStats::distinct_features`].
    pub persist_errors: u64,
    /// Persistence *gauge*: journal records accepted while the store was
    /// degraded/disabled — counted but not persisted (a successful
    /// recovery snapshot subsumes them and resets this to 0). Same
    /// snapshot-time semantics.
    pub journal_records_buffered: u64,
    /// Serving *gauge*: HTTP requests routed by the `gc-server` front-end
    /// (0 when the cache is not being served). Populated by the server's
    /// stats snapshot, never by per-query deltas; ignored by
    /// [`StatsMonitor::add`] like the other gauges.
    pub requests_total: u64,
    /// Serving *gauge*: requests shed under overload (accept-loop `503`s
    /// plus queued-past-deadline `503`s). Same snapshot-time semantics.
    pub requests_shed: u64,
    /// Serving *gauge*: requests that exceeded a deadline (`504`/`408` or
    /// served late). Same snapshot-time semantics.
    pub requests_timed_out: u64,
    /// Serving *gauge*: seconds since the serving front-end started. Same
    /// snapshot-time semantics.
    pub uptime_secs: u64,
    /// Dataset *gauge*: generation counter of the live dataset (number of
    /// insert/remove mutations applied since the base dataset). Populated
    /// at snapshot time like the index-health gauges; 0 in per-query
    /// deltas and ignored by [`StatsMonitor::add`].
    pub dataset_generation: u64,
    /// Dataset *gauge*: live (non-tombstoned) graphs in the dataset. Same
    /// snapshot-time semantics.
    pub dataset_live_graphs: u64,
    /// Telemetry *gauge*: estimated median end-to-end query latency in
    /// microseconds, from the pipeline's log2 histogram (upper bucket
    /// bound — within 2× of the true median). Populated at snapshot time
    /// like the other gauges; ignored by [`StatsMonitor::add`].
    pub pipeline_p50_us: u64,
    /// Telemetry *gauge*: estimated p99 end-to-end query latency,
    /// microseconds. Same snapshot-time semantics.
    pub pipeline_p99_us: u64,
    /// Telemetry *gauge*: query traces captured by the sampler so far.
    /// Same snapshot-time semantics.
    pub traces_sampled: u64,
    /// Telemetry *gauge*: queries that exceeded the slow-query threshold.
    /// Same snapshot-time semantics.
    pub slow_queries: u64,
}

impl GlobalStats {
    /// Fraction of queries that enjoyed at least one cache hit.
    pub fn hit_ratio(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.hit_queries as f64 / self.queries as f64
        }
    }

    /// Average sub-iso tests per query, *including* cache-probe tests —
    /// the cache must repay its own overhead.
    pub fn avg_tests_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            (self.tests_executed + self.probe_tests) as f64 / self.queries as f64
        }
    }

    /// Average wall-clock time per query.
    pub fn avg_time_per_query(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.total_time / self.queries as u32
        }
    }

    /// Tombstoned fraction of the containment-index directory — the
    /// compaction-health gauge dashboards plot. Delegates to
    /// [`crate::report::IndexHealth::tombstone_ratio`], the single home of
    /// the formula.
    pub fn tombstone_ratio(&self) -> f64 {
        crate::report::IndexHealth {
            distinct_features: self.distinct_features as usize,
            tombstoned_slots: self.tombstoned_slots as usize,
        }
        .tombstone_ratio()
    }
}

/// The live counters, one atomic per [`GlobalStats`] field.
#[derive(Debug, Default)]
struct AtomicStats {
    queries: AtomicU64,
    hit_queries: AtomicU64,
    exact_hits: AtomicU64,
    memo_hits: AtomicU64,
    queries_with_sub_hits: AtomicU64,
    queries_with_super_hits: AtomicU64,
    sub_hits: AtomicU64,
    super_hits: AtomicU64,
    tests_executed: AtomicU64,
    probe_tests: AtomicU64,
    tests_saved: AtomicU64,
    verify_steps: AtomicU64,
    probe_steps: AtomicU64,
    admitted: AtomicU64,
    evicted: AtomicU64,
    admission_rejected: AtomicU64,
    total_time_nanos: AtomicU64,
}

/// Thread-safe, lock-free wrapper around [`GlobalStats`] — the Statistics
/// Monitor.
///
/// Cloning shares the underlying counters (`Arc`). All operations are
/// `fetch_add`/`load` on relaxed atomics: per-field totals are exact; a
/// snapshot taken *while a query publishes* may see that query's fields
/// partially applied (torn across fields, never within one).
#[derive(Debug, Clone, Default)]
pub struct StatsMonitor {
    inner: Arc<AtomicStats>,
}

macro_rules! for_each_counter {
    ($macro_cb:ident) => {
        $macro_cb!(queries);
        $macro_cb!(hit_queries);
        $macro_cb!(exact_hits);
        $macro_cb!(memo_hits);
        $macro_cb!(queries_with_sub_hits);
        $macro_cb!(queries_with_super_hits);
        $macro_cb!(sub_hits);
        $macro_cb!(super_hits);
        $macro_cb!(tests_executed);
        $macro_cb!(probe_tests);
        $macro_cb!(tests_saved);
        $macro_cb!(verify_steps);
        $macro_cb!(probe_steps);
        $macro_cb!(admitted);
        $macro_cb!(evicted);
        $macro_cb!(admission_rejected);
    };
}

impl StatsMonitor {
    /// New monitor with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish one query's accumulated delta (lock-free).
    pub fn add(&self, delta: &GlobalStats) {
        let inner = &self.inner;
        macro_rules! add_field {
            ($f:ident) => {
                if delta.$f != 0 {
                    inner.$f.fetch_add(delta.$f, Ordering::Relaxed);
                }
            };
        }
        for_each_counter!(add_field);
        let nanos = delta.total_time.as_nanos() as u64;
        if nanos != 0 {
            inner.total_time_nanos.fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Snapshot the current counters.
    pub fn snapshot(&self) -> GlobalStats {
        let inner = &self.inner;
        let mut out = GlobalStats::default();
        macro_rules! load_field {
            ($f:ident) => {
                out.$f = inner.$f.load(Ordering::Relaxed);
            };
        }
        for_each_counter!(load_field);
        out.total_time = Duration::from_nanos(inner.total_time_nanos.load(Ordering::Relaxed));
        out
    }

    /// Reset all counters.
    pub fn reset(&self) {
        let inner = &self.inner;
        macro_rules! reset_field {
            ($f:ident) => {
                inner.$f.store(0, Ordering::Relaxed);
            };
        }
        for_each_counter!(reset_field);
        inner.total_time_nanos.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_and_averages() {
        let mut s = GlobalStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.avg_tests_per_query(), 0.0);
        assert_eq!(s.avg_time_per_query(), Duration::ZERO);
        s.queries = 10;
        s.hit_queries = 4;
        s.tests_executed = 90;
        s.probe_tests = 10;
        s.total_time = Duration::from_millis(100);
        assert!((s.hit_ratio() - 0.4).abs() < 1e-12);
        assert!((s.avg_tests_per_query() - 10.0).abs() < 1e-12);
        assert_eq!(s.avg_time_per_query(), Duration::from_millis(10));
    }

    #[test]
    fn monitor_shares_state() {
        let m = StatsMonitor::new();
        let m2 = m.clone();
        m.add(&GlobalStats { queries: 5, ..GlobalStats::default() });
        m2.add(&GlobalStats { queries: 5, ..GlobalStats::default() });
        assert_eq!(m.snapshot().queries, 10);
        m.reset();
        assert_eq!(m2.snapshot().queries, 0);
    }

    #[test]
    fn add_covers_every_field() {
        let m = StatsMonitor::new();
        let delta = GlobalStats {
            queries: 1,
            hit_queries: 2,
            exact_hits: 3,
            memo_hits: 17,
            queries_with_sub_hits: 4,
            queries_with_super_hits: 5,
            sub_hits: 6,
            super_hits: 7,
            tests_executed: 8,
            probe_tests: 9,
            tests_saved: 10,
            verify_steps: 11,
            probe_steps: 12,
            admitted: 13,
            evicted: 14,
            admission_rejected: 15,
            total_time: Duration::from_nanos(16),
            // Gauges: never accumulated by the monitor (set at snapshot
            // time by the runtimes, not by `add`).
            distinct_features: 0,
            tombstoned_slots: 0,
            kernel_dispatch: "",
            persist_health: "",
            persist_errors: 0,
            journal_records_buffered: 0,
            requests_total: 0,
            requests_shed: 0,
            requests_timed_out: 0,
            uptime_secs: 0,
            dataset_generation: 0,
            dataset_live_graphs: 0,
            pipeline_p50_us: 0,
            pipeline_p99_us: 0,
            traces_sampled: 0,
            slow_queries: 0,
        };
        m.add(&delta);
        assert_eq!(m.snapshot(), delta);
        m.add(&delta);
        assert_eq!(m.snapshot().total_time, Duration::from_nanos(32));
    }

    #[test]
    fn gauges_pass_through_ratio() {
        let s = GlobalStats {
            distinct_features: 30,
            tombstoned_slots: 10,
            kernel_dispatch: "avx2",
            persist_health: "degraded",
            persist_errors: 5,
            journal_records_buffered: 7,
            requests_total: 100,
            requests_shed: 3,
            requests_timed_out: 2,
            uptime_secs: 60,
            dataset_generation: 4,
            dataset_live_graphs: 40,
            pipeline_p50_us: 128,
            pipeline_p99_us: 4096,
            traces_sampled: 9,
            slow_queries: 1,
            ..Default::default()
        };
        assert!((s.tombstone_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(GlobalStats::default().tombstone_ratio(), 0.0);
        // Gauge fields in a published delta are ignored by the monitor.
        let m = StatsMonitor::new();
        m.add(&s);
        assert_eq!(m.snapshot().distinct_features, 0);
        assert_eq!(m.snapshot().tombstoned_slots, 0);
        assert_eq!(m.snapshot().kernel_dispatch, "");
        assert_eq!(m.snapshot().persist_health, "");
        assert_eq!(m.snapshot().persist_errors, 0);
        assert_eq!(m.snapshot().journal_records_buffered, 0);
        assert_eq!(m.snapshot().requests_total, 0);
        assert_eq!(m.snapshot().requests_shed, 0);
        assert_eq!(m.snapshot().requests_timed_out, 0);
        assert_eq!(m.snapshot().uptime_secs, 0);
        assert_eq!(m.snapshot().dataset_generation, 0);
        assert_eq!(m.snapshot().dataset_live_graphs, 0);
        assert_eq!(m.snapshot().pipeline_p50_us, 0);
        assert_eq!(m.snapshot().pipeline_p99_us, 0);
        assert_eq!(m.snapshot().traces_sampled, 0);
        assert_eq!(m.snapshot().slow_queries, 0);
    }

    #[test]
    fn concurrent_adds_are_exact() {
        let m = StatsMonitor::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = m.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.add(&GlobalStats {
                            queries: 1,
                            tests_executed: 2,
                            ..GlobalStats::default()
                        });
                    }
                });
            }
        });
        let s = m.snapshot();
        assert_eq!(s.queries, 4000);
        assert_eq!(s.tests_executed, 8000);
    }
}
