//! Statistics Monitor / Manager.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Aggregate operational metrics of a cache instance (paper Fig. 1:
/// Statistics Monitor feeding the Demonstrator's Sub-Iso Testing / Query
/// Time panels).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GlobalStats {
    /// Queries processed.
    pub queries: u64,
    /// Queries with at least one hit of any kind.
    pub hit_queries: u64,
    /// Exact-match hits.
    pub exact_hits: u64,
    /// Queries with at least one sub-case hit (query ⊑ cached).
    pub queries_with_sub_hits: u64,
    /// Queries with at least one super-case hit (cached ⊑ query).
    pub queries_with_super_hits: u64,
    /// Individual sub-case hits across all queries.
    pub sub_hits: u64,
    /// Individual super-case hits across all queries.
    pub super_hits: u64,
    /// Sub-iso tests executed against *dataset graphs* (Σ |C| over queries).
    pub tests_executed: u64,
    /// Sub-iso tests executed against *cached queries* while probing for
    /// hits (cache overhead).
    pub probe_tests: u64,
    /// Sub-iso tests saved relative to Method M alone (Σ (|C_M| − |C|)).
    pub tests_saved: u64,
    /// Verifier steps spent on dataset-graph verification.
    pub verify_steps: u64,
    /// Verifier steps spent probing the cache.
    pub probe_steps: u64,
    /// Entries admitted.
    pub admitted: u64,
    /// Entries evicted.
    pub evicted: u64,
    /// Queries rejected by the admission filter.
    pub admission_rejected: u64,
    /// Total wall-clock time inside `query()`.
    pub total_time: Duration,
}

impl GlobalStats {
    /// Fraction of queries that enjoyed at least one cache hit.
    pub fn hit_ratio(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.hit_queries as f64 / self.queries as f64
        }
    }

    /// Average sub-iso tests per query, *including* cache-probe tests —
    /// the cache must repay its own overhead.
    pub fn avg_tests_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            (self.tests_executed + self.probe_tests) as f64 / self.queries as f64
        }
    }

    /// Average wall-clock time per query.
    pub fn avg_time_per_query(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.total_time / self.queries as u32
        }
    }
}

/// Thread-safe wrapper around [`GlobalStats`] — the Statistics Monitor.
///
/// Cloning shares the underlying counters (`Arc`).
#[derive(Debug, Clone, Default)]
pub struct StatsMonitor {
    inner: Arc<Mutex<GlobalStats>>,
}

impl StatsMonitor {
    /// New monitor with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply a mutation under the lock.
    pub fn update(&self, f: impl FnOnce(&mut GlobalStats)) {
        f(&mut self.inner.lock());
    }

    /// Snapshot the current counters.
    pub fn snapshot(&self) -> GlobalStats {
        self.inner.lock().clone()
    }

    /// Reset all counters.
    pub fn reset(&self) {
        *self.inner.lock() = GlobalStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_and_averages() {
        let mut s = GlobalStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.avg_tests_per_query(), 0.0);
        assert_eq!(s.avg_time_per_query(), Duration::ZERO);
        s.queries = 10;
        s.hit_queries = 4;
        s.tests_executed = 90;
        s.probe_tests = 10;
        s.total_time = Duration::from_millis(100);
        assert!((s.hit_ratio() - 0.4).abs() < 1e-12);
        assert!((s.avg_tests_per_query() - 10.0).abs() < 1e-12);
        assert_eq!(s.avg_time_per_query(), Duration::from_millis(10));
    }

    #[test]
    fn monitor_shares_state() {
        let m = StatsMonitor::new();
        let m2 = m.clone();
        m.update(|s| s.queries += 5);
        m2.update(|s| s.queries += 5);
        assert_eq!(m.snapshot().queries, 10);
        m.reset();
        assert_eq!(m2.snapshot().queries, 0);
    }
}
