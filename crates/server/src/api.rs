//! JSON wire types for the HTTP API.
//!
//! The request body of `POST /query` is not JSON — it is the same t/v/e
//! text format the rest of the system uses for graphs
//! ([`gc_graph::io::parse_dataset`]), with the query kind selected by the
//! `?kind=sub|super` query parameter. Responses are JSON via these types.

use serde::{Deserialize, Serialize};

/// `POST /query` success response: the exact answer set plus the
/// Query-Journey anatomy and the server-side stage timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResponse {
    /// Ids of the dataset graphs in the answer set.
    pub answer: Vec<usize>,
    /// `"sub"` or `"super"`.
    pub kind: String,
    /// `true` when an exact-match hit served the query outright.
    pub exact_hit: bool,
    /// `true` when the generation-versioned answer memo served the query
    /// without running the pipeline (zero probe/verify work).
    pub memo_hit: bool,
    /// `|C_M|` — base method's candidate count.
    pub cm_size: usize,
    /// `|S|` — definite answers contributed by cache hits.
    pub definite: usize,
    /// `|C|` — candidates actually verified.
    pub verified: usize,
    /// Sub-iso tests against dataset graphs.
    pub sub_iso_tests: u64,
    /// Sub-iso tests spent probing the cache.
    pub probe_tests: u64,
    /// Time spent waiting in the admission queue, microseconds.
    pub queue_us: u64,
    /// Time from first request byte to a fully-parsed request,
    /// microseconds (includes socket reads).
    pub parse_us: u64,
    /// Cache pipeline execution time, microseconds.
    pub execute_us: u64,
    /// `true` when the request finished after its deadline (it was still
    /// served — the answer is exact — but operators should treat the
    /// latency SLO as missed).
    pub deadline_exceeded: bool,
}

/// `POST /mutate` success response. `op` echoes the applied operation
/// (`"insert"` or `"remove"`); `applied` is `false` only for a remove of
/// an already-tombstoned (or never-live) graph id, which is a no-op.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MutateResponse {
    /// `"insert"` or `"remove"`.
    pub op: String,
    /// The inserted graph's id, or the id the remove targeted.
    pub graph_id: u32,
    /// Whether the mutation changed the dataset.
    pub applied: bool,
    /// Dataset generation after the mutation (one journaled delta each).
    pub generation: u64,
    /// Live (non-tombstoned) graphs after the mutation.
    pub live_graphs: u64,
}

/// Error response body (`4xx`/`5xx`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// What went wrong.
    pub error: String,
    /// Mirror of the `Retry-After` header on `503` shed responses.
    pub retry_after_secs: Option<u64>,
}

/// `GET /stats` response: cache-level Statistics Monitor counters plus
/// the server's serving gauges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Queries processed by the cache.
    pub queries: u64,
    /// Queries with at least one hit.
    pub hit_queries: u64,
    /// Exact-match hits.
    pub exact_hits: u64,
    /// Answer-memo hits (pipeline bypassed entirely).
    pub memo_hits: u64,
    /// Individual sub-case hits.
    pub sub_hits: u64,
    /// Individual super-case hits.
    pub super_hits: u64,
    /// Sub-iso tests against dataset graphs.
    pub tests_executed: u64,
    /// Sub-iso tests spent probing the cache.
    pub probe_tests: u64,
    /// Sub-iso tests saved vs the base method alone.
    pub tests_saved: u64,
    /// Entries admitted.
    pub admitted: u64,
    /// Entries evicted.
    pub evicted: u64,
    /// Live cached entries.
    pub entries: usize,
    /// Dataset generation (total mutations applied since construction).
    pub dataset_generation: u64,
    /// Live (non-tombstoned) dataset graphs.
    pub dataset_live_graphs: u64,
    /// Fraction of queries with at least one hit.
    pub hit_ratio: f64,
    /// SIMD kernel tier the hot loops dispatched to.
    pub kernel_dispatch: String,
    /// Persistence circuit-breaker state (empty when no store attached).
    pub persist_health: String,
    /// Failed persistence operations since attach.
    pub persist_errors: u64,
    /// Journal records buffered while persistence was degraded.
    pub journal_records_buffered: u64,
    /// HTTP requests parsed and routed.
    pub requests_total: u64,
    /// Requests shed under overload (both shed points).
    pub requests_shed: u64,
    /// Requests that exceeded a deadline.
    pub requests_timed_out: u64,
    /// Seconds since server start.
    pub uptime_secs: u64,
    /// `true` while the server is draining (also flips `/readyz`).
    pub draining: bool,
    /// Worker threads serving requests.
    pub workers: usize,
    /// Admission-queue depth (connections beyond this are shed).
    pub queue_depth: usize,
    /// Bucket-estimated p50 end-to-end query latency, microseconds
    /// (upper bound, within one log2 bucket of the true value).
    pub pipeline_p50_us: u64,
    /// Bucket-estimated p90 end-to-end query latency, microseconds.
    pub pipeline_p90_us: u64,
    /// Bucket-estimated p99 end-to-end query latency, microseconds.
    pub pipeline_p99_us: u64,
    /// Query traces captured by the sampler.
    pub traces_sampled: u64,
    /// Queries over the slow-query threshold (always traced).
    pub slow_queries: u64,
    /// Per-stage latency summaries for the cache pipeline.
    pub stages: Vec<StageSummary>,
}

/// Latency summary for one cache pipeline stage (from the stage's
/// log2-µs histogram; percentiles are bucket upper bounds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSummary {
    /// Stage label: `filter`/`probe`/`prune`/`verify`/`admit`/`memo`.
    pub stage: String,
    /// Observations recorded for this stage.
    pub count: u64,
    /// Bucket-estimated p50, microseconds.
    pub p50_us: u64,
    /// Bucket-estimated p90, microseconds.
    pub p90_us: u64,
    /// Bucket-estimated p99, microseconds.
    pub p99_us: u64,
}

/// `GET /debug/traces` / `GET /debug/slow` response: recent query traces,
/// newest first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracesResponse {
    /// The traces, newest first.
    pub traces: Vec<gc_core::QueryTrace>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_response_roundtrips() {
        let r = QueryResponse {
            answer: vec![0, 3, 17],
            kind: "sub".into(),
            exact_hit: true,
            memo_hit: false,
            cm_size: 75,
            definite: 1,
            verified: 43,
            sub_iso_tests: 43,
            probe_tests: 2,
            queue_us: 10,
            parse_us: 20,
            execute_us: 30,
            deadline_exceeded: false,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: QueryResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn mutate_response_roundtrips() {
        let m = MutateResponse {
            op: "insert".into(),
            graph_id: 120,
            applied: true,
            generation: 7,
            live_graphs: 119,
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: MutateResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn error_body_roundtrips_with_and_without_retry() {
        for retry in [Some(2u64), None] {
            let e = ErrorBody { error: "shed".into(), retry_after_secs: retry };
            let json = serde_json::to_string(&e).unwrap();
            let back: ErrorBody = serde_json::from_str(&json).unwrap();
            assert_eq!(e, back);
        }
    }

    #[test]
    fn stats_response_roundtrips() {
        let s = StatsResponse {
            queries: 100,
            hit_queries: 40,
            exact_hits: 10,
            memo_hits: 4,
            sub_hits: 5,
            super_hits: 3,
            tests_executed: 900,
            probe_tests: 100,
            tests_saved: 500,
            admitted: 20,
            evicted: 5,
            entries: 15,
            dataset_generation: 3,
            dataset_live_graphs: 98,
            hit_ratio: 0.4,
            kernel_dispatch: "avx2".into(),
            persist_health: "healthy".into(),
            persist_errors: 0,
            journal_records_buffered: 0,
            requests_total: 100,
            requests_shed: 7,
            requests_timed_out: 1,
            uptime_secs: 60,
            draining: false,
            workers: 4,
            queue_depth: 64,
            pipeline_p50_us: 128,
            pipeline_p90_us: 1024,
            pipeline_p99_us: 4096,
            traces_sampled: 2,
            slow_queries: 1,
            stages: vec![StageSummary {
                stage: "verify".into(),
                count: 90,
                p50_us: 64,
                p90_us: 256,
                p99_us: 2048,
            }],
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: StatsResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn traces_response_roundtrips() {
        let t = TracesResponse {
            traces: vec![gc_core::QueryTrace {
                seq: 42,
                request_id: Some("req-7".into()),
                kind: "sub".into(),
                outcome: "pipeline".into(),
                total_us: 900,
                verify_us: 700,
                cm_size: 40,
                to_verify: 12,
                survivors: 9,
                definite: 3,
                answer: 12,
                slow: true,
                ..Default::default()
            }],
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: TracesResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
