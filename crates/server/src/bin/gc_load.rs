//! `gc-load` — workload generator client for a running `gc serve`.
//!
//! Generates a molecule-derived workload (Zipf / uniform / drift — the
//! same synthesizers the experiments use) and replays it against a
//! server from N connection threads with retry + capped exponential
//! backoff + jitter, printing the merged [`gc_server::LoadReport`] as
//! JSON.
//!
//! The dataset parameters must match the serving side (`gc serve
//! --molecules N --seed S`) for answers to be meaningful; `gc-load`
//! itself never checks answers (the chaos gate does).

use gc_server::{run_load, LoadSpec};
use gc_workload::{molecule_dataset, Workload, WorkloadKind, WorkloadSpec};
use std::net::SocketAddr;

const USAGE: &str = "\
gc-load — GraphCache load-generator client

USAGE:
    gc-load --addr HOST:PORT [OPTIONS]

OPTIONS:
    --addr HOST:PORT      server address (required)
    --molecules N         dataset size to derive queries from [default: 60]
    --dataset-seed N      dataset generation seed [default: 42]
    --queries N           queries to send [default: 200]
    --connections N       concurrent connection threads [default: 4]
    --workload KIND       zipf | uniform | drift [default: zipf]
    --skew Z              zipf exponent [default: 1.1]
    --supergraph-frac F   fraction of supergraph queries [default: 0.2]
    --retries N           retries per request [default: 3]
    --seed N              workload + jitter seed [default: 0]
";

fn parse_flags(args: &[String]) -> Result<std::collections::HashMap<String, String>, String> {
    let mut flags = std::collections::HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument: {arg}"));
        };
        let Some(value) = args.get(i + 1) else {
            return Err(format!("--{name} needs a value"));
        };
        flags.insert(name.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(
    flags: &std::collections::HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| format!("invalid --{name}: {raw:?}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    if let Err(e) = run(&args) {
        eprintln!("gc-load: {e}");
        std::process::exit(1);
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let addr: SocketAddr = flags
        .get("addr")
        .ok_or("--addr is required (see --help)")?
        .parse()
        .map_err(|e| format!("invalid --addr: {e}"))?;

    let molecules: usize = get(&flags, "molecules", 60)?;
    let dataset_seed: u64 = get(&flags, "dataset-seed", 42)?;
    let n_queries: usize = get(&flags, "queries", 200)?;
    let seed: u64 = get(&flags, "seed", 0)?;
    let skew: f64 = get(&flags, "skew", 1.1)?;
    let supergraph_fraction: f64 = get(&flags, "supergraph-frac", 0.2)?;
    let kind = match flags.get("workload").map(String::as_str).unwrap_or("zipf") {
        "zipf" => WorkloadKind::Zipf { skew },
        "uniform" => WorkloadKind::Uniform,
        "drift" => WorkloadKind::Drift { chain_len: 3, repeat_prob: 0.3 },
        other => return Err(format!("unknown --workload {other:?} (zipf|uniform|drift)")),
    };

    let dataset = molecule_dataset(molecules, dataset_seed);
    let workload = Workload::generate(
        &dataset,
        &WorkloadSpec { n_queries, kind, supergraph_fraction, seed, ..WorkloadSpec::default() },
    );

    let spec = LoadSpec {
        connections: get(&flags, "connections", 4)?,
        retries: get(&flags, "retries", 3)?,
        seed,
        ..LoadSpec::default()
    };
    eprintln!(
        "gc-load: replaying {} queries against {addr} over {} connections",
        workload.len(),
        spec.connections
    );
    let report = run_load(addr, &workload, &spec);
    println!(
        "{}",
        serde_json::to_string_pretty(&report).map_err(|e| format!("report to JSON: {e}"))?
    );
    if report.failed > 0 {
        eprintln!("gc-load: {} requests exhausted retries", report.failed);
        std::process::exit(2);
    }
    Ok(())
}
