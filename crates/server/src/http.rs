//! Hand-rolled, bounded HTTP/1.1 protocol layer.
//!
//! The build container is offline, so the server speaks HTTP through this
//! module instead of a framework. The parser is written to be driven by an
//! untrusted byte stream:
//!
//! * **incremental** — [`parse_request`] is called on a growing buffer and
//!   returns [`Parse::Partial`] until a full request (head + declared body)
//!   is present; the caller never needs to guess how much to read;
//! * **bounded** — [`HttpLimits`] caps the head size, header count, and
//!   body size; exceeding any cap is a terminal [`ParseError`], never
//!   unbounded buffering;
//! * **total** — on arbitrary bytes the parser never panics and never
//!   claims to consume more bytes than it was given (property-tested in
//!   `tests/http_parse_prop.rs`).
//!
//! Only the slice of HTTP/1.1 the system needs is implemented: methods as
//! tokens, `Content-Length` bodies (no chunked transfer — a request with
//! `Transfer-Encoding` is rejected with `501`), CRLF line endings, and
//! `Connection: close`/`keep-alive` semantics.

/// Caps the parser enforces on an incoming request.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers, including the blank line.
    pub max_head_bytes: usize,
    /// Maximum declared body size in bytes.
    pub max_body_bytes: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits { max_head_bytes: 8 * 1024, max_body_bytes: 1 << 20, max_headers: 64 }
    }
}

/// A fully-parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method token, verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the request target (before any `?`).
    pub path: String,
    /// Raw query string (after `?`, without it), empty if none.
    pub query: String,
    /// Header fields in order of appearance, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Message body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// `true` unless the client asked for `Connection: close`.
    pub fn keep_alive(&self) -> bool {
        !self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// First value of a `k=v` pair in the query string.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
            (k == key).then_some(v)
        })
    }
}

/// Terminal parse failure; maps to the response status the server sends
/// before closing the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request line, header framing, or `Content-Length`.
    BadRequest(&'static str),
    /// Request line + headers exceed [`HttpLimits::max_head_bytes`].
    HeadTooLarge,
    /// Declared body exceeds [`HttpLimits::max_body_bytes`].
    BodyTooLarge,
    /// Not HTTP/1.0 or HTTP/1.1.
    UnsupportedVersion,
    /// `Transfer-Encoding` present (chunked bodies are not implemented).
    UnsupportedTransferEncoding,
}

impl ParseError {
    /// The HTTP status code this failure is reported as.
    pub fn status(self) -> u16 {
        match self {
            ParseError::BadRequest(_) => 400,
            ParseError::HeadTooLarge => 431,
            ParseError::BodyTooLarge => 413,
            ParseError::UnsupportedVersion => 505,
            ParseError::UnsupportedTransferEncoding => 501,
        }
    }

    /// Human-readable reason for the error body.
    pub fn describe(self) -> &'static str {
        match self {
            ParseError::BadRequest(msg) => msg,
            ParseError::HeadTooLarge => "request head exceeds the configured limit",
            ParseError::BodyTooLarge => "request body exceeds the configured limit",
            ParseError::UnsupportedVersion => "only HTTP/1.0 and HTTP/1.1 are supported",
            ParseError::UnsupportedTransferEncoding => {
                "transfer-encoding is not supported; use content-length"
            }
        }
    }
}

/// Outcome of one [`parse_request`] call over the buffered bytes so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// Not enough bytes yet (and no limit exceeded): read more.
    Partial,
    /// One full request, occupying the first `consumed` buffer bytes
    /// (anything after it is the start of a pipelined next request).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request consumed.
        consumed: usize,
    },
    /// The stream is not a request this parser accepts; the connection
    /// must be answered with [`ParseError::status`] and closed.
    Error(ParseError),
}

/// `true` for the token characters RFC 7230 allows in a method name.
fn is_token_byte(b: u8) -> bool {
    matches!(b,
        b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z'
        | b'!' | b'#' | b'$' | b'%' | b'&' | b'\'' | b'*' | b'+' | b'-' | b'.'
        | b'^' | b'_' | b'`' | b'|' | b'~')
}

/// Find `\r\n\r\n` in `buf`, returning the index *after* it.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Parse one request from the front of `buf`. See [`Parse`].
pub fn parse_request(buf: &[u8], limits: &HttpLimits) -> Parse {
    let head_end = match find_head_end(buf) {
        Some(end) if end > limits.max_head_bytes => return Parse::Error(ParseError::HeadTooLarge),
        Some(end) => end,
        None => {
            // No blank line yet: once the unterminated head outgrows the
            // cap it never can become valid — fail now, don't buffer on.
            if buf.len() > limits.max_head_bytes {
                return Parse::Error(ParseError::HeadTooLarge);
            }
            return Parse::Partial;
        }
    };
    let head = &buf[..head_end - 4];
    let head = match std::str::from_utf8(head) {
        Ok(s) => s,
        Err(_) => return Parse::Error(ParseError::BadRequest("request head is not UTF-8")),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    // Bare LF inside what looked like a line means the client mixed line
    // endings; reject rather than guess.
    if request_line.contains('\n') {
        return Parse::Error(ParseError::BadRequest("bare LF in request line"));
    }

    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Parse::Error(ParseError::BadRequest("malformed request line")),
    };
    if !method.bytes().all(is_token_byte) {
        return Parse::Error(ParseError::BadRequest("method is not a token"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Parse::Error(ParseError::UnsupportedVersion);
    }
    if target.bytes().any(|b| b <= b' ' || b == 0x7f) {
        return Parse::Error(ParseError::BadRequest("control bytes in request target"));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: Option<u64> = None;
    for line in lines {
        if line.contains('\n') {
            return Parse::Error(ParseError::BadRequest("bare LF in header field"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Parse::Error(ParseError::BadRequest("header field without a colon"));
        };
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            // Covers the smuggling-relevant "space before colon" shape too.
            return Parse::Error(ParseError::BadRequest("malformed header name"));
        }
        if headers.len() == limits.max_headers {
            return Parse::Error(ParseError::BadRequest("too many header fields"));
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim_matches([' ', '\t']).to_string();
        if name == "content-length" {
            let Ok(n) = value.parse::<u64>() else {
                return Parse::Error(ParseError::BadRequest("content-length is not a number"));
            };
            // A repeated Content-Length must agree with itself, else the
            // request is ambiguous (classic smuggling vector).
            if content_length.is_some_and(|prev| prev != n) {
                return Parse::Error(ParseError::BadRequest("conflicting content-length values"));
            }
            content_length = Some(n);
        }
        if name == "transfer-encoding" {
            return Parse::Error(ParseError::UnsupportedTransferEncoding);
        }
        headers.push((name, value));
    }

    let body_len = content_length.unwrap_or(0);
    if body_len > limits.max_body_bytes as u64 {
        return Parse::Error(ParseError::BodyTooLarge);
    }
    let total = head_end + body_len as usize;
    if buf.len() < total {
        return Parse::Partial;
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Parse::Complete {
        request: Request {
            method: method.to_string(),
            path,
            query,
            headers,
            body: buf[head_end..total].to_vec(),
        },
        consumed: total,
    }
}

// ---- responses -------------------------------------------------------------

/// An outgoing response; [`Response::encode`] frames it with
/// `Content-Length` and `Connection`.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Length`/`Connection` are added by `encode`).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

/// Reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

impl Response {
    /// Plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: vec![("content-type".into(), "text/plain; charset=utf-8".into())],
            body: body.into().into_bytes(),
        }
    }

    /// JSON response from pre-serialized text.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: vec![("content-type".into(), "application/json".into())],
            body: body.into().into_bytes(),
        }
    }

    /// Add a header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serialize status line, headers, framing headers, and body.
    pub fn encode(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status, reason_phrase(self.status)).as_bytes(),
        );
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(if keep_alive {
            &b"connection: keep-alive\r\n"[..]
        } else {
            &b"connection: close\r\n"[..]
        });
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Parse {
        parse_request(bytes, &HttpLimits::default())
    }

    #[test]
    fn simple_get_roundtrip() {
        let raw = b"GET /stats?pretty=1 HTTP/1.1\r\nHost: x\r\n\r\n";
        match parse(raw) {
            Parse::Complete { request, consumed } => {
                assert_eq!(consumed, raw.len());
                assert_eq!(request.method, "GET");
                assert_eq!(request.path, "/stats");
                assert_eq!(request.query, "pretty=1");
                assert_eq!(request.query_param("pretty"), Some("1"));
                assert_eq!(request.header("host"), Some("x"));
                assert!(request.keep_alive());
                assert!(request.body.is_empty());
            }
            other => panic!("expected complete, got {other:?}"),
        }
    }

    #[test]
    fn post_with_body_and_pipelined_tail() {
        let raw = b"POST /query HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcdGET /";
        match parse(raw) {
            Parse::Complete { request, consumed } => {
                assert_eq!(request.body, b"abcd");
                assert_eq!(consumed, raw.len() - "GET /".len());
            }
            other => panic!("expected complete, got {other:?}"),
        }
    }

    #[test]
    fn partial_until_body_arrives() {
        let head = b"POST /query HTTP/1.1\r\ncontent-length: 4\r\n\r\n";
        assert_eq!(parse(&head[..head.len() - 1]), Parse::Partial);
        assert_eq!(parse(head), Parse::Partial);
        assert_eq!(parse(b"POST /query HTTP/1.1\r\ncontent-length: 4\r\n\r\nab"), Parse::Partial);
    }

    #[test]
    fn connection_close_is_honoured() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let Parse::Complete { request, .. } = parse(raw) else { panic!("complete") };
        assert!(!request.keep_alive());
    }

    #[test]
    fn rejects_malformed_shapes() {
        for (raw, status) in [
            (&b"FOO BAR\r\n\r\n"[..], 400),                          // no version
            (b"GET / HTTP/2.0\r\n\r\n", 505),                        // version
            (b"GET / HTTP/1.1\r\nbad header\r\n\r\n", 400),          // no colon
            (b"GET / HTTP/1.1\r\nname : v\r\n\r\n", 400),            // space in name
            (b"GET / HTTP/1.1\r\ncontent-length: xyz\r\n\r\n", 400), // bad CL
            (b"GET / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 2\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n", 501),
            (b"G\x00T / HTTP/1.1\r\n\r\n", 400), // NUL in method
        ] {
            match parse(raw) {
                Parse::Error(e) => assert_eq!(e.status(), status, "{raw:?}"),
                other => panic!("expected error for {raw:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn equal_duplicate_content_length_is_tolerated() {
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 2\r\n\r\nhi";
        assert!(matches!(parse(raw), Parse::Complete { .. }));
    }

    #[test]
    fn head_limit_fires_with_and_without_blank_line() {
        let limits = HttpLimits { max_head_bytes: 64, ..HttpLimits::default() };
        // Unterminated oversized head.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 80));
        assert_eq!(parse_request(&raw, &limits), Parse::Error(ParseError::HeadTooLarge));
        // Terminated but oversized head.
        let raw = b"GET / HTTP/1.1\r\nx-pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n\r\n";
        assert_eq!(parse_request(raw, &limits), Parse::Error(ParseError::HeadTooLarge));
    }

    #[test]
    fn body_limit_fires_before_buffering_the_body() {
        let limits = HttpLimits { max_body_bytes: 8, ..HttpLimits::default() };
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 9\r\n\r\n";
        assert_eq!(parse_request(raw, &limits), Parse::Error(ParseError::BodyTooLarge));
    }

    #[test]
    fn header_count_limit() {
        let limits = HttpLimits { max_headers: 2, ..HttpLimits::default() };
        let raw = b"GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n";
        assert!(matches!(parse_request(raw, &limits), Parse::Error(ParseError::BadRequest(_))));
    }

    #[test]
    fn huge_declared_length_does_not_overflow() {
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 18446744073709551615\r\n\r\n";
        assert_eq!(parse(raw), Parse::Error(ParseError::BodyTooLarge));
    }

    #[test]
    fn response_encoding_frames_correctly() {
        let resp = Response::text(503, "shed").with_header("retry-after", "1");
        let bytes = resp.encode(false);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("content-length: 4\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nshed"));
    }
}
