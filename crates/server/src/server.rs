//! The overload-hardened server: bounded accept loop, fixed worker pool,
//! load-shedding admission queue, per-request deadlines, and graceful
//! drain.
//!
//! ## Overload model
//!
//! Work enters through exactly one bounded channel. The accept thread
//! `try_send`s each connection into a `sync_channel(queue_depth)`; a full
//! queue means the system is saturated, and the connection is *shed* on
//! the spot with `503` + `Retry-After` (a few microseconds of work) —
//! never queued without bound. Connections that make it into the queue
//! but wait longer than the request deadline are also shed when a worker
//! finally picks them up: serving a request the client has given up on
//! wastes the capacity that shedding exists to protect.
//!
//! ## Deadline model
//!
//! Every request has a deadline: [`ServerConfig::request_deadline`],
//! tightenable per request with an `X-Deadline-Ms` header. Time spent in
//! the queue and reading the request counts against it. A request whose
//! deadline expires before execution gets `504`; a slow client that
//! stalls mid-request gets `408` (socket read timeouts bound every
//! blocking read — the slow-loris defense); a request that *completes*
//! past its deadline is still answered (the answer is exact either way)
//! but flagged `deadline_exceeded` and counted in
//! `requests_timed_out`.
//!
//! ## Drain model
//!
//! [`Server::drain`] stops the accept loop, lets workers finish queued
//! and in-flight requests within [`ServerConfig::drain_timeout`], clears
//! any injected fault plan, and cuts a final snapshot when a store is
//! attached — so a subsequent warm restart serves exact answers
//! immediately.

use crate::api::{ErrorBody, QueryResponse, StageSummary, StatsResponse, TracesResponse};
use crate::http::{parse_request, HttpLimits, Parse, Request, Response};
use crate::metrics::{ServerMetrics, Stage};
use gc_core::persist::PersistHealth;
use gc_core::{GlobalStats, SharedGraphCache};
use gc_method::QueryKind;
use gc_store::faults::FaultPlan;
use parking_lot::Mutex;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Worker threads serving requests.
    pub workers: usize,
    /// Admission-queue depth; connections beyond this are shed with `503`.
    pub queue_depth: usize,
    /// Default per-request deadline (queue wait + read + execute).
    pub request_deadline: Duration,
    /// Socket read timeout — bounds every blocking read (slow-loris).
    pub read_timeout: Duration,
    /// Socket write timeout — bounds writes to slow readers.
    pub write_timeout: Duration,
    /// Bound on graceful drain: workers still busy after this are left
    /// behind (their socket timeouts bound how long they linger).
    pub drain_timeout: Duration,
    /// `Retry-After` seconds sent with shed (`503`) responses.
    pub retry_after_secs: u64,
    /// HTTP parser limits.
    pub limits: HttpLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 64,
            request_deadline: Duration::from_secs(5),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            drain_timeout: Duration::from_secs(10),
            retry_after_secs: 1,
            limits: HttpLimits::default(),
        }
    }
}

/// What [`Server::drain`] accomplished.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Worker threads that exited within the drain bound.
    pub workers_finished: usize,
    /// Total worker threads.
    pub workers_total: usize,
    /// `true` when the drain bound expired with workers still busy.
    pub forced: bool,
    /// Wall-clock duration of the drain.
    pub drained_in: Duration,
    /// Generation of the final snapshot, when a store was attached and
    /// the snapshot succeeded.
    pub snapshot_generation: Option<u64>,
}

/// State shared by the accept thread, workers, and the handle.
struct Shared {
    cache: Arc<SharedGraphCache>,
    config: ServerConfig,
    metrics: ServerMetrics,
    draining: AtomicBool,
}

/// A running server. Dropping it without calling [`Server::drain`] leaves
/// the threads running for the process lifetime; drain for an orderly
/// stop.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    done_rx: Receiver<usize>,
}

/// Handle alias (re-exported for API clarity).
pub type ServerHandle = Server;

impl Server {
    /// Bind and start serving `cache` per `config`.
    pub fn start(cache: Arc<SharedGraphCache>, config: ServerConfig) -> Result<Server, String> {
        Self::start_with_faults(cache, config, None)
    }

    /// [`Server::start`], additionally installing `fault_plan` on the
    /// cache's attached store for the server's lifetime — the chaos
    /// harness injects store faults through the same lifecycle a real
    /// deployment would wire them through. The plan is cleared during
    /// [`Server::drain`] so the final snapshot is taken fault-free.
    pub fn start_with_faults(
        cache: Arc<SharedGraphCache>,
        config: ServerConfig,
        fault_plan: Option<Arc<FaultPlan>>,
    ) -> Result<Server, String> {
        if config.workers == 0 || config.queue_depth == 0 {
            return Err("server needs at least 1 worker and queue depth 1".into());
        }
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;

        if let Some(plan) = fault_plan {
            match cache.attached_store() {
                Some(store) => store.set_fault_plan(Some(plan)),
                None => return Err("fault plan given but no store is attached".into()),
            }
        }

        let (tx, rx) = sync_channel::<(TcpStream, Instant)>(config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let (done_tx, done_rx) = std::sync::mpsc::channel::<usize>();
        let shared = Arc::new(Shared {
            cache,
            config,
            metrics: ServerMetrics::new(),
            draining: AtomicBool::new(false),
        });

        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                let done_tx = done_tx.clone();
                std::thread::Builder::new()
                    .name(format!("gc-server-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&shared, &rx);
                        let _ = done_tx.send(i);
                    })
                    .expect("spawn worker thread")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gc-server-accept".into())
                .spawn(move || accept_loop(listener, tx, &shared))
                .expect("spawn accept thread")
        };

        Ok(Server { shared, addr, accept, workers, done_rx })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server metrics.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// The served cache.
    pub fn cache(&self) -> &Arc<SharedGraphCache> {
        &self.shared.cache
    }

    /// Cache statistics with the serving gauges
    /// (`requests_total`/`requests_shed`/`requests_timed_out`/
    /// `uptime_secs`) populated — what dashboards should render for a
    /// served cache.
    pub fn serving_stats(&self) -> GlobalStats {
        serving_stats(&self.shared)
    }

    /// Gracefully stop: stop accepting, let workers finish in-flight
    /// work within [`ServerConfig::drain_timeout`], clear any injected
    /// fault plan, and cut a final snapshot when a store is attached.
    pub fn drain(self) -> DrainReport {
        let t0 = Instant::now();
        self.shared.draining.store(true, Ordering::SeqCst);
        // The accept thread blocks in `accept()`; a self-connection wakes
        // it so it can observe the drain flag and exit (dropping the
        // queue sender, which in turn lets idle workers exit).
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        let _ = self.accept.join();

        let total = self.workers.len();
        let mut finished = vec![false; total];
        let mut n_done = 0usize;
        let deadline = t0 + self.shared.config.drain_timeout;
        while n_done < total {
            let now = Instant::now();
            let Some(budget) = deadline.checked_duration_since(now).filter(|d| !d.is_zero()) else {
                break;
            };
            match self.done_rx.recv_timeout(budget) {
                Ok(i) => {
                    finished[i] = true;
                    n_done += 1;
                }
                Err(_) => break,
            }
        }
        for (i, handle) in self.workers.into_iter().enumerate() {
            if finished[i] {
                let _ = handle.join();
            }
            // Workers still busy past the bound are left detached; their
            // socket read/write timeouts bound how long they can linger,
            // and the drain flag makes them close keep-alive connections
            // after the in-flight request.
        }
        let forced = n_done < total;

        if let Some(store) = self.shared.cache.attached_store() {
            store.set_fault_plan(None);
        }
        let snapshot_generation = match self.shared.cache.snapshot_now() {
            Ok(info) => info.map(|i| i.generation),
            Err(e) => {
                eprintln!("gc-server: final drain snapshot failed ({e})");
                None
            }
        };
        DrainReport {
            workers_finished: n_done,
            workers_total: total,
            forced,
            drained_in: t0.elapsed(),
            snapshot_generation,
        }
    }
}

/// Process-wide sequence for generated request ids.
static REQUEST_ID_SEQ: AtomicU64 = AtomicU64::new(0);

/// Generate a request id for a request that arrived without one:
/// `gc-<pid>-<seq>` — unique within the process, greppable across a
/// restart (the pid changes).
fn generate_request_id() -> String {
    let seq = REQUEST_ID_SEQ.fetch_add(1, Ordering::Relaxed);
    format!("gc-{:x}-{seq:x}", std::process::id())
}

/// The id to echo back: the client's `X-Request-Id` when present, a
/// generated one otherwise. Every response carries one — including shed
/// `503`s and timeout `408`/`504`s — so any observed failure can be
/// joined against the slow-query log.
fn request_id_for(req: &Request) -> String {
    req.header("x-request-id").map(str::to_owned).unwrap_or_else(generate_request_id)
}

/// Cache stats + serving gauges (shared by `/stats` and the handle).
fn serving_stats(shared: &Shared) -> GlobalStats {
    let mut s = shared.cache.stats();
    let m = &shared.metrics;
    s.requests_total = m.requests_total.load(Ordering::Relaxed);
    s.requests_shed = m.total_shed();
    s.requests_timed_out = m.requests_timed_out.load(Ordering::Relaxed);
    s.uptime_secs = m.uptime_secs();
    s
}

// ---- accept loop -----------------------------------------------------------

fn accept_loop(listener: TcpListener, tx: SyncSender<(TcpStream, Instant)>, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            // Transient accept errors (e.g. the peer reset before we got
            // to it) must not kill the accept loop.
            Err(_) => {
                if shared.draining.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::Relaxed) {
            // The drain self-connection (or a straggler) lands here.
            return;
        }
        match tx.try_send((stream, Instant::now())) {
            Ok(()) => {
                shared.metrics.connections_accepted.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full((stream, _))) => shed_connection(stream, shared),
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

/// Queue full: answer `503` + `Retry-After` immediately and close. The
/// write gets a short timeout so a slow shed client cannot stall the
/// accept loop.
fn shed_connection(mut stream: TcpStream, shared: &Shared) {
    shared.metrics.connections_shed.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let retry = shared.config.retry_after_secs;
    let body = ErrorBody {
        error: "overloaded: admission queue full".into(),
        retry_after_secs: Some(retry),
    };
    let resp = Response::json(503, serde_json::to_string(&body).unwrap_or_default())
        .with_header("retry-after", retry.to_string())
        .with_header("x-request-id", generate_request_id());
    let _ = stream.write_all(&resp.encode(false));
}

// ---- workers ---------------------------------------------------------------

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<(TcpStream, Instant)>>) {
    loop {
        // Hold the receiver lock only for the dequeue itself.
        let next = rx.lock().recv();
        let Ok((stream, enqueued)) = next else { return };
        let waited = enqueued.elapsed();
        shared.metrics.observe(Stage::Queue, waited);
        if waited > shared.config.request_deadline {
            // The client has likely given up; serving now wastes the
            // capacity shedding protects.
            shared.metrics.requests_shed.fetch_add(1, Ordering::Relaxed);
            shed_queued(stream, shared);
            continue;
        }
        handle_connection(stream, waited, shared);
    }
}

fn shed_queued(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let retry = shared.config.retry_after_secs;
    let body =
        ErrorBody { error: "shed: queued past deadline".into(), retry_after_secs: Some(retry) };
    let resp = Response::json(503, serde_json::to_string(&body).unwrap_or_default())
        .with_header("retry-after", retry.to_string())
        .with_header("x-request-id", generate_request_id());
    let _ = stream.write_all(&resp.encode(false));
}

/// Serve one connection: incremental parse with keep-alive and
/// pipelining, socket timeouts on every read/write, and the per-request
/// deadline from the first byte.
fn handle_connection(mut stream: TcpStream, mut queue_wait: Duration, shared: &Shared) {
    let cfg = &shared.config;
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = stream.set_nodelay(true);

    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut first_byte: Option<Instant> = None;
    loop {
        match parse_request(&buf, &cfg.limits) {
            Parse::Complete { request, consumed } => {
                let parse_time = first_byte.take().map(|t| t.elapsed()).unwrap_or_default();
                shared.metrics.observe(Stage::Parse, parse_time);
                buf.drain(..consumed);
                // Queue wait counts against the *first* request only;
                // later keep-alive requests never sat in the queue.
                let waited = std::mem::take(&mut queue_wait);
                let response = route(&request, waited, parse_time, shared)
                    .with_header("x-request-id", request_id_for(&request));
                let keep = request.keep_alive() && !shared.draining.load(Ordering::Relaxed);
                let t0 = Instant::now();
                if stream.write_all(&response.encode(keep)).is_err() {
                    return;
                }
                shared.metrics.observe(Stage::Write, t0.elapsed());
                if !keep {
                    return;
                }
                // A pipelined next request may already be buffered; loop
                // back to the parser before reading.
                continue;
            }
            Parse::Error(e) => {
                shared.metrics.parse_errors.fetch_add(1, Ordering::Relaxed);
                let body = ErrorBody { error: e.describe().into(), retry_after_secs: None };
                let resp =
                    Response::json(e.status(), serde_json::to_string(&body).unwrap_or_default())
                        .with_header("x-request-id", generate_request_id());
                let _ = stream.write_all(&resp.encode(false));
                return;
            }
            Parse::Partial => {}
        }

        // Slow-loris bound: a partially-received request cannot outlive
        // its deadline no matter how steadily the client trickles bytes.
        if first_byte.is_some_and(|t| t.elapsed() > cfg.request_deadline) {
            answer_timeout(&mut stream, shared);
            return;
        }

        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                if first_byte.is_none() {
                    first_byte = Some(Instant::now());
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if buf.is_empty() {
                    // Idle keep-alive connection: close quietly.
                    return;
                }
                // Mid-request stall: the read timeout is the slow-loris
                // backstop when the deadline has not fired yet.
                answer_timeout(&mut stream, shared);
                return;
            }
            Err(_) => return,
        }
    }
}

fn answer_timeout(stream: &mut TcpStream, shared: &Shared) {
    shared.metrics.requests_timed_out.fetch_add(1, Ordering::Relaxed);
    let body = ErrorBody { error: "request timed out".into(), retry_after_secs: None };
    let resp = Response::json(408, serde_json::to_string(&body).unwrap_or_default())
        .with_header("x-request-id", generate_request_id());
    let _ = stream.write_all(&resp.encode(false));
}

// ---- routing ---------------------------------------------------------------

fn route(req: &Request, queue_wait: Duration, parse_time: Duration, shared: &Shared) -> Response {
    shared.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/query") => handle_query(req, queue_wait, parse_time, shared),
        ("POST", "/mutate") => handle_mutate(req, shared),
        ("GET", "/stats") => handle_stats(shared),
        ("GET", "/metrics") => {
            let text = shared.metrics.render_prometheus(
                &shared.cache.stats(),
                shared.cache.len(),
                shared.cache.telemetry(),
            );
            Response::text(200, text)
        }
        ("GET", "/debug/traces") => handle_traces(req, shared, false),
        ("GET", "/debug/slow") => handle_traces(req, shared, true),
        ("GET", "/healthz") => Response::text(200, "ok"),
        ("GET", "/readyz") => handle_readyz(shared),
        (
            _,
            "/query" | "/mutate" | "/stats" | "/metrics" | "/debug/traces" | "/debug/slow"
            | "/healthz" | "/readyz",
        ) => error_response(405, format!("method {} not allowed for {}", req.method, req.path)),
        _ => error_response(404, format!("no such endpoint: {}", req.path)),
    }
}

fn error_response(status: u16, error: String) -> Response {
    let body = ErrorBody { error, retry_after_secs: None };
    Response::json(status, serde_json::to_string(&body).unwrap_or_default())
}

fn handle_query(
    req: &Request,
    queue_wait: Duration,
    parse_time: Duration,
    shared: &Shared,
) -> Response {
    // The effective deadline: the server default, tightened by the
    // client's X-Deadline-Ms if present.
    let mut deadline = shared.config.request_deadline;
    if let Some(ms) = req.header("x-deadline-ms").and_then(|v| v.parse::<u64>().ok()) {
        deadline = deadline.min(Duration::from_millis(ms));
    }
    let consumed = queue_wait + parse_time;
    if consumed >= deadline {
        shared.metrics.requests_timed_out.fetch_add(1, Ordering::Relaxed);
        return error_response(504, "deadline expired before execution".into());
    }

    let kind = match req.query_param("kind") {
        None | Some("sub") => QueryKind::Subgraph,
        Some("super") => QueryKind::Supergraph,
        Some(other) => {
            return error_response(400, format!("unknown kind {other:?} (want sub|super)"))
        }
    };
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return error_response(400, "query body is not UTF-8".into()),
    };
    let graphs = match gc_graph::io::parse_dataset(text) {
        Ok(g) => g,
        Err(e) => return error_response(400, format!("query body is not t/v/e: {e}")),
    };
    let [query] = graphs.as_slice() else {
        return error_response(
            400,
            format!("query body must contain exactly one graph, got {}", graphs.len()),
        );
    };

    let t0 = Instant::now();
    let report = shared.cache.query_traced(query, kind, req.header("x-request-id"));
    let execute = t0.elapsed();
    shared.metrics.observe(Stage::Execute, execute);
    let deadline_exceeded = consumed + execute > deadline;
    if deadline_exceeded {
        shared.metrics.requests_timed_out.fetch_add(1, Ordering::Relaxed);
    }

    let resp = QueryResponse {
        answer: report.answer.to_vec(),
        kind: kind.as_str().into(),
        exact_hit: report.exact_hit,
        memo_hit: report.memo_hit,
        cm_size: report.cm_size,
        definite: report.definite,
        verified: report.verified,
        sub_iso_tests: report.sub_iso_tests,
        probe_tests: report.probe_tests,
        queue_us: queue_wait.as_micros() as u64,
        parse_us: parse_time.as_micros() as u64,
        execute_us: execute.as_micros() as u64,
        deadline_exceeded,
    };
    match serde_json::to_string(&resp) {
        Ok(json) => Response::json(200, json),
        Err(e) => error_response(500, format!("response serialization failed: {e}")),
    }
}

/// `POST /mutate?op=insert` (t/v/e body, exactly one graph) or
/// `POST /mutate?op=remove&id=N`. Mutations are serialized by the cache's
/// dataset lock, repair every cached answer set, invalidate the answer
/// memo via the generation bump, and journal one dataset delta each.
fn handle_mutate(req: &Request, shared: &Shared) -> Response {
    match req.query_param("op") {
        Some("insert") => {
            let text = match std::str::from_utf8(&req.body) {
                Ok(t) => t,
                Err(_) => return error_response(400, "mutate body is not UTF-8".into()),
            };
            let graphs = match gc_graph::io::parse_dataset(text) {
                Ok(g) => g,
                Err(e) => return error_response(400, format!("mutate body is not t/v/e: {e}")),
            };
            let [graph] = graphs.as_slice() else {
                return error_response(
                    400,
                    format!("mutate body must contain exactly one graph, got {}", graphs.len()),
                );
            };
            let gid = shared.cache.insert_graph(graph.clone());
            mutate_response("insert", gid, true, shared)
        }
        Some("remove") => {
            let Some(gid) = req.query_param("id").and_then(|v| v.parse::<u32>().ok()) else {
                return error_response(400, "op=remove needs an id=N query parameter".into());
            };
            if (gid as usize) >= shared.cache.dataset().len() {
                return error_response(404, format!("graph id {gid} is out of range"));
            }
            let applied = shared.cache.remove_graph(gid);
            mutate_response("remove", gid, applied, shared)
        }
        other => error_response(400, format!("unknown op {other:?} (want insert|remove)")),
    }
}

fn mutate_response(op: &str, gid: u32, applied: bool, shared: &Shared) -> Response {
    let dataset = shared.cache.dataset();
    let resp = crate::api::MutateResponse {
        op: op.into(),
        graph_id: gid,
        applied,
        generation: dataset.generation(),
        live_graphs: dataset.live_count() as u64,
    };
    match serde_json::to_string(&resp) {
        Ok(json) => Response::json(200, json),
        Err(e) => error_response(500, format!("mutate serialization failed: {e}")),
    }
}

fn handle_stats(shared: &Shared) -> Response {
    let s = serving_stats(shared);
    let telemetry = shared.cache.telemetry();
    let resp = StatsResponse {
        queries: s.queries,
        hit_queries: s.hit_queries,
        exact_hits: s.exact_hits,
        memo_hits: s.memo_hits,
        sub_hits: s.sub_hits,
        super_hits: s.super_hits,
        tests_executed: s.tests_executed,
        probe_tests: s.probe_tests,
        tests_saved: s.tests_saved,
        admitted: s.admitted,
        evicted: s.evicted,
        entries: shared.cache.len(),
        dataset_generation: s.dataset_generation,
        dataset_live_graphs: s.dataset_live_graphs,
        hit_ratio: s.hit_ratio(),
        kernel_dispatch: s.kernel_dispatch.into(),
        persist_health: s.persist_health.into(),
        persist_errors: s.persist_errors,
        journal_records_buffered: s.journal_records_buffered,
        requests_total: s.requests_total,
        requests_shed: s.requests_shed,
        requests_timed_out: s.requests_timed_out,
        uptime_secs: s.uptime_secs,
        draining: shared.draining.load(Ordering::Relaxed),
        workers: shared.config.workers,
        queue_depth: shared.config.queue_depth,
        pipeline_p50_us: s.pipeline_p50_us,
        pipeline_p90_us: telemetry.total().percentile_us(90.0),
        pipeline_p99_us: s.pipeline_p99_us,
        traces_sampled: s.traces_sampled,
        slow_queries: s.slow_queries,
        stages: gc_core::PipelineStage::ALL
            .iter()
            .map(|&stage| {
                let h = telemetry.stage(stage);
                StageSummary {
                    stage: stage.label().into(),
                    count: h.count(),
                    p50_us: h.percentile_us(50.0),
                    p90_us: h.percentile_us(90.0),
                    p99_us: h.percentile_us(99.0),
                }
            })
            .collect(),
    };
    match serde_json::to_string(&resp) {
        Ok(json) => Response::json(200, json),
        Err(e) => error_response(500, format!("stats serialization failed: {e}")),
    }
}

/// `GET /debug/traces?n=` (sampled ring) / `GET /debug/slow?n=` (slow
/// ring): the most recent `n` traces (default 20), newest first.
fn handle_traces(req: &Request, shared: &Shared, slow: bool) -> Response {
    let n = req.query_param("n").and_then(|v| v.parse::<usize>().ok()).unwrap_or(20);
    let telemetry = shared.cache.telemetry();
    let traces = if slow { telemetry.recent_slow(n) } else { telemetry.recent_traces(n) };
    match serde_json::to_string(&TracesResponse { traces }) {
        Ok(json) => Response::json(200, json),
        Err(e) => error_response(500, format!("trace serialization failed: {e}")),
    }
}

/// Readiness: `503` while draining; `503` when the persistence circuit
/// breaker is `Disabled` (the cache still answers exactly, but an
/// instance that can never persist again should be rotated out);
/// `200` otherwise — including `Degraded`, which keeps serving exact
/// answers memory-only while recovery probes run, with the state named
/// in the body so operators can see it.
fn handle_readyz(shared: &Shared) -> Response {
    if shared.draining.load(Ordering::Relaxed) {
        return Response::text(503, "draining");
    }
    match shared.cache.persist_health() {
        Some(PersistHealth::Disabled) => Response::text(503, "not ready: persistence disabled"),
        Some(h) => Response::text(200, format!("ready (persistence {})", h.as_str())),
        None => Response::text(200, "ready (no store attached)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use gc_core::{CacheConfig, PolicyKind};
    use gc_method::{Dataset, SiMethod};
    use gc_workload::molecule_dataset;

    fn start_server(config: ServerConfig) -> (Server, Arc<Dataset>) {
        let graphs = molecule_dataset(24, 42);
        let dataset = Arc::new(Dataset::new(graphs));
        let cache = SharedGraphCache::with_policy(
            Arc::clone(&dataset),
            Box::new(SiMethod),
            PolicyKind::Hd,
            CacheConfig { capacity: 16, window_size: 4, ..CacheConfig::default() },
        )
        .unwrap();
        (Server::start(Arc::new(cache), config).unwrap(), dataset)
    }

    fn quick_config() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_depth: 8,
            request_deadline: Duration::from_secs(2),
            read_timeout: Duration::from_millis(300),
            write_timeout: Duration::from_millis(300),
            drain_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn serves_exact_answers_over_http() {
        let (server, dataset) = start_server(quick_config());
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let query = dataset.graphs()[0].clone();
        let body = gc_graph::io::dataset_to_string(std::slice::from_ref(&query));

        let resp = client.post("/query?kind=sub", body.as_bytes()).unwrap();
        assert_eq!(resp.status, 200);
        let parsed: QueryResponse = serde_json::from_str(&resp.body_text()).unwrap();
        let base = gc_method::execute_base(
            &dataset,
            &SiMethod,
            gc_method::Engine::Vf2,
            &query,
            QueryKind::Subgraph,
        );
        assert_eq!(parsed.answer, base.answer.to_vec());

        // Again: the repeat must be an exact hit with the same answer.
        let resp = client.post("/query?kind=sub", body.as_bytes()).unwrap();
        let again: QueryResponse = serde_json::from_str(&resp.body_text()).unwrap();
        assert!(again.exact_hit);
        assert_eq!(again.answer, parsed.answer);
        server.drain();
    }

    #[test]
    fn health_stats_and_metrics_endpoints() {
        let (server, _) = start_server(quick_config());
        let mut client = HttpClient::connect(server.addr()).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        let ready = client.get("/readyz").unwrap();
        assert_eq!(ready.status, 200);
        assert!(ready.body_text().contains("no store attached"));

        let stats = client.get("/stats").unwrap();
        assert_eq!(stats.status, 200);
        let parsed: StatsResponse = serde_json::from_str(&stats.body_text()).unwrap();
        assert!(parsed.requests_total >= 2);
        assert_eq!(parsed.workers, 2);
        assert!(!parsed.draining);

        let metrics = client.get("/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        assert!(metrics.body_text().contains("gc_requests_total"));
        assert!(metrics.body_text().contains("gc_request_stage_microseconds_bucket"));
        server.drain();
    }

    #[test]
    fn request_id_echoed_or_generated_on_every_response() {
        let (server, dataset) = start_server(quick_config());
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let body = gc_graph::io::dataset_to_string(std::slice::from_ref(&dataset.graphs()[0]));

        // Client-provided id: echoed verbatim.
        let resp = client
            .request("POST", "/query?kind=sub", &[("x-request-id", "trace-me-7")], body.as_bytes())
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-request-id"), Some("trace-me-7"));

        // No id: the server generates one.
        let resp = client.get("/stats").unwrap();
        let rid = resp.header("x-request-id").expect("generated id");
        assert!(rid.starts_with("gc-"), "generated id format: {rid}");

        // Error responses carry one too.
        let resp = client.get("/nope").unwrap();
        assert_eq!(resp.status, 404);
        assert!(resp.header("x-request-id").is_some());

        // Deadline 504s carry one.
        let resp = client
            .request(
                "POST",
                "/query",
                &[("x-deadline-ms", "0"), ("x-request-id", "late-1")],
                body.as_bytes(),
            )
            .unwrap();
        assert_eq!(resp.status, 504);
        assert_eq!(resp.header("x-request-id"), Some("late-1"));
        server.drain();
    }

    #[test]
    fn debug_trace_endpoints_serve_sampled_and_slow_queries() {
        let graphs = molecule_dataset(24, 42);
        let dataset = Arc::new(Dataset::new(graphs));
        let cache = SharedGraphCache::with_policy(
            Arc::clone(&dataset),
            Box::new(SiMethod),
            PolicyKind::Hd,
            CacheConfig {
                capacity: 16,
                window_size: 4,
                trace_sample_rate: 1.0,               // trace everything
                slow_query_threshold: Duration::ZERO, // ...and everything is "slow"
                ..CacheConfig::default()
            },
        )
        .unwrap();
        let server = Server::start(Arc::new(cache), quick_config()).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let body = gc_graph::io::dataset_to_string(std::slice::from_ref(&dataset.graphs()[0]));
        for _ in 0..3 {
            let resp = client
                .request("POST", "/query?kind=sub", &[("x-request-id", "dbg-1")], body.as_bytes())
                .unwrap();
            assert_eq!(resp.status, 200);
        }

        let resp = client.get("/debug/traces?n=2").unwrap();
        assert_eq!(resp.status, 200);
        let parsed: crate::api::TracesResponse = serde_json::from_str(&resp.body_text()).unwrap();
        assert_eq!(parsed.traces.len(), 2, "n caps the returned traces");
        // Newest first: the later query has the higher seq.
        assert!(parsed.traces[0].seq > parsed.traces[1].seq);
        assert_eq!(parsed.traces[0].request_id.as_deref(), Some("dbg-1"));
        assert_eq!(parsed.traces[0].kind, "sub");

        let resp = client.get("/debug/slow").unwrap();
        assert_eq!(resp.status, 200);
        let slow: crate::api::TracesResponse = serde_json::from_str(&resp.body_text()).unwrap();
        assert_eq!(slow.traces.len(), 3, "zero threshold captures every query as slow");
        assert!(slow.traces.iter().all(|t| t.slow));

        // /stats surfaces the telemetry gauges and stage summaries.
        let stats: StatsResponse =
            serde_json::from_str(&client.get("/stats").unwrap().body_text()).unwrap();
        assert_eq!(stats.slow_queries, 3);
        assert!(stats.traces_sampled >= 3);
        assert_eq!(stats.stages.len(), 6);
        assert!(stats.stages.iter().any(|s| s.stage == "filter" && s.count > 0));

        // /metrics exposes the pipeline histograms.
        let metrics = client.get("/metrics").unwrap().body_text();
        assert!(metrics.contains("gc_pipeline_stage_microseconds_bucket"));
        assert!(metrics.contains("gc_query_microseconds_count"));

        // Wrong method: still part of the routed surface.
        assert_eq!(client.post("/debug/traces", &[]).unwrap().status, 405);
        server.drain();
    }

    #[test]
    fn unknown_paths_and_methods_rejected() {
        let (server, _) = start_server(quick_config());
        let mut client = HttpClient::connect(server.addr()).unwrap();
        assert_eq!(client.get("/nope").unwrap().status, 404);
        let mut client = HttpClient::connect(server.addr()).unwrap();
        assert_eq!(client.get("/query").unwrap().status, 405);
        let mut client = HttpClient::connect(server.addr()).unwrap();
        assert_eq!(client.post("/query", b"this is not t/v/e").unwrap().status, 400);
        server.drain();
    }

    #[test]
    fn tight_client_deadline_times_out() {
        let (server, dataset) = start_server(quick_config());
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let body = gc_graph::io::dataset_to_string(std::slice::from_ref(&dataset.graphs()[0]));
        // 0 ms deadline: expired before execution.
        let resp =
            client.request("POST", "/query", &[("x-deadline-ms", "0")], body.as_bytes()).unwrap();
        assert_eq!(resp.status, 504);
        assert!(server.metrics().requests_timed_out.load(Ordering::Relaxed) >= 1);
        server.drain();
    }

    #[test]
    fn slow_loris_is_cut_off() {
        let mut cfg = quick_config();
        cfg.read_timeout = Duration::from_millis(100);
        let (server, _) = start_server(cfg);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // Send a torn request head and stall.
        stream.write_all(b"POST /query HTTP/1.1\r\ncontent-le").unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
        let mut out = Vec::new();
        let _ = stream.read_to_end(&mut out);
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 408"), "expected 408, got: {text}");
        server.drain();
    }

    #[test]
    fn drain_finishes_and_reports() {
        let (server, _) = start_server(quick_config());
        let report = server.drain();
        assert!(!report.forced);
        assert_eq!(report.workers_finished, report.workers_total);
        assert_eq!(report.snapshot_generation, None, "no store attached");
    }

    #[test]
    fn mutate_endpoint_inserts_and_removes_live() {
        let (server, dataset) = start_server(quick_config());
        let mut client = HttpClient::connect(server.addr()).unwrap();

        // Warm a query whose answer the mutations must repair.
        let query = dataset.graphs()[0].clone();
        let body = gc_graph::io::dataset_to_string(std::slice::from_ref(&query));
        let before: QueryResponse = serde_json::from_str(
            &client.post("/query?kind=sub", body.as_bytes()).unwrap().body_text(),
        )
        .unwrap();

        // Insert a duplicate of graph 0: it must join the answer set.
        let resp = client.post("/mutate?op=insert", body.as_bytes()).unwrap();
        assert_eq!(resp.status, 200);
        let ins: crate::api::MutateResponse = serde_json::from_str(&resp.body_text()).unwrap();
        assert!(ins.applied);
        assert_eq!(ins.op, "insert");
        assert_eq!(ins.generation, 1);
        assert_eq!(ins.graph_id as usize, dataset.len());

        let after: QueryResponse = serde_json::from_str(
            &client.post("/query?kind=sub", body.as_bytes()).unwrap().body_text(),
        )
        .unwrap();
        assert!(after.answer.contains(&(ins.graph_id as usize)));

        // Remove it again: answer returns to the original set; a second
        // remove of the same id is a no-op.
        let resp = client.post(&format!("/mutate?op=remove&id={}", ins.graph_id), &[]).unwrap();
        assert_eq!(resp.status, 200);
        let rm: crate::api::MutateResponse = serde_json::from_str(&resp.body_text()).unwrap();
        assert!(rm.applied);
        assert_eq!(rm.generation, 2);
        let resp = client.post(&format!("/mutate?op=remove&id={}", ins.graph_id), &[]).unwrap();
        let rm2: crate::api::MutateResponse = serde_json::from_str(&resp.body_text()).unwrap();
        assert!(!rm2.applied, "double remove must be a no-op");

        let restored: QueryResponse = serde_json::from_str(
            &client.post("/query?kind=sub", body.as_bytes()).unwrap().body_text(),
        )
        .unwrap();
        assert_eq!(restored.answer, before.answer);

        // Bad requests are rejected cleanly.
        assert_eq!(client.post("/mutate?op=remove&id=999999", &[]).unwrap().status, 404);
        assert_eq!(client.post("/mutate?op=teleport", &[]).unwrap().status, 400);
        assert_eq!(client.post("/mutate?op=insert", b"not t/v/e").unwrap().status, 400);

        // /stats surfaces the mutation gauges.
        let stats: StatsResponse =
            serde_json::from_str(&client.get("/stats").unwrap().body_text()).unwrap();
        assert_eq!(stats.dataset_generation, 2, "the no-op remove must not bump the generation");
        assert_eq!(stats.dataset_live_graphs, dataset.len() as u64);
        server.drain();
    }

    /// Satellite: a keep-alive socket the server closed between requests
    /// (here: idle timeout; a restart behaves identically) must be
    /// transparently re-established — the next `post` succeeds without
    /// the caller seeing an error or reconnecting by hand.
    #[test]
    fn stale_keepalive_socket_reconnects_transparently() {
        let mut cfg = quick_config();
        cfg.read_timeout = Duration::from_millis(100);
        let (server, dataset) = start_server(cfg);
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let body = gc_graph::io::dataset_to_string(std::slice::from_ref(&dataset.graphs()[0]));

        let first = client.post("/query?kind=sub", body.as_bytes()).unwrap();
        assert_eq!(first.status, 200);

        // Let the server's idle keep-alive timeout close the connection
        // under the client's feet.
        std::thread::sleep(Duration::from_millis(400));

        let second = client.post("/query?kind=sub", body.as_bytes()).unwrap();
        assert_eq!(second.status, 200, "stale keep-alive must retry once, not surface an error");
        let a: QueryResponse = serde_json::from_str(&first.body_text()).unwrap();
        let b: QueryResponse = serde_json::from_str(&second.body_text()).unwrap();
        assert_eq!(a.answer, b.answer);
        server.drain();
    }

    /// Satellite: `run_load` must give the *initial* connect the same
    /// retry + backoff budget as any request, instead of failing the
    /// thread's whole query slice when the server is not up yet.
    #[test]
    fn run_load_retries_initial_connect_until_server_is_up() {
        use gc_workload::{Workload, WorkloadKind, WorkloadSpec};

        // Reserve a port, then start the server on it only after a delay —
        // the load generator's first connects land on a closed port.
        let addr = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap()
        };
        let starter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            let (server, _) =
                start_server(ServerConfig { addr: addr.to_string(), ..quick_config() });
            server
        });

        let graphs = molecule_dataset(24, 42);
        let spec = WorkloadSpec {
            n_queries: 8,
            pool_size: 8,
            kind: WorkloadKind::Uniform,
            seed: 3,
            ..WorkloadSpec::default()
        };
        let workload = Workload::generate(&graphs, &spec);
        let report = crate::client::run_load(
            addr,
            &workload,
            &crate::client::LoadSpec {
                connections: 2,
                retries: 20,
                backoff_base_ms: 40,
                backoff_cap_ms: 120,
                seed: 1,
            },
        );
        assert_eq!(report.failed, 0, "connect retries must ride out the late server start");
        assert_eq!(report.ok, 8);
        assert!(report.retries > 0, "the initial connects must have been retried");
        starter.join().unwrap().drain();
    }

    #[test]
    fn overload_sheds_with_503_and_retry_after() {
        let (server, dataset) = start_server(ServerConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout: Duration::from_millis(400),
            ..quick_config()
        });
        // Occupy the single worker with a stalled connection, fill the
        // 1-slot queue with another, then watch further connections shed.
        let mut busy = TcpStream::connect(server.addr()).unwrap();
        busy.write_all(b"POST /query HTTP/1.1\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let _queued = TcpStream::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50));

        let mut shed_seen = false;
        for _ in 0..10 {
            let mut probe = TcpStream::connect(server.addr()).unwrap();
            probe.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
            let mut out = Vec::new();
            let _ = probe.read_to_end(&mut out);
            let text = String::from_utf8_lossy(&out);
            if text.starts_with("HTTP/1.1 503") {
                assert!(text.to_ascii_lowercase().contains("retry-after:"));
                assert!(
                    text.to_ascii_lowercase().contains("x-request-id:"),
                    "shed 503 must carry a request id"
                );
                shed_seen = true;
                break;
            }
        }
        assert!(shed_seen, "expected at least one shed 503");
        assert!(server.metrics().total_shed() >= 1);

        // After the stalled clients are timed out, the server must be
        // fully responsive again — overload never wedges it.
        std::thread::sleep(Duration::from_millis(600));
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let body = gc_graph::io::dataset_to_string(std::slice::from_ref(&dataset.graphs()[0]));
        let resp = client.post("/query", body.as_bytes()).unwrap();
        assert_eq!(resp.status, 200);
        server.drain();
    }
}
