//! Minimal blocking HTTP client + the load generator behind `gc-load`.
//!
//! The client half of the hand-rolled protocol layer: keep-alive
//! connections, `Content-Length`-framed responses (the server always
//! sends one), socket timeouts, and transparent reconnect. On top of it,
//! [`run_load`] replays a workload from N connection threads with retry,
//! capped exponential backoff with jitter, and per-request latency
//! percentiles — the well-behaved client the shedding design assumes
//! (it backs off when told `503`, rather than hammering).

use crate::api::QueryResponse;
use gc_core::telemetry::{Histogram, HistogramSnapshot};
use gc_method::QueryKind;
use gc_workload::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A blocking keep-alive HTTP/1.1 client for one server address.
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    /// Socket timeout for connect/read/write.
    pub timeout: Duration,
}

impl HttpClient {
    /// Connect to `addr` (lazily re-connects after errors).
    pub fn connect(addr: SocketAddr) -> Result<Self, String> {
        let mut client = HttpClient { addr, stream: None, timeout: Duration::from_secs(5) };
        client.ensure_connected()?;
        Ok(client)
    }

    fn ensure_connected(&mut self) -> Result<&mut TcpStream, String> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)
                .map_err(|e| format!("connect {}: {e}", self.addr))?;
            stream.set_read_timeout(Some(self.timeout)).map_err(|e| e.to_string())?;
            stream.set_write_timeout(Some(self.timeout)).map_err(|e| e.to_string())?;
            let _ = stream.set_nodelay(true);
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just set"))
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> Result<ClientResponse, String> {
        self.request("GET", path, &[], &[])
    }

    /// `POST path` with a body.
    pub fn post(&mut self, path: &str, body: &[u8]) -> Result<ClientResponse, String> {
        self.request("POST", path, &[], body)
    }

    /// Send one request and read the framed response. On any transport
    /// error the connection is dropped (the next call reconnects) and the
    /// error is returned.
    ///
    /// **Stale keep-alive handling:** a server is free to close an idle
    /// keep-alive connection between requests (idle timeout, drain,
    /// restart). A request written into such a socket fails with a write
    /// error or a clean close before any response byte — in both cases
    /// the server never answered this request, so the client reconnects
    /// and resends **once**, transparently. The retry only fires on a
    /// *reused* connection with *zero* response bytes received; a failure
    /// on a fresh connection or after partial response data surfaces as
    /// an error (resending there could double-execute).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<ClientResponse, String> {
        let reused = self.stream.is_some();
        match self.request_inner(method, path, headers, body) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.stream = None;
                if reused && e.stale_keepalive {
                    let result = self.request_inner(method, path, headers, body);
                    if result.is_err() {
                        self.stream = None;
                    }
                    result.map_err(|e| e.msg)
                } else {
                    Err(e.msg)
                }
            }
        }
    }

    fn request_inner(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<ClientResponse, TransportError> {
        let mut raw = format!("{method} {path} HTTP/1.1\r\nhost: gc\r\n").into_bytes();
        for (k, v) in headers {
            raw.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        raw.extend_from_slice(format!("content-length: {}\r\n\r\n", body.len()).as_bytes());
        raw.extend_from_slice(body);
        let stream = self.ensure_connected().map_err(TransportError::fresh)?;
        // A write error on a reused socket is the stale-keep-alive
        // signature: the server closed and cannot have seen the request.
        stream
            .write_all(&raw)
            .map_err(|e| TransportError { msg: format!("write: {e}"), stale_keepalive: true })?;
        let response = read_response(stream)?;
        // Honour the server's close decision (shed and error responses
        // close; the next request reconnects).
        if response.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close")) {
            self.stream = None;
        }
        Ok(response)
    }
}

/// A transport-level request failure. `stale_keepalive` marks the two
/// failure shapes where the server provably never answered the request —
/// a failed write, or a close before the first response byte — which a
/// reused connection may transparently retry once.
#[derive(Debug)]
struct TransportError {
    msg: String,
    stale_keepalive: bool,
}

impl TransportError {
    fn fresh(msg: String) -> Self {
        TransportError { msg, stale_keepalive: false }
    }
}

/// Read one `Content-Length`-framed response from `stream`.
fn read_response(stream: &mut TcpStream) -> Result<ClientResponse, TransportError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > 64 * 1024 {
            return Err(TransportError::fresh("response head too large".into()));
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            // A clean close (or reset) before the first response byte:
            // the stale-keep-alive signature when the socket was reused.
            Ok(0) => {
                return Err(TransportError {
                    msg: "connection closed mid-response".into(),
                    stale_keepalive: buf.is_empty(),
                })
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => {
                return Err(TransportError {
                    msg: format!("read: {e}"),
                    stale_keepalive: buf.is_empty(),
                })
            }
        }
    };

    let head = std::str::from_utf8(&buf[..head_end - 4])
        .map_err(|_| TransportError::fresh("response head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status =
        status_line.split(' ').nth(1).and_then(|s| s.parse::<u16>().ok()).ok_or_else(|| {
            TransportError::fresh(format!("malformed status line: {status_line:?}"))
        })?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| TransportError::fresh(format!("bad content-length: {value:?}")))?;
        }
        headers.push((name, value));
    }

    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Err(TransportError::fresh("connection closed mid-body".into())),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(TransportError::fresh(format!("read body: {e}"))),
        }
    }
    body.truncate(content_length);
    Ok(ClientResponse { status, headers, body })
}

// ---- backoff ---------------------------------------------------------------

/// Capped exponential backoff with jitter: attempt `n` sleeps a uniform
/// draw from `[base·2ⁿ/2, base·2ⁿ]`, capped at `cap`. Jitter decorrelates
/// retrying clients so a shedding server is not met with a synchronized
/// thundering herd.
#[derive(Debug, Clone)]
pub struct Backoff {
    /// First-retry delay.
    pub base: Duration,
    /// Upper bound on any delay.
    pub cap: Duration,
    attempt: u32,
}

impl Backoff {
    /// New backoff schedule.
    pub fn new(base: Duration, cap: Duration) -> Self {
        Backoff { base, cap, attempt: 0 }
    }

    /// Delay for the next retry (advances the schedule).
    pub fn next_delay(&mut self, rng: &mut impl Rng) -> Duration {
        let exp = self.base.saturating_mul(1u32 << self.attempt.min(16));
        let capped = exp.min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        let micros = capped.as_micros().max(1) as u64;
        Duration::from_micros(rng.gen_range(micros / 2..=micros))
    }

    /// Reset after a success.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

// ---- load generation -------------------------------------------------------

/// Parameters of a [`run_load`] run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadSpec {
    /// Concurrent connection threads.
    pub connections: usize,
    /// Retries per request after shed/timeout/transport errors.
    pub retries: u32,
    /// First-retry backoff delay, milliseconds.
    pub backoff_base_ms: u64,
    /// Backoff cap, milliseconds.
    pub backoff_cap_ms: u64,
    /// RNG seed for jitter.
    pub seed: u64,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec { connections: 4, retries: 3, backoff_base_ms: 5, backoff_cap_ms: 200, seed: 0 }
    }
}

/// Outcome of a [`run_load`] run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LoadReport {
    /// Requests attempted (unique workload queries).
    pub sent: u64,
    /// Requests that got a `200` with a parseable body.
    pub ok: u64,
    /// `503` shed responses observed (before retries).
    pub shed: u64,
    /// `504`/`408` deadline responses observed.
    pub timed_out: u64,
    /// Requests that exhausted retries without a `200`.
    pub failed: u64,
    /// Retries performed.
    pub retries: u64,
    /// p50 end-to-end latency, microseconds (successful requests).
    ///
    /// Percentiles come from a shared log2-µs [`Histogram`] per thread
    /// (merged at the end) rather than buffering every raw latency: the
    /// estimate is a bucket *upper bound*, at most 2× the true value —
    /// one bucket of error — in exchange for O(1) memory per thread.
    pub p50_us: u64,
    /// p90 end-to-end latency, microseconds (same one-bucket bound).
    pub p90_us: u64,
    /// p99 end-to-end latency, microseconds (same one-bucket bound).
    pub p99_us: u64,
    /// Max end-to-end latency, microseconds (exact — the histogram
    /// tracks the true maximum).
    pub max_us: u64,
    /// Wall-clock duration of the whole run, microseconds.
    pub elapsed_us: u64,
    /// Successful requests per second.
    pub throughput_rps: f64,
}

/// `p`-th percentile (0–100) of `sorted` (ascending); 0 when empty.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Replay `workload` against the server at `addr` from
/// [`LoadSpec::connections`] threads (queries striped round-robin), with
/// retry + backoff on shed/timeout/transport errors. Returns the merged
/// report; per-request answers are NOT checked here (the chaos gate does
/// that with `execute_base` replay).
pub fn run_load(addr: SocketAddr, workload: &Workload, spec: &LoadSpec) -> LoadReport {
    let t0 = Instant::now();
    let n_threads = spec.connections.max(1);
    let results: Vec<(LoadReport, HistogramSnapshot)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|t| {
                let spec = spec.clone();
                scope.spawn(move || {
                    let mut report = LoadReport::default();
                    let latencies = Histogram::new();
                    let mut rng =
                        StdRng::seed_from_u64(spec.seed ^ (t as u64).wrapping_mul(0x9e37));
                    // The initial connect gets the same retry + backoff
                    // budget as any request: a server that is restarting
                    // (or briefly saturating its accept queue) must not
                    // fail the thread's whole query slice on the spot.
                    let mut connect_backoff = Backoff::new(
                        Duration::from_millis(spec.backoff_base_ms),
                        Duration::from_millis(spec.backoff_cap_ms),
                    );
                    let mut connect_attempts_left = spec.retries + 1;
                    let mut client = loop {
                        connect_attempts_left -= 1;
                        match HttpClient::connect(addr) {
                            Ok(client) => break client,
                            Err(_) if connect_attempts_left > 0 => {
                                report.retries += 1;
                                std::thread::sleep(connect_backoff.next_delay(&mut rng));
                            }
                            Err(_) => {
                                report.failed =
                                    workload.queries.iter().skip(t).step_by(n_threads).count()
                                        as u64;
                                return (report, latencies.snapshot());
                            }
                        }
                    };
                    for wq in workload.queries.iter().skip(t).step_by(n_threads) {
                        let body = gc_graph::io::dataset_to_string(std::slice::from_ref(&wq.graph));
                        let path = match wq.kind {
                            QueryKind::Subgraph => "/query?kind=sub",
                            QueryKind::Supergraph => "/query?kind=super",
                        };
                        report.sent += 1;
                        let mut backoff = Backoff::new(
                            Duration::from_millis(spec.backoff_base_ms),
                            Duration::from_millis(spec.backoff_cap_ms),
                        );
                        let started = Instant::now();
                        let mut attempts_left = spec.retries + 1;
                        let ok = loop {
                            attempts_left -= 1;
                            match client.post(path, body.as_bytes()) {
                                Ok(resp) if resp.status == 200 => {
                                    if serde_json::from_str::<QueryResponse>(&resp.body_text())
                                        .is_ok()
                                    {
                                        break true;
                                    }
                                    break false;
                                }
                                Ok(resp) => {
                                    if resp.status == 503 {
                                        report.shed += 1;
                                    } else if resp.status == 504 || resp.status == 408 {
                                        report.timed_out += 1;
                                    }
                                }
                                Err(_) => {}
                            }
                            if attempts_left == 0 {
                                break false;
                            }
                            report.retries += 1;
                            std::thread::sleep(backoff.next_delay(&mut rng));
                        };
                        if ok {
                            report.ok += 1;
                            latencies.observe(started.elapsed());
                        } else {
                            report.failed += 1;
                        }
                    }
                    (report, latencies.snapshot())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("load thread panicked")).collect()
    });

    let mut merged = LoadReport::default();
    let mut latencies = HistogramSnapshot::default();
    for (r, l) in results {
        merged.sent += r.sent;
        merged.ok += r.ok;
        merged.shed += r.shed;
        merged.timed_out += r.timed_out;
        merged.failed += r.failed;
        merged.retries += r.retries;
        latencies.merge(&l);
    }
    merged.p50_us = latencies.percentile_us(50.0);
    merged.p90_us = latencies.percentile_us(90.0);
    merged.p99_us = latencies.percentile_us(99.0);
    merged.max_us = latencies.max_us;
    let elapsed = t0.elapsed();
    merged.elapsed_us = elapsed.as_micros() as u64;
    merged.throughput_rps =
        if elapsed.is_zero() { 0.0 } else { merged.ok as f64 / elapsed.as_secs_f64() };
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_expected_ranks() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 51); // nearest-rank on 0-indexed
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[], 99.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
    }

    #[test]
    fn backoff_grows_caps_and_jitters_within_bounds() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(100));
        let mut rng = StdRng::seed_from_u64(7);
        let d1 = b.next_delay(&mut rng);
        assert!(d1 >= Duration::from_millis(5) && d1 <= Duration::from_millis(10), "{d1:?}");
        let d2 = b.next_delay(&mut rng);
        assert!(d2 >= Duration::from_millis(10) && d2 <= Duration::from_millis(20), "{d2:?}");
        for _ in 0..10 {
            let d = b.next_delay(&mut rng);
            assert!(d <= Duration::from_millis(100), "capped: {d:?}");
        }
        b.reset();
        let d = b.next_delay(&mut rng);
        assert!(d <= Duration::from_millis(10), "reset restarts the schedule: {d:?}");
    }
}
