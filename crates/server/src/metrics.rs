//! Server-side metrics: lock-free counters and per-stage latency
//! histograms, rendered as Prometheus text exposition.
//!
//! Mirrors the accounting philosophy of [`gc_core::StatsMonitor`]: every
//! observation is a relaxed `fetch_add`, so metrics never serialize the
//! request path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Request-lifecycle stages the server times individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Accept → worker pickup (admission-queue wait).
    Queue,
    /// First byte → complete parsed request (includes socket reads).
    Parse,
    /// Cache pipeline execution (`SharedGraphCache::query`) + response
    /// construction.
    Execute,
    /// Writing the response bytes to the socket.
    Write,
}

impl Stage {
    /// All stages, in lifecycle order.
    pub const ALL: [Stage; 4] = [Stage::Queue, Stage::Parse, Stage::Execute, Stage::Write];

    /// Prometheus label value.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Parse => "parse",
            Stage::Execute => "execute",
            Stage::Write => "write",
        }
    }
}

/// Number of finite histogram buckets: bucket `i` counts observations
/// `< 2^i` µs, so the finite range spans 1 µs .. ~1 s (2^20 µs); larger
/// observations land in the implicit `+Inf` bucket.
const BUCKETS: usize = 21;

/// A log2-microsecond latency histogram with atomic buckets.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    inf: AtomicU64,
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        // Index of the first bucket whose bound 2^i exceeds `us`:
        // us == 0 → bucket 0 (< 1 µs); us in [2^(i-1), 2^i) → bucket i.
        let idx = (u64::BITS - us.leading_zeros()) as usize;
        if idx < BUCKETS {
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        } else {
            self.inf.fetch_add(1, Ordering::Relaxed);
        }
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Render Prometheus `_bucket`/`_sum`/`_count` lines for this
    /// histogram under `name` with a `stage` label.
    fn render(&self, out: &mut String, name: &str, stage: &str) {
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            let bound = 1u64 << i;
            out.push_str(&format!(
                "{name}_bucket{{stage=\"{stage}\",le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.inf.load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{stage=\"{stage}\",le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!("{name}_sum{{stage=\"{stage}\"}} {}\n", self.sum_us()));
        out.push_str(&format!("{name}_count{{stage=\"{stage}\"}} {}\n", self.count()));
    }
}

/// All server-side counters and histograms, shared across workers.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Server start time (uptime gauge base).
    started: Instant,
    /// Connections accepted into the admission queue.
    pub connections_accepted: AtomicU64,
    /// Connections shed at the accept loop (queue full → `503`).
    pub connections_shed: AtomicU64,
    /// HTTP requests fully parsed and routed (any endpoint, any status).
    pub requests_total: AtomicU64,
    /// Requests shed after admission (queued past their deadline → `503`).
    pub requests_shed: AtomicU64,
    /// Requests that hit a deadline: expired before execution (`504`),
    /// stalled mid-read (`408`), or completed past their deadline (served,
    /// but counted here so operators see deadline pressure).
    pub requests_timed_out: AtomicU64,
    /// Protocol errors (malformed requests, oversized heads/bodies).
    pub parse_errors: AtomicU64,
    /// Per-stage latency histograms (indexed by [`Stage::ALL`] order).
    stages: [Histogram; 4],
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Fresh metrics; uptime starts now.
    pub fn new() -> Self {
        ServerMetrics {
            started: Instant::now(),
            connections_accepted: AtomicU64::new(0),
            connections_shed: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            requests_timed_out: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
            stages: Default::default(),
        }
    }

    /// Record a stage latency.
    pub fn observe(&self, stage: Stage, d: Duration) {
        self.stages[Stage::ALL.iter().position(|s| *s == stage).expect("stage in ALL")].observe(d);
    }

    /// The histogram for one stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[Stage::ALL.iter().position(|s| *s == stage).expect("stage in ALL")]
    }

    /// Seconds since the server started.
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Shed total across both shed points (accept-loop and queue-expiry) —
    /// the number operators alert on.
    pub fn total_shed(&self) -> u64 {
        self.connections_shed.load(Ordering::Relaxed) + self.requests_shed.load(Ordering::Relaxed)
    }

    /// Render the full Prometheus text exposition: server counters, stage
    /// histograms, and the cache-level counters from `cache_stats`.
    pub fn render_prometheus(&self, cache_stats: &gc_core::GlobalStats, entries: usize) -> String {
        let mut out = String::with_capacity(4096);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"));
        };
        let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"));
        };

        gauge(&mut out, "gc_uptime_seconds", "Seconds since server start.", self.uptime_secs());
        counter(
            &mut out,
            "gc_connections_accepted_total",
            "Connections admitted to the worker queue.",
            self.connections_accepted.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gc_requests_total",
            "HTTP requests parsed and routed.",
            self.requests_total.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gc_requests_shed_total",
            "Requests shed under overload (accept-loop 503s plus queue-deadline 503s).",
            self.total_shed(),
        );
        counter(
            &mut out,
            "gc_requests_timed_out_total",
            "Requests that exceeded a deadline (504/408 or served late).",
            self.requests_timed_out.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gc_parse_errors_total",
            "Malformed or over-limit requests rejected by the HTTP parser.",
            self.parse_errors.load(Ordering::Relaxed),
        );

        out.push_str(concat!(
            "# HELP gc_request_stage_microseconds Request latency by lifecycle stage.\n",
            "# TYPE gc_request_stage_microseconds histogram\n"
        ));
        for stage in Stage::ALL {
            self.stage(stage).render(&mut out, "gc_request_stage_microseconds", stage.label());
        }

        // Cache-level counters (the Statistics Monitor, exported).
        counter(&mut out, "gc_cache_queries_total", "Queries processed.", cache_stats.queries);
        counter(
            &mut out,
            "gc_cache_hit_queries_total",
            "Queries with at least one cache hit.",
            cache_stats.hit_queries,
        );
        counter(&mut out, "gc_cache_exact_hits_total", "Exact-match hits.", cache_stats.exact_hits);
        counter(
            &mut out,
            "gc_cache_tests_executed_total",
            "Sub-iso tests against dataset graphs.",
            cache_stats.tests_executed,
        );
        counter(
            &mut out,
            "gc_cache_tests_saved_total",
            "Sub-iso tests saved vs Method M alone.",
            cache_stats.tests_saved,
        );
        counter(&mut out, "gc_cache_admitted_total", "Entries admitted.", cache_stats.admitted);
        counter(&mut out, "gc_cache_evicted_total", "Entries evicted.", cache_stats.evicted);
        gauge(&mut out, "gc_cache_entries", "Live cached entries.", entries as u64);
        gauge(
            &mut out,
            "gc_cache_persist_errors",
            "Failed persistence operations since attach.",
            cache_stats.persist_errors,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_observations_by_log2_us() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(0)); // bucket 0 (< 1 µs)
        h.observe(Duration::from_micros(1)); // bucket 1 (< 2 µs)
        h.observe(Duration::from_micros(3)); // bucket 2 (< 4 µs)
        h.observe(Duration::from_secs(10)); // +Inf (> 2^20 µs)
        assert_eq!(h.count(), 4);
        let mut out = String::new();
        h.render(&mut out, "m", "s");
        assert!(out.contains("m_bucket{stage=\"s\",le=\"1\"} 1\n"));
        assert!(out.contains("m_bucket{stage=\"s\",le=\"2\"} 2\n"));
        assert!(out.contains("m_bucket{stage=\"s\",le=\"4\"} 3\n"));
        assert!(out.contains("m_bucket{stage=\"s\",le=\"+Inf\"} 4\n"));
        assert!(out.contains("m_count{stage=\"s\"} 4\n"));
    }

    #[test]
    fn bucket_bounds_are_cumulative() {
        let h = Histogram::default();
        for us in [1u64, 2, 4, 8, 16, 1000, 100_000] {
            h.observe(Duration::from_micros(us));
        }
        let mut out = String::new();
        h.render(&mut out, "m", "s");
        // The +Inf bucket equals the total count.
        assert!(out.contains(&format!("le=\"+Inf\"}} {}\n", h.count())));
        assert_eq!(h.sum_us(), 101_031);
    }

    #[test]
    fn prometheus_exposition_contains_all_families() {
        let m = ServerMetrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.connections_shed.fetch_add(1, Ordering::Relaxed);
        m.requests_shed.fetch_add(1, Ordering::Relaxed);
        m.observe(Stage::Execute, Duration::from_micros(42));
        let stats = gc_core::GlobalStats { queries: 3, ..Default::default() };
        let text = m.render_prometheus(&stats, 7);
        assert!(text.contains("gc_requests_total 3\n"));
        assert!(text.contains("gc_requests_shed_total 2\n"), "both shed points sum");
        assert!(text.contains("stage=\"execute\""));
        assert!(text.contains("gc_cache_queries_total 3\n"));
        assert!(text.contains("gc_cache_entries 7\n"));
        assert!(text.contains("# TYPE gc_request_stage_microseconds histogram\n"));
    }
}
