//! Server-side metrics: lock-free counters and per-stage latency
//! histograms, rendered as Prometheus text exposition.
//!
//! Mirrors the accounting philosophy of [`gc_core::StatsMonitor`]: every
//! observation is a relaxed `fetch_add`, so metrics never serialize the
//! request path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Request-lifecycle stages the server times individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Accept → worker pickup (admission-queue wait).
    Queue,
    /// First byte → complete parsed request (includes socket reads).
    Parse,
    /// Cache pipeline execution (`SharedGraphCache::query`) + response
    /// construction.
    Execute,
    /// Writing the response bytes to the socket.
    Write,
}

impl Stage {
    /// All stages, in lifecycle order.
    pub const ALL: [Stage; 4] = [Stage::Queue, Stage::Parse, Stage::Execute, Stage::Write];

    /// Prometheus label value.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Parse => "parse",
            Stage::Execute => "execute",
            Stage::Write => "write",
        }
    }
}

/// The log2-microsecond latency histogram, shared with the cache pipeline.
///
/// The server timed its request stages with a private histogram until the
/// cache grew per-stage telemetry; both now use the single property-tested
/// implementation in [`gc_core::telemetry`].
pub use gc_core::telemetry::Histogram;

/// All server-side counters and histograms, shared across workers.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Server start time (uptime gauge base).
    started: Instant,
    /// Connections accepted into the admission queue.
    pub connections_accepted: AtomicU64,
    /// Connections shed at the accept loop (queue full → `503`).
    pub connections_shed: AtomicU64,
    /// HTTP requests fully parsed and routed (any endpoint, any status).
    pub requests_total: AtomicU64,
    /// Requests shed after admission (queued past their deadline → `503`).
    pub requests_shed: AtomicU64,
    /// Requests that hit a deadline: expired before execution (`504`),
    /// stalled mid-read (`408`), or completed past their deadline (served,
    /// but counted here so operators see deadline pressure).
    pub requests_timed_out: AtomicU64,
    /// Protocol errors (malformed requests, oversized heads/bodies).
    pub parse_errors: AtomicU64,
    /// Per-stage latency histograms (indexed by [`Stage::ALL`] order).
    stages: [Histogram; 4],
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Fresh metrics; uptime starts now.
    pub fn new() -> Self {
        ServerMetrics {
            started: Instant::now(),
            connections_accepted: AtomicU64::new(0),
            connections_shed: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            requests_timed_out: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
            stages: Default::default(),
        }
    }

    /// Record a stage latency.
    pub fn observe(&self, stage: Stage, d: Duration) {
        self.stages[Stage::ALL.iter().position(|s| *s == stage).expect("stage in ALL")].observe(d);
    }

    /// The histogram for one stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[Stage::ALL.iter().position(|s| *s == stage).expect("stage in ALL")]
    }

    /// Seconds since the server started.
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Shed total across both shed points (accept-loop and queue-expiry) —
    /// the number operators alert on.
    pub fn total_shed(&self) -> u64 {
        self.connections_shed.load(Ordering::Relaxed) + self.requests_shed.load(Ordering::Relaxed)
    }

    /// Render the full Prometheus text exposition: server counters, stage
    /// histograms, cache pipeline telemetry, and the cache-level counters
    /// from `cache_stats`.
    pub fn render_prometheus(
        &self,
        cache_stats: &gc_core::GlobalStats,
        entries: usize,
        telemetry: &gc_core::Telemetry,
    ) -> String {
        let mut out = String::with_capacity(4096);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"));
        };
        let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"));
        };

        gauge(&mut out, "gc_uptime_seconds", "Seconds since server start.", self.uptime_secs());
        counter(
            &mut out,
            "gc_connections_accepted_total",
            "Connections admitted to the worker queue.",
            self.connections_accepted.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gc_requests_total",
            "HTTP requests parsed and routed.",
            self.requests_total.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gc_requests_shed_total",
            "Requests shed under overload (accept-loop 503s plus queue-deadline 503s).",
            self.total_shed(),
        );
        counter(
            &mut out,
            "gc_requests_timed_out_total",
            "Requests that exceeded a deadline (504/408 or served late).",
            self.requests_timed_out.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "gc_parse_errors_total",
            "Malformed or over-limit requests rejected by the HTTP parser.",
            self.parse_errors.load(Ordering::Relaxed),
        );

        out.push_str(concat!(
            "# HELP gc_request_stage_microseconds Request latency by lifecycle stage.\n",
            "# TYPE gc_request_stage_microseconds histogram\n"
        ));
        for stage in Stage::ALL {
            self.stage(stage).render_prometheus(
                &mut out,
                "gc_request_stage_microseconds",
                &format!("stage=\"{}\"", stage.label()),
            );
        }

        // Cache pipeline telemetry: per-stage spans plus the end-to-end
        // query histogram and its bucket-estimated percentiles.
        out.push_str(concat!(
            "# HELP gc_pipeline_stage_microseconds Cache pipeline latency by stage.\n",
            "# TYPE gc_pipeline_stage_microseconds histogram\n"
        ));
        for stage in gc_core::PipelineStage::ALL {
            telemetry.stage(stage).render_prometheus(
                &mut out,
                "gc_pipeline_stage_microseconds",
                &format!("stage=\"{}\"", stage.label()),
            );
        }
        out.push_str(concat!(
            "# HELP gc_query_microseconds End-to-end cache query latency.\n",
            "# TYPE gc_query_microseconds histogram\n"
        ));
        telemetry.total().render_prometheus(&mut out, "gc_query_microseconds", "");
        for (p, name) in [(50.0, "gc_query_p50_microseconds"), (99.0, "gc_query_p99_microseconds")]
        {
            gauge(
                &mut out,
                name,
                "Bucket-estimated query latency percentile (upper bound, \
                 within one log2 bucket of the true value).",
                telemetry.total().percentile_us(p),
            );
        }
        counter(
            &mut out,
            "gc_traces_sampled_total",
            "Query traces captured by the sampler.",
            telemetry.sampled_count(),
        );
        counter(
            &mut out,
            "gc_slow_queries_total",
            "Queries over the slow-query threshold (always traced).",
            telemetry.slow_count(),
        );

        // Cache-level counters (the Statistics Monitor, exported).
        counter(&mut out, "gc_cache_queries_total", "Queries processed.", cache_stats.queries);
        counter(
            &mut out,
            "gc_cache_hit_queries_total",
            "Queries with at least one cache hit.",
            cache_stats.hit_queries,
        );
        counter(&mut out, "gc_cache_exact_hits_total", "Exact-match hits.", cache_stats.exact_hits);
        counter(
            &mut out,
            "gc_cache_tests_executed_total",
            "Sub-iso tests against dataset graphs.",
            cache_stats.tests_executed,
        );
        counter(
            &mut out,
            "gc_cache_tests_saved_total",
            "Sub-iso tests saved vs Method M alone.",
            cache_stats.tests_saved,
        );
        counter(&mut out, "gc_cache_admitted_total", "Entries admitted.", cache_stats.admitted);
        counter(&mut out, "gc_cache_evicted_total", "Entries evicted.", cache_stats.evicted);
        gauge(&mut out, "gc_cache_entries", "Live cached entries.", entries as u64);
        gauge(
            &mut out,
            "gc_cache_persist_errors",
            "Failed persistence operations since attach.",
            cache_stats.persist_errors,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_observations_by_log2_us() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(0)); // bucket 0 (< 1 µs)
        h.observe(Duration::from_micros(1)); // bucket 1 (< 2 µs)
        h.observe(Duration::from_micros(3)); // bucket 2 (< 4 µs)
        h.observe(Duration::from_secs(10)); // +Inf (> 2^20 µs)
        assert_eq!(h.count(), 4);
        let mut out = String::new();
        h.render_prometheus(&mut out, "m", "stage=\"s\"");
        assert!(out.contains("m_bucket{stage=\"s\",le=\"1\"} 1\n"));
        assert!(out.contains("m_bucket{stage=\"s\",le=\"2\"} 2\n"));
        assert!(out.contains("m_bucket{stage=\"s\",le=\"4\"} 3\n"));
        assert!(out.contains("m_bucket{stage=\"s\",le=\"+Inf\"} 4\n"));
        assert!(out.contains("m_count{stage=\"s\"} 4\n"));
    }

    #[test]
    fn bucket_bounds_are_cumulative() {
        let h = Histogram::default();
        for us in [1u64, 2, 4, 8, 16, 1000, 100_000] {
            h.observe(Duration::from_micros(us));
        }
        let mut out = String::new();
        h.render_prometheus(&mut out, "m", "stage=\"s\"");
        // The +Inf bucket equals the total count.
        assert!(out.contains(&format!("le=\"+Inf\"}} {}\n", h.count())));
        assert_eq!(h.sum_us(), 101_031);
    }

    #[test]
    fn prometheus_exposition_contains_all_families() {
        let m = ServerMetrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.connections_shed.fetch_add(1, Ordering::Relaxed);
        m.requests_shed.fetch_add(1, Ordering::Relaxed);
        m.observe(Stage::Execute, Duration::from_micros(42));
        let stats = gc_core::GlobalStats { queries: 3, ..Default::default() };
        let telemetry = gc_core::Telemetry::from_config(&gc_core::CacheConfig::default());
        let text = m.render_prometheus(&stats, 7, &telemetry);
        assert!(text.contains("gc_requests_total 3\n"));
        assert!(text.contains("gc_requests_shed_total 2\n"), "both shed points sum");
        assert!(text.contains("stage=\"execute\""));
        assert!(text.contains("gc_cache_queries_total 3\n"));
        assert!(text.contains("gc_cache_entries 7\n"));
        assert!(text.contains("# TYPE gc_request_stage_microseconds histogram\n"));
    }

    #[test]
    fn prometheus_exposition_contains_pipeline_telemetry() {
        let m = ServerMetrics::new();
        let telemetry = gc_core::Telemetry::from_config(&gc_core::CacheConfig::default());
        let seq = telemetry.begin_query();
        let mut timing = gc_core::QueryTiming::default();
        {
            let _span = telemetry.span(gc_core::PipelineStage::Verify, &mut timing);
        }
        telemetry.finish_query(seq, Duration::from_micros(900), |slow| gc_core::QueryTrace {
            slow,
            ..Default::default()
        });
        let stats = gc_core::GlobalStats::default();
        let text = m.render_prometheus(&stats, 0, &telemetry);
        assert!(text.contains("# TYPE gc_pipeline_stage_microseconds histogram\n"));
        assert!(text.contains("gc_pipeline_stage_microseconds_count{stage=\"verify\"} 1\n"));
        assert!(text.contains("gc_pipeline_stage_microseconds_count{stage=\"filter\"} 0\n"));
        assert!(text.contains("# TYPE gc_query_microseconds histogram\n"));
        assert!(text.contains("gc_query_microseconds_count{} 1\n"));
        assert!(text.contains("# TYPE gc_query_p50_microseconds gauge\n"));
        assert!(text.contains("# TYPE gc_query_p99_microseconds gauge\n"));
        // 900 µs lands in the (512, 1024] bucket; the estimate reports the
        // upper bound.
        assert!(text.contains("gc_query_p50_microseconds 1024\n"));
        assert!(text.contains("gc_traces_sampled_total 1\n"), "seq 0 sampled at default rate");
        assert!(text.contains("gc_slow_queries_total 0\n"));
    }
}
