//! # gc-server — an overload-hardened network front-end for GraphCache
//!
//! Serves a [`gc_core::SharedGraphCache`] over HTTP/1.1 with the
//! production robustness properties a cache front-end needs to face
//! "millions of users" (ROADMAP item 1) without falling over:
//!
//! * **bounded admission** — a fixed worker pool pulls connections from a
//!   bounded queue; when the queue is full the accept loop *sheds* the
//!   connection immediately with `503` + `Retry-After` instead of queueing
//!   without bound (overload degrades throughput, never latency-to-infinity
//!   or memory growth);
//! * **deadlines everywhere** — each request gets a deadline from its
//!   first byte (tightenable per-request via `X-Deadline-Ms`); requests
//!   that expire waiting in the queue are shed, requests that expire
//!   before execution get `504`, and slow clients that trickle bytes
//!   (slow-loris) are cut off with `408` by read/write socket timeouts;
//! * **graceful drain** — shutdown stops accepting, lets in-flight
//!   requests finish within a bound, cuts a final snapshot when a store
//!   is attached, and reports what happened ([`DrainReport`]);
//! * **observable** — `GET /metrics` exposes Prometheus-style per-stage
//!   latency histograms and shed/timeout counters; `GET /healthz` is
//!   pure liveness while `GET /readyz` reflects drain state and the
//!   persistence circuit breaker ([`gc_core::persist::PersistHealth`]) —
//!   degraded persistence flips `/readyz` details while answers stay
//!   exact.
//!
//! The protocol layer ([`http`]) is hand-rolled over `std::net` (the
//! build container is offline) and property-tested to never panic or
//! over-read on arbitrary bytes. The client half ([`client`]) provides a
//! minimal blocking HTTP client plus the `gc-load` generator: N
//! connections replaying a workload with retry, capped exponential
//! backoff with jitter, and latency percentiles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod metrics;
pub mod server;

pub use api::{
    ErrorBody, MutateResponse, QueryResponse, StageSummary, StatsResponse, TracesResponse,
};
pub use client::{percentile, run_load, Backoff, ClientResponse, HttpClient, LoadReport, LoadSpec};
pub use http::{parse_request, HttpLimits, Parse, ParseError, Request, Response};
pub use metrics::{Histogram, ServerMetrics, Stage};
pub use server::{DrainReport, Server, ServerConfig, ServerHandle};
