//! Property tests for the hand-rolled HTTP/1.1 parser: on *arbitrary*
//! byte streams it must never panic and never claim to consume more
//! bytes than it was given; on well-formed requests it must roundtrip
//! exactly; and every torn prefix of a valid request must parse as
//! `Partial` — never a spurious error, never a premature `Complete`.

use gc_server::http::{parse_request, HttpLimits, Parse};
use proptest::prelude::*;

fn limits() -> HttpLimits {
    HttpLimits::default()
}

/// Invariants that must hold for ANY input bytes.
fn check_total(buf: &[u8], l: &HttpLimits) {
    match parse_request(buf, l) {
        Parse::Complete { request, consumed } => {
            assert!(consumed <= buf.len(), "over-read: consumed {consumed} of {}", buf.len());
            assert!(request.body.len() <= l.max_body_bytes);
            assert!(request.headers.len() <= l.max_headers);
            // The parse is a pure function of the consumed prefix: feeding
            // exactly those bytes yields the identical request.
            match parse_request(&buf[..consumed], l) {
                Parse::Complete { request: again, consumed: c2 } => {
                    assert_eq!(c2, consumed);
                    assert_eq!(again, request);
                }
                other => panic!("re-parse of consumed prefix diverged: {other:?}"),
            }
        }
        Parse::Partial | Parse::Error(_) => {}
    }
}

/// Printable token charset for methods and header names.
const TOKEN: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
/// Target charset (no spaces or control bytes).
const TARGET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789/?=&._~%-";
/// Header-value charset (printable, no CR/LF).
const VALUE: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 ._:;,/()-";

fn pick(charset: &'static [u8], len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    proptest::collection::vec(0..charset.len(), len)
        .prop_map(move |ix| ix.into_iter().map(|i| charset[i] as char).collect())
}

/// A structurally valid request: `(raw bytes, method, target, header
/// count incl. content-length, body)`.
type ValidRequest = (Vec<u8>, String, String, usize, Vec<u8>);

fn arb_valid_request() -> impl Strategy<Value = ValidRequest> {
    (
        pick(TOKEN, 1..8),
        pick(TARGET, 1..24),
        proptest::collection::vec((pick(TOKEN, 1..10), pick(VALUE, 0..16)), 0..6),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(method, target, headers, body)| {
            let target = format!("/{target}");
            let mut raw = format!("{method} {target} HTTP/1.1\r\n").into_bytes();
            for (name, value) in &headers {
                raw.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
            }
            raw.extend_from_slice(format!("content-length: {}\r\n\r\n", body.len()).as_bytes());
            raw.extend_from_slice(&body);
            (raw, method, target, headers.len() + 1, body)
        })
}

/// `true` when a *generated* header name collides with `content-length`
/// or `transfer-encoding` (the request is then ambiguous/rejected by
/// construction, not by parser defect).
fn has_framing_collision(raw: &[u8]) -> bool {
    let lower: Vec<u8> = raw.iter().map(|b| b.to_ascii_lowercase()).collect();
    let count = |needle: &[u8]| lower.windows(needle.len()).filter(|w| *w == needle).count();
    count(b"content-length:") > 1 || count(b"transfer-encoding:") > 0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Pure fuzz: random bytes never panic the parser and never over-read.
    fn random_bytes_never_panic_or_over_read(
        buf in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        check_total(&buf, &limits());
        // Also under hostile (tiny) limits.
        let tiny = HttpLimits { max_head_bytes: 32, max_body_bytes: 8, max_headers: 2 };
        check_total(&buf, &tiny);
    }

    /// Structure-aware fuzz: take a valid request and flip random bytes.
    /// The parser must stay total (no panic, no over-read) on every
    /// mutation.
    fn mutated_requests_never_panic(
        valid in arb_valid_request(),
        flips in proptest::collection::vec((0..1024usize, any::<u8>()), 1..8),
    ) {
        let mut mutated = valid.0;
        for (pos, byte) in flips {
            if mutated.is_empty() { break; }
            let at = pos % mutated.len();
            mutated[at] = byte;
        }
        check_total(&mutated, &limits());
    }

    /// Valid requests roundtrip exactly, consuming exactly their bytes.
    fn valid_requests_roundtrip(valid in arb_valid_request()) {
        let (raw, method, target, n_headers, body) = valid;
        if !has_framing_collision(&raw) {
            match parse_request(&raw, &limits()) {
                Parse::Complete { request, consumed } => {
                    prop_assert_eq!(consumed, raw.len());
                    prop_assert_eq!(&request.method, &method);
                    let (want_path, want_query) = match target.split_once('?') {
                        Some((p, q)) => (p.to_string(), q.to_string()),
                        None => (target.clone(), String::new()),
                    };
                    prop_assert_eq!(&request.path, &want_path);
                    prop_assert_eq!(&request.query, &want_query);
                    prop_assert_eq!(request.headers.len(), n_headers);
                    prop_assert_eq!(request.body, body);
                }
                other => panic!("expected complete: {other:?}"),
            }
        }
    }

    /// Torn headers / torn bodies: every strict prefix of a valid request
    /// is `Partial` — the parser never errors on (or completes from) an
    /// incomplete request, so incremental socket reads can always resume.
    fn every_prefix_is_partial(valid in arb_valid_request(), cut in 0..4096usize) {
        let raw = valid.0;
        if !has_framing_collision(&raw) {
            let cut = cut % raw.len().max(1);
            match parse_request(&raw[..cut], &limits()) {
                Parse::Partial => {}
                Parse::Error(e) => panic!(
                    "prefix {cut}/{} errored ({e:?}) but the full request parses", raw.len()
                ),
                Parse::Complete { .. } => panic!(
                    "premature complete at {cut}/{}", raw.len()
                ),
            }
        }
    }

    /// Pipelining: two valid requests back-to-back parse as the first
    /// request consuming exactly its own bytes, then the second from the
    /// remainder.
    fn pipelined_pairs_split_cleanly(
        first in arb_valid_request(),
        second in arb_valid_request(),
    ) {
        let (raw1, m1, ..) = first;
        let (raw2, m2, ..) = second;
        let mut joined = raw1.clone();
        joined.extend_from_slice(&raw2);
        if !has_framing_collision(&joined) {
            match parse_request(&joined, &limits()) {
                Parse::Complete { request, consumed } => {
                    prop_assert_eq!(consumed, raw1.len());
                    prop_assert_eq!(&request.method, &m1);
                    match parse_request(&joined[consumed..], &limits()) {
                        Parse::Complete { request: tail, consumed: c2 } => {
                            prop_assert_eq!(c2, raw2.len());
                            prop_assert_eq!(&tail.method, &m2);
                        }
                        other => panic!("second pipelined request failed: {other:?}"),
                    }
                }
                other => panic!("first pipelined request failed: {other:?}"),
            }
        }
    }

    /// Oversized declared bodies are rejected before any body byte is
    /// buffered, under any declared length.
    fn oversized_bodies_rejected(extra in 1..1_000_000u64) {
        let l = limits();
        let declared = l.max_body_bytes as u64 + extra;
        let raw = format!("POST /q HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n");
        match parse_request(raw.as_bytes(), &l) {
            Parse::Error(e) => prop_assert_eq!(e.status(), 413),
            other => panic!("expected 413: {other:?}"),
        }
    }
}
