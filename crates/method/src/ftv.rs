//! Filter-then-verify method over the path-trie index.

use crate::{Dataset, Method, QueryKind};
use gc_graph::{BitSet, Graph};
use gc_index::{FeatureConfig, PathTrie, TrieScratch};
use std::cell::RefCell;

thread_local! {
    /// Per-thread trie probe scratch: `Method::filter` is `&self` (shared
    /// across worker threads), so the reusable enumeration/intersection
    /// buffers live thread-locally. Only the output bitset is allocated per
    /// query.
    static FILTER_SCRATCH: RefCell<TrieScratch> = RefCell::new(TrieScratch::new());
}

/// A GraphGrepSX-style FTV method: a [`PathTrie`] over labelled paths up to
/// `L` edges filters the dataset; survivors are verified.
///
/// `L` is the paper's *feature size*: Experiment II rebuilds this method with
/// `L + 1` to trade roughly doubled index space for ~10% faster queries.
#[derive(Debug)]
pub struct FtvMethod {
    trie: PathTrie,
    max_len: usize,
}

impl FtvMethod {
    /// Build the index over `dataset` with maximum feature size `max_len`
    /// (in edges).
    pub fn build(dataset: &Dataset, max_len: usize) -> Self {
        let trie = PathTrie::build(dataset.graphs(), FeatureConfig::with_max_len(max_len));
        FtvMethod { trie, max_len }
    }

    /// Build with a full feature configuration.
    pub fn build_with_config(dataset: &Dataset, cfg: FeatureConfig) -> Self {
        let max_len = cfg.max_len;
        FtvMethod { trie: PathTrie::build(dataset.graphs(), cfg), max_len }
    }

    /// The feature size `L` this index was built with.
    pub fn feature_size(&self) -> usize {
        self.max_len
    }

    /// Access the underlying trie (for diagnostics and benches).
    pub fn trie(&self) -> &PathTrie {
        &self.trie
    }
}

impl Method for FtvMethod {
    fn name(&self) -> String {
        format!("ftv(L={})", self.max_len)
    }

    fn filter(&self, _dataset: &Dataset, query: &Graph, kind: QueryKind) -> BitSet {
        FILTER_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            let mut out = BitSet::new(self.trie.dataset_size());
            match kind {
                QueryKind::Subgraph => self.trie.candidates_into(query, scratch, &mut out),
                QueryKind::Supergraph => self.trie.super_candidates_into(query, scratch, &mut out),
            }
            out
        })
    }

    fn index_memory_bytes(&self) -> usize {
        self.trie.memory_bytes()
    }

    fn on_insert_graph(&self, _dataset: &Dataset, _gid: gc_graph::GraphId) -> bool {
        // The arena trie is frozen at build time; the runtime force-includes
        // inserted graphs as candidates instead (sound, one extra
        // verification per query until a rebuild).
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> gc_graph::Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    fn ds() -> Dataset {
        Dataset::new(vec![
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]),
            g(&[3, 3], &[(0, 1)]),
        ])
    }

    #[test]
    fn filters_both_kinds() {
        let d = ds();
        let m = FtvMethod::build(&d, 2);
        let q = g(&[0, 1], &[(0, 1)]);
        let sub = m.filter(&d, &q, QueryKind::Subgraph);
        assert_eq!(sub.to_vec(), vec![0, 1]);
        // Supergraph query: which graphs fit inside the edge 0-1? None of the
        // 3-vertex graphs; the 3-3 edge has wrong labels.
        let sup = m.filter(&d, &q, QueryKind::Supergraph);
        assert!(sup.is_empty());
    }

    #[test]
    fn filter_beats_si_on_selectivity() {
        let d = ds();
        let ftv = FtvMethod::build(&d, 2);
        let q = g(&[9], &[]);
        assert!(ftv.filter(&d, &q, QueryKind::Subgraph).is_empty());
        assert_eq!(crate::SiMethod.filter(&d, &q, QueryKind::Subgraph).count(), 3);
    }

    #[test]
    fn name_and_memory() {
        let d = ds();
        let m1 = FtvMethod::build(&d, 1);
        let m3 = FtvMethod::build(&d, 3);
        assert_eq!(m1.name(), "ftv(L=1)");
        assert_eq!(m1.feature_size(), 1);
        assert!(m3.index_memory_bytes() >= m1.index_memory_bytes());
    }
}
