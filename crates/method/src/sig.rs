//! Signature-based filtering method: invariants only, no feature index.
//!
//! A lightweight Method M between [`crate::SiMethod`] (no filter) and
//! [`crate::FtvMethod`] (path index): candidates are filtered with the
//! O(n)-computable containment invariants of
//! [`gc_graph::invariants::GraphSummary`] (size, label-histogram and
//! degree-sequence domination), precomputed per dataset graph. No index
//! memory beyond the summaries; weaker filtering than a path trie.
//!
//! Exists to exercise the paper's "any FTV or SI method" pluggability with a
//! third, genuinely different filtering regime — and as a bench baseline for
//! how much the path index buys.

use crate::{Dataset, Method, QueryKind};
use gc_graph::invariants::GraphSummary;
use gc_graph::{BitSet, Graph};

/// Invariant-summary filter method.
#[derive(Debug, Clone, Copy, Default)]
pub struct SigMethod;

impl Method for SigMethod {
    fn name(&self) -> String {
        "sig".to_owned()
    }

    fn filter(&self, dataset: &Dataset, query: &Graph, kind: QueryKind) -> BitSet {
        let q = GraphSummary::of(query);
        let mut out = dataset.empty_set();
        for gid in 0..dataset.len() {
            let g = dataset.summary(gid as u32);
            let possible = match kind {
                QueryKind::Subgraph => q.may_embed_into(g),
                QueryKind::Supergraph => g.may_embed_into(&q),
            };
            if possible {
                out.insert(gid);
            }
        }
        out
    }

    fn index_memory_bytes(&self) -> usize {
        // Summaries live in the Dataset (needed by every method); the filter
        // itself holds nothing.
        0
    }

    fn on_insert_graph(&self, _dataset: &Dataset, _gid: gc_graph::GraphId) -> bool {
        true // filters over the dataset's own summaries, always current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute_base, Engine, FtvMethod, SiMethod};
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    fn ds() -> Dataset {
        Dataset::new(vec![
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]),
            g(&[3, 3], &[(0, 1)]),
            g(&[0, 1], &[(0, 1)]),
        ])
    }

    #[test]
    fn filters_by_invariants() {
        let d = ds();
        let q = g(&[3], &[]);
        let c = SigMethod.filter(&d, &q, QueryKind::Subgraph);
        assert_eq!(c.to_vec(), vec![2], "only the 3-3 edge has label 3");
    }

    #[test]
    fn selectivity_between_si_and_ftv() {
        let d = ds();
        let q = g(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let si = SiMethod.filter(&d, &q, QueryKind::Subgraph).count();
        let sig = SigMethod.filter(&d, &q, QueryKind::Subgraph).count();
        let ftv = FtvMethod::build(&d, 2).filter(&d, &q, QueryKind::Subgraph).count();
        assert!(sig <= si);
        assert!(ftv <= sig);
    }

    #[test]
    fn answers_agree_with_other_methods_both_kinds() {
        let d = ds();
        let queries = [g(&[0, 1], &[(0, 1)]), g(&[0, 1, 0, 2], &[(0, 1), (1, 2), (0, 2), (1, 3)])];
        for q in &queries {
            for kind in [QueryKind::Subgraph, QueryKind::Supergraph] {
                let a = execute_base(&d, &SigMethod, Engine::Vf2, q, kind);
                let b = execute_base(&d, &SiMethod, Engine::Vf2, q, kind);
                assert_eq!(a.answer, b.answer, "kind {kind}");
                assert!(a.sub_iso_tests <= b.sub_iso_tests);
            }
        }
    }
}
