//! Baseline execution: Method M without any cache.

use crate::{Dataset, Engine, Method, QueryKind, QueryProfile};
use gc_graph::{BitSet, Graph};
use gc_iso::VfScratch;
use std::time::{Duration, Instant};

/// Result of running one query through Method M alone (filter + verify).
///
/// The Demonstrator's speedup metric divides the base method's averages by
/// GraphCache's (paper §2): this struct is the numerator side.
#[derive(Debug, Clone)]
pub struct BaseRun {
    /// The exact answer set.
    pub answer: BitSet,
    /// `|C_M|` — candidate-set size after filtering.
    pub candidates: usize,
    /// Number of sub-iso tests executed (= `|C_M|`; every candidate is
    /// verified).
    pub sub_iso_tests: usize,
    /// Total verifier search steps across all tests (cost unit for PINC).
    pub verify_steps: u64,
    /// Wall-clock time of filter + verification.
    pub elapsed: Duration,
}

/// Execute `query` over `dataset` using `method` for filtering and `engine`
/// for verification — no cache involved.
pub fn execute_base(
    dataset: &Dataset,
    method: &dyn Method,
    engine: Engine,
    query: &Graph,
    kind: QueryKind,
) -> BaseRun {
    let start = Instant::now();
    let candidates = method.filter(dataset, query, kind);
    let cand_count = candidates.count();
    let mut answer = dataset.empty_set();
    let mut verify_steps = 0u64;
    // One query profile + one scratch for the whole candidate sweep: the
    // per-candidate loop is setup- and allocation-free.
    let profile = QueryProfile::new(dataset, query, kind);
    let mut scratch = VfScratch::new();
    for gid in candidates.iter() {
        let (contained, steps) =
            engine.verify_candidate(dataset, &profile, query, gid as u32, &mut scratch);
        verify_steps += steps;
        if contained {
            answer.insert(gid);
        }
    }
    BaseRun {
        answer,
        candidates: cand_count,
        sub_iso_tests: cand_count,
        verify_steps,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FtvMethod, SiMethod};
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    fn ds() -> Dataset {
        Dataset::new(vec![
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),         // contains 0-1
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]), // contains 0-1
            g(&[3, 3], &[(0, 1)]),                    // does not
            g(&[0, 1], &[(0, 1)]),                    // exact
        ])
    }

    #[test]
    fn si_and_ftv_agree_on_answers() {
        let d = ds();
        let q = g(&[0, 1], &[(0, 1)]);
        let si = execute_base(&d, &SiMethod, Engine::Vf2, &q, QueryKind::Subgraph);
        let ftv_m = FtvMethod::build(&d, 2);
        let ftv = execute_base(&d, &ftv_m, Engine::Vf2, &q, QueryKind::Subgraph);
        assert_eq!(si.answer, ftv.answer);
        assert_eq!(si.answer.to_vec(), vec![0, 1, 3]);
        // FTV performs fewer sub-iso tests than SI.
        assert!(ftv.sub_iso_tests <= si.sub_iso_tests);
        assert_eq!(si.sub_iso_tests, 4);
    }

    #[test]
    fn supergraph_queries() {
        let d = ds();
        // Query contains graph 3 (edge 0-1) and graph 0 (path 0-1-2).
        let q = g(&[0, 1, 2, 0], &[(0, 1), (1, 2), (0, 3)]);
        let si = execute_base(&d, &SiMethod, Engine::Vf2, &q, QueryKind::Supergraph);
        let ftv_m = FtvMethod::build(&d, 2);
        let ftv = execute_base(&d, &ftv_m, Engine::Vf2, &q, QueryKind::Supergraph);
        assert_eq!(si.answer, ftv.answer);
        assert_eq!(si.answer.to_vec(), vec![0, 3]);
    }

    #[test]
    fn both_engines_agree() {
        let d = ds();
        let q = g(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let a = execute_base(&d, &SiMethod, Engine::Vf2, &q, QueryKind::Subgraph);
        let b = execute_base(&d, &SiMethod, Engine::Ullmann, &q, QueryKind::Subgraph);
        assert_eq!(a.answer, b.answer);
    }
}
