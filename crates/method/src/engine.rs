//! The Verifier: which sub-iso engine performs verification.

use crate::{Dataset, QueryKind};
use gc_graph::{Graph, GraphId};
use gc_iso::{Found, GraphProfile, ProfileRef, SearchStats, VerifyCtx, VfScratch};

/// Per-query verification precomputation: the query graph's profile
/// (summary, packed neighbour signatures, and — for the side where the query
/// is the pattern — a search order steered by the dataset's global label
/// frequencies). Built **once per query** and shared by every candidate
/// test; pair it with the dataset's precomputed per-graph profiles and a
/// reusable [`VfScratch`] and the per-candidate hot path performs zero setup
/// and zero heap allocation.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    kind: QueryKind,
    profile: GraphProfile,
}

impl QueryProfile {
    /// Profile `query` for repeated `kind`-verification over `dataset`.
    pub fn new(dataset: &Dataset, query: &Graph, kind: QueryKind) -> Self {
        let profile = match kind {
            // Subgraph queries: the query is the pattern of every test;
            // order its vertices by global label rarity in the dataset.
            QueryKind::Subgraph => GraphProfile::new(query, Some(dataset.label_freq())),
            // Supergraph queries: the query is the target; the pattern-side
            // orders come from the dataset profiles.
            QueryKind::Supergraph => GraphProfile::target_only(query),
        };
        QueryProfile { kind, profile }
    }

    /// The query kind this profile was built for.
    pub fn kind(&self) -> QueryKind {
        self.kind
    }

    /// Borrowed view of the query's graph profile.
    pub fn profile(&self) -> ProfileRef<'_> {
        self.profile.as_ref()
    }
}

/// Selects the sub-iso implementation used for verification and for
/// confirming cache hits. Step counts feed the cost-aware replacement
/// policies (PINC/HD).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// VF2-style backtracking (production default; paper reference \[3\]).
    #[default]
    Vf2,
    /// Ullmann with bitset domains (baseline / cross-check).
    Ullmann,
}

impl Engine {
    /// Engine name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Engine::Vf2 => "vf2",
            Engine::Ullmann => "ullmann",
        }
    }

    /// Exact containment test `pattern ⊑ target`, returning the decision and
    /// the number of search steps spent (the cost unit used by PINC).
    pub fn verify(self, pattern: &Graph, target: &Graph) -> (bool, u64) {
        let (found, stats) = match self {
            Engine::Vf2 => gc_iso::vf2::exists_with_stats(pattern, target, None),
            Engine::Ullmann => gc_iso::ullmann::exists_with_stats(pattern, target, None),
        };
        debug_assert_ne!(found, Found::Unknown, "unbudgeted search cannot be Unknown");
        (found.is_yes(), stats.steps)
    }

    /// Budgeted containment test (used by the Sub/Super Case Processors so a
    /// pathological hit-check can never dominate query time). Returns
    /// [`Found::Unknown`] when the budget ran out; callers must treat that as
    /// "not a hit" (sound: skipping a hit only loses savings, never
    /// correctness).
    pub fn verify_budgeted(self, pattern: &Graph, target: &Graph, budget: u64) -> (Found, u64) {
        let (found, stats) = match self {
            Engine::Vf2 => gc_iso::vf2::exists_with_stats(pattern, target, Some(budget)),
            Engine::Ullmann => gc_iso::ullmann::exists_with_stats(pattern, target, Some(budget)),
        };
        (found, stats.steps)
    }

    /// Run this engine over a fully-precomputed candidate pair — the
    /// allocation-free hot-path primitive both [`Engine::verify_candidate`]
    /// and the cache's hit-confirmation probes build on.
    pub fn verify_ctx(
        self,
        ctx: &VerifyCtx<'_>,
        budget: Option<u64>,
        scratch: &mut VfScratch,
    ) -> (Found, SearchStats) {
        match self {
            Engine::Vf2 => gc_iso::vf2::embeds_with(ctx, budget, scratch),
            Engine::Ullmann => gc_iso::ullmann::embeds_with(ctx, budget, scratch),
        }
    }

    /// Exact containment test of `query` against dataset graph `gid` using
    /// the precomputed [`QueryProfile`] and dataset profiles; all mutable
    /// search state comes from `scratch`. Decision-equivalent to
    /// [`Engine::verify`] on the same pair.
    pub fn verify_candidate(
        self,
        dataset: &Dataset,
        profile: &QueryProfile,
        query: &Graph,
        gid: GraphId,
        scratch: &mut VfScratch,
    ) -> (bool, u64) {
        let (found, steps) =
            self.verify_candidate_budgeted(dataset, profile, query, gid, None, scratch);
        debug_assert_ne!(found, Found::Unknown, "unbudgeted search cannot be Unknown");
        (found.is_yes(), steps)
    }

    /// Budgeted profiled containment test (see [`Engine::verify_budgeted`]
    /// for the budget semantics).
    pub fn verify_candidate_budgeted(
        self,
        dataset: &Dataset,
        profile: &QueryProfile,
        query: &Graph,
        gid: GraphId,
        budget: Option<u64>,
        scratch: &mut VfScratch,
    ) -> (Found, u64) {
        let target = dataset.graph(gid);
        let gp = dataset.profile(gid);
        let ctx = match profile.kind() {
            QueryKind::Subgraph => VerifyCtx::new(query, profile.profile(), target, gp),
            QueryKind::Supergraph => VerifyCtx::new(target, gp, query, profile.profile()),
        };
        let (found, stats) = self.verify_ctx(&ctx, budget, scratch);
        (found, stats.steps)
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    #[test]
    fn both_engines_verify() {
        let p = g(&[0, 1], &[(0, 1)]);
        let t = g(&[1, 0, 1], &[(0, 1), (1, 2)]);
        for e in [Engine::Vf2, Engine::Ullmann] {
            let (yes, steps) = e.verify(&p, &t);
            assert!(yes, "{e}");
            assert!(steps > 0, "{e}");
            let (no, _) = e.verify(&g(&[5], &[]), &t);
            assert!(!no, "{e}");
        }
    }

    #[test]
    fn profiled_path_matches_from_scratch_for_both_kinds_and_engines() {
        let dataset = Dataset::new(vec![
            g(&[0, 1, 2], &[(0, 1), (1, 2)]),
            g(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]),
            g(&[3, 3], &[(0, 1)]),
            g(&[0, 1], &[(0, 1)]),
        ]);
        let queries =
            [g(&[0, 1], &[(0, 1)]), g(&[0, 1, 2, 0], &[(0, 1), (1, 2), (0, 3)]), g(&[5], &[])];
        let mut scratch = VfScratch::new();
        for e in [Engine::Vf2, Engine::Ullmann] {
            for kind in [QueryKind::Subgraph, QueryKind::Supergraph] {
                for q in &queries {
                    let qp = QueryProfile::new(&dataset, q, kind);
                    assert_eq!(qp.kind(), kind);
                    for gid in 0..dataset.len() as u32 {
                        let t = dataset.graph(gid);
                        let (want, _) = match kind {
                            QueryKind::Subgraph => e.verify(q, t),
                            QueryKind::Supergraph => e.verify(t, q),
                        };
                        let (got, steps) = e.verify_candidate(&dataset, &qp, q, gid, &mut scratch);
                        assert_eq!(got, want, "{e} {kind} gid={gid}");
                        let _ = steps;
                    }
                }
            }
        }
    }

    #[test]
    fn profiled_budget_reports_unknown() {
        let p = g(&[0; 5], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut edges = Vec::new();
        for u in 0..9u32 {
            for v in (u + 1)..9 {
                edges.push((u, v));
            }
        }
        let dataset = Dataset::new(vec![g(&[0; 9], &edges)]);
        let mut scratch = VfScratch::new();
        for e in [Engine::Vf2, Engine::Ullmann] {
            let qp = QueryProfile::new(&dataset, &p, QueryKind::Subgraph);
            let (f, _) = e.verify_candidate_budgeted(&dataset, &qp, &p, 0, Some(1), &mut scratch);
            assert_eq!(f, Found::Unknown, "{e}");
        }
    }

    #[test]
    fn budgeted_unknown() {
        let p = g(&[0; 5], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut edges = Vec::new();
        for u in 0..9u32 {
            for v in (u + 1)..9 {
                edges.push((u, v));
            }
        }
        let t = g(&[0; 9], &edges);
        for e in [Engine::Vf2, Engine::Ullmann] {
            let (f, _) = e.verify_budgeted(&p, &t, 1);
            assert_eq!(f, Found::Unknown, "{e}");
        }
    }
}
