//! The Verifier: which sub-iso engine performs verification.

use gc_graph::Graph;
use gc_iso::Found;

/// Selects the sub-iso implementation used for verification and for
/// confirming cache hits. Step counts feed the cost-aware replacement
/// policies (PINC/HD).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// VF2-style backtracking (production default; paper reference \[3\]).
    #[default]
    Vf2,
    /// Ullmann with bitset domains (baseline / cross-check).
    Ullmann,
}

impl Engine {
    /// Engine name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Engine::Vf2 => "vf2",
            Engine::Ullmann => "ullmann",
        }
    }

    /// Exact containment test `pattern ⊑ target`, returning the decision and
    /// the number of search steps spent (the cost unit used by PINC).
    pub fn verify(self, pattern: &Graph, target: &Graph) -> (bool, u64) {
        let (found, stats) = match self {
            Engine::Vf2 => gc_iso::vf2::exists_with_stats(pattern, target, None),
            Engine::Ullmann => gc_iso::ullmann::exists_with_stats(pattern, target, None),
        };
        debug_assert_ne!(found, Found::Unknown, "unbudgeted search cannot be Unknown");
        (found.is_yes(), stats.steps)
    }

    /// Budgeted containment test (used by the Sub/Super Case Processors so a
    /// pathological hit-check can never dominate query time). Returns
    /// [`Found::Unknown`] when the budget ran out; callers must treat that as
    /// "not a hit" (sound: skipping a hit only loses savings, never
    /// correctness).
    pub fn verify_budgeted(self, pattern: &Graph, target: &Graph, budget: u64) -> (Found, u64) {
        let (found, stats) = match self {
            Engine::Vf2 => gc_iso::vf2::exists_with_stats(pattern, target, Some(budget)),
            Engine::Ullmann => gc_iso::ullmann::exists_with_stats(pattern, target, Some(budget)),
        };
        (found, stats.steps)
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let ls: Vec<Label> = labels.iter().map(|&l| Label(l)).collect();
        graph_from_parts(&ls, edges).unwrap()
    }

    #[test]
    fn both_engines_verify() {
        let p = g(&[0, 1], &[(0, 1)]);
        let t = g(&[1, 0, 1], &[(0, 1), (1, 2)]);
        for e in [Engine::Vf2, Engine::Ullmann] {
            let (yes, steps) = e.verify(&p, &t);
            assert!(yes, "{e}");
            assert!(steps > 0, "{e}");
            let (no, _) = e.verify(&g(&[5], &[]), &t);
            assert!(!no, "{e}");
        }
    }

    #[test]
    fn budgeted_unknown() {
        let p = g(&[0; 5], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut edges = Vec::new();
        for u in 0..9u32 {
            for v in (u + 1)..9 {
                edges.push((u, v));
            }
        }
        let t = g(&[0; 9], &edges);
        for e in [Engine::Vf2, Engine::Ullmann] {
            let (f, _) = e.verify_budgeted(&p, &t, 1);
            assert_eq!(f, Found::Unknown, "{e}");
        }
    }
}
