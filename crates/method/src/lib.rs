//! # gc-method — the "Method M" abstraction of GraphCache
//!
//! GraphCache is a cache layered *over* an existing query-processing method
//! (paper Fig. 1: "Method M could incorporate any FTV or SI method"). This
//! crate defines that pluggable surface:
//!
//! * [`Dataset`] — the immutable collection of data graphs queries run over;
//! * [`QueryKind`] — subgraph vs supergraph queries;
//! * [`Method`] — the filter stage contract: given a query, produce the
//!   candidate set `C_M`;
//! * [`SiMethod`] — a plain SI method: no filtering, every graph is a
//!   candidate (the Verifier's own invariant pre-checks still apply);
//! * [`SigMethod`] — invariant-summary filtering (no index), a third
//!   filtering regime between SI and FTV;
//! * [`FtvMethod`] — filter-then-verify over the [`gc_index::PathTrie`]
//!   (GraphGrepSX-style), with the feature size `L` as its knob;
//! * [`Engine`] — the Verifier: which sub-iso implementation performs
//!   verification, with step accounting for cost-aware cache policies;
//! * [`execute_base`] — run a query with Method M alone (no cache); the
//!   baseline side of every speedup the Demonstrator reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod base;
mod dataset;
mod engine;
mod ftv;
mod ftv_tree;
mod si;
mod sig;

pub use base::{execute_base, BaseRun};
pub use dataset::{Dataset, DatasetProfiles};
pub use engine::{Engine, QueryProfile};
pub use ftv::FtvMethod;
pub use ftv_tree::FtvTreeMethod;
pub use gc_iso::VfScratch;
pub use si::SiMethod;
pub use sig::SigMethod;

use gc_graph::{BitSet, Graph};

/// The two query types GraphCache serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum QueryKind {
    /// Return dataset graphs that **contain** the query (`q ⊑ G`).
    Subgraph,
    /// Return dataset graphs **contained in** the query (`G ⊑ q`).
    Supergraph,
}

impl QueryKind {
    /// Short name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryKind::Subgraph => "sub",
            QueryKind::Supergraph => "super",
        }
    }
}

impl std::fmt::Display for QueryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The filter stage of a base query-processing method.
///
/// Contract: the returned candidate set must be **sound** — it contains the
/// full true answer set for (`query`, `kind`). The verification stage (the
/// [`Engine`]) then removes false candidates. GraphCache layers its semantic
/// cache on top of any implementation of this trait.
pub trait Method: Send + Sync {
    /// Method name for dashboards and experiment reports.
    fn name(&self) -> String;

    /// Compute the candidate set `C_M` for a query.
    fn filter(&self, dataset: &Dataset, query: &Graph, kind: QueryKind) -> BitSet;

    /// Bytes of index memory the method holds (0 for index-free methods).
    /// Experiment II compares this with the cache's footprint.
    fn index_memory_bytes(&self) -> usize;
}
