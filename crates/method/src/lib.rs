//! # gc-method — the "Method M" abstraction of GraphCache
//!
//! GraphCache is a cache layered *over* an existing query-processing method
//! (paper Fig. 1: "Method M could incorporate any FTV or SI method"). This
//! crate defines that pluggable surface:
//!
//! * [`Dataset`] — the immutable collection of data graphs queries run over;
//! * [`QueryKind`] — subgraph vs supergraph queries;
//! * [`Method`] — the filter stage contract: given a query, produce the
//!   candidate set `C_M`;
//! * [`SiMethod`] — a plain SI method: no filtering, every graph is a
//!   candidate (the Verifier's own invariant pre-checks still apply);
//! * [`SigMethod`] — invariant-summary filtering (no index), a third
//!   filtering regime between SI and FTV;
//! * [`FtvMethod`] — filter-then-verify over the [`gc_index::PathTrie`]
//!   (GraphGrepSX-style), with the feature size `L` as its knob;
//! * [`Engine`] — the Verifier: which sub-iso implementation performs
//!   verification, with step accounting for cost-aware cache policies;
//! * [`execute_base`] — run a query with Method M alone (no cache); the
//!   baseline side of every speedup the Demonstrator reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod base;
mod dataset;
mod engine;
mod ftv;
mod ftv_tree;
mod si;
mod sig;

pub use base::{execute_base, BaseRun};
pub use dataset::{Dataset, DatasetOp, DatasetProfiles};
pub use engine::{Engine, QueryProfile};
pub use ftv::FtvMethod;
pub use ftv_tree::FtvTreeMethod;
pub use gc_iso::VfScratch;
pub use si::SiMethod;
pub use sig::SigMethod;

use gc_graph::{BitSet, Graph};

/// The two query types GraphCache serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum QueryKind {
    /// Return dataset graphs that **contain** the query (`q ⊑ G`).
    Subgraph,
    /// Return dataset graphs **contained in** the query (`G ⊑ q`).
    Supergraph,
}

impl QueryKind {
    /// Short name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryKind::Subgraph => "sub",
            QueryKind::Supergraph => "super",
        }
    }
}

impl std::fmt::Display for QueryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The filter stage of a base query-processing method.
///
/// Contract: the returned candidate set must be **sound** — it contains the
/// full true answer set for (`query`, `kind`). The verification stage (the
/// [`Engine`]) then removes false candidates. GraphCache layers its semantic
/// cache on top of any implementation of this trait.
pub trait Method: Send + Sync {
    /// Method name for dashboards and experiment reports.
    fn name(&self) -> String;

    /// Compute the candidate set `C_M` for a query.
    ///
    /// Under a mutated dataset the returned set may be sized to an older
    /// (smaller) universe and may still contain tombstoned graphs: the
    /// runtime's filter stage grows it to the current universe and
    /// intersects it with [`Dataset::live_mask`], so implementations only
    /// owe soundness over the graphs they have indexed.
    fn filter(&self, dataset: &Dataset, query: &Graph, kind: QueryKind) -> BitSet;

    /// Bytes of index memory the method holds (0 for index-free methods).
    /// Experiment II compares this with the cache's footprint.
    fn index_memory_bytes(&self) -> usize;

    /// Notify the method that `gid` was appended to the dataset
    /// ([`Dataset::insert_graph`]). Return `true` iff this method's
    /// [`Method::filter`] now accounts for the new graph (dynamic index, or
    /// no index at all). Returning `false` makes the runtime force-include
    /// `gid` in every candidate set — sound, at the cost of one extra
    /// verification per query until the index is rebuilt.
    fn on_insert_graph(&self, _dataset: &Dataset, _gid: gc_graph::GraphId) -> bool {
        false
    }

    /// Notify the method that `gid` was tombstoned
    /// ([`Dataset::remove_graph`]). Removed graphs are masked out of every
    /// candidate set by the runtime regardless; this hook only lets dynamic
    /// indexes drop the graph's postings.
    fn on_remove_graph(&self, _dataset: &Dataset, _gid: gc_graph::GraphId) {}
}
