//! Plain SI method: no filter stage.

use crate::{Dataset, Method, QueryKind};
use gc_graph::{BitSet, Graph};

/// A bare subgraph-isomorphism method: every dataset graph is a candidate
/// and must be verified. This is the weakest Method M the paper considers
/// ("SI algorithms" category) and the one over which the cache shows the
/// largest savings.
///
/// Cheap per-graph invariant pre-checks (size, labels, degrees) run inside
/// the verifier itself, mirroring what practical SI implementations do.
#[derive(Debug, Clone, Copy, Default)]
pub struct SiMethod;

impl Method for SiMethod {
    fn name(&self) -> String {
        "si".to_owned()
    }

    fn filter(&self, dataset: &Dataset, _query: &Graph, _kind: QueryKind) -> BitSet {
        dataset.all_graphs()
    }

    fn index_memory_bytes(&self) -> usize {
        0
    }

    fn on_insert_graph(&self, _dataset: &Dataset, _gid: gc_graph::GraphId) -> bool {
        true // no index: `all_graphs()` always reflects the live dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    #[test]
    fn all_graphs_are_candidates() {
        let ds = Dataset::new(vec![
            graph_from_parts(&[Label(0)], &[]).unwrap(),
            graph_from_parts(&[Label(1)], &[]).unwrap(),
        ]);
        let q = graph_from_parts(&[Label(0)], &[]).unwrap();
        let m = SiMethod;
        assert_eq!(m.filter(&ds, &q, QueryKind::Subgraph).count(), 2);
        assert_eq!(m.filter(&ds, &q, QueryKind::Supergraph).count(), 2);
        assert_eq!(m.index_memory_bytes(), 0);
        assert_eq!(m.name(), "si");
    }
}
