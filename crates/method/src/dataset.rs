//! The immutable dataset of data graphs.

use gc_graph::invariants::GraphSummary;
use gc_graph::{BitSet, Graph, GraphId};

/// A loaded collection of data graphs with precomputed per-graph summaries.
///
/// The dataset is immutable for the lifetime of a cache instance (the paper's
/// Dataset Graphs component); graph ids are dense `0..len`.
#[derive(Debug)]
pub struct Dataset {
    graphs: Vec<Graph>,
    summaries: Vec<GraphSummary>,
    label_freq: Vec<u32>,
}

impl Dataset {
    /// Wrap a vector of graphs.
    pub fn new(graphs: Vec<Graph>) -> Self {
        let summaries = graphs.iter().map(GraphSummary::of).collect();
        let max_label = graphs
            .iter()
            .filter_map(|g| g.max_label())
            .map(|l| l.0)
            .max()
            .map_or(0, |m| m as usize + 1);
        let mut label_freq = vec![0u32; max_label];
        for g in &graphs {
            for v in g.vertices() {
                label_freq[g.label(v).0 as usize] += 1;
            }
        }
        Dataset { graphs, summaries, label_freq }
    }

    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// `true` iff the dataset holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Access a graph by id.
    ///
    /// # Panics
    /// Panics when `id` is out of range.
    pub fn graph(&self, id: GraphId) -> &Graph {
        &self.graphs[id as usize]
    }

    /// Precomputed invariants summary of graph `id`.
    pub fn summary(&self, id: GraphId) -> &GraphSummary {
        &self.summaries[id as usize]
    }

    /// All graphs in id order.
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// Global label frequency across the dataset (index = label value);
    /// steers matcher search orders toward rare labels.
    pub fn label_freq(&self) -> &[u32] {
        &self.label_freq
    }

    /// A fresh full candidate bitset over this dataset's universe.
    pub fn all_graphs(&self) -> BitSet {
        BitSet::full(self.len())
    }

    /// A fresh empty bitset over this dataset's universe.
    pub fn empty_set(&self) -> BitSet {
        BitSet::new(self.len())
    }

    /// Total approximate memory of the raw graphs.
    pub fn memory_bytes(&self) -> usize {
        self.graphs.iter().map(Graph::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn ds() -> Dataset {
        Dataset::new(vec![
            graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap(),
            graph_from_parts(&[Label(1), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap(),
        ])
    }

    #[test]
    fn accessors() {
        let d = ds();
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.graph(0).vertex_count(), 2);
        assert_eq!(d.summary(1).n, 3);
        assert_eq!(d.label_freq(), &[1, 3, 1]);
    }

    #[test]
    fn universe_sets() {
        let d = ds();
        assert_eq!(d.all_graphs().count(), 2);
        assert_eq!(d.empty_set().count(), 0);
        assert_eq!(d.all_graphs().universe(), 2);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.label_freq().len(), 0);
        assert_eq!(d.all_graphs().count(), 0);
    }
}
