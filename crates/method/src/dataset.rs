//! The dataset of data graphs — loaded in bulk, mutable afterwards.
//!
//! Graph ids are dense `0..len` and **stable for the lifetime of the
//! dataset**: [`Dataset::insert_graph`] appends a fresh id,
//! [`Dataset::remove_graph`] tombstones the slot instead of compacting, so
//! every cached answer bitset and index posting keeps meaning the same graph
//! across mutations. Each mutation bumps a [`Dataset::generation`] counter
//! and is appended to an op log ([`Dataset::ops`]) so persistence can
//! journal deltas and warm restarts can replay them onto the base dataset.

use gc_graph::invariants::GraphSummary;
use gc_graph::{BitSet, Graph, GraphId};
use gc_iso::{GraphProfile, ProfileRef};

/// Slot value hashed for tombstoned ids in [`Dataset::content_fingerprint`]:
/// a dataset with a removed graph must fingerprint differently from one
/// where the slot never existed or still holds the graph.
const TOMBSTONE_MARK: u64 = 0x7061_7065_7220_8888;

/// One dataset mutation, in the order it was applied. Inserts carry the
/// graph (its id is implied: `base_len + #prior inserts`); removes carry the
/// tombstoned id.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetOp {
    /// A graph appended by [`Dataset::insert_graph`].
    Insert(Graph),
    /// A graph tombstoned by [`Dataset::remove_graph`].
    Remove(GraphId),
}

/// Flat side arrays of per-graph verification precomputation: packed
/// neighbour signatures and pattern-role search orders for every dataset
/// graph, concatenated with one shared offset table (both are per-vertex).
///
/// Built at load time and extended incrementally on insert, so the
/// verification hot path pays zero per-candidate setup — the engines receive
/// borrowed [`ProfileRef`] slices straight out of these arrays. Tombstoned
/// graphs keep their rows (the arrays are flat and ids must stay stable).
#[derive(Debug, Clone)]
pub struct DatasetProfiles {
    /// `off[i]..off[i + 1]` is graph `i`'s vertex range in `sig` / `order`.
    off: Vec<usize>,
    sig: Vec<u64>,
    order: Vec<u32>,
}

impl DatasetProfiles {
    /// Approximate heap bytes of the side arrays.
    pub fn memory_bytes(&self) -> usize {
        self.off.len() * std::mem::size_of::<usize>() + self.sig.len() * 8 + self.order.len() * 4
    }

    fn push(&mut self, p: &GraphProfile) {
        self.sig.extend_from_slice(&p.sig);
        self.order.extend_from_slice(&p.order);
        self.off.push(self.sig.len());
    }
}

/// A collection of data graphs with precomputed per-graph summaries and
/// verification profiles, supporting live insert/remove (the paper's Dataset
/// Graphs component, made dynamic).
#[derive(Debug, Clone)]
pub struct Dataset {
    graphs: Vec<Graph>,
    summaries: Vec<GraphSummary>,
    label_freq: Vec<u32>,
    profiles: DatasetProfiles,
    /// Live (non-tombstoned) slots; universe = `graphs.len()`.
    live: BitSet,
    dead: usize,
    generation: u64,
    base_fingerprint: u64,
    ops: Vec<DatasetOp>,
}

impl Dataset {
    /// Wrap a vector of graphs, precomputing summaries, label frequencies
    /// and per-graph verification profiles. This is generation 0; the
    /// op log starts empty.
    pub fn new(graphs: Vec<Graph>) -> Self {
        let mut summaries = Vec::with_capacity(graphs.len());
        let mut profiles = DatasetProfiles {
            off: Vec::with_capacity(graphs.len() + 1),
            sig: Vec::new(),
            order: Vec::new(),
        };
        profiles.off.push(0);
        for g in &graphs {
            // One full profile per graph: the graph serves as verification
            // *target* for subgraph queries and as *pattern* (hence the
            // search order) for supergraph queries.
            let p = GraphProfile::new(g, None);
            profiles.push(&p);
            summaries.push(p.summary);
        }
        let max_label = graphs
            .iter()
            .filter_map(|g| g.max_label())
            .map(|l| l.0)
            .max()
            .map_or(0, |m| m as usize + 1);
        let mut label_freq = vec![0u32; max_label];
        for g in &graphs {
            for v in g.vertices() {
                label_freq[g.label(v).0 as usize] += 1;
            }
        }
        let live = BitSet::full(graphs.len());
        let mut d = Dataset {
            graphs,
            summaries,
            label_freq,
            profiles,
            live,
            dead: 0,
            generation: 0,
            base_fingerprint: 0,
            ops: Vec::new(),
        };
        d.base_fingerprint = d.content_fingerprint();
        d
    }

    /// Append a graph, assigning it the next dense id. Bumps the
    /// generation, extends the live mask/universe and logs the op.
    pub fn insert_graph(&mut self, g: Graph) -> GraphId {
        let id = self.graphs.len() as GraphId;
        let p = GraphProfile::new(&g, None);
        self.profiles.push(&p);
        self.summaries.push(p.summary);
        if let Some(ml) = g.max_label() {
            if self.label_freq.len() <= ml.0 as usize {
                self.label_freq.resize(ml.0 as usize + 1, 0);
            }
        }
        for v in g.vertices() {
            self.label_freq[g.label(v).0 as usize] += 1;
        }
        self.live.grow(id as usize + 1);
        self.live.insert(id as usize);
        self.ops.push(DatasetOp::Insert(g.clone()));
        self.graphs.push(g);
        self.generation += 1;
        id
    }

    /// Tombstone graph `gid`: it leaves the live mask (and thus every
    /// candidate and answer set) but keeps its slot, so all other ids stay
    /// stable. Returns `false` if the graph was already removed.
    ///
    /// # Panics
    /// Panics when `gid` is out of range.
    pub fn remove_graph(&mut self, gid: GraphId) -> bool {
        assert!((gid as usize) < self.graphs.len(), "graph id {gid} out of range");
        if !self.live.remove(gid as usize) {
            return false;
        }
        self.dead += 1;
        let g = &self.graphs[gid as usize];
        for v in g.vertices() {
            self.label_freq[g.label(v).0 as usize] -= 1;
        }
        self.ops.push(DatasetOp::Remove(gid));
        self.generation += 1;
        true
    }

    /// Re-apply a logged mutation (warm-restart replay). Insert ids are
    /// implied by append order, exactly as when the op was first applied.
    pub fn apply_op(&mut self, op: &DatasetOp) {
        match op {
            DatasetOp::Insert(g) => {
                self.insert_graph(g.clone());
            }
            DatasetOp::Remove(gid) => {
                self.remove_graph(*gid);
            }
        }
    }

    /// Number of graph *slots* (live + tombstoned) — the bitset universe.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// `true` iff the dataset holds no graph slots.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Number of live (non-tombstoned) graphs.
    pub fn live_count(&self) -> usize {
        self.graphs.len() - self.dead
    }

    /// `true` iff graph `gid` exists and is not tombstoned.
    pub fn is_live(&self, gid: GraphId) -> bool {
        (gid as usize) < self.graphs.len() && self.live.contains(gid as usize)
    }

    /// The live mask: one bit per slot, set iff the graph is not
    /// tombstoned. The filter stage intersects candidate sets with this so
    /// removed graphs can never re-enter an answer.
    pub fn live_mask(&self) -> &BitSet {
        &self.live
    }

    /// `true` iff any graph has been removed (fast-path check: when false,
    /// the live mask is full and intersecting with it is a no-op).
    pub fn has_tombstones(&self) -> bool {
        self.dead > 0
    }

    /// Mutation counter: 0 at load, +1 per insert/remove. Versions the
    /// exact-answer memo (any bump invalidates all memoized answers in
    /// O(1)) and orders journaled deltas.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Content fingerprint of the dataset as loaded (generation 0), before
    /// any mutation. Persistence records it so a snapshot's op log is only
    /// ever replayed onto the dataset it was cut from.
    pub fn base_fingerprint(&self) -> u64 {
        self.base_fingerprint
    }

    /// The mutation log since load, in application order.
    pub fn ops(&self) -> &[DatasetOp] {
        &self.ops
    }

    /// Access a graph by id.
    ///
    /// Tombstoned slots keep their payload (ids must stay stable); callers
    /// iterating live-masked candidate sets never observe them.
    ///
    /// # Panics
    /// Panics when `id` is out of range.
    pub fn graph(&self, id: GraphId) -> &Graph {
        &self.graphs[id as usize]
    }

    /// Precomputed invariants summary of graph `id`.
    pub fn summary(&self, id: GraphId) -> &GraphSummary {
        &self.summaries[id as usize]
    }

    /// Precomputed verification profile of graph `id` (borrowed slices of
    /// the flat [`DatasetProfiles`] side arrays — no per-call work).
    pub fn profile(&self, id: GraphId) -> ProfileRef<'_> {
        let i = id as usize;
        let range = self.profiles.off[i]..self.profiles.off[i + 1];
        ProfileRef {
            summary: &self.summaries[i],
            sig: &self.profiles.sig[range.clone()],
            order: &self.profiles.order[range],
        }
    }

    /// The flat profile side arrays (for memory accounting).
    pub fn profiles(&self) -> &DatasetProfiles {
        &self.profiles
    }

    /// All graph slots in id order (tombstoned slots included — filter with
    /// [`Dataset::is_live`] when liveness matters).
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// Order-sensitive content fingerprint of the whole dataset: a hash of
    /// the slot count and every slot's WL fingerprint (a fixed tombstone
    /// mark for removed slots), in id order. Persistence snapshots record it
    /// so cached answer sets are never restored over a different (or
    /// reordered) dataset; journaled deltas record the fingerprint that
    /// *resulted* from each mutation so replay is validated step by step.
    pub fn content_fingerprint(&self) -> u64 {
        gc_graph::hash::hash_seq(std::iter::once(self.graphs.len() as u64).chain(
            self.graphs.iter().enumerate().map(|(i, g)| {
                if self.live.contains(i) {
                    gc_graph::hash::fingerprint(g)
                } else {
                    TOMBSTONE_MARK
                }
            }),
        ))
    }

    /// Global label frequency across the dataset (index = label value);
    /// steers matcher search orders toward rare labels. Maintained
    /// incrementally under mutation (live graphs only).
    pub fn label_freq(&self) -> &[u32] {
        &self.label_freq
    }

    /// A fresh candidate bitset of every **live** graph over this dataset's
    /// universe.
    pub fn all_graphs(&self) -> BitSet {
        self.live.clone()
    }

    /// A fresh empty bitset over this dataset's universe.
    pub fn empty_set(&self) -> BitSet {
        BitSet::new(self.len())
    }

    /// Total approximate memory of the raw graphs (tombstoned payloads
    /// included — they are retained for id stability).
    pub fn memory_bytes(&self) -> usize {
        self.graphs.iter().map(Graph::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::{graph_from_parts, Label};

    fn ds() -> Dataset {
        Dataset::new(vec![
            graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap(),
            graph_from_parts(&[Label(1), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap(),
        ])
    }

    #[test]
    fn accessors() {
        let d = ds();
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.graph(0).vertex_count(), 2);
        assert_eq!(d.summary(1).n, 3);
        assert_eq!(d.label_freq(), &[1, 3, 1]);
        assert_eq!(d.generation(), 0);
        assert_eq!(d.live_count(), 2);
        assert!(d.is_live(0) && d.is_live(1));
        assert!(!d.has_tombstones());
        assert!(d.ops().is_empty());
        assert_eq!(d.base_fingerprint(), d.content_fingerprint());
    }

    #[test]
    fn profiles_match_per_graph_computation() {
        let mut d = ds();
        d.insert_graph(graph_from_parts(&[Label(0), Label(2)], &[(0, 1)]).unwrap());
        assert!(d.profiles().memory_bytes() > 0);
        for id in 0..d.len() as u32 {
            let fresh = GraphProfile::new(d.graph(id), None);
            let p = d.profile(id);
            assert_eq!(p.summary, &fresh.summary, "graph {id}");
            assert_eq!(p.sig, &fresh.sig[..], "graph {id}");
            assert_eq!(p.order, &fresh.order[..], "graph {id}");
        }
    }

    #[test]
    fn universe_sets() {
        let d = ds();
        assert_eq!(d.all_graphs().count(), 2);
        assert_eq!(d.empty_set().count(), 0);
        assert_eq!(d.all_graphs().universe(), 2);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.label_freq().len(), 0);
        assert_eq!(d.all_graphs().count(), 0);
    }

    #[test]
    fn insert_appends_and_maintains_state() {
        let mut d = ds();
        let g = graph_from_parts(&[Label(5), Label(1)], &[(0, 1)]).unwrap();
        let id = d.insert_graph(g.clone());
        assert_eq!(id, 2);
        assert_eq!(d.len(), 3);
        assert_eq!(d.live_count(), 3);
        assert_eq!(d.generation(), 1);
        assert!(d.is_live(2));
        assert_eq!(d.graph(2), &g);
        assert_eq!(d.label_freq(), &[1, 4, 1, 0, 0, 1], "label 5 grows the freq table");
        assert_eq!(d.all_graphs().to_vec(), vec![0, 1, 2]);
        assert_eq!(d.ops(), &[DatasetOp::Insert(g)]);
        assert_ne!(d.content_fingerprint(), d.base_fingerprint());
    }

    #[test]
    fn remove_tombstones_and_keeps_ids_stable() {
        let mut d = ds();
        assert!(d.remove_graph(0));
        assert!(!d.remove_graph(0), "double remove is a no-op");
        assert_eq!(d.len(), 2, "universe does not shrink");
        assert_eq!(d.live_count(), 1);
        assert_eq!(d.generation(), 1);
        assert!(!d.is_live(0));
        assert!(d.is_live(1));
        assert_eq!(d.label_freq(), &[0, 2, 1], "removed labels leave the freq table");
        assert_eq!(d.all_graphs().to_vec(), vec![1]);
        assert!(d.has_tombstones());
        assert_eq!(d.ops(), &[DatasetOp::Remove(0)]);
        // Graph 1's accessors are untouched.
        assert_eq!(d.summary(1).n, 3);
    }

    #[test]
    fn fingerprint_distinguishes_removed_from_never_present() {
        let g0 = graph_from_parts(&[Label(0), Label(1)], &[(0, 1)]).unwrap();
        let g1 = graph_from_parts(&[Label(1), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap();
        let mut removed = Dataset::new(vec![g0, g1.clone()]);
        removed.remove_graph(0);
        let only = Dataset::new(vec![g1]);
        assert_ne!(removed.content_fingerprint(), only.content_fingerprint());
    }

    #[test]
    fn replaying_ops_reproduces_fingerprint() {
        let mut d = ds();
        d.insert_graph(graph_from_parts(&[Label(3)], &[]).unwrap());
        d.remove_graph(1);
        d.insert_graph(graph_from_parts(&[Label(0), Label(0)], &[(0, 1)]).unwrap());
        let mut fresh = ds();
        for op in d.ops().to_vec() {
            fresh.apply_op(&op);
        }
        assert_eq!(fresh.generation(), d.generation());
        assert_eq!(fresh.content_fingerprint(), d.content_fingerprint());
        assert_eq!(fresh.label_freq(), d.label_freq());
        assert_eq!(fresh.all_graphs(), d.all_graphs());
    }
}
